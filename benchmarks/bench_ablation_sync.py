"""Ablation: what adjacent synchronization and dynamic IDs cost and buy.

Three questions the design hinges on:

1. **chain cost** — the flag chain is one hop per work-group; the
   emitted table shows the modelled exposure across coarsening factors
   (only the many-tiny-tiles end of Figure 6 is chain-bound);
2. **dispatch order** — spins measured on the real simulator under
   friendly (ascending) vs adversarial (descending) vs random dispatch:
   dynamic IDs keep the chain moving regardless;
3. **against the alternative** — the same slide as a multi-kernel
   pipeline (Thrust-style) pays a launch per pass instead of a flag hop
   per group; the table compares both overheads head-on.
"""

import numpy as np

from _common import BENCH_ELEMENTS, ROUNDS, emit
from repro.analysis import render_table
from repro.config import DSConfig
from repro.perfmodel import (
    ds_irregular_launches,
    gbps,
    price_launch,
    price_pipeline,
    select_useful_bytes,
    thrust_select_launches,
)
from repro.primitives import ds_stream_compact
from repro.simgpu import Stream, get_device
from repro.workloads import compaction_array


def chain_cost_table() -> str:
    device = get_device("maxwell")
    n = 16 * 1024 * 1024
    kept = n // 2
    rows = [["coarsening", "work-groups", "chain us", "mem us",
             "chain exposed?"]]
    for cf in (1, 2, 4, 16, 32):
        launches = ds_irregular_launches(n, kept, 4, device, coarsening=cf)
        cost = price_launch(launches[0], device, api="cuda")
        rows.append([str(cf), str(launches[0].grid_size),
                     f"{cost.chain_us:.0f}", f"{cost.mem_us:.0f}",
                     "yes" if cost.chain_us > cost.mem_us else "hidden"])
    return ("== ablation: adjacent-sync chain vs memory time (Maxwell, "
            "16M, 50%) ==\n" + render_table(rows, indent="   "))


def overhead_comparison() -> str:
    device = get_device("maxwell")
    n = 16 * 1024 * 1024
    kept = n // 2
    useful = select_useful_bytes(n, kept, 4)
    ds = ds_irregular_launches(n, kept, 4, device,
                               scan_variant="shuffle",
                               reduction_variant="shuffle")
    th = thrust_select_launches(n, kept, 4, device, in_place=True)
    rows = [["approach", "launches", "flag hops", "GB/s"]]
    rows.append(["adjacent sync (DS)", "1",
                 f"{ds[0].extras['adjacent_syncs']:.0f}",
                 f"{gbps(useful, price_pipeline(ds, device, api='cuda').total_us):.1f}"])
    rows.append(["kernel relaunch (Thrust-style)", str(len(th)), "0",
                 f"{gbps(useful, price_pipeline(th, device, api='cuda').total_us):.1f}"])
    return ("== ablation: synchronization mechanism head-to-head ==\n"
            + render_table(rows, indent="   "))


def test_ablation_sync(benchmark):
    emit(chain_cost_table(), "ablation_chain")
    emit(overhead_comparison(), "ablation_sync_mechanism")

    values = compaction_array(BENCH_ELEMENTS, 0.5, seed=22)

    def run():
        return ds_stream_compact(values, 0.0, config=DSConfig(seed=22))

    result = benchmark.pedantic(run, **ROUNDS)
    assert result.extras["n_kept"] == BENCH_ELEMENTS // 2

    # Dispatch-order ablation on the real scheduler: correct everywhere,
    # with spin counts reflecting how adversarial the order is.
    small = compaction_array(256 * 1024, 0.5, seed=23)
    expected = None
    spin_rows = [["dispatch order", "spins", "result"]]
    for order in ("ascending", "random", "descending"):
        stream = Stream("maxwell", seed=23, order=order, resident_limit=16)
        r = ds_stream_compact(small, 0.0, stream)
        if expected is None:
            expected = r.output
        ok = np.array_equal(r.output, expected)
        spin_rows.append([order, str(r.counters[0].n_spins),
                          "correct" if ok else "WRONG"])
        assert ok
    emit("== ablation: dispatch order vs spin count (dynamic IDs keep "
         "the chain deadlock-free) ==\n"
         + render_table(spin_rows, indent="   "), "ablation_dispatch")
