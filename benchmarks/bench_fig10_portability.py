"""Figure 10 — double-precision pad/unpad across the six platforms.

Emits both operation tables (every catalog device, two CPU compilers),
prints the CPU-vs-sequential comparison from the paper's text, and
times a double-precision DS Padding run.
"""

import numpy as np

from _common import BENCH_MATRIX, ROUNDS, emit
from repro.analysis import cpu_sequential_comparison, render_table
from repro.analysis.figures import fig10_portability
from repro.config import DSConfig
from repro.primitives import ds_pad
from repro.workloads import padding_matrix


def test_fig10_portability(benchmark):
    emit(fig10_portability("pad"), "fig10_pad")
    emit(fig10_portability("unpad"), "fig10_unpad")

    rows = [["operation", "DS (MxPA) GB/s", "sequential GB/s",
             "speedup", "paper speedup"]]
    for r in cpu_sequential_comparison():
        rows.append([r["operation"], f"{r['ds_gbps']:.2f}",
                     f"{r['seq_gbps']:.2f}", f"{r['speedup']:.2f}",
                     f"{r['paper_speedup']:.2f}"])
    emit("== CPU: DS (MxPA) vs sequential baseline ==\n"
         + render_table(rows, indent="   "), "fig10_cpu_sequential")

    m_rows, m_cols = BENCH_MATRIX
    matrix = padding_matrix(m_rows, m_cols, dtype=np.float64)

    def run():
        return ds_pad(matrix, 1, config=DSConfig(seed=5))

    result = benchmark.pedantic(run, **ROUNDS)
    assert result.output.dtype == np.float64
    assert np.array_equal(result.output[:, :m_cols], matrix)
