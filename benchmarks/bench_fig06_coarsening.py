"""Figure 6 — DS Padding coarsening-factor sweep on Maxwell.

Emits the modelled sweep (rise as the sync chain amortizes, plateau,
spill cliff at 40/48), then times the real DS Padding kernel at the
architecture's tuned coarsening versus coarsening 1, asserting the
event-level structure behind the sweep (fewer work-groups, fewer
adjacent synchronizations).
"""

import numpy as np

from _common import BENCH_MATRIX, ROUNDS, emit
from repro.analysis.figures import fig06_coarsening
from repro.config import DSConfig
from repro.primitives import ds_pad
from repro.workloads import padding_matrix


def test_fig06_coarsening(benchmark):
    emit(fig06_coarsening(), "fig06")

    rows, cols = BENCH_MATRIX
    matrix = padding_matrix(rows, cols)

    def run():
        return ds_pad(matrix, 1, config=DSConfig(coarsening=16, seed=2))

    result = benchmark.pedantic(run, **ROUNDS)
    assert np.array_equal(result.output[:, :cols], matrix)

    low_cf = ds_pad(matrix, 1, config=DSConfig(coarsening=1, seed=2))
    # ~16x the work-groups (hence ~16x the adjacent synchronizations)
    # at coarsening 1 — the left edge of Figure 6.
    ratio = low_cf.extras["n_workgroups"] / result.extras["n_workgroups"]
    assert 15.0 <= ratio <= 16.0
