"""Figure 9 — DS Unpadding vs the single-work-group baseline."""

import numpy as np

from _common import BENCH_MATRIX, ROUNDS, emit
from repro.analysis.figures import fig09_unpadding_columns, fig09_unpadding_sizes
from repro.config import DSConfig
from repro.baselines import sung_unpad
from repro.primitives import ds_unpad
from repro.reference import unpad_ref
from repro.workloads import padding_matrix


def test_fig09_unpadding(benchmark):
    for device in ("maxwell", "hawaii"):
        emit(fig09_unpadding_sizes(device), f"fig09ab_{device}")
        emit(fig09_unpadding_columns(device), f"fig09cd_{device}")

    rows, cols = BENCH_MATRIX
    matrix = padding_matrix(rows, cols)

    def run():
        return ds_unpad(matrix, 1, config=DSConfig(seed=4))

    result = benchmark.pedantic(run, **ROUNDS)
    assert np.array_equal(result.output, unpad_ref(matrix, 1))

    # The baseline really is a one-work-group kernel.
    small = padding_matrix(48, 40)
    baseline = sung_unpad(small, 8, wg_size=64)
    assert baseline.counters[0].peak_resident == 1
