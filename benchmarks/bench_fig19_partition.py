"""Figure 19 — partition vs Thrust's four entry points."""

import numpy as np

from _common import BENCH_ELEMENTS, ROUNDS, emit
from repro.analysis.figures import fig19_partition
from repro.config import DSConfig
from repro.baselines.thrust import thrust_stable_partition
from repro.primitives import ds_partition
from repro.reference import partition_ref
from repro.workloads import predicate_fraction_array


def test_fig19_partition(benchmark):
    emit(fig19_partition(), "fig19")

    values, pred = predicate_fraction_array(BENCH_ELEMENTS, 0.5, seed=14)

    def run():
        return ds_partition(values, pred, config=DSConfig(seed=14))

    result = benchmark.pedantic(run, **ROUNDS)
    expected, n_true = partition_ref(values, pred)
    assert result.extras["n_true"] == n_true
    assert np.array_equal(result.output, expected)

    small, spred = predicate_fraction_array(64 * 1024, 0.5, seed=15)
    ds = ds_partition(small, spred, config=DSConfig(seed=15))
    th = thrust_stable_partition(small, spred, wg_size=256, seed=15)
    assert np.array_equal(ds.output, th.output)
    assert ds.num_launches == 2 and th.num_launches == 6
