"""Figure 16 — unique vs Thrust across the unique-fraction sweep."""

import numpy as np

from _common import BENCH_ELEMENTS, ROUNDS, emit
from repro.analysis.figures import fig16_unique
from repro.config import DSConfig
from repro.baselines.thrust import thrust_unique
from repro.primitives import ds_unique
from repro.reference import unique_ref
from repro.workloads import runs_array


def test_fig16_unique(benchmark):
    emit(fig16_unique(), "fig16")

    values = runs_array(BENCH_ELEMENTS, 0.5, seed=11)

    def run():
        return ds_unique(values, config=DSConfig(seed=11))

    result = benchmark.pedantic(run, **ROUNDS)
    assert result.extras["n_kept"] == BENCH_ELEMENTS // 2
    assert np.array_equal(result.output, unique_ref(values))

    small = runs_array(64 * 1024, 0.5, seed=12)
    ds = ds_unique(small, config=DSConfig(seed=12))
    th = thrust_unique(small, wg_size=256, seed=12)
    assert np.array_equal(ds.output, th.output)
    assert th.bytes_moved > 2.0 * ds.bytes_moved
