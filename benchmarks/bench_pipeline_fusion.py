"""Pipeline batching — fused compact→unique vs sequential calls.

Not a paper figure: this benchmark exercises the execution engine the
paper's primitives plug into.  It demonstrates the two engine wins on
both backends:

* **fusion** — a compact→unique chain runs as ONE fused launch riding a
  single flag chain, versus two launches (and a full round trip through
  memory) for the sequential calls;
* **plan caching** — the second identical batch skips planning
  entirely (``pipeline.plan_cache.hits`` >= 1).
"""

import numpy as np

from _common import BENCH_ELEMENTS, ROUNDS, emit
from repro import obs
from repro.config import DSConfig
from repro.pipeline import Pipeline, PlanCache
from repro.primitives import ds_stream_compact, ds_unique
from repro.reference import compact_ref, unique_ref
from repro.workloads import compaction_array


def _chain_input(n: int) -> np.ndarray:
    # Duplicated compaction input: removal hits the zeros, unique then
    # halves the survivors — both fused stages do real work.
    return compaction_array(n // 2, 0.3, seed=30).repeat(2)


def _run_batch(values, cache, backend=None):
    p = Pipeline(config=DSConfig(seed=30, backend=backend),
                 plan_cache=cache, fuse=True)
    f1 = p.compact(values, 0.0)
    f2 = p.unique(f1)
    p.run()
    return p, f2


def test_pipeline_fusion(benchmark):
    values = _chain_input(BENCH_ELEMENTS)
    expected = unique_ref(compact_ref(values, 0.0))

    rows = [["backend", "mode", "launches", "plan cache"]]
    for backend in ("simulated", "vectorized"):
        cache = PlanCache()
        with obs.tracing("spans") as tracer:
            fused, future = _run_batch(values, cache, backend)
            _run_batch(values, cache, backend)  # identical -> cache hit
        hits = sum(c.value for c in tracer.metrics
                   if c.name == "pipeline.plan_cache.hits")
        assert hits >= 1, "second identical batch must hit the plan cache"
        assert cache.hits == hits and cache.misses == 1
        assert np.array_equal(future.output, expected)

        seq = Pipeline(config=DSConfig(seed=30, backend=backend))
        r1 = ds_stream_compact(values, 0.0, seq.stream,
                               config=seq.config)
        ds_unique(r1.output, seq.stream, config=seq.config)
        assert fused.stream.num_launches < seq.stream.num_launches
        rows.append([backend, "fused batch",
                     str(fused.stream.num_launches),
                     f"{cache.hits} hits / {cache.misses} miss"])
        rows.append([backend, "sequential",
                     str(seq.stream.num_launches), "-"])

    emit("\n".join("  ".join(f"{c:<12}" for c in r) for r in rows),
         "pipeline_fusion")

    cache = PlanCache()
    result = benchmark.pedantic(
        lambda: _run_batch(values, cache, "simulated")[1].result(), **ROUNDS)
    assert np.array_equal(result.output, expected)
    assert result.extras["fused_stages"] == ["not_equal_to(0.0)", "unique"]
    # Every timed round after the first planned from cache.
    assert cache.misses == 1 and cache.hits >= 1
