"""Serve layer under closed-loop load — batching and degradation.

Not a paper figure: this benchmark exercises :mod:`repro.serve`, the
micro-batching service layer over the DS primitives.  It asserts the
serving acceptance bar on two runs:

* **healthy** — every request completes with reference-correct bytes,
  multi-request batches actually form (batch-size histogram mass above
  size 1), and the plan cache runs hot (>90% hit rate after
  :meth:`~repro.serve.Server.prime` warmup);
* **fault-injected** — with every fast-path batch raising a transient
  LaunchError, retries exhaust, the per-op circuit breaker opens, and
  all requests are still answered correctly by the sequential-baseline
  degradation path (``serve.degraded > 0``, zero wrong results).

The timed section is the healthy closed-loop run; its report feeds the
emitted summary table (throughput, p50/p99 latency, batch shape).
"""

from _common import ROUNDS, emit, record_serve_row
from repro.serve import ServeConfig, check_report
from repro.serve.loadgen import run_load

CFG = ServeConfig(max_batch_size=8, max_wait_ms=2.0, num_workers=2,
                  breaker_threshold=2, breaker_cooldown_ms=10.0)
LOAD = dict(shape="chain", clients=4, requests_per_client=15, n=512,
            serve_config=CFG, seed=1234)


def test_serve_load(benchmark):
    healthy = run_load(**LOAD)
    check_report(healthy)
    record_serve_row(healthy)

    faulted = run_load(fault="always", **LOAD)
    check_report(faulted, faulted=True)
    assert faulted.wrong == 0 and faulted.completed == faulted.requests
    assert faulted.degraded > 0

    emit("\n".join([
        "serve closed-loop load (shape=chain, 4 clients x 15 requests)",
        f"  healthy: {healthy.throughput_rps:.0f} req/s, "
        f"p50 {healthy.latency_p50_ms:.2f} ms, "
        f"p99 {healthy.latency_p99_ms:.2f} ms, "
        f"mean batch {healthy.batch_size_mean:.2f} "
        f"(max {healthy.batch_size_max:.0f}), "
        f"plan hit rate {healthy.plan_hit_rate * 100:.0f}%",
        f"  faulted: {faulted.throughput_rps:.0f} req/s, "
        f"{faulted.degraded} degraded, {faulted.retries} retries, "
        f"{faulted.faults_injected} faults injected, 0 wrong",
    ]), "serve_load")

    report = benchmark.pedantic(lambda: run_load(**LOAD), **ROUNDS)
    check_report(report)
