"""Figure 12 — select primitives vs Thrust across the fraction sweep."""

import numpy as np

from _common import BENCH_ELEMENTS, ROUNDS, emit
from repro.analysis.figures import fig12_select
from repro.config import DSConfig
from repro.baselines.thrust import thrust_remove_if
from repro.primitives import ds_remove_if
from repro.reference import remove_if_ref
from repro.workloads import predicate_fraction_array


def test_fig12_select(benchmark):
    emit(fig12_select(), "fig12")

    values, pred = predicate_fraction_array(BENCH_ELEMENTS, 0.5, seed=6)

    def run():
        return ds_remove_if(values, pred, config=DSConfig(seed=6))

    result = benchmark.pedantic(run, **ROUNDS)
    assert result.extras["n_removed"] == BENCH_ELEMENTS // 2
    assert np.array_equal(result.output, remove_if_ref(values, pred))

    # Structural contrast at a smaller size: the DS version is a single
    # launch moving ~2.6x fewer bytes than Thrust's pipeline.
    small, spred = predicate_fraction_array(64 * 1024, 0.5, seed=7)
    ds = ds_remove_if(small, spred, config=DSConfig(seed=7))
    th = thrust_remove_if(small, spred, wg_size=256, seed=7)
    assert ds.num_launches == 1 and th.num_launches == 5
    assert th.bytes_moved > 2.0 * ds.bytes_moved
