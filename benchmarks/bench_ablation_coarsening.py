"""Ablation: work-group size x coarsening factor tuning surface.

Figure 6 sweeps coarsening at wg=256; this ablation completes the grid
the paper tuned over, showing the trade-off surface (many small groups
= chain-bound; huge tiles = spill-bound; the plateau in between) and
the per-device sweet spots the defaults in
:mod:`repro.core.coarsening` encode.
"""

import numpy as np

from _common import BENCH_MATRIX, ROUNDS, emit
from repro.analysis import render_table
from repro.config import DSConfig
from repro.core.coarsening import choose_coarsening
from repro.perfmodel import (
    ds_regular_launches,
    gbps,
    pad_useful_bytes,
    price_pipeline,
)
from repro.primitives import ds_pad
from repro.simgpu import get_device, list_devices
from repro.workloads import padding_matrix


def tuning_surface() -> str:
    device = get_device("maxwell")
    rows_n, cols_n = 12000, 11999
    n = rows_n * cols_n
    useful = pad_useful_bytes(rows_n, cols_n, 4)
    coarsenings = (1, 4, 8, 16, 32, 48)
    rows = [["wg size \\ coarsening"] + [str(c) for c in coarsenings]]
    for wg in (64, 128, 256, 512):
        row = [str(wg)]
        for cf in coarsenings:
            launches = ds_regular_launches(n, n, 4, device,
                                           wg_size=wg, coarsening=cf)
            row.append(f"{gbps(useful, price_pipeline(launches, device).total_us):.0f}")
        rows.append(row)
    return ("== ablation: DS Padding GB/s over (wg size, coarsening) on "
            "Maxwell, 12000x11999 ==\n" + render_table(rows, indent="   "))


def defaults_table() -> str:
    rows = [["device", "default cf (f32)", "default cf (f64)",
             "capacity limit (f32)"]]
    for device in list_devices():
        rows.append([device.name,
                     str(choose_coarsening(device, 4)),
                     str(choose_coarsening(device, 8)),
                     str(device.max_coarsening(4))])
    return ("== ablation: per-device coarsening defaults vs capacity ==\n"
            + render_table(rows, indent="   "))


def test_ablation_coarsening(benchmark):
    emit(tuning_surface(), "ablation_tuning_surface")
    emit(defaults_table(), "ablation_coarsening_defaults")

    rows_n, cols_n = BENCH_MATRIX
    matrix = padding_matrix(rows_n, cols_n)

    def run():
        return ds_pad(matrix, 1, config=DSConfig(seed=24))

    result = benchmark.pedantic(run, **ROUNDS)
    assert np.array_equal(result.output[:, :cols_n], matrix)

    # The measured event structure behind the surface: smaller tiles
    # mean proportionally more flag hops.
    few = ds_pad(matrix, 1, config=DSConfig(coarsening=16, seed=24))
    many = ds_pad(matrix, 1, config=DSConfig(coarsening=2, seed=24))
    assert many.counters[0].extras["adjacent_syncs"] > (
        6 * few.counters[0].extras["adjacent_syncs"])
