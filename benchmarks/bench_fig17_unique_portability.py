"""Figure 17 — OpenCL unique across all seven platforms."""

import numpy as np

from _common import BENCH_ELEMENTS, ROUNDS, emit
from repro.analysis.figures import fig17_unique_portability
from repro.primitives import ds_unique
from repro.reference import unique_ref
from repro.simgpu import Stream
from repro.workloads import runs_array


def test_fig17_unique_portability(benchmark):
    emit(fig17_unique_portability(), "fig17")

    values = runs_array(BENCH_ELEMENTS, 0.5, seed=13)

    def run():
        return ds_unique(values, Stream("kepler", seed=13))

    result = benchmark.pedantic(run, **ROUNDS)
    assert np.array_equal(result.output, unique_ref(values))
