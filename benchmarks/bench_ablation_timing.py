"""Ablation: analytic model vs event-driven timing replay.

The reproduction prices workloads with a calibrated analytic model; this
ablation cross-validates it against the independent queueing replay
(:mod:`repro.simgpu.timing`), where the occupancy ramp *emerges* from
latency/bandwidth queueing.  The emitted table shows the two methods'
throughput side by side across residencies for a streaming kernel and
end-to-end for a real DS compaction launch.
"""

import numpy as np

from _common import ROUNDS, emit
from repro.analysis import render_table
from repro.core import not_equal_to
from repro.core.flags import make_flags, make_wg_counter
from repro.core.irregular import irregular_ds_kernel, run_irregular_ds
from repro.perfmodel import gbps, price_pipeline
from repro.simgpu import Buffer, Stream, get_device, launch, replay_timing


def staged_copy_kernel(wg, src, dst, n, cf):
    pos = wg.group_index * cf * wg.size + wg.wi_id
    staged = []
    for _ in range(cf):
        m = pos[pos < n]
        vals = yield from wg.load(src, m)
        staged.append((m, vals))
        pos = pos + wg.size
    for m, vals in staged:
        yield from wg.store(dst, m, vals)


def residency_table() -> str:
    device = get_device("maxwell")
    n = 256 * 1024
    rows = [["resident wgs", "replay GB/s", "analytic ramp GB/s",
             "replay util"]]
    from repro.perfmodel import get_calibration
    peak = device.bandwidth_bytes_per_us() * get_calibration(
        "maxwell").streaming_eff / 1e3
    for limit in (1, 2, 4, 8, 16, 64):
        src = Buffer(np.arange(n, dtype=np.float32), "src",
                     count_transactions=False)
        dst = Buffer(np.zeros(n, dtype=np.float32), "dst",
                     count_transactions=False)
        trace = []
        launch(staged_copy_kernel, grid_size=n // (8 * 256), wg_size=256,
               device=device, args=(src, dst, n, 8),
               resident_limit=limit, trace=trace, seed=1)
        t = replay_timing(trace, device, resident_limit=limit)
        rows.append([str(limit),
                     f"{gbps(2 * n * 4, t.makespan_us):.1f}",
                     f"{device.mlp_efficiency(limit) * peak:.1f}",
                     f"{t.bandwidth_utilization:.0%}"])
    return ("== ablation: emergent saturation (replay) vs calibrated ramp "
            "(analytic), streaming copy ==\n"
            + render_table(rows, indent="   "))


def end_to_end_row() -> str:
    device = get_device("maxwell")
    n = 256 * 1024
    a = (np.arange(n) % 4).astype(np.float32)
    buf = Buffer(a, "a", count_transactions=False)
    stream = Stream(device, seed=3)
    result = run_irregular_ds(buf, not_equal_to(0.0), stream,
                              wg_size=256, coarsening=8)
    buf2 = Buffer(a, "a", count_transactions=False)
    trace = []
    stream2 = Stream(device, seed=3)
    flags = make_flags(result.geometry.n_workgroups)
    stream2.launch(
        irregular_ds_kernel,
        grid_size=result.geometry.n_workgroups, wg_size=256,
        args=(buf2, buf2, flags, make_wg_counter(), not_equal_to(0.0),
              result.geometry, n),
        trace=trace,
    )
    replay_us = replay_timing(trace, device).makespan_us
    analytic_us = price_pipeline([result.counters], device).total_us
    rows = [["method", "time (us)", "ratio"],
            ["analytic model", f"{analytic_us:.1f}", "1.00"],
            ["event-driven replay", f"{replay_us:.1f}",
             f"{replay_us / analytic_us:.2f}"]]
    return ("== ablation: one real DS compaction launch, priced both "
            "ways ==\n" + render_table(rows, indent="   "))


def test_ablation_timing(benchmark):
    emit(residency_table(), "ablation_timing_residency")
    emit(end_to_end_row(), "ablation_timing_end_to_end")

    device = get_device("maxwell")
    n = 256 * 1024
    src = Buffer(np.arange(n, dtype=np.float32), "src",
                 count_transactions=False)
    dst = Buffer(np.zeros(n, dtype=np.float32), "dst",
                 count_transactions=False)

    def traced_run():
        trace = []
        launch(staged_copy_kernel, grid_size=n // (8 * 256), wg_size=256,
               device=device, args=(src, dst, n, 8), trace=trace, seed=1)
        return replay_timing(trace, device)

    result = benchmark.pedantic(traced_run, **ROUNDS)
    assert result.makespan_us > 0
    assert result.bandwidth_utilization > 0.5
