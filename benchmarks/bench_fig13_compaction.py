"""Figure 13 — stream compaction vs Thrust and unstable atomic filters."""

import numpy as np

from _common import BENCH_ELEMENTS, ROUNDS, compare_backends, emit
from repro.analysis.figures import fig13_compaction
from repro.config import DSConfig
from repro.baselines import atomic_compact
from repro.primitives import ds_stream_compact
from repro.reference import compact_ref
from repro.workloads import compaction_array


def test_fig13_compaction(benchmark):
    emit(fig13_compaction(), "fig13")

    values = compaction_array(BENCH_ELEMENTS, 0.5, seed=8)

    def run():
        return ds_stream_compact(values, 0.0, config=DSConfig(seed=8))

    result = benchmark.pedantic(run, **ROUNDS)
    assert result.extras["n_kept"] == BENCH_ELEMENTS - BENCH_ELEMENTS // 2
    assert np.array_equal(result.output, compact_ref(values, 0.0))

    compare_backends(
        "fig13",
        lambda backend: ds_stream_compact(
            values, 0.0, config=DSConfig(seed=8, backend=backend)),
        min_speedup=5.0,
        # The compiled-tier floor (only asserted when Numba genuinely
        # JIT-compiles — never in the no-Numba or pure-Python legs).
        min_compiled_speedup=5.0,
        meta={"elements": BENCH_ELEMENTS, "primitive": "ds_stream_compact"},
    )

    # The unstable methods keep the same multiset with fewer guarantees;
    # their contention ordering is what Figure 13 is about.
    small = compaction_array(64 * 1024, 0.5, seed=9)
    atomics = {m: atomic_compact(small, 0.0, m, wg_size=256,
                                 seed=9).extras["serialized_atomics"]
               for m in ("plain", "shared", "warp")}
    assert atomics["plain"] > atomics["warp"] > atomics["shared"]
