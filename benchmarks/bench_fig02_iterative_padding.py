"""Figure 2 — the iterative baseline's parallelism decay on the K20.

Emits the per-iteration throughput/parallelism table for the paper's
5000x4900 -> square padding, then times the iterative baseline itself
(the thing whose cost motivates the whole paper) on the simulator.
"""

import numpy as np

from _common import BENCH_MATRIX, FULL_SCALE, ROUNDS, emit
from repro.analysis.figures import fig02_iterative_padding
from repro.baselines import sung_pad
from repro.workloads import padding_matrix


def test_fig02_iterative_padding(benchmark):
    emit(fig02_iterative_padding(), "fig02")

    rows, cols = (200, 190) if not FULL_SCALE else (1000, 980)
    pad = rows - cols
    matrix = padding_matrix(rows, cols)

    def run():
        return sung_pad(matrix, pad, wg_size=64, seed=1)

    result = benchmark.pedantic(run, **ROUNDS)
    assert np.array_equal(result.output[:, :cols], matrix)
    assert result.extras["iterations"][0].parallelism > 1
    assert result.extras["iterations"][-1].parallelism == 1
