"""Table I — the paper's headline summary, model vs paper side by side.

Emits the full table (every primitive/device row with reproduced and
published GB/s and speedups), then times the flagship primitive (DS
Stream Compaction) as this harness's reference measurement.
"""

import numpy as np

from _common import BENCH_ELEMENTS, ROUNDS, emit
from repro.analysis import render_table, table1_summary
from repro.config import DSConfig
from repro.primitives import ds_stream_compact
from repro.reference import compact_ref
from repro.workloads import compaction_array


def render_table1() -> str:
    rows = [["primitive", "device", "DS GB/s", "vs", "comp GB/s",
             "speedup", "paper DS", "paper comp", "paper speedup"]]
    for r in table1_summary():
        rows.append([
            r["primitive"], r["device"],
            f"{r['ds_gbps']:.2f}", r["competitor"],
            f"{r['competitor_gbps']:.2f}", f"{r['speedup']:.2f}x",
            f"{r['paper_ds']:.2f}", f"{r['paper_competitor']:.2f}",
            f"{r['paper_speedup']:.2f}x",
        ])
    return ("== Table I: in-place single-precision summary "
            "(model vs paper) ==\n" + render_table(rows, indent="   "))


def test_table1_summary(benchmark):
    emit(render_table1(), "table1")

    values = compaction_array(BENCH_ELEMENTS, 0.5, seed=17)

    def run():
        return ds_stream_compact(values, 0.0, config=DSConfig(
            scan_variant="shuffle", reduction_variant="shuffle", seed=17))

    result = benchmark.pedantic(run, **ROUNDS)
    assert np.array_equal(result.output, compact_ref(values, 0.0))

    # Every reproduced speedup points the same way as the paper's.
    for row in table1_summary():
        assert row["speedup"] > 1.0, row
