"""Figure 8 — DS Padding vs Sung's baseline (Maxwell and Hawaii).

Emits both panels (size sweep with one padded column; padded-column
sweep at 5000 rows) for both devices, then times DS Padding on the
simulator and cross-checks its speedup structure against the baseline's
launch counts.
"""

import numpy as np

from _common import BENCH_MATRIX, ROUNDS, compare_backends, emit
from repro.analysis.figures import fig08_padding_columns, fig08_padding_sizes
from repro.config import DSConfig
from repro.baselines import sung_pad
from repro.primitives import ds_pad
from repro.workloads import padding_matrix


def test_fig08_padding(benchmark):
    for device in ("maxwell", "hawaii"):
        emit(fig08_padding_sizes(device), f"fig08ab_{device}")
        emit(fig08_padding_columns(device), f"fig08cd_{device}")

    rows, cols = BENCH_MATRIX
    matrix = padding_matrix(rows, cols)

    def run():
        return ds_pad(matrix, 1, config=DSConfig(seed=3))

    result = benchmark.pedantic(run, **ROUNDS)
    assert np.array_equal(result.output[:, :cols], matrix)
    assert result.num_launches == 1

    compare_backends(
        "fig08",
        lambda backend: ds_pad(
            matrix, 1, config=DSConfig(seed=3, backend=backend)),
        meta={"matrix": list(BENCH_MATRIX), "primitive": "ds_pad"},
    )

    # Structural contrast: the baseline needs one launch per iteration.
    small = padding_matrix(64, 60)
    baseline = sung_pad(small, 4, wg_size=64)
    assert baseline.num_launches > 1
