"""Figure 14 — OpenCL stream compaction across all seven platforms."""

import numpy as np

from _common import BENCH_ELEMENTS, ROUNDS, emit
from repro.analysis.figures import fig14_compaction_portability
from repro.config import DSConfig
from repro.primitives import ds_stream_compact
from repro.reference import compact_ref
from repro.simgpu import Stream
from repro.workloads import compaction_array


def test_fig14_compaction_portability(benchmark):
    emit(fig14_compaction_portability(), "fig14")

    # Time the OpenCL path with optimized (emulated-shuffle) collectives.
    values = compaction_array(BENCH_ELEMENTS, 0.5, seed=10)

    def run():
        return ds_stream_compact(
            values, 0.0, Stream("hawaii", seed=10),
            config=DSConfig(scan_variant="ballot",
                            reduction_variant="shuffle"))

    result = benchmark.pedantic(run, **ROUNDS)
    assert np.array_equal(result.output, compact_ref(values, 0.0))
    assert result.device.name == "hawaii"
