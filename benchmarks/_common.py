"""Shared plumbing for the benchmark harness.

Each ``bench_*.py`` module reproduces one figure or table of the paper:

1. it regenerates the figure's series/rows through the calibrated
   performance model at the paper's full workload sizes (instant), and
   **emits** them to stdout and to ``benchmarks/results/<id>.txt`` so
   the reproduced numbers are inspectable after the run;
2. it times the *actual simulated execution* of the figure's primary
   primitive with ``pytest-benchmark`` at a simulator-tractable scale
   (1M elements by default; set ``REPRO_BENCH_FULL=1`` for the paper's
   16M / 12000x11999 — roughly 15x slower wall-clock).

The timed number measures this reproduction's simulator, not the
paper's hardware; the emitted tables are the reproduction of the
paper's results.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis import FigureData, render_figure
from repro.obs.benchindex import append_rows, row_from_load_report, \
    rows_from_report
from repro.obs.benchrun import PARITY_FIELDS  # noqa: F401  (re-export)
from repro.obs.benchrun import compare_backends as _compare_backends

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Element count for the timed simulator runs of irregular primitives.
BENCH_ELEMENTS = 16 * 1024 * 1024 if FULL_SCALE else 1024 * 1024

#: Matrix shape (rows, cols) for the timed padding/unpadding runs.
BENCH_MATRIX = (12000, 11999) if FULL_SCALE else (1024, 1023)

#: pytest-benchmark pedantic settings: the simulator is deterministic,
#: so a few rounds suffice.
ROUNDS = dict(rounds=3, iterations=1, warmup_rounds=0)


def compare_backends(bench_id: str, run, *, min_speedup: float = None,
                     min_compiled_speedup: float = None,
                     meta: dict = None) -> dict:
    """Time ``run(backend)`` under all three execution backends and
    persist the report.

    The measurement, parity assertions and report shape live in
    :func:`repro.obs.benchrun.compare_backends` (shared with the
    ``make bench-check`` regression gate); this wrapper writes the
    report to ``benchmarks/results/BENCH_<bench_id>.json`` — the
    committed baseline the gate compares fresh runs against, including
    the full per-launch counter records — and prints the one-line
    summary (per tier, with JIT warmup reported separately from the
    post-warmup kernel wall clock).
    """
    report = _compare_backends(bench_id, run, min_speedup=min_speedup,
                               min_compiled_speedup=min_compiled_speedup,
                               meta=meta)
    t_sim = report["wall_clock_s"]["simulated"]
    t_vec = report["wall_clock_s"]["vectorized"]
    t_comp = report["wall_clock_s"]["compiled"]
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{bench_id}.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    # The trajectory keeps what the snapshot overwrites: one row per
    # tier per run, tagged with the git rev the Makefile injects.
    append_rows(RESULTS_DIR, rows_from_report(report))
    comp_note = ("fallback->vectorized" if report["compiled_fallback"]
                 else f"{report['speedup_compiled']:.1f}x over vectorized")
    print(f"\n[{bench_id}] simulated {t_sim:.2f}s vs vectorized "
          f"{t_vec:.4f}s -> {report['speedup']:.0f}x; compiled "
          f"{t_comp:.4f}s ({comp_note}, warmup "
          f"{report['warmup_s']:.3f}s) ({path})")
    return report


def record_serve_row(load_report, bench_id: str = "serve_load") -> None:
    """Append one serve-layer row to the benchmark trajectory."""
    RESULTS_DIR.mkdir(exist_ok=True)
    append_rows(RESULTS_DIR,
                [row_from_load_report(load_report, bench_id=bench_id)])


def emit(fig_or_text, name: str) -> None:
    """Print a reproduced figure/table and persist it under results/."""
    text = render_figure(fig_or_text) if isinstance(fig_or_text, FigureData) \
        else str(fig_or_text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
