"""Shared plumbing for the benchmark harness.

Each ``bench_*.py`` module reproduces one figure or table of the paper:

1. it regenerates the figure's series/rows through the calibrated
   performance model at the paper's full workload sizes (instant), and
   **emits** them to stdout and to ``benchmarks/results/<id>.txt`` so
   the reproduced numbers are inspectable after the run;
2. it times the *actual simulated execution* of the figure's primary
   primitive with ``pytest-benchmark`` at a simulator-tractable scale
   (1M elements by default; set ``REPRO_BENCH_FULL=1`` for the paper's
   16M / 12000x11999 — roughly 15x slower wall-clock).

The timed number measures this reproduction's simulator, not the
paper's hardware; the emitted tables are the reproduction of the
paper's results.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import FigureData, render_figure

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Element count for the timed simulator runs of irregular primitives.
BENCH_ELEMENTS = 16 * 1024 * 1024 if FULL_SCALE else 1024 * 1024

#: Matrix shape (rows, cols) for the timed padding/unpadding runs.
BENCH_MATRIX = (12000, 11999) if FULL_SCALE else (1024, 1023)

#: pytest-benchmark pedantic settings: the simulator is deterministic,
#: so a few rounds suffice.
ROUNDS = dict(rounds=3, iterations=1, warmup_rounds=0)


#: Counter fields that must match exactly between the two execution
#: backends (the contract in docs/simulator.md); n_spins and steps are
#: schedule-dependent and excluded.
PARITY_FIELDS = (
    "kernel_name", "grid_size", "wg_size",
    "bytes_loaded", "bytes_stored",
    "load_transactions", "store_transactions",
    "n_loads", "n_stores", "n_atomics", "n_barriers",
    "completed_wgs", "peak_resident",
)


def compare_backends(bench_id: str, run, *, min_speedup: float = None,
                     meta: dict = None) -> dict:
    """Time ``run(backend)`` under both execution backends.

    ``run`` must accept ``backend`` (``"simulated"`` or
    ``"vectorized"``) and return a
    :class:`~repro.primitives.common.PrimitiveResult`.  Outputs and the
    deterministic counter fields are asserted identical, wall-clock and
    speedup are written to ``benchmarks/results/BENCH_<bench_id>.json``
    (machine-readable, one file per benchmark), and the report dict is
    returned.  ``min_speedup``, when given, is asserted.
    """
    def best_of_two(backend):
        # First call pays one-time costs (allocator first-touch, lazy
        # imports); the minimum of two runs is the steady-state number.
        t0 = time.perf_counter()
        result = run(backend=backend)
        t1 = time.perf_counter()
        run(backend=backend)
        t2 = time.perf_counter()
        return result, min(t1 - t0, t2 - t1)

    sim, t_sim = best_of_two("simulated")
    vec, t_vec = best_of_two("vectorized")

    assert np.array_equal(np.asarray(sim.output), np.asarray(vec.output)), \
        f"{bench_id}: backend outputs differ"
    assert vec.num_launches == sim.num_launches
    for cs, cv in zip(sim.counters, vec.counters):
        for field in PARITY_FIELDS:
            assert getattr(cv, field) == getattr(cs, field), (
                f"{bench_id}: counter {field} differs between backends "
                f"(simulated={getattr(cs, field)}, "
                f"vectorized={getattr(cv, field)})")

    speedup = t_sim / t_vec if t_vec > 0 else float("inf")
    report = {
        "id": bench_id,
        "wall_clock_s": {"simulated": t_sim, "vectorized": t_vec},
        "speedup": speedup,
        "parity": {"fields": list(PARITY_FIELDS), "ok": True,
                   "launches": sim.num_launches},
    }
    if meta:
        report.update(meta)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{bench_id}.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n[{bench_id}] simulated {t_sim:.2f}s vs vectorized "
          f"{t_vec:.4f}s -> {speedup:.0f}x ({path})")
    if min_speedup is not None:
        assert speedup >= min_speedup, (
            f"{bench_id}: vectorized speedup {speedup:.1f}x below the "
            f"{min_speedup}x floor")
    return report


def emit(fig_or_text, name: str) -> None:
    """Print a reproduced figure/table and persist it under results/."""
    text = render_figure(fig_or_text) if isinstance(fig_or_text, FigureData) \
        else str(fig_or_text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
