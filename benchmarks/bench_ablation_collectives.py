"""Ablation: collective variants and critical-path ordering.

Two design choices DESIGN.md calls out for ablation:

1. **scan variant** — the balanced-tree binary prefix sum (base)
   versus ballot+popc (Fermi+) versus shuffle (Kepler+): the modelled
   gap is the paper's "+6% to +45%" (Figures 14/17/20), and the real
   simulated kernels must agree bit-for-bit across variants;
2. **reduce-then-sync vs scan-first** — Algorithm 2 allows computing
   all ranks before the synchronization; the paper (after StreamScan)
   prefers reducing first so only the cheap reduction sits on the
   inter-group critical path.  Functionally identical; the emitted
   table quantifies the modelled critical-path difference.
"""

import numpy as np

from _common import BENCH_ELEMENTS, ROUNDS, emit
from repro.analysis import render_table
from repro.config import DSConfig
from repro.perfmodel import (
    collective_rounds_per_wg,
    ds_irregular_launches,
    gbps,
    price_pipeline,
    select_useful_bytes,
)
from repro.primitives import ds_stream_compact
from repro.simgpu import get_device
from repro.workloads import compaction_array


def variant_table() -> str:
    n = 16 * 1024 * 1024
    kept = n // 2
    useful = select_useful_bytes(n, kept, 4)
    rows = [["device", "api", "tree GB/s", "ballot GB/s", "shuffle GB/s",
             "best gain"]]
    for dev_name, api in (("fermi", "cuda"), ("kepler", "cuda"),
                          ("maxwell", "cuda"), ("maxwell", "opencl"),
                          ("hawaii", "opencl")):
        device = get_device(dev_name)
        vals = {}
        for variant in ("tree", "ballot", "shuffle"):
            launches = ds_irregular_launches(
                n, kept, 4, device,
                scan_variant=variant,
                reduction_variant="shuffle" if variant == "shuffle" else "tree",
            )
            vals[variant] = gbps(useful, price_pipeline(
                launches, device, api=api).total_us)
        gain = (max(vals.values()) - vals["tree"]) / vals["tree"] * 100
        rows.append([dev_name, api, f"{vals['tree']:.1f}",
                     f"{vals['ballot']:.1f}", f"{vals['shuffle']:.1f}",
                     f"+{gain:.0f}%"])
    return ("== ablation: binary prefix-sum variant (16M, 50%) ==\n"
            + render_table(rows, indent="   "))


def ordering_table() -> str:
    rows = [["wg_size", "coarsening", "rounds (reduce-first)",
             "rounds on critical path (scan-first)"]]
    for wg, cf in ((256, 8), (256, 16), (128, 16)):
        reduce_first = collective_rounds_per_wg(wg, 32, cf, "tree", "tree")
        # scan-first puts every scan round before the flag hop.
        scan_rounds = reduce_first - collective_rounds_per_wg(
            wg, 32, 1, "tree", "tree") + 2 * (wg.bit_length() - 1)
        rows.append([str(wg), str(cf),
                     f"{collective_rounds_per_wg(wg, 32, cf, 'tree', 'tree'):.0f}"
                     " (only the reduction pre-sync)",
                     f"{scan_rounds:.0f} (all scans pre-sync)"])
    return ("== ablation: reduce-then-sync vs scan-first critical path ==\n"
            + render_table(rows, indent="   "))


def test_ablation_collectives(benchmark):
    emit(variant_table(), "ablation_collectives")
    emit(ordering_table(), "ablation_ordering")

    values = compaction_array(BENCH_ELEMENTS, 0.5, seed=20)

    def run_optimized():
        return ds_stream_compact(values, 0.0, config=DSConfig(
            scan_variant="ballot", reduction_variant="shuffle", seed=20))

    result = benchmark.pedantic(run_optimized, **ROUNDS)

    # All variants and both orderings produce identical bits.
    small = compaction_array(128 * 1024, 0.5, seed=21)
    outputs = []
    for variant in ("tree", "ballot", "shuffle"):
        outputs.append(ds_stream_compact(
            small, 0.0,
            config=DSConfig(scan_variant=variant, seed=21)).output)
    assert all(np.array_equal(outputs[0], o) for o in outputs[1:])
    assert result.extras["n_kept"] == BENCH_ELEMENTS - BENCH_ELEMENTS // 2
