"""Figure 20 — OpenCL partition across all seven platforms."""

import numpy as np

from _common import BENCH_ELEMENTS, ROUNDS, emit
from repro.analysis.figures import fig20_partition_portability
from repro.primitives import ds_partition
from repro.reference import partition_ref
from repro.simgpu import Stream
from repro.workloads import predicate_fraction_array


def test_fig20_partition_portability(benchmark):
    emit(fig20_partition_portability(), "fig20")

    values, pred = predicate_fraction_array(BENCH_ELEMENTS, 0.5, seed=16)

    def run():
        return ds_partition(values, pred, Stream("cpu-mxpa", seed=16))

    result = benchmark.pedantic(run, **ROUNDS)
    expected, _ = partition_ref(values, pred)
    assert np.array_equal(result.output, expected)
