#!/usr/bin/env python3
"""Relational-algebra operators on a column store (Section I, use 2).

The paper frames *select* and *unique* as relational operators that are
irregular Data Sliding algorithms.  This script runs a tiny analytics
query against a simulated column of transaction amounts:

    SELECT DISTINCT amount FROM sales WHERE amount >= 100 ORDER BY ...

entirely with in-place DS primitives — filter with DS Remove_if's
complement (Copy_if), then collapse duplicates in the sorted column with
DS Unique — and cross-checks each step against the NumPy oracle.

    python examples/relational_select.py
"""

import numpy as np

import repro
from repro.core import greater_equal
from repro.reference import copy_if_ref, unique_ref


def main() -> None:
    rng = np.random.default_rng(42)

    # A "sales.amount" column: many small transactions, few large ones;
    # sorted, as a column store's dictionary-encoded run would be.
    amounts = np.sort(
        np.round(rng.gamma(shape=2.0, scale=60.0, size=50_000))
    ).astype(np.float32)
    print(f"column: {amounts.size} rows, "
          f"min={amounts.min():.0f}, max={amounts.max():.0f}")

    # --- WHERE amount >= 100 (select) -------------------------------------
    threshold = np.float32(100.0)
    big = repro.copy_if(amounts, greater_equal(threshold))
    assert np.array_equal(big, copy_if_ref(amounts, greater_equal(threshold)))
    print(f"WHERE amount >= {threshold:.0f}: {big.size} rows "
          f"({big.size / amounts.size:.1%} selectivity)")

    # --- DISTINCT over the sorted column (unique) --------------------------
    distinct = repro.unique(big)
    assert np.array_equal(distinct, unique_ref(big))
    print(f"DISTINCT: {distinct.size} unique amounts")

    # --- A partition-style hot/cold split, stable --------------------------
    hot_limit = np.float32(300.0)
    split, n_hot = repro.partition(distinct, greater_equal(hot_limit))
    print(f"partition at {hot_limit:.0f}: {n_hot} hot values first, "
          f"{split.size - n_hot} cold values after (both still sorted: "
          f"{bool((np.diff(split[:n_hot]) > 0).all())} / "
          f"{bool((np.diff(split[n_hot:]) > 0).all())})")

    # --- Everything happened in place on the device buffer -----------------
    result = repro.unique(big, return_result=True)
    counters = result.counters[0]
    print("\nunique launch accounting:", counters.summary())
    print("in place, single kernel, stable — versus Thrust's "
          "multi-kernel out-of-place pipeline (see benchmarks/bench_fig16).")


if __name__ == "__main__":
    main()
