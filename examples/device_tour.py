#!/usr/bin/env python3
"""Performance-portability tour: one primitive, seven platforms.

Runs DS Stream Compaction once per catalog device on the functional
simulator (correctness is device-independent), then prices the paper's
full 16M-element workload on each device with the calibrated model and
prints the Figure 14-style table, including the base-vs-optimized
collectives gap.

    python examples/device_tour.py
"""

import numpy as np

from repro.config import DSConfig
from repro.perfmodel import (
    ds_irregular_launches,
    gbps,
    price_pipeline,
    select_useful_bytes,
)
from repro.primitives import ds_stream_compact
from repro.reference import compact_ref
from repro.simgpu import Stream, list_devices
from repro.workloads import PAPER_ARRAY_ELEMENTS, compaction_array


def main() -> None:
    values = compaction_array(100_000, 0.5, seed=5)
    expected = compact_ref(values, 0.0)

    print("functional check: DS Stream Compaction on every device")
    for device in list_devices():
        wg = min(256, device.max_wg_size)
        result = ds_stream_compact(values, 0.0, Stream(device, seed=6),
                                   config=DSConfig(wg_size=wg))
        ok = np.array_equal(result.output, expected)
        print(f"  {device.name:10s} wg={wg:4d} "
              f"warp={device.warp_size:2d}  correct={ok}")
        assert ok

    n = PAPER_ARRAY_ELEMENTS
    kept = n // 2
    useful = select_useful_bytes(n, kept, 4)
    print(f"\nmodelled throughput, {n // (1024 * 1024)}M f32 at 50% "
          "(OpenCL, the paper's Figure 14):")
    print(f"  {'device':12s} {'base GB/s':>10} {'optimized':>10} "
          f"{'gain':>7} {'% of peak':>10}")
    for device in list_devices():
        wg = min(256, device.max_wg_size)
        base = gbps(useful, price_pipeline(
            ds_irregular_launches(n, kept, 4, device, wg_size=wg),
            device).total_us)
        opt = gbps(useful, price_pipeline(
            ds_irregular_launches(n, kept, 4, device, wg_size=wg,
                                  scan_variant="shuffle",
                                  reduction_variant="shuffle"),
            device).total_us)
        print(f"  {device.name:12s} {base:>10.1f} {opt:>10.1f} "
              f"{(opt - base) / base:>6.0%} "
              f"{opt / device.peak_bandwidth_gbps:>10.0%}")

    print("\nnote the Kepler-below-Fermi OpenCL anomaly the paper "
          "discusses (no L1 for global loads, no OpenCL shuffle).")


if __name__ == "__main__":
    main()
