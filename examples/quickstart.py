#!/usr/bin/env python3
"""Quickstart: the Data Sliding primitives in five minutes.

Runs every primitive of the paper once on the simulated Maxwell GPU,
shows the in-place results, and prints the launch accounting that the
performance model consumes.

    python examples/quickstart.py
"""

import numpy as np

import repro
from repro.core import is_even

rng = np.random.default_rng(7)


def main() -> None:
    print("=" * 64)
    print("In-Place Data Sliding Algorithms — quickstart")
    print("=" * 64)

    # --- Regular DS: padding and unpadding -----------------------------
    matrix = rng.integers(0, 100, (4, 6)).astype(np.float32)
    print("\n1. DS Padding (regular DS): add 2 columns, in place")
    print("input:\n", matrix)
    padded = repro.pad(matrix, 2, fill=0)
    print("padded:\n", padded)

    restored = repro.unpad(padded, 2)
    print("\n2. DS Unpadding restores it:")
    print("roundtrip equal:", np.array_equal(restored, matrix))

    # --- Irregular DS: select, compaction, unique, partition ------------
    values = rng.integers(0, 10, 20).astype(np.float32)
    print("\n3. DS Remove_if (irregular DS): drop even values, in place")
    print("input:  ", values.astype(int))
    kept = repro.remove_if(values, is_even())
    print("output: ", kept.astype(int), "(stable: relative order kept)")

    sparse = values.copy()
    sparse[rng.choice(20, 8, replace=False)] = 0.0
    print("\n4. DS Stream Compaction: squeeze out the zeros")
    print("input:  ", sparse.astype(int))
    print("output: ", repro.compact(sparse, 0.0).astype(int))

    runs = np.asarray([1, 1, 2, 3, 3, 3, 1, 5, 5], dtype=np.float32)
    print("\n5. DS Unique: first of each run (the paper's Figure 15)")
    print("input:  ", runs.astype(int))
    print("output: ", repro.unique(runs).astype(int))

    print("\n6. DS Partition: evens first, odds after, both stable")
    print("input:  ", values.astype(int))
    out, n_true = repro.partition(values, is_even())
    print(f"output:  {out.astype(int)}  (split at {n_true})")

    # --- What the simulator measured ------------------------------------
    print("\n7. Launch accounting (feeds the performance model):")
    result = repro.compact(sparse, 0.0, return_result=True)
    for counters in result.counters:
        print("  ", counters.summary())

    print("\n8. The vectorized backend: same outputs, same counters,")
    print("   a fraction of the wall clock (backend='vectorized'):")
    slow = repro.compact(sparse, 0.0, backend="simulated", return_result=True)
    fast = repro.compact(sparse, 0.0, backend="vectorized", return_result=True)
    print("   identical results: ", np.array_equal(slow.output, fast.output))
    print("   identical traffic: ",
          slow.counters[0].bytes_moved == fast.counters[0].bytes_moved
          and slow.counters[0].load_transactions
          == fast.counters[0].load_transactions)

    print("\n9. The same semantics at NumPy speed (backend='numpy'):")
    ref = repro.compact(sparse, 0.0, backend="numpy")
    print("   identical results:", np.array_equal(ref, repro.compact(sparse, 0.0)))

    # --- Tracing: watch the Figure 7 wait chain -------------------------
    print("\n10. Span tracing (repro.obs): where each work-group's time went")
    from repro import obs

    from repro.perfmodel import profile_result

    big = rng.integers(0, 10, 65536).astype(np.float32)
    with obs.tracing("spans") as tracer:
        traced = repro.compact(big, 0.0, return_result=True)
    for track, span, depth in tracer.iter_spans():
        if track == "wg:1" and depth == 0:
            print(f"    wg:1 {span.name:<10}{span.duration_us:9.1f} us")
    waits = tracer.metrics.instruments("sched.spin_wait_us")
    print(f"    spin-wait histograms for {len(waits)} work-groups "
          f"(the adjacent-sync chain)")
    print("    export a full timeline:  python -m repro trace fig13"
          " -o trace.json")

    print("\n11. ...and what that run would cost on the paper's Maxwell"
          " (profile_result):")
    report = profile_result(traced, device="maxwell")
    print(f"    {report['time_us']:.1f} us modelled, "
          f"{report['gbps']:.1f} GB/s effective, "
          f"{report['launches']:.0f} launch(es)")


if __name__ == "__main__":
    main()
