#!/usr/bin/env python3
"""Build your own primitive on the substrate (docs/simulator.md, live).

Two demonstrations of extending the library:

1. the SAXPY kernel from the simulator guide, run as-is;
2. a **new Data Sliding primitive built from the paper's parts**: an
   in-place stable *rotate-left* (move the first k elements to the
   tail).  A rotation is not a unidirectional slide, so it composes two
   chained slides: stage the head into a scratch buffer, slide the tail
   left with the regular-DS machinery (adjacent sync, dynamic IDs), and
   store the staged head at the end.

    python examples/custom_kernel.py
"""

import numpy as np

from repro.core import run_regular_ds
from repro.perfmodel import price_pipeline
from repro.primitives.partition import copy_kernel
from repro.simgpu import Buffer, Stream, get_device, replay_timing


def saxpy_kernel(wg, x, y, alpha, n):
    pos = wg.group_index * wg.size + wg.wi_id
    active = pos[pos < n]
    xv = yield from wg.load(x, active)
    yv = yield from wg.load(y, active)
    yield from wg.store(y, active, alpha * xv + yv)


def demo_saxpy() -> None:
    print("1. SAXPY on the simulator (the guide's example)")
    n = 100_000
    rng = np.random.default_rng(0)
    x_host = rng.random(n).astype(np.float32)
    y_host = rng.random(n).astype(np.float32)
    x, y = Buffer(x_host, "x"), Buffer(y_host, "y")
    stream = Stream("maxwell", seed=1)
    trace = []
    counters = stream.launch(saxpy_kernel, grid_size=(n + 255) // 256,
                             wg_size=256, args=(x, y, 2.0, n), trace=trace)
    assert np.allclose(y.data, 2.0 * x_host + y_host)
    print("  ", counters.summary())
    t = replay_timing(trace, stream.device)
    print(f"   event-driven replay: {t.makespan_us:.1f} us, "
          f"{t.bandwidth_utilization:.0%} bandwidth utilization")


def rotate_left(values: np.ndarray, k: int, stream: Stream) -> np.ndarray:
    """In-place stable rotate-left by k, built from DS building blocks."""
    n = values.size
    k = k % n
    buf = Buffer(values, "rot")
    if k == 0:
        return buf.data.copy()
    head = Buffer(np.zeros(k, dtype=values.dtype), "rot_head")
    # Stage the head out (simple copy kernel: k elements).
    stream.launch(copy_kernel, grid_size=max(1, (k + 1023) // 1024),
                  wg_size=256, args=(buf, head, k, 0, 0, 4),
                  kernel_name="rotate_stage_head")
    # Slide the tail left by k with the regular DS kernel — in place,
    # chained head-first exactly like unpadding.  The remap's input
    # range is the whole buffer; the first k positions (the staged
    # head) are dropped and everything else shifts back by k.
    from repro.core.offsets import RegularRemap

    tail_view = Buffer(buf.data, "rot_tail", copy=False)
    slide = RegularRemap(
        fn=lambda p: (p >= k, p - k), direction="shrink",
        total_in=n, total_out=n - k, name=f"rotate_tail({n}, {k})")
    run_regular_ds(tail_view, slide, stream, wg_size=256)
    # Append the staged head.
    stream.launch(copy_kernel, grid_size=max(1, (k + 1023) // 1024),
                  wg_size=256, args=(head, buf, k, 0, n - k, 4),
                  kernel_name="rotate_restore_head")
    return buf.data.copy()


def demo_rotate() -> None:
    print("\n2. A new primitive: in-place stable rotate-left")
    rng = np.random.default_rng(1)
    a = rng.integers(0, 1000, 50_000).astype(np.float32)
    stream = Stream(get_device("maxwell"), seed=2)
    out = rotate_left(a.copy(), 12_345, stream)
    expected = np.concatenate([a[12_345:], a[:12_345]])
    print(f"   correct: {np.array_equal(out, expected)}; "
          f"{stream.num_launches} launches")
    cost = price_pipeline(stream.records, stream.device)
    print(f"   modelled time on Maxwell: {cost.total_us:.1f} us")


if __name__ == "__main__":
    demo_saxpy()
    demo_rotate()
