#!/usr/bin/env python3
"""Why the paper's two mechanisms matter — a live demonstration.

The paper's correctness story rests on two constructs, and this script
breaks each one on purpose so you can watch the failure modes the
simulator was built to expose:

1. **adjacent work-group synchronization** (Figures 3/7) — remove it,
   and a work-group stores into memory another group has not loaded
   yet.  With the read-before-overwrite tracker armed the simulator
   raises ``DataRaceError``; without it you get silently corrupted
   output.
2. **dynamic work-group ID allocation** (Figure 4) — replace it with
   the launch-grid index, dispatch the grid in descending order onto
   two hardware slots, and the resident groups spin forever on
   predecessors that can never be scheduled: ``DeadlockError``.

    python examples/why_sync_matters.py
"""

import numpy as np

from repro.core import is_even, pad_remap, run_regular_ds
from repro.core.dynamic_id import dynamic_wg_id, static_wg_id
from repro.core.flags import make_flags, make_wg_counter
from repro.errors import DataRaceError, DeadlockError
from repro.simgpu import Buffer, Stream, get_device, launch
from repro.workloads import padding_matrix


def demo_data_race() -> None:
    print("1. Removing adjacent synchronization from DS Padding")
    print("   (40x64 matrix, +8 columns, race tracker armed, 6 schedules)")
    rows, cols, pad = 40, 64, 8
    matrix = padding_matrix(rows, cols)
    outcomes = {"race detected": 0, "corrupted": 0, "lucky": 0}
    for seed in range(6):
        buf = Buffer(np.zeros(rows * (cols + pad), dtype=np.float32), "m")
        buf.data[: rows * cols] = matrix.reshape(-1)
        stream = Stream(get_device("maxwell"), seed=seed, resident_limit=8)
        try:
            run_regular_ds(buf, pad_remap(rows, cols, pad), stream,
                           wg_size=32, coarsening=2,
                           sync=False, race_tracking=True)
        except DataRaceError as exc:
            outcomes["race detected"] += 1
            if outcomes["race detected"] == 1:
                print(f"   seed {seed}: DataRaceError — {exc}")
            continue
        got = buf.data.reshape(rows, cols + pad)[:, :cols]
        if np.array_equal(got, matrix):
            outcomes["lucky"] += 1
        else:
            outcomes["corrupted"] += 1
    print(f"   outcomes over 6 schedules: {outcomes}")
    assert outcomes["race detected"] + outcomes["corrupted"] > 0


def demo_deadlock() -> None:
    print("\n2. Replacing dynamic work-group IDs with the grid index")
    print("   (8 chained groups, descending dispatch, 2 hardware slots)")

    def chained(wg, counter, flags, allocator):
        wg_id = yield from allocator(wg, counter)
        yield from wg.spin_until(flags, wg_id, lambda v: v != 0)
        yield from wg.atomic_or(flags, wg_id + 1, 1)

    device = get_device("maxwell")
    for name, allocator in (("static IDs", static_wg_id),
                            ("dynamic IDs", dynamic_wg_id)):
        counter, flags = make_wg_counter(), make_flags(8)
        try:
            c = launch(chained, grid_size=8, wg_size=32, device=device,
                       args=(counter, flags, allocator),
                       order="descending", resident_limit=2)
            print(f"   {name}: completed ({c.completed_wgs} groups, "
                  f"{c.n_spins} spins)")
        except DeadlockError as exc:
            print(f"   {name}: DeadlockError — {exc}")


def demo_correct_version() -> None:
    print("\n3. The paper's construction, same adversarial conditions")
    rng = np.random.default_rng(0)
    a = rng.integers(0, 10, 4096).astype(np.float32)
    stream = Stream(get_device("maxwell"), seed=1, order="descending",
                    resident_limit=4)
    import repro
    out = repro.remove_if(a, is_even(), stream=stream,
                          config=repro.DSConfig(wg_size=32))
    expected = repro.remove_if(a, is_even(), backend="numpy")
    print(f"   descending dispatch, 4 slots, sync on: "
          f"correct = {np.array_equal(out, expected)}")


if __name__ == "__main__":
    demo_data_race()
    demo_deadlock()
    demo_correct_version()
