#!/usr/bin/env python3
"""Stream compaction in a ray-tracing-style loop (Section I, use 3).

Iterative GPU workloads — ray tracing, BVH traversal, sparse solvers —
repeatedly *compact* their active sets: rays that missed are removed so
the next bounce only processes live rays.  On memory-limited devices the
compaction must be in place.  This script simulates three bounces of a
ray pool, compacting with DS Stream Compaction after each bounce, and
shows the memory-footprint advantage over an out-of-place approach.

    python examples/ray_compaction.py
"""

import numpy as np

import repro
from repro.primitives import ds_stream_compact
from repro.simgpu import Stream, get_device

DEAD = 0.0  # sentinel written into the ray-id slot when a ray dies


def trace_bounce(rays: np.ndarray, survival: float, rng) -> np.ndarray:
    """Pretend to trace: each live ray survives with probability
    ``survival``; dead rays get the sentinel."""
    out = rays.copy()
    dead = rng.random(rays.size) >= survival
    out[dead] = DEAD
    return out


def main() -> None:
    rng = np.random.default_rng(3)
    n_rays = 200_000
    device = get_device("maxwell")
    stream = Stream(device, seed=4)

    # Ray ids 1..n (0 is the dead sentinel).
    rays = np.arange(1, n_rays + 1, dtype=np.float32)
    print(f"ray pool: {n_rays} rays on simulated {device.marketing_name}")
    print(f"{'bounce':>6} {'live in':>9} {'live out':>9} {'kept':>6} "
          f"{'MB moved':>9} {'launches':>9}")

    peak_in_place = rays.nbytes
    total_out_of_place = rays.nbytes
    for bounce, survival in enumerate((0.55, 0.40, 0.25), start=1):
        traced = trace_bounce(rays, survival, rng)
        before = stream.num_launches
        result = ds_stream_compact(traced, DEAD, stream)
        rays = result.output
        moved = sum(c.bytes_moved for c in result.counters) / 1e6
        print(f"{bounce:>6} {traced.size:>9} {rays.size:>9} "
              f"{rays.size / traced.size:>6.0%} {moved:>9.2f} "
              f"{stream.num_launches - before:>9}")
        # An out-of-place compaction would need a second ray pool each
        # bounce; in place, the footprint never exceeds the original.
        total_out_of_place += traced.nbytes

    print(f"\npeak device memory, in-place DS: "
          f"{peak_in_place / 1e6:.1f} MB (one pool, ever)")
    print(f"peak with out-of-place double-buffering: "
          f"{2 * peak_in_place / 1e6:.1f} MB "
          f"(plus {total_out_of_place / 1e6:.1f} MB allocated over time)")

    # Rays keep their relative order (stability): ids stay sorted.
    assert (np.diff(rays) > 0).all()
    print("\nsurvivor ids still strictly increasing — compaction is stable")

    # Sanity: the same result as NumPy semantics.
    check = repro.compact(trace_bounce(
        np.arange(1, 1001, dtype=np.float32), 0.5,
        np.random.default_rng(9)), DEAD, backend="numpy")
    print(f"oracle cross-check on a small pool: {check.size} survivors")


if __name__ == "__main__":
    main()
