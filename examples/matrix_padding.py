#!/usr/bin/env python3
"""Matrix padding for alignment — the paper's motivating workload.

A near-square matrix is padded to square **in place** so that a simple
square-transpose algorithm applies (Section I's transposition use case),
then the transpose of the padded region is verified and the padding
removed again.  Along the way the script contrasts the single-kernel DS
Padding against Sung's iterative baseline on the same simulated device,
reproducing the core performance argument of the paper at small scale.

    python examples/matrix_padding.py
"""

import numpy as np

from repro.baselines import sung_pad
from repro.perfmodel import gbps, pad_useful_bytes, price_pipeline
from repro.primitives import ds_pad, ds_unpad
from repro.simgpu import Stream, get_device
from repro.workloads import padding_matrix


def main() -> None:
    rows, cols = 512, 500  # near-square, like the paper's 5K x 4.9K
    pad = rows - cols
    device = get_device("maxwell")
    matrix = padding_matrix(rows, cols)

    print(f"Padding a {rows}x{cols} matrix to square (+{pad} columns) "
          f"on simulated {device.marketing_name}\n")

    # --- One DS kernel ---------------------------------------------------
    ds_stream = Stream(device, seed=1)
    ds_result = ds_pad(matrix, pad, ds_stream)
    square = ds_result.output
    assert square.shape == (rows, rows)

    # --- The iterative baseline ------------------------------------------
    sung_stream = Stream(device, seed=2)
    sung_result = sung_pad(matrix, pad, sung_stream, wg_size=256)
    assert np.array_equal(sung_result.output[:, :cols], square[:, :cols])

    useful = pad_useful_bytes(rows, cols, 4)
    ds_t = price_pipeline(ds_result.counters, device).total_us
    sung_t = price_pipeline(sung_result.counters, device).total_us
    print(f"DS Padding:     {ds_result.num_launches:4d} launch(es), "
          f"modelled {gbps(useful, ds_t):7.2f} GB/s")
    print(f"Sung baseline:  {sung_result.num_launches:4d} launch(es), "
          f"modelled {gbps(useful, sung_t):7.2f} GB/s")
    print(f"speedup: {sung_t / ds_t:.2f}x "
          "(the gap grows with matrix size and shrinks with pad width)\n")

    parallelism = [it.parallelism for it in sung_result.extras["iterations"]]
    print("baseline parallelism per iteration (Figure 2's decay):")
    print("  start:", parallelism[:8], "... tail:", parallelism[-8:], "\n")

    # --- Use the square shape: transpose in place, then unpad -------------
    square_t = square.T.copy()  # square transpose is now trivial
    # The transpose of the valid region lives in the first `cols` rows.
    valid_t = square_t[:cols, :rows]
    assert np.array_equal(valid_t, matrix.T)
    print("square transpose of the padded matrix verified against "
          "matrix.T")

    restored = ds_unpad(square, pad, Stream(device, seed=3)).output
    assert np.array_equal(restored, matrix)
    print("DS Unpadding restored the original matrix in place")


if __name__ == "__main__":
    main()
