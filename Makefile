# Convenience targets for the Data Sliding reproduction.

PYTHON ?= python

.PHONY: install test test-all bench bench-smoke bench-full bench-check \
        pipeline-smoke trace-smoke serve-smoke analyze-smoke tune-smoke \
        stream-smoke fleet-smoke fleet-trace-overhead report figures \
        examples clean

# Stamped into every BENCH_INDEX.json row so the trajectory report can
# attribute each run to a commit.
GIT_REV := $(shell git rev-parse --short HEAD 2>/dev/null)

install:
	pip install -e . || \
	  echo "$(CURDIR)/src" > $$($(PYTHON) -c 'import site; print(site.getsitepackages()[0])')/repro-dev.pth

test:            ## fast suite (excludes @slow)
	$(PYTHON) -m pytest tests/ -m "not slow"

test-all:        ## everything, including the 1M-element slow tests
	$(PYTHON) -m pytest tests/

bench:           ## regenerate every figure/table + time the kernels (1M scale)
	REPRO_GIT_REV=$(GIT_REV) $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:     ## one regular + one irregular benchmark, all three backend tiers (per-tier rows in BENCH_*.json)
	REPRO_GIT_REV=$(GIT_REV) $(PYTHON) -m pytest \
	  benchmarks/bench_fig08_padding.py \
	  benchmarks/bench_fig13_compaction.py --benchmark-only

bench-full:      ## same, at the paper's 16M / 12000x11999 sizes
	REPRO_BENCH_FULL=1 REPRO_GIT_REV=$(GIT_REV) $(PYTHON) -m pytest \
	  benchmarks/ --benchmark-only

bench-check:     ## compare fresh runs against committed BENCH_*.json baselines
	$(PYTHON) -m repro.obs.regress benchmarks/results

pipeline-smoke:  ## fused launch count + plan-cache hit, both backends
	$(PYTHON) -m pytest benchmarks/bench_pipeline_fusion.py \
	  --benchmark-only
	$(PYTHON) -W error::DeprecationWarning -m pytest \
	  tests/pipeline tests/primitives -q

serve-smoke:     ## serve layer: healthy + fault-injected loadgen, acceptance-checked
	$(PYTHON) -m repro serve --shape chain --clients 4 --requests 20 --check
	$(PYTHON) -m repro serve --shape compact --clients 4 --requests 10 \
	  --fault always --check
	REPRO_GIT_REV=$(GIT_REV) $(PYTHON) -m pytest \
	  benchmarks/bench_serve_load.py --benchmark-only
	$(PYTHON) -m pytest tests/serve -q

stream-smoke:    ## out-of-core streaming: memmap 8x device capacity, compact->unique, sequential + pool, byte-checked
	REPRO_GIT_REV=$(GIT_REV) $(PYTHON) -m repro stream --check \
	  --trace /tmp/repro_stream_smoke.json --bench-dir benchmarks/results
	$(PYTHON) -m repro analyze /tmp/repro_stream_smoke.json > /dev/null
	$(PYTHON) -m pytest tests/stream -q

fleet-smoke:     ## multi-process fleet: 3 workers, fault-injected loadgen, acceptance pass (incl. merged trace + fleet bundle) + CLI replay + analyze --check on the merged trace
	rm -rf /tmp/repro_fleet_smoke_incidents
	timeout 600 env REPRO_GIT_REV=$(GIT_REV) $(PYTHON) -m repro fleet \
	  --check --workers 3 --fault 0.5 \
	  --incident-dir /tmp/repro_fleet_smoke_incidents \
	  --trace-out /tmp/repro_fleet_smoke_trace.json \
	  --stats-out /tmp/repro_fleet_smoke_stats.json \
	  --bench-dir benchmarks/results
	$(PYTHON) -m repro analyze /tmp/repro_fleet_smoke_stats.json > /dev/null
	timeout 120 $(PYTHON) -m repro analyze \
	  /tmp/repro_fleet_smoke_trace.json --check > /dev/null
	timeout 120 $(PYTHON) -m repro replay \
	  $$(ls -d /tmp/repro_fleet_smoke_incidents/w*/incident-* | head -1) \
	  --check
	timeout 120 $(PYTHON) -m repro replay \
	  $$(ls -d /tmp/repro_fleet_smoke_incidents/incident-* | head -1) \
	  --plan > /dev/null
	timeout 600 $(PYTHON) -m pytest tests/fleet -q

fleet-trace-overhead: ## recorder-on guard: fleet throughput with tracing >= 0.9x tracing-off
	timeout 600 $(PYTHON) -m repro fleet --trace-overhead-check \
	  --workers 2 --clients 4 --requests 8

analyze-smoke:   ## trace fig13 -> analyzer decomposition check (sum==wall ±1%, spin<=wall) + flight-recorder overhead bound
	$(PYTHON) -m repro trace fig13 -o /tmp/repro_analyze_smoke.json --check
	$(PYTHON) -m repro analyze /tmp/repro_analyze_smoke.json --check
	$(PYTHON) -m repro serve --shape compact --clients 4 --requests 8 \
	  --n 256 --flight-overhead-check

trace-smoke:     ## export + validate a Chrome trace of one experiment
	$(PYTHON) -m repro trace fig13 -o /tmp/repro_trace_smoke.json --check
	$(PYTHON) -m repro trace fig08 -o /tmp/repro_trace_smoke8.json \
	  --elements 8192 --check

tune-smoke:      ## bounded autotuner sweeps, acceptance-checked, then serve from the DB
	REPRO_BACKEND=vectorized $(PYTHON) -m repro tune --fig fig13 \
	  --n 4096 --budget 20 --db benchmarks/results/TUNING_DB.json --check
	REPRO_BACKEND=vectorized $(PYTHON) -m repro tune --shape compact \
	  --n 1024 --budget 20 --db benchmarks/results/TUNING_DB.json \
	  --set-default --check
	REPRO_BACKEND=vectorized $(PYTHON) -m repro serve --shape compact \
	  --n 1024 --clients 2 --requests 8 \
	  --tuning-db benchmarks/results/TUNING_DB.json --check
	$(PYTHON) -m pytest tests/tune tests/analysis tests/obs/test_benchindex.py -q

report:          ## render the experiment-registry report from persisted artifacts
	$(PYTHON) -m repro report -o benchmarks/results/REPORT.md
	@echo "wrote benchmarks/results/REPORT.md"

figures:         ## print every reproduced figure and Table I
	$(PYTHON) -m repro all

examples:        ## run all example scripts
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
