"""Dynamic work-group ID allocation (Figure 4) and its necessity."""

import numpy as np
import pytest

from repro.core.dynamic_id import dynamic_wg_id, static_wg_id
from repro.core.flags import make_flags, make_wg_counter
from repro.errors import DeadlockError
from repro.simgpu import Buffer, get_device, launch


def chained_kernel(wg, counter, flags, allocator):
    """Claim an ID, wait for the predecessor, set our flag."""
    wg_id = yield from allocator(wg, counter)
    yield from wg.spin_until(flags, wg_id, lambda v: v != 0)
    yield from wg.atomic_or(flags, wg_id + 1, 1)


class TestDynamicAllocation:
    def test_ids_are_a_permutation_in_scheduling_order(self, maxwell):
        counter = make_wg_counter()
        claimed = []

        def kernel(wg, counter):
            wg_id = yield from dynamic_wg_id(wg, counter)
            claimed.append(wg_id)

        launch(kernel, grid_size=16, wg_size=32, device=maxwell,
               args=(counter,), order="random", seed=11)
        # Every group claims a distinct ID and the cursor ends at the
        # grid size (the log order is post-barrier, so not sorted).
        assert sorted(claimed) == list(range(16))
        assert counter.data[0] == 16

    def test_dynamic_ids_survive_adversarial_dispatch(self, maxwell):
        """The headline property: descending dispatch + 2 slots deadlocks
        a static chain (see below) but never a dynamic one."""
        counter = make_wg_counter()
        flags = make_flags(8)
        c = launch(chained_kernel, grid_size=8, wg_size=32, device=maxwell,
                   args=(counter, flags, dynamic_wg_id),
                   order="descending", resident_limit=2)
        assert c.completed_wgs == 8

    def test_static_ids_deadlock_under_adversarial_dispatch(self, maxwell):
        counter = make_wg_counter()
        flags = make_flags(8)
        with pytest.raises(DeadlockError):
            launch(chained_kernel, grid_size=8, wg_size=32, device=maxwell,
                   args=(counter, flags, static_wg_id),
                   order="descending", resident_limit=2)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_dynamic_ids_never_deadlock_random_schedules(self, maxwell, seed):
        counter = make_wg_counter()
        flags = make_flags(12)
        c = launch(chained_kernel, grid_size=12, wg_size=32, device=maxwell,
                   args=(counter, flags, dynamic_wg_id),
                   order="random", seed=seed, resident_limit=3)
        assert c.completed_wgs == 12

    def test_static_id_returns_group_index(self, maxwell):
        got = {}

        def kernel(wg, counter):
            got[wg.group_index] = yield from static_wg_id(wg, counter)

        counter = make_wg_counter()
        launch(kernel, grid_size=4, wg_size=32, device=maxwell,
               args=(counter,))
        assert got == {0: 0, 1: 1, 2: 2, 3: 3}
        assert counter.data[0] == 0  # static allocator ignores the cursor
