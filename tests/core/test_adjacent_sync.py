"""Adjacent work-group synchronization (Figures 3 and 7)."""

import numpy as np
import pytest

from repro.core.adjacent_sync import adjacent_sync_irregular, adjacent_sync_regular
from repro.core.dynamic_id import dynamic_wg_id
from repro.core.flags import decode_count, make_flags, make_wg_counter
from repro.simgpu import Buffer, get_device, launch


class TestRegularSync:
    def test_chain_orders_loads_before_downstream_stores(self, maxwell):
        """When a group passes the sync, every earlier-chained group has
        completed its pre-sync phase — the inductive chain invariant."""
        phase_log = []

        def kernel(wg, counter, flags):
            wg_id = yield from dynamic_wg_id(wg, counter)
            phase_log.append(("pre", wg_id))
            yield from adjacent_sync_regular(wg, flags, wg_id)
            phase_log.append(("post", wg_id))

        counter, flags = make_wg_counter(), make_flags(12)
        launch(kernel, grid_size=12, wg_size=32, device=maxwell,
               args=(counter, flags), order="random", seed=17,
               resident_limit=4)
        # For every group g, all "pre" entries of ids <= g appear before
        # g's "post" entry.
        pre_seen = set()
        for phase, wg_id in phase_log:
            if phase == "pre":
                pre_seen.add(wg_id)
            else:
                assert set(range(wg_id + 1)) <= pre_seen, (
                    f"group {wg_id} stored before an earlier group loaded")

    def test_all_flags_set_at_completion(self, maxwell):
        def kernel(wg, counter, flags):
            wg_id = yield from dynamic_wg_id(wg, counter)
            yield from adjacent_sync_regular(wg, flags, wg_id)

        counter, flags = make_wg_counter(), make_flags(6)
        launch(kernel, grid_size=6, wg_size=32, device=maxwell,
               args=(counter, flags))
        assert (flags.data != 0).all()


class TestIrregularSync:
    def test_offsets_accumulate_along_the_chain(self, maxwell):
        """Each group contributes its count; group i receives the sum of
        counts of groups 0..i-1 (Figure 7's offset passing)."""
        counts = [3, 0, 5, 2, 0, 7, 1, 4]
        received = {}

        def kernel(wg, counter, flags):
            wg_id = yield from dynamic_wg_id(wg, counter)
            prev = yield from adjacent_sync_irregular(
                wg, flags, wg_id, counts[wg_id])
            received[wg_id] = prev

        counter, flags = make_wg_counter(), make_flags(len(counts))
        launch(kernel, grid_size=len(counts), wg_size=32, device=maxwell,
               args=(counter, flags), order="random", seed=23,
               resident_limit=3)
        expected = np.concatenate(([0], np.cumsum(counts)[:-1]))
        assert received == {i: int(expected[i]) for i in range(len(counts))}
        # The final flag carries the grand total (how the host reads the
        # compacted size back).
        assert decode_count(int(flags.data[len(counts)])) == sum(counts)

    def test_zero_counts_do_not_stall_the_chain(self, maxwell):
        """The sentinel encoding must distinguish 'not ready' from a
        cumulative count of zero."""
        def kernel(wg, counter, flags):
            wg_id = yield from dynamic_wg_id(wg, counter)
            yield from adjacent_sync_irregular(wg, flags, wg_id, 0)

        counter, flags = make_wg_counter(), make_flags(10)
        c = launch(kernel, grid_size=10, wg_size=32, device=maxwell,
                   args=(counter, flags), order="descending",
                   resident_limit=4)
        assert c.completed_wgs == 10
        assert decode_count(int(flags.data[10])) == 0

    def test_initial_count_offsets_whole_chain(self, maxwell):
        def kernel(wg, counter, flags):
            wg_id = yield from dynamic_wg_id(wg, counter)
            prev = yield from adjacent_sync_irregular(wg, flags, wg_id, 2)
            results[wg_id] = prev

        results = {}
        counter = make_wg_counter()
        flags = make_flags(4, initial_count=100)
        launch(kernel, grid_size=4, wg_size=32, device=maxwell,
               args=(counter, flags))
        assert results == {0: 100, 1: 102, 2: 104, 3: 106}
