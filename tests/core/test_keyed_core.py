"""The keyed irregular DS kernel (core layer)."""

import numpy as np
import pytest

from repro.core import less_than
from repro.core.keyed import run_keyed_irregular_ds
from repro.errors import LaunchError
from repro.simgpu import Buffer, Stream


class TestKeyedCore:
    def test_compacts_all_buffers_by_key(self, rng, maxwell):
        n = 1000
        keys = Buffer(rng.integers(0, 10, n).astype(np.float32), "k")
        p1 = Buffer(np.arange(n, dtype=np.float32), "p1")
        p2 = Buffer(np.arange(n, dtype=np.float64) * 2, "p2")
        orig_keys = keys.data.copy()
        r = run_keyed_irregular_ds(keys, [p1, p2], less_than(5),
                                   Stream(maxwell, seed=1),
                                   wg_size=64, coarsening=2)
        mask = orig_keys < 5
        assert r.n_true == int(mask.sum())
        assert np.array_equal(keys.data[: r.n_true], orig_keys[mask])
        assert np.array_equal(p1.data[: r.n_true],
                              np.arange(n, dtype=np.float32)[mask])
        assert np.array_equal(p2.data[: r.n_true],
                              (np.arange(n, dtype=np.float64) * 2)[mask])

    def test_stencil_mode(self, rng, maxwell):
        keys = Buffer(np.repeat(rng.integers(0, 9, 200), 3).astype(np.float32),
                      "k")
        vals = Buffer(np.arange(keys.size, dtype=np.float32), "v")
        orig = keys.data.copy()
        r = run_keyed_irregular_ds(keys, [vals], None, Stream(maxwell, seed=2),
                                   wg_size=32, coarsening=2,
                                   stencil_unique=True)
        keep = np.concatenate([[True], orig[1:] != orig[:-1]])
        assert r.n_true == int(keep.sum())
        assert np.array_equal(keys.data[: r.n_true], orig[keep])

    def test_requires_predicate_or_stencil(self, maxwell):
        keys = Buffer(np.zeros(8, dtype=np.float32), "k")
        with pytest.raises(LaunchError, match="predicate"):
            run_keyed_irregular_ds(keys, [], None, Stream(maxwell))

    def test_rejects_short_payload(self, maxwell):
        keys = Buffer(np.zeros(16, dtype=np.float32), "k")
        short = Buffer(np.zeros(8, dtype=np.float32), "short")
        with pytest.raises(LaunchError, match="needs"):
            run_keyed_irregular_ds(keys, [short], less_than(1),
                                   Stream(maxwell))

    def test_extras_for_the_model(self, rng, maxwell):
        keys = Buffer(rng.integers(0, 10, 512).astype(np.float32), "k")
        r = run_keyed_irregular_ds(keys, [], less_than(5),
                                   Stream(maxwell, seed=3),
                                   wg_size=64, coarsening=2,
                                   scan_variant="ballot")
        ex = r.counters.extras
        assert ex["irregular"] == 1.0
        assert ex["opt_collectives"] == 1.0
        assert ex["adjacent_syncs"] == r.geometry.n_workgroups

    @pytest.mark.parametrize("order", ["ascending", "descending", "random"])
    def test_correct_under_any_dispatch(self, rng, maxwell, order):
        n = 800
        orig = rng.integers(0, 10, n).astype(np.float32)
        keys = Buffer(orig, "k")
        vals = Buffer(np.arange(n, dtype=np.float32), "v")
        stream = Stream(maxwell, seed=5, order=order, resident_limit=4)
        r = run_keyed_irregular_ds(keys, [vals], less_than(5), stream,
                                   wg_size=32, coarsening=2,
                                   race_tracking=True)
        mask = orig < 5
        assert np.array_equal(keys.data[: r.n_true], orig[mask])
        assert np.array_equal(vals.data[: r.n_true],
                              np.arange(n, dtype=np.float32)[mask])
