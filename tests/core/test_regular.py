"""Algorithm 1 — the generic regular Data Sliding kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offsets import pad_remap, shift_remap, unpad_remap
from repro.core.regular import run_regular_ds
from repro.errors import DataRaceError, LaunchError
from repro.reference import pad_ref, unpad_ref
from repro.simgpu import Buffer, Stream


def make_pad_buffer(matrix, pad):
    rows, cols = matrix.shape
    buf = Buffer(np.zeros(rows * (cols + pad), dtype=matrix.dtype), "m")
    buf.data[: rows * cols] = matrix.reshape(-1)
    return buf


class TestPaddingKernel:
    def test_pad_matches_oracle(self, rng, maxwell):
        m = rng.integers(0, 1000, (31, 47)).astype(np.float32)
        buf = make_pad_buffer(m, 5)
        run_regular_ds(buf, pad_remap(31, 47, 5), Stream(maxwell, seed=2),
                       wg_size=64, coarsening=3)
        got = buf.data.reshape(31, 52)[:, :47]
        assert np.array_equal(got, m)

    def test_pad_with_race_tracking_never_trips(self, rng, maxwell):
        m = rng.integers(0, 1000, (23, 37)).astype(np.float32)
        buf = make_pad_buffer(m, 4)
        run_regular_ds(buf, pad_remap(23, 37, 4), Stream(maxwell, seed=5),
                       wg_size=32, coarsening=2, race_tracking=True)
        assert np.array_equal(buf.data.reshape(23, 41)[:, :37], m)

    def test_unpad_matches_oracle(self, rng, maxwell):
        m = rng.integers(0, 1000, (29, 40)).astype(np.float32)
        padded = pad_ref(m, 6, fill=-1).astype(np.float32)
        buf = Buffer(padded.reshape(-1), "m")
        run_regular_ds(buf, unpad_remap(29, 46, 6), Stream(maxwell, seed=7),
                       wg_size=64, coarsening=2, race_tracking=True)
        assert np.array_equal(buf.data[: 29 * 40].reshape(29, 40), m)

    def test_shift_forward(self, rng, maxwell):
        values = rng.random(300).astype(np.float32)
        buf = Buffer(np.zeros(400, dtype=np.float32), "s")
        buf.data[:300] = values
        run_regular_ds(buf, shift_remap(300, 100), Stream(maxwell, seed=9),
                       wg_size=32, coarsening=2)
        assert np.array_equal(buf.data[100:400], values)

    @pytest.mark.parametrize("wg_size,coarsening", [
        (32, 1), (32, 4), (64, 2), (128, 3), (256, 1),
    ])
    def test_pad_across_launch_geometries(self, rng, maxwell, wg_size, coarsening):
        m = rng.integers(0, 100, (17, 53)).astype(np.float32)
        buf = make_pad_buffer(m, 3)
        result = run_regular_ds(buf, pad_remap(17, 53, 3),
                                Stream(maxwell, seed=wg_size + coarsening),
                                wg_size=wg_size, coarsening=coarsening)
        assert np.array_equal(buf.data.reshape(17, 56)[:, :53], m)
        assert result.geometry.wg_size == wg_size
        assert result.geometry.coarsening == coarsening

    @pytest.mark.parametrize("order", ["ascending", "descending", "random"])
    def test_pad_correct_under_any_dispatch_order(self, rng, maxwell, order):
        m = rng.integers(0, 100, (19, 33)).astype(np.float32)
        buf = make_pad_buffer(m, 2)
        stream = Stream(maxwell, seed=31, order=order, resident_limit=4)
        run_regular_ds(buf, pad_remap(19, 33, 2), stream,
                       wg_size=32, coarsening=2, race_tracking=True)
        assert np.array_equal(buf.data.reshape(19, 35)[:, :33], m)


class TestCountersStructure:
    def test_each_element_moved_exactly_twice(self, rng, maxwell):
        """The in-place claim: one load + one store per element, no
        temporary traffic."""
        m = rng.integers(0, 100, (16, 64)).astype(np.float32)
        buf = make_pad_buffer(m, 2)
        result = run_regular_ds(buf, pad_remap(16, 64, 2),
                                Stream(maxwell, seed=3), wg_size=64,
                                coarsening=2)
        n = 16 * 64
        assert result.counters.bytes_loaded == n * 4
        assert result.counters.bytes_stored == n * 4

    def test_unpad_stores_only_kept(self, rng, maxwell):
        padded = pad_ref(rng.integers(0, 9, (10, 20)), 5, fill=0)
        buf = Buffer(padded.reshape(-1).astype(np.float32), "m")
        result = run_regular_ds(buf, unpad_remap(10, 25, 5),
                                Stream(maxwell, seed=3), wg_size=32,
                                coarsening=2)
        assert result.counters.bytes_loaded == 10 * 25 * 4
        assert result.counters.bytes_stored == 10 * 20 * 4

    def test_single_launch_and_sync_count(self, rng, maxwell):
        m = rng.integers(0, 9, (8, 128)).astype(np.float32)
        buf = make_pad_buffer(m, 1)
        stream = Stream(maxwell, seed=3)
        result = run_regular_ds(buf, pad_remap(8, 128, 1), stream,
                                wg_size=64, coarsening=2)
        assert stream.num_launches == 1
        assert result.counters.extras["adjacent_syncs"] == (
            result.geometry.n_workgroups)


class TestFaultInjection:
    def test_sync_disabled_corrupts_or_races(self, rng, maxwell):
        """Removing the adjacent synchronization must be observable:
        either the race tracker fires, or the matrix is corrupted.
        (A lucky schedule may still succeed; try several seeds and
        require at least one observable failure.)"""
        m = rng.integers(0, 10_000, (40, 64)).astype(np.float32)
        failures = 0
        for seed in range(6):
            buf = make_pad_buffer(m, 8)
            stream = Stream(maxwell, seed=seed, resident_limit=8)
            try:
                run_regular_ds(buf, pad_remap(40, 64, 8), stream,
                               wg_size=32, coarsening=2, sync=False,
                               race_tracking=True)
            except DataRaceError:
                failures += 1
                continue
            got = buf.data.reshape(40, 72)[:, :64]
            if not np.array_equal(got, m):
                failures += 1
        assert failures > 0, "disabling adjacent sync was unobservable"

    def test_sync_enabled_same_seeds_all_pass(self, rng, maxwell):
        m = rng.integers(0, 10_000, (40, 64)).astype(np.float32)
        for seed in range(6):
            buf = make_pad_buffer(m, 8)
            stream = Stream(maxwell, seed=seed, resident_limit=8)
            run_regular_ds(buf, pad_remap(40, 64, 8), stream,
                           wg_size=32, coarsening=2, race_tracking=True)
            assert np.array_equal(buf.data.reshape(40, 72)[:, :64], m)


class TestValidation:
    def test_buffer_too_small(self, maxwell):
        buf = Buffer(np.zeros(10, dtype=np.float32), "tiny")
        with pytest.raises(LaunchError, match="needs room"):
            run_regular_ds(buf, pad_remap(4, 4, 1), Stream(maxwell))


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(1, 24),
        cols=st.integers(1, 48),
        pad=st.integers(0, 8),
        seed=st.integers(0, 2**16),
    )
    def test_pad_matches_oracle_for_arbitrary_shapes(self, rows, cols, pad, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 1000, (rows, cols)).astype(np.float32)
        buf = make_pad_buffer(m, pad)
        run_regular_ds(buf, pad_remap(rows, cols, pad),
                       Stream("maxwell", seed=seed, resident_limit=6),
                       wg_size=32, coarsening=2, race_tracking=True)
        got = buf.data.reshape(rows, cols + pad)[:, :cols]
        assert np.array_equal(got, pad_ref(m, pad)[:, :cols])

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(1, 24),
        cols=st.integers(2, 48),
        data=st.data(),
    )
    def test_unpad_matches_oracle_for_arbitrary_shapes(self, rows, cols, data):
        pad = data.draw(st.integers(0, cols - 1))
        seed = data.draw(st.integers(0, 2**16))
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 1000, (rows, cols)).astype(np.float32)
        buf = Buffer(m.reshape(-1), "m")
        run_regular_ds(buf, unpad_remap(rows, cols, pad),
                       Stream("maxwell", seed=seed, resident_limit=6),
                       wg_size=32, coarsening=2)
        kept = cols - pad
        got = buf.data[: rows * kept].reshape(rows, kept)
        assert np.array_equal(got, unpad_ref(m, pad))
