"""Algorithm 2 — the generic irregular Data Sliding kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flags import encode_count
from repro.core.irregular import run_irregular_ds
from repro.core.predicates import is_even, less_than, not_equal_to
from repro.errors import DataRaceError, LaunchError
from repro.reference import copy_if_ref, partition_ref, unique_ref
from repro.simgpu import Buffer, Stream


class TestInPlaceCompaction:
    def test_keep_matching_in_place(self, rng, maxwell):
        a = rng.integers(0, 100, 4000).astype(np.float32)
        buf = Buffer(a, "a")
        r = run_irregular_ds(buf, is_even(), Stream(maxwell, seed=3),
                             wg_size=64, coarsening=3)
        expected = copy_if_ref(a, is_even())
        assert r.n_true == expected.size
        assert r.n_false == a.size - expected.size
        assert np.array_equal(buf.data[: r.n_true], expected)

    def test_stability_preserved(self, rng, maxwell):
        # Tag values so equal-predicate elements are distinguishable.
        a = (np.arange(3000) * 10 + rng.integers(0, 2, 3000)).astype(np.float64)
        pred = is_even()  # true iff the tag's low digit is even
        buf = Buffer(a, "a")
        r = run_irregular_ds(buf, pred, Stream(maxwell, seed=5),
                             wg_size=32, coarsening=4)
        expected = copy_if_ref(a, pred)
        assert np.array_equal(buf.data[: r.n_true], expected)
        # expected is strictly increasing by construction, so equality
        # here proves relative order was maintained.

    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5, 0.9, 1.0])
    def test_extreme_and_middle_fractions(self, maxwell, fraction):
        n = 2000
        k = int(n * fraction)
        a = np.concatenate([np.zeros(k), np.ones(n - k)]).astype(np.float32)
        rng = np.random.default_rng(7)
        rng.shuffle(a)
        buf = Buffer(a, "a")
        r = run_irregular_ds(buf, not_equal_to(0.0), Stream(maxwell, seed=9),
                             wg_size=64, coarsening=2)
        assert r.n_true == n - k
        assert (buf.data[: r.n_true] == 1.0).all()

    @pytest.mark.parametrize("scan_variant", ["tree", "ballot", "shuffle"])
    @pytest.mark.parametrize("reduction_variant", ["tree", "shuffle"])
    def test_collective_variants_agree(self, rng, maxwell, scan_variant,
                                       reduction_variant):
        a = rng.integers(0, 10, 2048).astype(np.float32)
        buf = Buffer(a, "a")
        r = run_irregular_ds(
            buf, less_than(5), Stream(maxwell, seed=11),
            wg_size=64, coarsening=2,
            scan_variant=scan_variant, reduction_variant=reduction_variant,
        )
        assert np.array_equal(buf.data[: r.n_true], copy_if_ref(a, less_than(5)))

    def test_scan_first_ablation_identical_results(self, rng, maxwell):
        a = rng.integers(0, 10, 2048).astype(np.float32)
        outs = []
        for scan_first in (False, True):
            buf = Buffer(a, "a")
            r = run_irregular_ds(buf, is_even(), Stream(maxwell, seed=13),
                                 wg_size=64, coarsening=2)
            outs.append(buf.data[: r.n_true].copy())
        assert np.array_equal(outs[0], outs[1])

    def test_race_tracking_clean(self, rng, maxwell):
        a = rng.integers(0, 10, 3000).astype(np.float32)
        buf = Buffer(a, "a")
        run_irregular_ds(buf, is_even(), Stream(maxwell, seed=15),
                         wg_size=32, coarsening=3, race_tracking=True)


class TestOutOfPlace:
    def test_copy_if_leaves_input_intact(self, rng, maxwell):
        a = rng.integers(0, 10, 2000).astype(np.float32)
        buf = Buffer(a, "a")
        out = Buffer(np.zeros_like(a), "out")
        r = run_irregular_ds(buf, is_even(), Stream(maxwell, seed=17),
                             out=out, wg_size=64, coarsening=2)
        assert np.array_equal(buf.data, a)  # input untouched
        assert np.array_equal(out.data[: r.n_true], copy_if_ref(a, is_even()))


class TestUniqueStencil:
    def test_unique_matches_oracle(self, rng, maxwell):
        runs = np.repeat(rng.integers(0, 40, 500),
                         rng.integers(1, 7, 500))[:2500].astype(np.float32)
        buf = Buffer(runs, "u")
        r = run_irregular_ds(buf, None, Stream(maxwell, seed=19),
                             wg_size=64, coarsening=2, stencil_unique=True)
        expected = unique_ref(runs)
        assert r.n_true == expected.size
        assert np.array_equal(buf.data[: r.n_true], expected)

    def test_all_equal_collapses_to_one(self, maxwell):
        buf = Buffer(np.full(1500, 7.0, dtype=np.float32), "u")
        r = run_irregular_ds(buf, None, Stream(maxwell, seed=21),
                             wg_size=32, coarsening=2, stencil_unique=True)
        assert r.n_true == 1
        assert buf.data[0] == 7.0

    def test_all_distinct_keeps_everything(self, maxwell):
        a = np.arange(1500, dtype=np.float32)
        buf = Buffer(a, "u")
        r = run_irregular_ds(buf, None, Stream(maxwell, seed=23),
                             wg_size=32, coarsening=2, stencil_unique=True)
        assert r.n_true == 1500
        assert np.array_equal(buf.data, a)

    def test_runs_spanning_tile_boundaries(self, maxwell):
        # Tile = wg * cf = 64; build runs exactly straddling boundaries.
        a = np.repeat(np.arange(50, dtype=np.float32), 64 + 3)[:3000]
        buf = Buffer(a.copy(), "u")
        r = run_irregular_ds(buf, None, Stream(maxwell, seed=25),
                             wg_size=32, coarsening=2, stencil_unique=True)
        expected = unique_ref(a)
        assert np.array_equal(buf.data[: r.n_true], expected)


class TestPartitionSplit:
    def test_false_elements_routed_to_aux(self, rng, maxwell):
        a = rng.integers(0, 100, 3000).astype(np.float32)
        buf = Buffer(a, "p")
        aux = Buffer(np.zeros_like(a), "aux")
        r = run_irregular_ds(buf, is_even(), Stream(maxwell, seed=27),
                             wg_size=64, coarsening=2, false_out=aux)
        expected, n_true = partition_ref(a, is_even())
        assert r.n_true == n_true
        assert np.array_equal(buf.data[:n_true], expected[:n_true])
        assert np.array_equal(aux.data[: a.size - n_true], expected[n_true:])


class TestHostInterface:
    def test_count_read_back_from_flag_chain(self, rng, maxwell):
        a = rng.integers(0, 2, 1000).astype(np.float32)
        buf = Buffer(a, "a")
        r = run_irregular_ds(buf, not_equal_to(0.0), Stream(maxwell, seed=29),
                             wg_size=32, coarsening=2)
        assert r.n_true == int((a != 0).sum())

    def test_total_can_be_shorter_than_buffer(self, rng, maxwell):
        a = rng.integers(1, 9, 1000).astype(np.float32)
        buf = Buffer(a, "a")
        r = run_irregular_ds(buf, not_equal_to(0.0), Stream(maxwell, seed=31),
                             total=500, wg_size=32, coarsening=2)
        assert r.n_true == 500

    def test_requires_predicate_or_stencil(self, maxwell):
        buf = Buffer(np.zeros(10, dtype=np.float32), "a")
        with pytest.raises(LaunchError, match="predicate"):
            run_irregular_ds(buf, None, Stream(maxwell))

    def test_rejects_total_beyond_buffer(self, maxwell):
        buf = Buffer(np.zeros(10, dtype=np.float32), "a")
        with pytest.raises(LaunchError, match="exceeds"):
            run_irregular_ds(buf, is_even(), Stream(maxwell), total=20)

    def test_extras_populated_for_perf_model(self, rng, maxwell):
        a = rng.integers(0, 10, 1024).astype(np.float32)
        buf = Buffer(a, "a")
        r = run_irregular_ds(buf, is_even(), Stream(maxwell, seed=33),
                             wg_size=64, coarsening=2, scan_variant="ballot")
        ex = r.counters.extras
        assert ex["irregular"] == 1.0
        assert ex["collective_rounds"] > 0
        assert ex["opt_collectives"] == 1.0
        assert ex["adjacent_syncs"] == r.geometry.n_workgroups


class TestFaultInjection:
    def test_unordered_stores_corrupt_without_sync(self, rng, maxwell):
        """With host-precomputed offsets but no ordering, compaction can
        overwrite unread input — the tracker or the oracle must notice."""
        a = rng.integers(0, 10, 4096).astype(np.float32)
        pred = less_than(5)
        expected = copy_if_ref(a, pred)
        failures = 0
        for seed in range(6):
            buf = Buffer(a.copy(), "a")
            stream = Stream(maxwell, seed=seed, resident_limit=8)
            # Pre-fill the flag chain the way a two-pass scan would.
            from repro.core.coarsening import launch_geometry
            geo = launch_geometry(a.size, maxwell, 4, wg_size=32, coarsening=2)
            from repro.core.flags import make_flags
            flags = make_flags(geo.n_workgroups)
            tile = geo.tile_size
            counts = [int(pred(a[i * tile:(i + 1) * tile]).sum())
                      for i in range(geo.n_workgroups)]
            cum = 0
            for i in range(geo.n_workgroups):
                flags.data[i] = encode_count(cum)
                cum += counts[i]
            # Run with sync disabled, injecting the precomputed flags.
            from repro.core.irregular import irregular_ds_kernel
            from repro.core.flags import make_wg_counter
            buf.arm_race_tracking()
            try:
                stream.launch(
                    irregular_ds_kernel,
                    grid_size=geo.n_workgroups, wg_size=32,
                    args=(buf, buf, flags, make_wg_counter(), pred, geo,
                          a.size),
                    kwargs={"sync": False},
                )
            except DataRaceError:
                failures += 1
                continue
            finally:
                buf.disarm_race_tracking()
            if not np.array_equal(buf.data[: expected.size], expected):
                failures += 1
        assert failures > 0, "disabling adjacent sync was unobservable"


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 3000),
        threshold=st.integers(0, 10),
        seed=st.integers(0, 2**16),
    )
    def test_compaction_matches_oracle(self, n, threshold, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 10, n).astype(np.float32)
        pred = less_than(np.float32(threshold))
        buf = Buffer(a, "a")
        r = run_irregular_ds(buf, pred, Stream("maxwell", seed=seed,
                                               resident_limit=6),
                             wg_size=32, coarsening=2)
        expected = copy_if_ref(a, pred)
        assert r.n_true == expected.size
        assert np.array_equal(buf.data[: r.n_true], expected)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 2500), seed=st.integers(0, 2**16))
    def test_unique_matches_oracle(self, n, seed):
        rng = np.random.default_rng(seed)
        a = np.repeat(rng.integers(0, 20, n), rng.integers(1, 5, n))[:n]
        a = a.astype(np.float32)
        buf = Buffer(a, "a")
        r = run_irregular_ds(buf, None, Stream("maxwell", seed=seed),
                             wg_size=32, coarsening=2, stencil_unique=True)
        expected = unique_ref(a)
        assert r.n_true == expected.size
        assert np.array_equal(buf.data[: r.n_true], expected)
