"""Coarsening-factor policy and launch geometry."""

import pytest

from repro.core.coarsening import choose_coarsening, launch_geometry, spills
from repro.errors import LaunchError
from repro.simgpu import get_device


class TestChooseCoarsening:
    def test_defaults_are_vendor_specific(self):
        assert choose_coarsening(get_device("maxwell"), 4) == 16
        assert choose_coarsening(get_device("hawaii"), 4) == 12
        assert choose_coarsening(get_device("cpu-mxpa"), 4) == 32

    def test_default_clamped_to_capacity(self):
        # f64 halves the capacity; the default must not exceed it.
        d = get_device("maxwell")
        assert choose_coarsening(d, 8) <= d.max_coarsening(8)

    def test_explicit_request_is_honoured_even_past_capacity(self):
        d = get_device("maxwell")
        assert choose_coarsening(d, 4, requested=48) == 48
        assert spills(d, 4, 48)

    def test_rejects_bad_request(self):
        with pytest.raises(LaunchError):
            choose_coarsening(get_device("maxwell"), 4, requested=0)

    def test_rejects_bad_itemsize(self):
        with pytest.raises(LaunchError):
            choose_coarsening(get_device("maxwell"), 0)

    def test_spill_threshold_matches_figure6(self):
        # Figure 6: 32 fine, 40 and 48 spill on Maxwell at f32.
        d = get_device("maxwell")
        assert not spills(d, 4, 32)
        assert spills(d, 4, 40)
        assert spills(d, 4, 48)


class TestLaunchGeometry:
    def test_grid_covers_input(self):
        d = get_device("maxwell")
        geo = launch_geometry(10_000, d, 4, wg_size=256, coarsening=4)
        assert geo.tile_size == 1024
        assert geo.n_workgroups == 10
        assert geo.elements_capacity >= 10_000

    def test_exact_tiling(self):
        d = get_device("maxwell")
        geo = launch_geometry(2048, d, 4, wg_size=256, coarsening=4)
        assert geo.n_workgroups == 2
        assert geo.elements_capacity == 2048

    def test_rejects_empty_input(self):
        with pytest.raises(LaunchError):
            launch_geometry(0, get_device("maxwell"), 4)

    def test_rejects_non_power_of_two_wg(self):
        with pytest.raises(LaunchError):
            launch_geometry(100, get_device("maxwell"), 4, wg_size=100)

    def test_rejects_wg_over_device_limit(self):
        with pytest.raises(LaunchError):
            launch_geometry(100, get_device("hawaii"), 4, wg_size=512)

    def test_spill_recorded(self):
        geo = launch_geometry(10_000, get_device("maxwell"), 4,
                              wg_size=256, coarsening=48)
        assert geo.spilled
