"""Vectorized predicate objects."""

import numpy as np
import pytest

from repro.core.predicates import (
    Predicate,
    always_false,
    always_true,
    equal_to,
    greater_equal,
    is_even,
    less_than,
    nonzero,
    not_equal_to,
)


class TestStandardPredicates:
    def test_is_even_on_ints_and_floats(self):
        v = np.asarray([0, 1, 2, 3.7, 4.2], dtype=np.float32)
        assert np.array_equal(is_even()(v), [True, False, True, False, True])

    def test_less_than(self):
        v = np.asarray([1, 5, 10])
        assert np.array_equal(less_than(5)(v), [True, False, False])

    def test_greater_equal(self):
        v = np.asarray([1, 5, 10])
        assert np.array_equal(greater_equal(5)(v), [False, True, True])

    def test_equal_and_not_equal(self):
        v = np.asarray([0.0, 1.0, 0.0])
        assert np.array_equal(equal_to(0.0)(v), [True, False, True])
        assert np.array_equal(not_equal_to(0.0)(v), [False, True, False])

    def test_nonzero(self):
        v = np.asarray([0.0, 2.0, 0.0, -1.0])
        assert np.array_equal(nonzero()(v), [False, True, False, True])

    def test_constants(self):
        v = np.arange(4)
        assert always_true()(v).all()
        assert not always_false()(v).any()


class TestPredicateAlgebra:
    def test_negation(self):
        v = np.arange(6)
        p = is_even()
        assert np.array_equal((~p)(v), ~p(v))

    def test_double_negation_restores_name(self):
        p = is_even()
        assert (~~p).name == p.name

    def test_negation_names_are_readable(self):
        assert (~is_even()).name == "not(is_even)"

    def test_result_coerced_to_bool(self):
        p = Predicate(lambda v: v % 2, "odd-as-int")
        out = p(np.arange(4))
        assert out.dtype == np.bool_

    def test_shape_mismatch_raises(self):
        p = Predicate(lambda v: np.ones(3, dtype=bool), "broken")
        with pytest.raises(ValueError, match="shape"):
            p(np.arange(5))

    def test_empty_input(self):
        assert is_even()(np.asarray([], dtype=np.float32)).size == 0
