"""Flag arrays and the count-encoding convention."""

import pytest

from repro.core.flags import (
    FLAG_SET,
    decode_count,
    encode_count,
    make_flags,
    make_wg_counter,
)
from repro.errors import LaunchError


class TestFlags:
    def test_layout_has_virtual_predecessor(self):
        flags = make_flags(5)
        assert flags.size == 6
        assert flags.data[0] == encode_count(0)
        assert (flags.data[1:] == 0).all()

    def test_initial_count_propagates(self):
        flags = make_flags(3, initial_count=17)
        assert decode_count(int(flags.data[0])) == 17

    def test_rejects_empty_grid(self):
        with pytest.raises(LaunchError):
            make_flags(0)

    def test_flag_set_is_a_valid_zero_count(self):
        # Regular and irregular kernels share the constructor: FLAG_SET
        # must equal encode_count(0).
        assert FLAG_SET == encode_count(0)


class TestEncoding:
    def test_roundtrip(self):
        for count in (0, 1, 7, 123456):
            assert decode_count(encode_count(count)) == count

    def test_zero_flag_never_encodes_a_count(self):
        with pytest.raises(LaunchError):
            decode_count(0)

    def test_negative_count_rejected(self):
        with pytest.raises(LaunchError):
            encode_count(-1)


class TestCounter:
    def test_counter_starts_at_zero(self):
        counter = make_wg_counter()
        assert counter.size == 1 and counter.data[0] == 0
