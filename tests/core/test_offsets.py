"""Regular-DS remappings: padding, unpadding, shift."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offsets import RegularRemap, pad_remap, shift_remap, unpad_remap
from repro.errors import LaunchError


class TestPadRemap:
    def test_row_shift_formula(self):
        remap = pad_remap(rows=3, cols=4, pad=2)
        pos = np.arange(12)
        keep, out = remap(pos)
        assert keep.all()
        # Element (i, j) moves to i*(cols+pad) + j.
        expected = (pos // 4) * 6 + (pos % 4)
        assert np.array_equal(out, expected)

    def test_direction_and_totals(self):
        remap = pad_remap(5, 4, 3)
        assert remap.direction == "expand"
        assert remap.total_in == 20
        assert remap.total_out == 35

    def test_zero_pad_is_identity(self):
        remap = pad_remap(3, 4, 0)
        _, out = remap(np.arange(12))
        assert np.array_equal(out, np.arange(12))

    def test_rejects_bad_shapes(self):
        with pytest.raises(LaunchError):
            pad_remap(0, 4, 1)
        with pytest.raises(LaunchError):
            pad_remap(3, 4, -1)


class TestUnpadRemap:
    def test_keeps_prefix_columns(self):
        remap = unpad_remap(rows=3, cols=5, pad=2)
        pos = np.arange(15)
        keep, out = remap(pos)
        assert np.array_equal(keep, (pos % 5) < 3)
        kept_out = out[keep]
        expected = (pos[keep] // 5) * 3 + (pos[keep] % 5)
        assert np.array_equal(kept_out, expected)

    def test_direction_and_totals(self):
        remap = unpad_remap(4, 6, 2)
        assert remap.direction == "shrink"
        assert remap.total_in == 24
        assert remap.total_out == 16

    def test_rejects_pad_ge_cols(self):
        with pytest.raises(LaunchError):
            unpad_remap(3, 4, 4)


class TestShiftRemap:
    def test_positive_shift_expands(self):
        remap = shift_remap(10, 5)
        assert remap.direction == "expand"
        _, out = remap(np.arange(10))
        assert np.array_equal(out, np.arange(5, 15))

    def test_negative_shift_shrinks(self):
        remap = shift_remap(10, -3)
        assert remap.direction == "shrink"

    def test_rejects_empty(self):
        with pytest.raises(LaunchError):
            shift_remap(0, 1)


class TestRemapValidation:
    def test_direction_must_be_known(self):
        with pytest.raises(LaunchError):
            RegularRemap(fn=lambda p: (p, p), direction="sideways",
                         total_in=4, total_out=4, name="bad")

    def test_negative_totals_rejected(self):
        with pytest.raises(LaunchError):
            RegularRemap(fn=lambda p: (p, p), direction="expand",
                         total_in=-1, total_out=4, name="bad")


class TestRemapProperties:
    """The invariants the in-place safety argument relies on."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 40), st.integers(1, 40), st.integers(0, 20))
    def test_pad_is_monotone_and_injective(self, rows, cols, pad):
        remap = pad_remap(rows, cols, pad)
        pos = np.arange(rows * cols)
        keep, out = remap(pos)
        assert keep.all()
        assert (np.diff(out) > 0).all()            # strictly increasing
        assert (out >= pos).all()                   # expand: forward only
        assert out[-1] < remap.total_out

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 40), st.integers(2, 40), st.data())
    def test_unpad_is_monotone_and_injective_on_kept(self, rows, cols, data):
        pad = data.draw(st.integers(0, cols - 1))
        remap = unpad_remap(rows, cols, pad)
        pos = np.arange(rows * cols)
        keep, out = remap(pos)
        kept_out = out[keep]
        assert (np.diff(kept_out) > 0).all()
        assert (kept_out <= pos[keep]).all()        # shrink: backward only
        assert keep.sum() == remap.total_out

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 40), st.integers(1, 40), st.integers(0, 20))
    def test_pad_then_unpad_is_identity(self, rows, cols, pad):
        fwd = pad_remap(rows, cols, pad)
        back = unpad_remap(rows, cols + pad, pad)
        pos = np.arange(rows * cols)
        _, padded = fwd(pos)
        keep, restored = back(padded)
        assert keep.all()
        assert np.array_equal(restored, pos)
