"""The one-call profiling glue."""

import numpy as np
import pytest

import repro
from repro.config import DSConfig
from repro.errors import ModelError
from repro.perfmodel import profile_across_devices, profile_result
from repro.workloads import compaction_array


@pytest.fixture
def result():
    a = compaction_array(4096, 0.5, seed=1)
    return repro.compact(a, 0.0, return_result=True,
                         config=DSConfig(wg_size=64))


class TestProfileResult:
    def test_defaults_to_the_run_device(self, result):
        report = profile_result(result)
        assert report["device"] == "maxwell"
        assert report["time_us"] > 0
        assert report["gbps"] > 0
        assert report["launches"] == 1

    def test_reprices_on_another_device(self, result):
        slow = profile_result(result, "cpu-intel")
        fast = profile_result(result, "hawaii")
        assert slow["time_us"] > fast["time_us"]

    def test_useful_bytes_override(self, result):
        base = profile_result(result)
        doubled = profile_result(result, useful_bytes=2 * result.bytes_moved)
        assert doubled["gbps"] == pytest.approx(2 * base["gbps"])
        assert doubled["time_us"] == base["time_us"]

    def test_numpy_backend_results_rejected(self):
        a = compaction_array(64, 0.5, seed=2)
        r = repro.compact(a, 0.0, return_result=True, backend="numpy")
        with pytest.raises(ModelError, match="numpy"):
            profile_result(r)

    def test_across_devices_covers_catalog(self, result):
        reports = profile_across_devices(result)
        assert {r["device"] for r in reports} == {
            "fermi", "kepler", "maxwell", "hawaii", "kaveri",
            "cpu-mxpa", "cpu-intel"}
        # GPUs beat the CPU stacks on this memory-bound kernel.
        by_dev = {r["device"]: r["gbps"] for r in reports}
        assert by_dev["hawaii"] > by_dev["cpu-mxpa"]
