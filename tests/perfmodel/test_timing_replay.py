"""Event-driven timing replay vs the calibrated analytic model.

The replay knows nothing about the analytic occupancy ramp — it only
has a memory latency, an issue slot, and a shared-bandwidth fluid
bound.  These tests verify that the paper's performance phenomena
*emerge* from that queueing model and agree with the calibrated ramp,
which is the strongest internal validation the reproduction can give
its timing layer.
"""

import numpy as np
import pytest

from repro.core import not_equal_to
from repro.core.irregular import run_irregular_ds
from repro.errors import ModelError
from repro.perfmodel import gbps, price_pipeline
from repro.simgpu import Buffer, Stream, get_device, launch
from repro.simgpu.timing import replay_timing


def staged_copy_kernel(wg, src, dst, n, cf):
    """Load-all-then-store-all (the DS kernels' phase structure)."""
    pos = wg.group_index * cf * wg.size + wg.wi_id
    staged = []
    for _ in range(cf):
        m = pos[pos < n]
        vals = yield from wg.load(src, m)
        staged.append((m, vals))
        pos = pos + wg.size
    for m, vals in staged:
        yield from wg.store(dst, m, vals)


def run_copy(device, n, resident_limit, cf=8, wg=256, seed=1):
    src = Buffer(np.arange(n, dtype=np.float32), "src",
                 count_transactions=False)
    dst = Buffer(np.zeros(n, dtype=np.float32), "dst",
                 count_transactions=False)
    trace = []
    launch(staged_copy_kernel, grid_size=n // (cf * wg), wg_size=wg,
           device=device, args=(src, dst, n, cf),
           resident_limit=resident_limit, trace=trace, seed=seed)
    return replay_timing(trace, device, resident_limit=resident_limit)


class TestEmergentSaturation:
    N = 256 * 1024

    def test_throughput_monotone_in_residency(self, maxwell):
        tps = [gbps(2 * self.N * 4, run_copy(maxwell, self.N, r).makespan_us)
               for r in (1, 2, 4, 8, 32)]
        assert all(b >= a * 0.99 for a, b in zip(tps, tps[1:]))

    def test_low_residency_is_latency_bound(self, maxwell):
        t = run_copy(maxwell, self.N, 1)
        assert t.bandwidth_utilization < 0.3

    def test_high_residency_saturates_bandwidth(self, maxwell):
        t = run_copy(maxwell, self.N, 64)
        assert t.bandwidth_utilization > 0.85

    def test_ramp_tracks_the_calibrated_model(self, maxwell):
        """Replay vs analytic mlp ramp within 35% at every residency —
        two independent formulations of the same physics."""
        from repro.perfmodel import get_calibration
        calib = get_calibration("maxwell")
        peak = maxwell.bandwidth_bytes_per_us() * calib.streaming_eff / 1e3
        for r in (1, 2, 4, 8, 16, 64):
            t = run_copy(maxwell, self.N, r)
            replay_tp = gbps(2 * self.N * 4, t.makespan_us)
            analytic_tp = maxwell.mlp_efficiency(r) * peak
            assert 0.65 * analytic_tp <= replay_tp <= 1.35 * analytic_tp, (
                f"R={r}: replay {replay_tp:.1f} vs analytic {analytic_tp:.1f}")

    def test_kepler_single_group_floor(self):
        """Figure 2's ~10 GB/s floor emerges on the K20 too."""
        kp = get_device("kepler")
        t = run_copy(kp, self.N, 1)
        floor = gbps(2 * self.N * 4, t.makespan_us)
        assert 4.0 <= floor <= 16.0


class TestChainBehaviour:
    def test_ds_chain_replays_close_to_analytic_price(self, maxwell):
        """End to end: one real DS compaction launch, priced both ways."""
        n = 128 * 1024
        a = (np.arange(n) % 4).astype(np.float32)
        buf = Buffer(a, "a", count_transactions=False)
        trace = []
        stream = Stream(maxwell, seed=7)
        result = run_irregular_ds(buf, not_equal_to(0.0), stream,
                                  wg_size=256, coarsening=8)
        # Re-run with a trace (fresh buffer: the first run compacted it).
        buf2 = Buffer(a, "a", count_transactions=False)
        from repro.core.flags import make_flags, make_wg_counter
        from repro.core.irregular import irregular_ds_kernel
        stream2 = Stream(maxwell, seed=7)
        flags = make_flags(result.geometry.n_workgroups)
        stream2.launch(
            irregular_ds_kernel,
            grid_size=result.geometry.n_workgroups, wg_size=256,
            args=(buf2, buf2, flags, make_wg_counter(), not_equal_to(0.0),
                  result.geometry, n),
            trace=trace,
        )
        replay = replay_timing(trace, maxwell)
        analytic = price_pipeline([result.counters], maxwell).total_us
        ratio = replay.makespan_us / analytic
        assert 0.3 <= ratio <= 3.0, (replay.makespan_us, analytic)

    def test_flag_chain_serializes_atomics(self, maxwell):
        """A pure chain kernel: makespan grows linearly with the chain
        length, at roughly the flag latency per hop."""
        def chain_kernel(wg, flags):
            gid = wg.group_index
            yield from wg.spin_until(flags, gid, lambda v: v != 0)
            yield from wg.atomic_or(flags, gid + 1, 1)

        times = {}
        for n_groups in (16, 64):
            flags = Buffer(np.zeros(n_groups + 1, dtype=np.int64), "flags")
            flags.data[0] = 1
            trace = []
            launch(chain_kernel, grid_size=n_groups, wg_size=32,
                   device=maxwell, args=(flags,), order="ascending",
                   trace=trace, resident_limit=8)
            times[n_groups] = replay_timing(
                trace, maxwell, resident_limit=8).makespan_us
        growth = (times[64] - times[16]) / 48
        assert growth == pytest.approx(2 * maxwell.flag_latency_us, rel=0.5)


class TestValidation:
    def test_empty_trace_rejected(self, maxwell):
        with pytest.raises(ModelError):
            replay_timing([], maxwell)

    def test_bad_resident_limit_rejected(self, maxwell):
        t = [(0, __import__("repro.simgpu.events",
                            fromlist=["Barrier"]).Barrier())]
        with pytest.raises(ModelError):
            replay_timing(t, maxwell, resident_limit=0)
