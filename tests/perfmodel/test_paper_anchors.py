"""The reproduction's headline claims, checked against the paper.

Absolute GB/s come from a calibrated model, so each is asserted within
a band around the paper's number; the *relative* results — who wins,
by roughly what factor, where behaviour changes — are asserted tightly,
because those are the claims the reproduction must preserve.
"""

import pytest

from repro.perfmodel import (
    atomic_compact_launches,
    ds_irregular_launches,
    ds_partition_launches,
    ds_regular_launches,
    gbps,
    pad_useful_bytes,
    partition_useful_bytes,
    price_pipeline,
    select_useful_bytes,
    sung_pad_launches,
    sung_unpad_launches,
    thrust_partition_launches,
    thrust_select_launches,
    unpad_useful_bytes,
)
from repro.simgpu import get_device

F32 = 4
N16M = 16 * 1024 * 1024
OPTIMIZED = dict(scan_variant="shuffle", reduction_variant="shuffle")


def tp(launches, device, useful, api="opencl"):
    return gbps(useful, price_pipeline(launches, device, api=api).total_us)


def in_band(model, paper, rel=0.45):
    assert paper * (1 - rel) <= model <= paper * (1 + rel), (
        f"model {model:.2f} GB/s outside +/-{rel:.0%} of paper {paper}")


class TestTable1Padding:
    """Table I, padding/unpadding block (OpenCL f32, 12000x11999, 1 col)."""

    R, C, P = 12000, 11999, 1

    def test_ds_padding_maxwell(self):
        mx = get_device("maxwell")
        n = self.R * self.C
        model = tp(ds_regular_launches(n, n, F32, mx), mx,
                   pad_useful_bytes(self.R, self.C, F32))
        in_band(model, 131.53, rel=0.15)

    def test_ds_padding_hawaii(self):
        hw = get_device("hawaii")
        n = self.R * self.C
        model = tp(ds_regular_launches(n, n, F32, hw), hw,
                   pad_useful_bytes(self.R, self.C, F32))
        in_band(model, 168.58, rel=0.15)

    def test_sung_padding_collapses(self):
        mx, hw = get_device("maxwell"), get_device("hawaii")
        useful = pad_useful_bytes(self.R, self.C, F32)
        in_band(tp(sung_pad_launches(self.R, self.C, self.P, F32, mx),
                   mx, useful), 16.23, rel=0.5)
        in_band(tp(sung_pad_launches(self.R, self.C, self.P, F32, hw),
                   hw, useful), 2.66, rel=0.5)

    def test_padding_speedups_match_paper_order(self):
        """Paper: 8.10x on Maxwell, 63.31x on Hawaii."""
        for dev_name, paper_speedup in (("maxwell", 8.10), ("hawaii", 63.31)):
            d = get_device(dev_name)
            n = self.R * self.C
            useful = pad_useful_bytes(self.R, self.C, F32)
            ds = tp(ds_regular_launches(n, n, F32, d), d, useful)
            sung = tp(sung_pad_launches(self.R, self.C, self.P, F32, d),
                      d, useful)
            assert 0.5 * paper_speedup <= ds / sung <= 2.0 * paper_speedup

    def test_unpadding_speedups(self):
        """Paper: 9.11x on Maxwell, 73.25x on Hawaii."""
        for dev_name, paper_speedup in (("maxwell", 9.11), ("hawaii", 73.25)):
            d = get_device(dev_name)
            n = self.R * self.C
            kept = self.R * (self.C - self.P)
            useful = unpad_useful_bytes(self.R, self.C - self.P, F32)
            ds = tp(ds_regular_launches(n, kept, F32, d), d, useful)
            sung = tp(sung_unpad_launches(self.R, self.C, self.P, F32, d),
                      d, useful)
            assert 0.5 * paper_speedup <= ds / sung <= 2.0 * paper_speedup


class TestTable1Irregular:
    """Table I select/unique/partition block (CUDA, 16M f32, 50%)."""

    def test_select_maxwell(self):
        mx = get_device("maxwell")
        ub = select_useful_bytes(N16M, N16M // 2, F32)
        model = tp(ds_irregular_launches(N16M, N16M // 2, F32, mx,
                                         **OPTIMIZED), mx, ub, "cuda")
        in_band(model, 88.0, rel=0.2)  # paper: 87.34-89.21

    def test_select_speedup_over_thrust(self):
        """Paper: 2.07x-3.05x on Maxwell, 2.54-2.80 Kepler, 1.76-1.78 Fermi."""
        for dev_name, lo, hi in (("maxwell", 2.07, 3.05),
                                 ("kepler", 2.54, 2.80),
                                 ("fermi", 1.76, 1.78)):
            d = get_device(dev_name)
            ub = select_useful_bytes(N16M, N16M // 2, F32)
            variant = OPTIMIZED if d.has_shuffle_cuda else dict(
                scan_variant="ballot")
            ds = tp(ds_irregular_launches(N16M, N16M // 2, F32, d, **variant),
                    d, ub, "cuda")
            th = tp(thrust_select_launches(N16M, N16M // 2, F32, d),
                    d, ub, "cuda")
            assert 0.6 * lo <= ds / th <= 1.6 * hi, dev_name

    def test_unique_speedup_over_thrust(self):
        """Paper: 3.24x Maxwell, 2.73x Kepler, 1.66x Fermi vs thrust::unique."""
        for dev_name, paper in (("maxwell", 3.24), ("kepler", 2.73),
                                ("fermi", 1.66)):
            d = get_device(dev_name)
            ub = select_useful_bytes(N16M, N16M // 2, F32)
            variant = OPTIMIZED if d.has_shuffle_cuda else dict(
                scan_variant="ballot")
            ds = tp(ds_irregular_launches(N16M, N16M // 2, F32, d,
                                          stencil=True, **variant),
                    d, ub, "cuda")
            th = tp(thrust_select_launches(N16M, N16M // 2, F32, d,
                                           in_place=True, stencil=True),
                    d, ub, "cuda")
            assert 0.6 * paper <= ds / th <= 1.6 * paper, dev_name

    def test_partition_speedup_over_thrust(self):
        """Paper: 2.84x Maxwell, 2.88x Kepler, 1.64x Fermi."""
        for dev_name, paper in (("maxwell", 2.84), ("kepler", 2.88),
                                ("fermi", 1.64)):
            d = get_device(dev_name)
            pb = partition_useful_bytes(N16M, F32)
            variant = OPTIMIZED if d.has_shuffle_cuda else dict(
                scan_variant="ballot")
            ds = tp(ds_partition_launches(N16M, N16M // 2, F32, d,
                                          in_place=True, **variant),
                    d, pb, "cuda")
            th = tp(thrust_partition_launches(N16M, N16M // 2, F32, d,
                                              in_place=True), d, pb, "cuda")
            assert 0.6 * paper <= ds / th <= 1.6 * paper, dev_name


class TestFigureShapes:
    def test_fig13_ds_fraction_of_fastest_unstable(self):
        """Paper: DS reaches ~68% of the fastest unstable atomic method."""
        mx = get_device("maxwell")
        ub = select_useful_bytes(N16M, N16M // 2, F32)
        ds = tp(ds_irregular_launches(N16M, N16M // 2, F32, mx, **OPTIMIZED),
                mx, ub, "cuda")
        fastest = max(
            tp(atomic_compact_launches(N16M, N16M // 2, F32, mx,
                                       method=m), mx, ub, "cuda")
            for m in ("plain", "shared", "warp"))
        assert 0.55 <= ds / fastest <= 0.9

    def test_fig13_plain_atomics_are_slowest_unstable(self):
        mx = get_device("maxwell")
        ub = select_useful_bytes(N16M, N16M // 2, F32)
        vals = {m: tp(atomic_compact_launches(N16M, N16M // 2, F32, mx,
                                              method=m), mx, ub, "cuda")
                for m in ("plain", "shared", "warp")}
        assert vals["plain"] < vals["warp"] < vals["shared"]

    def test_fig2_k20_floor_near_10gbps(self):
        """Paper: the sequential tail runs at ~10 GB/s on the K20.

        The floor is the single-work-group memory throughput; the
        per-iteration launch overhead comes on top of it (which is why
        the end-to-end effective number is even lower)."""
        kp = get_device("kepler")
        launches = sung_pad_launches(5000, 4900, 100, F32, kp)
        last = launches[-1]
        from repro.perfmodel import price_launch
        cost = price_launch(last, kp)
        floor = gbps(2 * last.bytes_loaded, cost.mem_us)
        assert 5.0 <= floor <= 15.0
        assert cost.launch_us > 0  # and the relaunch tax is separate

    def test_fig6_coarsening_sweep_shape(self):
        """Rise (chain amortizes), plateau, then the spill cliff."""
        mx = get_device("maxwell")
        n = 12000 * 11999
        useful = pad_useful_bytes(12000, 11999, F32)
        series = {cf: tp(ds_regular_launches(n, n, F32, mx, coarsening=cf),
                         mx, useful) for cf in (1, 4, 16, 32, 48)}
        assert series[1] < series[4] <= series[16]
        assert series[16] == pytest.approx(series[32], rel=0.05)
        assert series[48] < 0.7 * series[32]

    def test_fig10_mxpa_beats_intel_stack(self):
        n = 5000 * 4999
        useful = pad_useful_bytes(5000, 4999, 8)
        vals = {}
        for dev_name in ("cpu-mxpa", "cpu-intel"):
            d = get_device(dev_name)
            vals[dev_name] = tp(ds_regular_launches(n, n, 8, d), d, useful)
        assert vals["cpu-mxpa"] > 1.2 * vals["cpu-intel"]

    def test_kepler_trails_fermi_in_opencl_only(self):
        """The paper's OpenCL anomaly: Kepler < Fermi for irregular
        primitives in OpenCL, but not in CUDA."""
        ub = select_useful_bytes(N16M, N16M // 2, F32)
        res = {}
        for api in ("cuda", "opencl"):
            for dev_name in ("fermi", "kepler"):
                d = get_device(dev_name)
                res[(api, dev_name)] = tp(
                    ds_irregular_launches(N16M, N16M // 2, F32, d),
                    d, ub, api)
        assert res[("opencl", "kepler")] < res[("opencl", "fermi")]
        assert res[("cuda", "kepler")] > res[("cuda", "fermi")]

    def test_fig19_in_place_partition_rises_with_true_fraction(self):
        mx = get_device("maxwell")
        pb = partition_useful_bytes(N16M, F32)
        lo = tp(ds_partition_launches(N16M, N16M // 10, F32, mx,
                                      in_place=True, **OPTIMIZED),
                mx, pb, "cuda")
        hi = tp(ds_partition_launches(N16M, 9 * N16M // 10, F32, mx,
                                      in_place=True, **OPTIMIZED),
                mx, pb, "cuda")
        assert hi > lo

    def test_optimized_collectives_gain_in_paper_band(self):
        """Paper: +6% to +45% from shuffle-optimized reduction/scan."""
        gains = []
        for dev_name in ("fermi", "kepler", "maxwell", "hawaii"):
            d = get_device(dev_name)
            ub = select_useful_bytes(N16M, N16M // 2, F32)
            base = tp(ds_irregular_launches(N16M, N16M // 2, F32, d),
                      d, ub, "opencl")
            opt = tp(ds_irregular_launches(N16M, N16M // 2, F32, d,
                                           **OPTIMIZED), d, ub, "opencl")
            gains.append((opt - base) / base * 100)
        assert all(3 <= g <= 60 for g in gains), gains

    def test_cpu_ds_vs_sequential(self):
        """Paper: DS with MxPA is 2.80x (pad) / 2.45x (unpad) faster
        than the sequential CPU version."""
        from repro.analysis import cpu_sequential_comparison
        rows = cpu_sequential_comparison()
        for row in rows:
            assert 0.6 * row["paper_speedup"] <= row["speedup"] <= (
                1.6 * row["paper_speedup"])
