"""Analytic pipeline builders vs simulator-measured counters.

The benchmarks price paper-scale workloads with *analytic* launch
records; these tests prove, at simulator-tractable scale, that the
analytic formulas produce the same grids, byte counts and accounting
extras the functional simulator measures.  Sizes are chosen to include
partial final tiles (the usual off-by-one territory).
"""

import numpy as np
import pytest

from repro.baselines import atomic_compact, sung_pad, sung_unpad
from repro.baselines.thrust import (
    THRUST_COARSENING,
    thrust_remove_if,
    thrust_stable_partition,
)
from repro.config import DSConfig
from repro.core.predicates import is_even
from repro.perfmodel import (
    atomic_compact_launches,
    ds_irregular_launches,
    ds_partition_launches,
    ds_regular_launches,
    sung_pad_launches,
    sung_unpad_launches,
    thrust_partition_launches,
    thrust_select_launches,
)
from repro.primitives import (
    ds_pad,
    ds_partition,
    ds_remove_if,
    ds_unique,
    ds_unpad,
)
from repro.simgpu import Stream, get_device

WG = 64
CF = 2


@pytest.fixture
def mx():
    return get_device("maxwell")


def assert_matches(analytic, measured, *, check_stores=True):
    """Compare an analytic launch list against measured counters."""
    assert len(analytic) == len(measured), (
        f"launch count: analytic {len(analytic)} vs measured {len(measured)}")
    for a, m in zip(analytic, measured):
        assert a.grid_size == m.grid_size, (a.kernel_name, m.kernel_name)
        assert a.bytes_loaded == m.bytes_loaded, (a.kernel_name, m.kernel_name)
        if check_stores:
            assert a.bytes_stored == m.bytes_stored, (
                a.kernel_name, m.kernel_name)
        assert a.extras.get("adjacent_syncs", 0) == m.extras.get(
            "adjacent_syncs", 0)


class TestDsRegular:
    def test_padding(self, rng, mx):
        m = rng.integers(0, 9, (37, 41)).astype(np.float32)
        r = ds_pad(m, 3, Stream(mx, seed=1),
                                config=DSConfig(wg_size=WG, coarsening=CF))
        analytic = ds_regular_launches(37 * 41, 37 * 41, 4, mx,
                                       wg_size=WG, coarsening=CF)
        assert_matches(analytic, r.counters)

    def test_unpadding(self, rng, mx):
        m = rng.integers(0, 9, (23, 50)).astype(np.float32)
        r = ds_unpad(m, 7, Stream(mx, seed=2),
                                  config=DSConfig(wg_size=WG, coarsening=CF))
        analytic = ds_regular_launches(23 * 50, 23 * 43, 4, mx,
                                       wg_size=WG, coarsening=CF)
        assert_matches(analytic, r.counters)


class TestDsIrregular:
    def test_remove_if(self, rng, mx):
        a = rng.integers(0, 10, 3333).astype(np.float32)
        r = ds_remove_if(a, is_even(), Stream(mx, seed=3),
                                              config=DSConfig(
                                                  wg_size=WG, coarsening=CF))
        kept = r.extras["n_kept"]
        analytic = ds_irregular_launches(3333, kept, 4, mx,
                                         wg_size=WG, coarsening=CF)
        assert_matches(analytic, r.counters)
        assert analytic[0].extras["collective_rounds"] == (
            r.counters[0].extras["collective_rounds"])

    def test_unique_includes_boundary_loads(self, rng, mx):
        a = np.repeat(rng.integers(0, 9, 500), 3)[:1200].astype(np.float32)
        r = ds_unique(a, Stream(mx, seed=4),
                                config=DSConfig(wg_size=WG, coarsening=CF))
        analytic = ds_irregular_launches(1200, r.extras["n_kept"], 4, mx,
                                         wg_size=WG, coarsening=CF,
                                         stencil=True)
        assert_matches(analytic, r.counters)

    def test_partition_launch_structure(self, rng, mx):
        a = rng.integers(0, 10, 2222).astype(np.float32)
        r = ds_partition(a, is_even(), Stream(mx, seed=5),
                                              config=DSConfig(
                                                  wg_size=WG, coarsening=CF))
        analytic = ds_partition_launches(2222, r.extras["n_true"], 4, mx,
                                         in_place=True, wg_size=WG,
                                         coarsening=CF)
        assert_matches(analytic, r.counters)


class TestThrust:
    def test_remove_if_pipeline(self, rng, mx):
        a = rng.integers(0, 10, 5000).astype(np.float32)
        r = thrust_remove_if(a, is_even(), Stream(mx, seed=6), wg_size=WG)
        kept = r.extras["n_kept"]
        analytic = thrust_select_launches(5000, kept, 4, mx, in_place=True,
                                          wg_size=WG,
                                          coarsening=THRUST_COARSENING)
        assert_matches(analytic, r.counters)

    def test_partition_pipeline(self, rng, mx):
        a = rng.integers(0, 10, 4000).astype(np.float32)
        r = thrust_stable_partition(a, is_even(), Stream(mx, seed=7),
                                    wg_size=WG)
        analytic = thrust_partition_launches(4000, r.extras["n_true"], 4, mx,
                                             in_place=True, wg_size=WG,
                                             coarsening=THRUST_COARSENING)
        assert_matches(analytic, r.counters)


class TestSung:
    def test_pad_iterations(self, rng, mx):
        m = rng.integers(0, 9, (30, 25)).astype(np.float32)
        r = sung_pad(m, 5, Stream(mx, seed=8), wg_size=WG)
        analytic = sung_pad_launches(30, 25, 5, 4, mx, wg_size=WG)
        assert_matches(analytic, r.counters)

    def test_unpad_single_launch(self, rng, mx):
        m = rng.integers(0, 9, (20, 30)).astype(np.float32)
        r = sung_unpad(m, 6, Stream(mx, seed=9), wg_size=WG)
        analytic = sung_unpad_launches(20, 30, 6, 4, mx, wg_size=WG)
        assert_matches(analytic, r.counters)


class TestAtomic:
    @pytest.mark.parametrize("method", ["plain", "shared"])
    def test_bytes_and_contention(self, rng, mx, method):
        a = rng.integers(1, 10, 3000).astype(np.float32)
        a[rng.choice(3000, 1000, replace=False)] = 0.0
        r = atomic_compact(a, 0.0, method, Stream(mx, seed=10),
                           wg_size=WG, coarsening=CF)
        analytic = atomic_compact_launches(
            3000, r.extras["n_kept"], 4, mx, method=method,
            wg_size=WG, coarsening=CF)
        assert_matches(analytic, r.counters)
        assert analytic[0].extras["serialized_atomics"] == (
            r.extras["serialized_atomics"])
