"""Analytic keyed-DS builder: consistency with the simulator."""

import numpy as np
import pytest

from repro.config import DSConfig
from repro.core import less_than
from repro.errors import ModelError
from repro.perfmodel import ds_keyed_launches, price_pipeline
from repro.primitives import ds_compact_records, ds_unique_by_key
from repro.simgpu import Stream, get_device


@pytest.fixture
def mx():
    return get_device("maxwell")


class TestKeyedBuilder:
    def test_matches_record_compaction_counters(self, rng, mx):
        n = 2000
        key = rng.integers(0, 10, n).astype(np.float32)
        cols = {"a": rng.random(n).astype(np.float32),
                "b": rng.random(n).astype(np.float32)}
        r = ds_compact_records(key, cols, less_than(5), Stream(mx, seed=1),
                                                               config=DSConfig(
                                                                   wg_size=64, coarsening=2))
        analytic = ds_keyed_launches(n, r.extras["n_kept"], 4, mx,
                                     n_payloads=2, wg_size=64, coarsening=2)
        measured = r.counters[0]
        assert analytic[0].grid_size == measured.grid_size
        assert analytic[0].bytes_loaded == measured.bytes_loaded
        assert analytic[0].bytes_stored == measured.bytes_stored

    def test_matches_unique_by_key_counters(self, rng, mx):
        keys = np.repeat(rng.integers(0, 30, 500), 3)[:1200].astype(np.float32)
        vals = np.arange(1200, dtype=np.float32)
        r = ds_unique_by_key(keys, vals, Stream(mx, seed=2),
                                                config=DSConfig(
                                                    wg_size=64, coarsening=2))
        analytic = ds_keyed_launches(1200, r.extras["n_kept"], 4, mx,
                                     n_payloads=1, wg_size=64, coarsening=2,
                                     stencil=True)
        measured = r.counters[0]
        assert analytic[0].bytes_loaded == measured.bytes_loaded
        assert analytic[0].bytes_stored == measured.bytes_stored

    def test_chain_cost_independent_of_record_width(self, mx):
        """The extension's selling point: columns scale traffic, not the
        synchronization chain."""
        narrow = ds_keyed_launches(1 << 20, 1 << 19, 4, mx, n_payloads=0)[0]
        wide = ds_keyed_launches(1 << 20, 1 << 19, 4, mx, n_payloads=8)[0]
        assert wide.extras["adjacent_syncs"] == narrow.extras["adjacent_syncs"]
        assert wide.bytes_moved > 5 * narrow.bytes_moved
        t_narrow = price_pipeline([narrow], mx).total_us
        t_wide = price_pipeline([wide], mx).total_us
        assert t_wide > 5 * t_narrow  # time follows traffic

    def test_validation(self, mx):
        with pytest.raises(ModelError):
            ds_keyed_launches(10, 11, 4, mx)
        with pytest.raises(ModelError):
            ds_keyed_launches(10, 5, 4, mx, n_payloads=-1)

    def test_payload_itemsize_override(self, mx):
        a = ds_keyed_launches(1000, 500, 4, mx, n_payloads=1,
                              payload_itemsize=8, wg_size=64, coarsening=2)[0]
        b = ds_keyed_launches(1000, 500, 4, mx, n_payloads=1,
                              wg_size=64, coarsening=2)[0]
        assert a.bytes_loaded == b.bytes_loaded + 1000 * 4
