"""The analytic cost model's behavioural properties."""

import pytest

from repro.errors import ModelError
from repro.perfmodel import (
    get_calibration,
    price_launch,
    price_pipeline,
    sequential_time_us,
)
from repro.simgpu import get_device
from repro.simgpu.counters import LaunchCounters


def counters(grid=64, wg=256, loaded=1 << 20, stored=1 << 20, resident=None,
             **extras):
    c = LaunchCounters(kernel_name="k", grid_size=grid, wg_size=wg,
                       bytes_loaded=loaded, bytes_stored=stored,
                       peak_resident=resident if resident else grid)
    c.extras.update(extras)
    return c


@pytest.fixture
def mx():
    return get_device("maxwell")


class TestMemTerm:
    def test_more_bytes_more_time(self, mx):
        a = price_launch(counters(loaded=1 << 20), mx).total_us
        b = price_launch(counters(loaded=1 << 22), mx).total_us
        assert b > a

    def test_low_residency_slower(self, mx):
        full = price_launch(counters(resident=64), mx).total_us
        single = price_launch(counters(grid=1, resident=1), mx).total_us
        assert single > 2 * full

    def test_peak_bandwidth_is_a_hard_ceiling(self, mx):
        c = counters(loaded=10**9, stored=10**9)
        t = price_launch(c, mx).mem_us
        floor = 2e9 / mx.bandwidth_bytes_per_us()
        assert t > floor

    def test_spill_penalty_applies(self, mx):
        base = price_launch(counters(), mx).total_us
        spilled = price_launch(counters(spilled=1.0), mx).total_us
        calib = get_calibration("maxwell")
        assert spilled == pytest.approx(
            (base - mx.launch_overhead_us) * calib.spill_penalty
            + mx.launch_overhead_us, rel=0.01)

    def test_irregular_slower_than_streaming(self, mx):
        s = price_launch(counters(), mx, api="cuda").total_us
        i = price_launch(counters(irregular=1.0), mx, api="cuda").total_us
        assert i > s

    def test_kepler_opencl_irregular_penalty(self):
        kp = get_device("kepler")
        c = counters(irregular=1.0)
        cuda = price_launch(c, kp, api="cuda").total_us
        opencl = price_launch(c, kp, api="opencl").total_us
        assert opencl > cuda

    def test_access_overhead_scales_traffic(self, mx):
        a = price_launch(counters(), mx).mem_us
        b = price_launch(counters(access_overhead=1.5), mx).mem_us
        assert b == pytest.approx(1.5 * a, rel=1e-6)

    def test_measured_transactions_override_raw_bytes(self, mx):
        c = counters(loaded=1 << 20, stored=0)
        c.load_transactions = (1 << 20) // 128 * 3  # badly coalesced
        t_bad = price_launch(c, mx).mem_us
        t_raw = price_launch(counters(loaded=1 << 20, stored=0), mx).mem_us
        assert t_bad == pytest.approx(3 * t_raw, rel=1e-6)


class TestChainTerm:
    def test_chain_hidden_when_memory_dominates(self, mx):
        few_syncs = counters(adjacent_syncs=10.0)
        cost = price_launch(few_syncs, mx)
        assert cost.total_us == pytest.approx(
            cost.launch_us + cost.mem_us, rel=1e-6)

    def test_chain_binds_with_many_tiny_tiles(self, mx):
        many = counters(grid=100_000, loaded=1 << 20, stored=1 << 20,
                        adjacent_syncs=100_000.0, resident=64)
        cost = price_launch(many, mx)
        assert cost.chain_us > cost.mem_us
        assert cost.total_us == pytest.approx(
            cost.launch_us + cost.chain_us, rel=1e-6)


class TestCollectiveTerm:
    def test_rounds_cost_time(self, mx):
        base = price_launch(counters(), mx).total_us
        coll = price_launch(counters(collective_rounds=100.0), mx).total_us
        assert coll > base

    def test_native_shuffle_cheaper_than_emulated(self):
        mx = get_device("maxwell")
        c = counters(collective_rounds=100.0, opt_collectives=1.0)
        native = price_launch(c, mx, api="cuda").collective_us
        emulated = price_launch(c, mx, api="opencl").collective_us
        assert native < emulated

    def test_optimized_cheaper_than_tree(self, mx):
        tree = price_launch(counters(collective_rounds=100.0), mx,
                            api="cuda").collective_us
        opt = price_launch(counters(collective_rounds=100.0,
                                    opt_collectives=1.0), mx,
                           api="cuda").collective_us
        assert opt < tree


class TestAtomicsAndPipelines:
    def test_serialized_atomics_cost(self, mx):
        base = price_launch(counters(), mx).total_us
        hot = price_launch(counters(serialized_atomics=1e6), mx).total_us
        assert hot > base + 100

    def test_pipeline_sums_and_counts(self, mx):
        pipe = price_pipeline([counters(), counters(), counters()], mx)
        single = price_launch(counters(), mx).total_us
        assert pipe.num_launches == 3
        assert pipe.total_us == pytest.approx(3 * single, rel=1e-6)

    def test_empty_pipeline_rejected(self, mx):
        with pytest.raises(ModelError):
            price_pipeline([], mx)

    def test_pipeline_breakdown_renders(self, mx):
        pipe = price_pipeline([counters()], mx)
        assert "pipeline total" in pipe.breakdown()

    def test_bad_api_rejected(self, mx):
        with pytest.raises(ModelError):
            price_launch(counters(), mx, api="metal")


class TestSequential:
    def test_bytes_over_bandwidth(self):
        d = get_device("cpu-mxpa")
        calib = get_calibration("cpu-mxpa")
        t = sequential_time_us(10**9, d)
        assert t == pytest.approx(1e9 / (calib.sequential_bw_gbps * 1e3))

    def test_negative_bytes_rejected(self):
        with pytest.raises(ModelError):
            sequential_time_us(-1, get_device("cpu-mxpa"))
