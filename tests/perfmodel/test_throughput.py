"""Throughput conventions (figure y-axes)."""

import pytest

from repro.errors import ModelError
from repro.perfmodel import (
    gbps,
    pad_useful_bytes,
    partition_useful_bytes,
    select_useful_bytes,
    unpad_useful_bytes,
)


class TestGbps:
    def test_unit_conversion(self):
        # 1 GB in 1 ms = 1000 GB/s.
        assert gbps(1e9, 1000.0) == pytest.approx(1000.0)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ModelError):
            gbps(1.0, 0.0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ModelError):
            gbps(-1.0, 1.0)


class TestConventions:
    def test_pad_counts_read_plus_write(self):
        assert pad_useful_bytes(100, 50, 4) == 2 * 100 * 50 * 4

    def test_unpad_counts_kept_only(self):
        assert unpad_useful_bytes(100, 40, 4) == 2 * 100 * 40 * 4

    def test_select_counts_input_plus_kept(self):
        assert select_useful_bytes(1000, 400, 4) == 1400 * 4

    def test_partition_counts_everything_twice(self):
        assert partition_useful_bytes(1000, 4) == 8000

    def test_select_rejects_kept_above_input(self):
        with pytest.raises(ModelError):
            select_useful_bytes(10, 11, 4)

    def test_rejects_bad_itemsize(self):
        with pytest.raises(ModelError):
            pad_useful_bytes(10, 10, 0)
        with pytest.raises(ModelError):
            partition_useful_bytes(10, -4)

    def test_rejects_negative_dims(self):
        with pytest.raises(ModelError):
            pad_useful_bytes(-1, 10, 4)
        with pytest.raises(ModelError):
            partition_useful_bytes(-1, 4)
