"""Invariants of the event-driven timing replay."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import gbps
from repro.simgpu import Buffer, get_device, launch, replay_timing


def copy_kernel(wg, src, dst, n, cf):
    pos = wg.group_index * cf * wg.size + wg.wi_id
    for _ in range(cf):
        m = pos[pos < n]
        if m.size:
            vals = yield from wg.load(src, m)
            yield from wg.store(dst, m, vals)
        pos = pos + wg.size


def run_trace(device, n, cf, wg, resident, seed):
    src = Buffer(np.arange(n, dtype=np.float32), "src",
                 count_transactions=False)
    dst = Buffer(np.zeros(n, dtype=np.float32), "dst",
                 count_transactions=False)
    trace = []
    grid = (n + cf * wg - 1) // (cf * wg)
    launch(copy_kernel, grid_size=grid, wg_size=wg, device=device,
           args=(src, dst, n, cf), resident_limit=resident,
           trace=trace, seed=seed)
    return trace


class TestReplayInvariants:
    @settings(max_examples=20, deadline=None)
    @given(n=st.sampled_from([4096, 16384, 65536]),
           cf=st.integers(1, 8),
           resident=st.integers(1, 64),
           seed=st.integers(0, 2**16))
    def test_makespan_bounds(self, n, cf, resident, seed):
        device = get_device("maxwell")
        trace = run_trace(device, n, cf, 64, resident, seed)
        t = replay_timing(trace, device, resident_limit=resident)
        # Makespan can never beat the fluid bandwidth bound...
        assert t.makespan_us >= t.busy_us * 0.999
        # ...and every group finished within the makespan.
        assert max(t.per_group_finish.values()) == pytest.approx(t.makespan_us)
        assert t.n_events == len(trace)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_more_residency_never_slower(self, seed):
        device = get_device("maxwell")
        times = []
        for resident in (2, 8, 32):
            trace = run_trace(device, 65536, 4, 64, resident, seed)
            times.append(replay_timing(trace, device,
                                       resident_limit=resident).makespan_us)
        assert times[0] >= times[1] * 0.99 >= times[2] * 0.98

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_replay_deterministic_for_a_trace(self, seed):
        device = get_device("maxwell")
        trace = run_trace(device, 16384, 2, 64, 8, seed)
        a = replay_timing(trace, device, resident_limit=8).makespan_us
        b = replay_timing(trace, device, resident_limit=8).makespan_us
        assert a == b

    def test_faster_device_is_faster(self):
        trace_args = (65536, 8, 64, 64, 3)
        times = {}
        for name in ("hawaii", "kaveri"):
            device = get_device(name)
            trace = run_trace(device, *trace_args[:-1], trace_args[-1])
            times[name] = replay_timing(trace, device,
                                        resident_limit=64).makespan_us
        assert times["hawaii"] < times["kaveri"]
