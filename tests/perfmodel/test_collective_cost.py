"""Collective-round accounting and calibration table sanity."""

import pytest

from repro.errors import ModelError
from repro.perfmodel import (
    CALIBRATIONS,
    Calibration,
    collective_rounds_per_wg,
    get_calibration,
    is_optimized_variant,
)


class TestRounds:
    def test_tree_scan_dominates(self):
        # cf x 2log2(wg) + log2(wg) for tree/tree.
        rounds = collective_rounds_per_wg(256, 32, 16, "tree", "tree")
        assert rounds == 16 * 16 + 8

    def test_optimized_is_far_cheaper(self):
        tree = collective_rounds_per_wg(256, 32, 16, "tree", "tree")
        opt = collective_rounds_per_wg(256, 32, 16, "shuffle", "shuffle")
        assert opt < tree / 3

    def test_ballot_equals_shuffle_round_count(self):
        a = collective_rounds_per_wg(256, 32, 8, "tree", "ballot")
        b = collective_rounds_per_wg(256, 32, 8, "tree", "shuffle")
        assert a == b

    def test_more_coarsening_more_scan_rounds(self):
        a = collective_rounds_per_wg(256, 32, 4)
        b = collective_rounds_per_wg(256, 32, 8)
        assert b > a

    def test_wavefront64_has_fewer_warps(self):
        nv = collective_rounds_per_wg(256, 32, 8, "shuffle", "shuffle")
        amd = collective_rounds_per_wg(256, 64, 8, "shuffle", "shuffle")
        assert amd <= nv

    def test_rejects_bad_config(self):
        with pytest.raises(ModelError):
            collective_rounds_per_wg(100, 32, 4)
        with pytest.raises(ModelError):
            collective_rounds_per_wg(256, 32, 0)
        with pytest.raises(ModelError):
            collective_rounds_per_wg(256, 32, 4, "bogus", "tree")
        with pytest.raises(ModelError):
            collective_rounds_per_wg(256, 32, 4, "tree", "bogus")

    def test_is_optimized_variant(self):
        assert not is_optimized_variant("tree")
        assert is_optimized_variant("ballot")
        assert is_optimized_variant("shuffle")
        with pytest.raises(ModelError):
            is_optimized_variant("sorting")


class TestCalibrationTable:
    def test_every_device_has_a_calibration(self):
        from repro.simgpu import DEVICES
        assert set(CALIBRATIONS) == set(DEVICES)

    def test_lookup(self):
        assert get_calibration("maxwell").streaming_eff == pytest.approx(0.59)
        with pytest.raises(ModelError, match="known"):
            get_calibration("volta")

    def test_streaming_eff_anchored_to_table1(self):
        # Maxwell: 131.53 / 224 peak; Hawaii: 168.58 / 320 peak.
        assert get_calibration("maxwell").streaming_eff == pytest.approx(
            131.53 / 224, abs=0.02)
        assert get_calibration("hawaii").streaming_eff == pytest.approx(
            168.58 / 320, abs=0.02)

    def test_validation(self):
        with pytest.raises(ModelError):
            Calibration(streaming_eff=0.0)
        with pytest.raises(ModelError):
            Calibration(streaming_eff=0.5, irregular_eff=1.5)
        with pytest.raises(ModelError):
            Calibration(streaming_eff=0.5, spill_penalty=0.5)

    def test_kepler_is_the_opencl_outlier(self):
        kp = get_calibration("kepler")
        others = [get_calibration(n) for n in ("fermi", "maxwell", "hawaii")]
        assert all(kp.opencl_irregular_penalty > o.opencl_irregular_penalty
                   for o in others)
