"""The figure registry: every reproduced figure is well-formed and its
qualitative shape matches the paper's."""

import pytest

from repro.analysis import FIGURES, cpu_sequential_comparison, table1_summary
from repro.analysis.figures import (
    fig02_iterative_padding,
    fig06_coarsening,
    fig08_padding_columns,
    fig08_padding_sizes,
    fig09_unpadding_sizes,
    fig12_select,
    fig13_compaction,
    fig14_compaction_portability,
    fig16_unique,
    fig19_partition,
)


class TestRegistry:
    def test_all_data_figures_registered(self):
        expected = {"fig2", "fig6", "fig8ab", "fig8cd", "fig9ab", "fig9cd",
                    "fig10-pad", "fig10-unpad", "fig12", "fig13", "fig14",
                    "fig16", "fig17", "fig19", "fig20"}
        assert set(FIGURES) == expected

    @pytest.mark.parametrize("figure_id", sorted(
        {"fig2", "fig6", "fig8ab", "fig8cd", "fig9ab", "fig9cd",
         "fig10-pad", "fig10-unpad", "fig12", "fig13", "fig14",
         "fig16", "fig17", "fig19", "fig20"}))
    def test_every_figure_is_well_formed(self, figure_id):
        fig = FIGURES[figure_id]()
        assert fig.series, figure_id
        for s in fig.series:
            assert len(s.values) == len(fig.x_ticks), (figure_id, s.name)
            assert all(v is None or v >= 0 for v in s.values)
        # Renders without error.
        from repro.analysis import render_figure
        text = render_figure(fig)
        assert fig.figure_id in text


class TestFig2Shape:
    def test_parallelism_decays_to_one(self):
        fig = fig02_iterative_padding()
        par = fig.series_by_name("parallelism (rows)").values
        assert par[0] > 50
        assert par[-1] == 1.0

    def test_throughput_decays_with_parallelism(self):
        fig = fig02_iterative_padding()
        tp = fig.series_by_name("throughput GB/s").values
        assert tp[0] > 4 * tp[-1]


class TestFig6Shape:
    def test_rise_plateau_cliff(self):
        fig = fig06_coarsening()
        for s in fig.series:
            vals = dict(zip(fig.x_ticks, s.values))
            assert vals[1] < vals[8]            # chain amortizes
            assert vals[48] < 0.75 * vals[32]   # spill cliff


class TestFig8and9Shapes:
    @pytest.mark.parametrize("device", ["maxwell", "hawaii"])
    def test_ds_beats_baseline_everywhere(self, device):
        fig = fig08_padding_sizes(device)
        ds = fig.series_by_name("DS Padding").values
        base = fig.series_by_name("Baseline [11]").values
        assert all(d > b for d, b in zip(ds, base))

    def test_hawaii_speedup_larger_than_maxwell(self):
        mx = fig08_padding_sizes("maxwell")
        hw = fig08_padding_sizes("hawaii")

        def max_speedup(fig):
            ds = fig.series_by_name("DS Padding").values
            base = fig.series_by_name("Baseline [11]").values
            return max(d / b for d, b in zip(ds, base))

        assert max_speedup(hw) > max_speedup(mx) > 4

    def test_baseline_improves_with_more_padding(self):
        fig = fig08_padding_columns("maxwell")
        base = fig.series_by_name("Baseline [11]").values
        assert base[-1] > base[0]  # more pad = more parallelism

    def test_ds_padding_independent_of_pad_width(self):
        fig = fig08_padding_columns("maxwell")
        ds = fig.series_by_name("DS Padding").values
        assert max(ds) / min(ds) < 1.2

    def test_unpadding_baseline_flat(self):
        fig = fig09_unpadding_sizes("maxwell")
        base = fig.series_by_name("Baseline (1 wg)").values
        assert max(base) / min(base) < 1.5


class TestIrregularFigures:
    def test_fig12_ds_beats_thrust_at_every_fraction(self):
        fig = fig12_select()
        ds = fig.series_by_name("DS Remove_if (in-place)").values
        for name in ("thrust::remove_if", "thrust::remove_copy_if"):
            th = fig.series_by_name(name).values
            assert all(d > t for d, t in zip(ds, th))

    def test_fig12_speedup_in_paper_band(self):
        fig = fig12_select()
        ds = fig.series_by_name("DS Remove_if (in-place)").values
        th = fig.series_by_name("thrust::remove_if").values
        ratios = [d / t for d, t in zip(ds, th)]
        # Paper: 2.15x-3.50x across the sweep.
        assert 1.5 <= min(ratios) and max(ratios) <= 5.0

    def test_fig13_stability_costs_against_unstable(self):
        fig = fig13_compaction()
        ds = fig.series_by_name("DS Stream Compaction (in-place)").values
        shared = fig.series_by_name(
            "atomic shared-aggregated (unstable)").values
        mid = len(ds) // 2
        assert 0.5 <= ds[mid] / shared[mid] <= 0.95

    def test_fig16_unique_beats_thrust(self):
        fig = fig16_unique()
        ds = fig.series_by_name("DS Unique (in-place)").values
        th = fig.series_by_name("thrust::unique").values
        ratios = [d / t for d, t in zip(ds, th)]
        assert min(ratios) > 2.0  # paper: > 3.47x in-place, > 2.70x copy

    def test_fig19_in_place_rises_with_true_fraction(self):
        fig = fig19_partition()
        ds_in = fig.series_by_name("DS Partition (in-place)").values
        assert ds_in[-1] > ds_in[1]

    def test_fig14_optimized_beats_base_on_every_device(self):
        fig = fig14_compaction_portability()
        by_name = {s.name: s.values for s in fig.series}
        for dev in ("fermi", "kepler", "maxwell", "hawaii"):
            base = by_name[f"{dev} (base)"]
            opt = by_name[f"{dev} (optimized)"]
            assert all(o > b for o, b in zip(opt, base)), dev

    def test_fig14_kepler_below_fermi_in_opencl(self):
        fig = fig14_compaction_portability()
        by_name = {s.name: s.values for s in fig.series}
        assert by_name["kepler (base)"][-1] < by_name["fermi (base)"][-1]


class TestTable1:
    def test_thirteen_rows(self):
        rows = table1_summary()
        assert len(rows) == 13
        primitives = {r["primitive"] for r in rows}
        assert primitives == {"Padding", "Unpadding", "Select", "Unique",
                              "Partition"}

    def test_every_speedup_positive_and_near_paper(self):
        for row in table1_summary():
            assert row["speedup"] > 1.0, row
            assert 0.4 * row["paper_speedup"] <= row["speedup"] <= (
                2.2 * row["paper_speedup"]), row

    def test_cpu_comparison(self):
        rows = cpu_sequential_comparison()
        assert {r["operation"] for r in rows} == {"pad", "unpad"}
        for r in rows:
            assert r["speedup"] > 1.5
