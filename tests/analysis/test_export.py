"""CSV/dict export of reproduced figures."""

import csv
import io

from repro.analysis import (
    FIGURES,
    figure_to_csv,
    figure_to_dict,
    table1_to_csv,
)


class TestFigureExport:
    def test_dict_columns(self):
        fig = FIGURES["fig6"]()
        d = figure_to_dict(fig)
        assert fig.x_label in d
        assert len(d) == 1 + len(fig.series)
        assert all(len(v) == len(fig.x_ticks) for v in d.values())

    def test_csv_roundtrip(self):
        fig = FIGURES["fig8ab"]()
        text = figure_to_csv(fig)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == [fig.x_label] + [s.name for s in fig.series]
        assert len(rows) == 1 + len(fig.x_ticks)
        # Values parse back to the originals.
        assert float(rows[1][1]) == fig.series[0].values[0]

    def test_csv_writes_file(self, tmp_path):
        fig = FIGURES["fig6"]()
        out = tmp_path / "fig6.csv"
        text = figure_to_csv(fig, out)
        assert out.read_text() == text

    def test_table1_csv(self, tmp_path):
        out = tmp_path / "table1.csv"
        text = table1_to_csv(out)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "primitive"
        assert len(rows) == 1 + 13
        assert out.exists()
