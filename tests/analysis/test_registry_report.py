"""The experiment registry and the ``python -m repro report`` renderer."""

import json

import pytest

from repro.analysis.registry import EXPERIMENTS, ReportContext, Section
from repro.analysis.report import (
    build_report,
    render_html,
    render_markdown,
)
from repro.errors import ReproError
from repro.obs.benchindex import append_rows
from repro.tune.db import TuningDB


@pytest.fixture
def empty_ctx(tmp_path):
    return ReportContext(results_dir=tmp_path)


@pytest.fixture
def full_ctx(tmp_path):
    (tmp_path / "BENCH_fig13.json").write_text(json.dumps({
        "id": "fig13", "timing": "median",
        "wall_clock_s": {"simulated": 0.5, "vectorized": 0.01,
                         "compiled": 0.009},
        "speedup": 50.0, "speedup_compiled": 1.1,
        "compiled_fallback": True, "counters": [],
    }))
    append_rows(tmp_path, [
        {"id": "fig13", "backend": "vectorized", "wall_clock_s": 0.01,
         "speedup": 50.0, "rev": "abc1234", "timestamp": 1754600000.0},
        {"id": "serve_load", "backend": "serve", "shape": "chain",
         "throughput_rps": 300.0, "latency_p50_ms": 3.0,
         "latency_p95_ms": 6.0, "latency_p99_ms": 9.0,
         "batch_size_mean": 3.5, "plan_hit_rate": 0.97,
         "rev": "abc1234", "timestamp": 1754600000.0},
    ])
    db = TuningDB(tmp_path / "TUNING_DB.json")
    db.set("kernel|x", kind="kernel", knobs={"coarsening": 4},
           objective={"wall_ms": 1.0}, baseline={"wall_ms": 2.0},
           trials=12, backend="vectorized", timestamp=1754600000.0,
           meta={"ops": "compact", "n": 1024})
    db.save()
    return ReportContext(results_dir=tmp_path)


class TestRegistry:
    def test_every_experiment_renders_without_data(self, empty_ctx):
        for name, fn in EXPERIMENTS.items():
            section = fn(empty_ctx)
            assert isinstance(section, Section) and section.name == name
            assert section.body  # a stub or real content, never empty

    def test_missing_artifacts_name_the_producing_command(self, empty_ctx):
        body = EXPERIMENTS["tuning_trajectory"](empty_ctx).body
        assert "No data yet" in body and "repro tune" in body

    def test_backend_ladder_reads_snapshots(self, full_ctx):
        body = EXPERIMENTS["fig13_backend_ladder"](full_ctx).body
        assert "fig13" in body and "50.0x" in body and "median" in body

    def test_trajectory_and_slo_read_the_index(self, full_ctx):
        assert "abc1234" in EXPERIMENTS["bench_trajectory"](full_ctx).body
        slo = EXPERIMENTS["serve_slo"](full_ctx).body
        assert "chain" in slo and "6.00ms" in slo

    def test_tuning_trajectory_shows_gain(self, full_ctx):
        body = EXPERIMENTS["tuning_trajectory"](full_ctx).body
        assert "compact (n=1024)" in body
        assert "+50.0%" in body  # 2.0ms -> 1.0ms


class TestReport:
    def test_build_report_all_sections(self, full_ctx):
        sections = build_report(full_ctx)
        assert [s.name for s in sections] == list(EXPERIMENTS)
        md = render_markdown(sections, timestamp=1754600000.0)
        assert md.startswith("# In-Place Data Sliding")
        for s in sections:
            assert f"## {s.title}" in md

    def test_unknown_experiment_rejected(self, empty_ctx):
        with pytest.raises(ReproError, match="nope"):
            build_report(empty_ctx, ["nope"])

    def test_selection_preserves_order(self, empty_ctx):
        sections = build_report(empty_ctx,
                                ["serve_slo", "fig06_sweep"])
        assert [s.name for s in sections] == ["serve_slo", "fig06_sweep"]

    def test_html_rendering(self, full_ctx):
        md = render_markdown(build_report(full_ctx), timestamp=0.0)
        html = render_html(md)
        assert html.startswith("<!DOCTYPE html>")
        assert "<table>" in html and "<h2>" in html
        assert "| ---" not in html  # separator rows consumed
        assert "fig13" in html
