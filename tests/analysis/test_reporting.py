"""Text rendering of figures and tables."""

import pytest

from repro.analysis import FigureData, Series, render_figure, render_table


@pytest.fixture
def fig():
    return FigureData(
        figure_id="figX",
        title="demo",
        x_label="size",
        x_ticks=[1, 2, 4],
        y_label="GB/s",
        series=[Series("DS", [10.0, 20.0, 30.0]),
                Series("baseline", [1.0, 2.0, 3.0])],
        notes=["a note"],
    )


class TestFigureData:
    def test_series_by_name(self, fig):
        assert fig.series_by_name("DS").values == [10.0, 20.0, 30.0]
        with pytest.raises(KeyError):
            fig.series_by_name("ghost")

    def test_as_rows_header_and_body(self, fig):
        rows = fig.as_rows()
        assert rows[0] == ["size", "DS", "baseline"]
        assert rows[1] == ["1", "10.00", "1.00"]
        assert len(rows) == 4

    def test_none_rendered_as_dash(self, fig):
        fig.series[0].values[1] = None
        assert "-" in fig.as_rows()[2]


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table([["name", "v"], ["a", "1.0"], ["bbbb", "22.0"]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[1].startswith("-")

    def test_render_table_empty(self):
        assert render_table([]) == ""

    def test_render_figure_contains_everything(self, fig):
        text = render_figure(fig)
        assert "figX" in text and "demo" in text
        assert "GB/s" in text
        assert "baseline" in text
        assert "note: a note" in text
