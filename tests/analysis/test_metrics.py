"""Metric helpers."""

import pytest

from repro.analysis import geometric_mean, percent_gain, speedup
from repro.errors import ModelError


class TestSpeedup:
    def test_ratio(self):
        assert speedup(100.0, 25.0) == pytest.approx(4.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            speedup(0.0, 1.0)
        with pytest.raises(ModelError):
            speedup(1.0, 0.0)


class TestPercentGain:
    def test_positive_gain(self):
        assert percent_gain(140.0, 100.0) == pytest.approx(40.0)

    def test_negative_gain(self):
        assert percent_gain(90.0, 100.0) == pytest.approx(-10.0)

    def test_rejects_nonpositive_base(self):
        with pytest.raises(ModelError):
            percent_gain(1.0, 0.0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_element(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ModelError):
            geometric_mean([])
        with pytest.raises(ModelError):
            geometric_mean([1.0, -2.0])
