"""Flight recorder: bounded ring, span-sink feed, incident bundles."""

import json

import pytest

from repro.obs.export import validate_chrome_trace
from repro.obs.flight import FlightRecorder, TRIGGERS
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def tick(self, us: float):
        self.ns += int(us * 1000)


class TestRing:
    def test_event_ring_is_bounded(self):
        fr = FlightRecorder(capacity=4)
        for i in range(10):
            fr.record_event("serve.admit", request_id=i)
        events = fr.events()
        assert len(events) == 4
        assert [e["request_id"] for e in events] == [6, 7, 8, 9]

    def test_events_carry_timestamp_and_name(self):
        fr = FlightRecorder(capacity=8)
        fr.record_event("serve.dispatch", batch_size=3)
        (ev,) = fr.events()
        assert ev["event"] == "serve.dispatch"
        assert ev["batch_size"] == 3
        assert ev["ts_us"] >= 0.0

    def test_span_ring_is_bounded(self):
        fr = FlightRecorder(capacity=3)
        clock = FakeClock()
        t = Tracer("spans", clock=clock)
        with fr:
            for i in range(7):
                sp = t.span(f"s{i}", track="host")
                clock.tick(1)
                sp.finish()
        assert [sp.name for sp in fr.spans()] == ["s4", "s5", "s6"]

    def test_sink_installed_only_between_install_uninstall(self):
        fr = FlightRecorder(capacity=8)
        clock = FakeClock()
        t = Tracer("spans", clock=clock)
        t.span("before", track="host").finish()
        fr.install()
        t.span("during", track="host").finish()
        fr.uninstall()
        t.span("after", track="host").finish()
        assert [sp.name for sp in fr.spans()] == ["during"]


class TestDump:
    def _filled(self):
        fr = FlightRecorder(capacity=16)
        clock = FakeClock()
        t = Tracer("spans", clock=clock)
        with fr:
            sp = t.span("launch[k]", cat="launch", track="host")
            wg = t.span("load", cat="phase", track="wg:0")
            clock.tick(5)
            wg.finish()
            sp.finish()
        fr.record_event("serve.request_failed", request_id=3,
                        ops="ds_stream_compact", phase="execute",
                        error="LaunchError: boom")
        return fr

    def test_bundle_layout_and_trace_validates(self, tmp_path):
        fr = self._filled()
        fr.incident_dir = tmp_path / "incidents"
        bundle = fr.dump("launch_error", reason="retries exhausted")
        assert bundle.parent == tmp_path / "incidents"
        assert "launch_error" in bundle.name
        doc = json.loads((bundle / "trace.json").read_text())
        validate_chrome_trace(doc)
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"launch[k]", "load"} <= names

    def test_manifest_names_trigger_context_and_configs(self, tmp_path):
        from repro.config import DSConfig
        from repro.serve.config import ServeConfig

        fr = self._filled()
        fr.incident_dir = tmp_path
        reg = MetricsRegistry()
        reg.counter("serve.admitted").inc(4)
        bundle = fr.dump(
            "breaker_open", reason="3 consecutive failures",
            metrics=reg, ds_config=DSConfig(),
            serve_config=ServeConfig(slo_ms=5.0),
            context={"request_ids": [3], "ops": "ds_stream_compact",
                     "phase": "execute"})
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["kind"] == "repro-incident-bundle"
        assert manifest["trigger"] == "breaker_open"
        assert manifest["context"]["request_ids"] == [3]
        assert manifest["context"]["phase"] == "execute"
        assert manifest["serve_config"]["slo_ms"] == 5.0
        assert manifest["ds_config"] is not None
        assert any(m["name"] == "serve.admitted" and m["value"] == 4
                   for m in manifest["metrics"])
        failed = [e for e in manifest["events"]
                  if e["event"] == "serve.request_failed"]
        assert failed and failed[0]["request_id"] == 3

    def test_maybe_dump_rate_limits_per_trigger(self, tmp_path):
        fr = FlightRecorder(capacity=4, incident_dir=tmp_path,
                            cooldown_ms=60_000.0)
        fr.record_event("serve.request_expired", request_id=0)
        first = fr.maybe_dump("deadline")
        assert first is not None
        assert fr.maybe_dump("deadline") is None  # same trigger: cooled
        assert fr.maybe_dump("breaker_open") is not None  # distinct
        assert len(fr.dumps) == 2

    def test_dump_counts_and_sequence_numbers(self, tmp_path):
        fr = FlightRecorder(capacity=4, incident_dir=tmp_path)
        a = fr.dump("manual")
        b = fr.dump("manual")
        assert a != b
        assert fr.dumps == [a, b]

    def test_trigger_taxonomy_is_stable(self):
        # docs and the serve layer both key on these literals
        assert set(TRIGGERS) == {"breaker_open", "deadline",
                                 "launch_error", "slo_breach", "manual"}

    def test_empty_ring_still_dumps_valid_bundle(self, tmp_path):
        fr = FlightRecorder(capacity=4, incident_dir=tmp_path)
        bundle = fr.dump("manual")
        validate_chrome_trace(
            json.loads((bundle / "trace.json").read_text()))
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["n_spans"] == 0 and manifest["n_events"] == 0


class TestConfigSnapshot:
    def test_non_dataclass_object_falls_back(self, tmp_path):
        class Odd:
            __slots__ = ()

        fr = FlightRecorder(capacity=2, incident_dir=tmp_path)
        bundle = fr.dump("manual", ds_config=Odd())
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert "repr" in manifest["ds_config"]
