"""Trace analyzer: decomposition arithmetic, spin attribution, serve
lifecycle stages, incident bundles and the CLI."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.analyze import analyze, check_report, load_trace, main
from repro.obs.export import export_chrome_trace, export_jsonl
from repro.obs.flight import FlightRecorder
from repro.obs.tracer import Tracer
from repro.primitives import ds_stream_compact


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def tick(self, us: float):
        self.ns += int(us * 1000)


def synthetic_launch_tracer():
    """One launch, one work-group, hand-placed phases so every number
    in the decomposition is known exactly:

    load 10us | sync 5us (spin 4us, waits on wg 0) | store 5us -> wall 20us
    """
    clock = FakeClock()
    t = Tracer("full", clock=clock)
    launch = t.span("ds_regular[k]", cat="launch",
                    args={"backend": "simulated"})
    ld = t.span("load", cat="phase", track="wg:0")
    clock.tick(10)
    ld.finish()
    sy = t.span("sync", cat="phase", track="wg:0", args={"wg_id": 1})
    sw = t.span("sync_wait", cat="sched", track="wg:0",
                args={"waits_on": 0})
    clock.tick(4)
    sw.finish()
    clock.tick(1)
    sy.finish()
    st = t.span("store", cat="phase", track="wg:0")
    clock.tick(5)
    st.finish()
    launch.finish()
    return t


class TestLaunchDecomposition:
    @pytest.fixture
    def report(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(synthetic_launch_tracer(), path)
        return analyze(str(path))

    def test_exact_phase_attribution(self, report):
        (launch,) = report["processes"][0]["launches"]
        assert launch["wall_us"] == pytest.approx(20.0)
        (wg,) = launch["workgroups"]
        assert wg["load_us"] == pytest.approx(10.0)
        assert wg["spin_us"] == pytest.approx(4.0)
        assert wg["store_us"] == pytest.approx(5.0)
        assert wg["idle_us"] == pytest.approx(0.0)

    def test_decomposition_sums_to_wall(self, report):
        (launch,) = report["processes"][0]["launches"]
        (wg,) = launch["workgroups"]
        assert wg["sum_ratio"] == pytest.approx(1.0, abs=0.01)
        assert check_report(report) == []

    def test_spin_attribution_names_predecessor(self, report):
        (launch,) = report["processes"][0]["launches"]
        top = launch["top_spinner"]
        assert top["wg_id"] == 1 and top["waits_on"] == 0
        assert top["spin_us"] == pytest.approx(4.0)
        assert top["spin_share"] == pytest.approx(4.0 / 20.0)
        assert [list(edge) for edge in launch["sync_chain"]] == [[1, 0]]

    def test_check_flags_spin_exceeding_wall(self, report):
        (launch,) = report["processes"][0]["launches"]
        launch["workgroups"][0]["spin_us"] = launch["wall_us"] * 2
        assert any("spin" in p for p in check_report(report))

    def test_check_flags_bad_sum(self, report):
        report["processes"][0]["launches"][0]["workgroups"][0][
            "sum_ratio"] = 1.5
        assert check_report(report)


class TestRealTraceBothBackends:
    @pytest.mark.parametrize("backend", ["simulated", "vectorized"])
    def test_compact_decomposition_within_one_percent(
            self, backend, tmp_path, rng):
        from repro.config import DSConfig
        x = rng.integers(0, 3, 512).astype(np.float64)
        with obs.tracing("full") as tracer:
            ds_stream_compact(x, 0.0, config=DSConfig(backend=backend))
        path = tmp_path / "trace.json"
        export_chrome_trace(tracer, path)
        report = analyze(str(path))
        launches = report["processes"][0]["launches"]
        assert launches, "no launch spans in the trace"
        assert check_report(report) == []
        for launch in launches:
            for wg in launch["workgroups"]:
                assert wg["sum_ratio"] == pytest.approx(1.0, abs=0.01)


class TestServeLifecycle:
    def test_request_stages_in_order(self, tmp_path):
        clock = FakeClock()
        t = Tracer("spans", clock=clock)
        clock.tick(100)
        root = t.add_span("serve.request", track="serve:req7", cat="serve",
                          start_us=0.0, end_us=90.0,
                          args={"request_id": 7, "state": "done",
                                "ops": "ds_stream_compact"})
        t.add_span("serve.queued", track="serve:req7", cat="serve",
                   start_us=0.0, end_us=10.0, parent=root)
        t.add_span("serve.batch_window", track="serve:req7", cat="serve",
                   start_us=10.0, end_us=30.0, parent=root)
        t.add_span("serve.execute", track="serve:req7", cat="serve",
                   start_us=30.0, end_us=85.0, parent=root)
        t.add_span("serve.finalize", track="serve:req7", cat="serve",
                   start_us=85.0, end_us=90.0, parent=root)
        path = tmp_path / "serve.json"
        export_chrome_trace(t, path)
        report = analyze(str(path))
        (req,) = report["processes"][0]["requests"]
        assert req["request_id"] == 7 and req["state"] == "done"
        assert req["wall_us"] == pytest.approx(90.0)
        assert list(req["stages"]) == ["queued", "batch_window",
                                       "execute", "finalize"]
        assert req["stages"]["execute"] == pytest.approx(55.0)


class TestSources:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_jsonl(synthetic_launch_tracer(), path)
        loaded = load_trace(path)
        assert loaded["kind"] == "jsonl"
        report = analyze(loaded)
        assert check_report(report) == []
        (launch,) = report["processes"][0]["launches"]
        assert launch["workgroups"][0]["spin_us"] == pytest.approx(4.0)

    def test_incident_bundle_reports_failures(self, tmp_path):
        fr = FlightRecorder(capacity=8, incident_dir=tmp_path)
        t = Tracer("spans", clock=FakeClock())
        with fr:
            sp = t.span("launch[k]", cat="launch", track="host")
            sp.finish()
        fr.record_event("serve.request_failed", request_id=11,
                        ops="ds_unique", phase="execute",
                        error="LaunchError: boom")
        bundle = fr.dump("launch_error", reason="retries exhausted")
        report = analyze(str(bundle))
        assert report["kind"] == "bundle"
        assert report["incident"]["trigger"] == "launch_error"
        (failure,) = report["incident"]["failures"]
        assert failure["request_id"] == 11
        assert failure["phase"] == "execute"

    def test_missing_path_is_an_error(self, tmp_path):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            load_trace(tmp_path / "nope.json")


class TestCli:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(synthetic_launch_tracer(), path)
        return path

    def test_text_report(self, trace_path, capsys):
        assert main([str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "trace analysis" in out
        assert "spin" in out

    def test_json_report(self, trace_path, capsys):
        assert main([str(trace_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["processes"][0]["launches"]

    def test_check_passes_on_consistent_trace(self, trace_path, capsys):
        assert main([str(trace_path), "--check"]) == 0
        assert "check ok" in capsys.readouterr().out

    def test_output_file(self, trace_path, tmp_path):
        out = tmp_path / "report.json"
        assert main([str(trace_path), "--json", "-o", str(out)]) == 0
        json.loads(out.read_text())

    def test_load_error_exit_code(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.json")]) == 2
