"""The append-only benchmark trajectory index."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.benchindex import (
    INDEX_NAME,
    append_rows,
    load_rows,
    row_from_load_report,
    rows_from_report,
)

REPORT = {
    "id": "fig13",
    "wall_clock_s": {"simulated": 0.5, "vectorized": 0.01,
                     "compiled": 0.009},
    "speedup": 50.0,
    "speedup_compiled": 1.1,
    "compiled_fallback": True,
    "timing": "median",
    "counters": [{"bytes_loaded": 100, "bytes_stored": 60,
                  "n_atomics": 4, "n_barriers": 2},
                 {"bytes_loaded": 40, "bytes_stored": 20,
                  "n_atomics": 0, "n_barriers": 1}],
}


class TestRows:
    def test_one_row_per_backend_with_summed_counters(self):
        rows = rows_from_report(REPORT, rev="abc1234", timestamp=1.0)
        assert [r["backend"] for r in rows] == \
            ["compiled", "simulated", "vectorized"]
        for row in rows:
            assert row["id"] == "fig13" and row["rev"] == "abc1234"
            assert row["timestamp"] == 1.0 and row["launches"] == 2
            assert row["bytes_loaded"] == 140 and row["n_atomics"] == 4
        by_backend = {r["backend"]: r for r in rows}
        assert by_backend["vectorized"]["speedup"] == 50.0
        assert by_backend["compiled"]["speedup"] == 1.1
        assert by_backend["compiled"]["compiled_fallback"] is True
        assert "speedup" not in by_backend["simulated"]

    def test_rev_falls_back_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_REV", "deadbee")
        assert rows_from_report(REPORT, timestamp=1.0)[0]["rev"] == "deadbee"
        monkeypatch.delenv("REPRO_GIT_REV")
        assert rows_from_report(REPORT, timestamp=1.0)[0]["rev"] is None

    def test_serve_row(self):
        class FakeReport:
            shape = "chain"
            wall_s = 0.2
            throughput_rps = 300.0
            latency_p50_ms = 3.0
            latency_p95_ms = 6.0
            latency_p99_ms = 9.0
            completed = 60
            requests = 60
            batch_size_mean = 3.5
            plan_hit_rate = 0.97

        row = row_from_load_report(FakeReport(), rev="abc", timestamp=2.0)
        assert row["backend"] == "serve" and row["shape"] == "chain"
        assert row["latency_p95_ms"] == 6.0 and row["rev"] == "abc"


class TestAppendOnly:
    def test_append_accumulates_across_runs(self, tmp_path):
        assert load_rows(tmp_path) == []
        append_rows(tmp_path, rows_from_report(REPORT, rev="a", timestamp=1))
        append_rows(tmp_path, rows_from_report(REPORT, rev="b", timestamp=2))
        rows = load_rows(tmp_path / INDEX_NAME)
        assert len(rows) == 6
        assert [r["rev"] for r in rows] == ["a"] * 3 + ["b"] * 3

    def test_existing_rows_never_rewritten(self, tmp_path):
        append_rows(tmp_path, [{"id": "x", "backend": "serve"}])
        before = load_rows(tmp_path)
        append_rows(tmp_path, [{"id": "y", "backend": "serve"}])
        assert load_rows(tmp_path)[:1] == before

    def test_corrupt_index_raises_not_restarts(self, tmp_path):
        path = tmp_path / INDEX_NAME
        path.write_text("{broken")
        with pytest.raises(ReproError, match=INDEX_NAME):
            load_rows(tmp_path)
        with pytest.raises(ReproError):
            append_rows(tmp_path, [{"id": "x"}])
        assert path.read_text() == "{broken"  # nothing clobbered

    def test_document_shape(self, tmp_path):
        append_rows(tmp_path, [{"id": "x"}])
        doc = json.loads((tmp_path / INDEX_NAME).read_text())
        assert doc["version"] == 1 and isinstance(doc["rows"], list)


class TestConcurrentAppends:
    def test_parallel_processes_never_lose_rows(self, tmp_path):
        """Fleet workers race on one results directory: every appended
        row must survive the read-modify-write interleaving."""
        import multiprocessing

        n_procs, rows_each = 4, 5
        ctx = multiprocessing.get_context("fork") \
            if "fork" in multiprocessing.get_all_start_methods() \
            else multiprocessing.get_context()
        procs = [ctx.Process(target=_append_worker,
                             args=(str(tmp_path), pid, rows_each))
                 for pid in range(n_procs)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        rows = load_rows(tmp_path)
        assert len(rows) == n_procs * rows_each
        ids = {r["id"] for r in rows}
        assert ids == {f"w{p}-r{i}" for p in range(n_procs)
                       for i in range(rows_each)}

    def test_fleet_row_shape(self):
        from repro.obs.benchindex import row_from_fleet_run

        class FakeFleetReport:
            shapes = ("chain", "compact")
            wall_s = 0.4
            throughput_rps = 120.0
            latency_p50_ms = 2.0
            latency_p95_ms = 8.0
            latency_p99_ms = 11.0
            completed = 48
            requests = 48
            workers_start = 3
            workers_peak = 4
            workers_end = 3
            scale_ups = 1
            scale_downs = 1
            routing_skew = 1.12
            plan_hit_rate = 0.98

        row = row_from_fleet_run(FakeFleetReport(), rev="abc", timestamp=3.0)
        assert row["backend"] == "fleet"
        assert row["shapes"] == "chain+compact"
        assert row["workers_peak"] == 4
        assert row["scale_ups"] == 1 and row["scale_downs"] == 1
        assert row["routing_skew"] == 1.12


def _append_worker(root: str, pid: int, rows_each: int) -> None:
    for i in range(rows_each):
        append_rows(root, [{"id": f"w{pid}-r{i}", "backend": "serve"}])
