"""Benchmark regression gate: counter round-trip, tolerance math,
injected-slowdown self-test, baseline handling."""

import json

import pytest

from repro.obs import benchrun, regress
from repro.simgpu.counters import LaunchCounters


def small_report(bench_id="fig13", scale=0.01, rounds=1):
    return benchrun.bench_case(bench_id, scale=scale, rounds=rounds)


@pytest.fixture(scope="module")
def report():
    """One real (tiny) report reused by the comparison tests."""
    return small_report()


class TestCounterRoundTrip:
    def test_to_dict_from_dict_identity(self, report):
        for rec in report["counters"]:
            c = LaunchCounters.from_dict(rec)
            assert c.to_dict() == rec
            for field in benchrun.PARITY_FIELDS:
                assert getattr(c, field) == rec[field]

    def test_from_dict_ignores_unknown_keys(self, report):
        rec = dict(report["counters"][0])
        rec["added_in_a_future_version"] = 1
        c = LaunchCounters.from_dict(rec)
        assert c.kernel_name == rec["kernel_name"]

    def test_extras_survive(self):
        c = LaunchCounters(kernel_name="k", grid_size=1, wg_size=32)
        c.extras["irregular"] = 1.0
        assert LaunchCounters.from_dict(c.to_dict()).extras == c.extras


class TestBenchCase:
    def test_report_shape(self, report):
        assert report["id"] == "fig13"
        assert set(report["wall_clock_s"]) == \
            {"simulated", "vectorized", "compiled"}
        assert report["parity"]["ok"] is True
        assert "warmup_s" in report and "compiled_fallback" in report
        assert report["counters"], "report must embed the counter records"
        assert report["primitive"] == "ds_stream_compact"

    def test_unknown_case(self):
        with pytest.raises(KeyError):
            benchrun.bench_case("fig99")


class TestCheckCase:
    def test_fresh_equals_baseline_passes(self, report):
        assert regress.check_case("fig13", report, fresh=report) == []

    def test_faster_always_passes(self, report):
        quicker = dict(report)
        quicker["wall_clock_s"] = {
            k: v / 10 for k, v in report["wall_clock_s"].items()}
        assert regress.check_case("fig13", quicker, fresh=quicker,
                                  tolerance=0.0) == []
        assert regress.check_case("fig13", report, fresh=quicker) == []

    def test_injected_slowdown_fails(self, report):
        failures = regress.check_case("fig13", report, fresh=report,
                                      inject_slowdown=0.25)
        assert len(failures) == 3  # every backend tier regresses
        assert all("wall-clock regressed" in f for f in failures)

    def test_slowdown_within_tolerance_passes(self, report):
        assert regress.check_case("fig13", report, fresh=report,
                                  inject_slowdown=0.25,
                                  tolerance=0.30) == []

    def test_tolerance_env_var(self, report, monkeypatch):
        monkeypatch.setenv(regress.TOLERANCE_ENV_VAR, "0.5")
        assert regress.resolve_tolerance() == 0.5
        assert regress.check_case("fig13", report, fresh=report,
                                  inject_slowdown=0.25) == []

    def test_counter_drift_fails(self, report):
        corrupt = json.loads(json.dumps(report))  # deep copy
        corrupt["counters"][0]["bytes_loaded"] += 128
        failures = regress.check_case("fig13", corrupt, fresh=report)
        assert any("bytes_loaded" in f for f in failures)

    def test_schedule_dependent_drift_is_ignored(self, report):
        corrupt = json.loads(json.dumps(report))
        corrupt["counters"][0]["n_spins"] += 999
        corrupt["counters"][0]["steps"] += 999
        assert regress.check_case("fig13", corrupt, fresh=report) == []

    def test_launch_count_change_fails(self, report):
        corrupt = json.loads(json.dumps(report))
        corrupt["counters"].append(corrupt["counters"][0])
        failures = regress.check_case("fig13", corrupt, fresh=report)
        assert any("launch count" in f for f in failures)

    def test_old_format_baseline_demands_regeneration(self, report):
        legacy = {k: v for k, v in report.items() if k != "counters"}
        failures = regress.check_case("fig13", legacy, fresh=report)
        assert any("regenerate" in f for f in failures)


class TestCheckAll:
    def test_empty_results_dir_fails(self, tmp_path, capsys):
        failures = regress.check_all(tmp_path)
        assert any("no BENCH_" in f for f in failures)

    def test_missing_baseline_is_skipped(self, tmp_path, capsys, report,
                                         monkeypatch):
        monkeypatch.setattr(regress, "bench_case",
                            lambda bench_id, rounds: report)
        (tmp_path / "BENCH_fig13.json").write_text(json.dumps(report))
        failures = regress.check_all(tmp_path)
        out = capsys.readouterr().out
        assert "fig08: no baseline" in out
        assert "fig13: ok" in out
        assert failures == []

    def test_main_exit_codes(self, tmp_path, capsys, report, monkeypatch):
        monkeypatch.setattr(regress, "bench_case",
                            lambda bench_id, rounds: report)
        (tmp_path / "BENCH_fig13.json").write_text(json.dumps(report))
        assert regress.main([str(tmp_path)]) == 0
        assert "bench-check passed" in capsys.readouterr().out
        assert regress.main([str(tmp_path),
                             "--inject-slowdown", "0.25"]) == 1
        assert "FAILED" in capsys.readouterr().err
