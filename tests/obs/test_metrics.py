"""The typed metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_get_or_create_accumulates(self, reg):
        reg.counter("stream.launches").inc()
        reg.counter("stream.launches").inc(4)
        assert reg.counter("stream.launches").value == 5

    def test_cannot_decrease(self, reg):
        with pytest.raises(MetricsError):
            reg.counter("c").inc(-1)

    def test_to_dict(self, reg):
        reg.counter("c", kind="x").inc(2)
        d = reg.counter("c", kind="x").to_dict()
        assert d == {"type": "counter", "name": "c",
                     "labels": {"kind": "x"}, "value": 2}


class TestGauge:
    def test_set_moves_both_ways(self, reg):
        g = reg.gauge("g")
        g.set(5)
        g.set(3)
        assert g.value == 3

    def test_set_max_keeps_peak(self, reg):
        g = reg.gauge("peak")
        g.set_max(5)
        g.set_max(3)
        g.set_max(9)
        assert g.value == 9

    def test_unset_gauge_is_none(self, reg):
        assert reg.gauge("fresh").value is None


class TestHistogram:
    def test_summary_stats(self, reg):
        h = reg.histogram("h")
        for v in (1.0, 3.0, 8.0):
            h.record(v)
        assert h.count == 3
        assert h.min == 1.0 and h.max == 8.0
        assert h.mean == pytest.approx(4.0)

    def test_power_of_two_buckets(self, reg):
        h = reg.histogram("h")
        h.record(0.5)   # <= 1
        h.record(3.0)   # <= 4
        h.record(4.0)   # <= 4
        h.record(100.0)  # <= 128
        assert h.to_dict()["buckets"] == {"1": 1, "4": 2, "128": 1}

    def test_empty_histogram_mean(self, reg):
        assert reg.histogram("h").mean == 0.0

    def test_nonfinite_values_counted_not_recorded(self, reg):
        h = reg.histogram("h")
        h.record(float("nan"))
        h.record(float("inf"))
        h.record(2.0)
        assert h.count == 1 and h.nonfinite == 2
        assert h.to_dict()["nonfinite"] == 2


class TestQuantiles:
    def test_empty_histogram_quantile_is_zero(self, reg):
        assert reg.histogram("h").quantile(0.5) == 0.0

    def test_single_value_all_quantiles_equal(self, reg):
        h = reg.histogram("h")
        h.record(7.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) == pytest.approx(7.0)

    def test_extreme_quantiles_clamp_to_observed(self, reg):
        h = reg.histogram("h")
        for v in (1.0, 2.0, 3.0, 100.0):
            h.record(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_median_lands_in_the_right_bucket(self, reg):
        h = reg.histogram("h")
        # 90 values near 1ms, 10 values near 100ms: p50 must stay with
        # the bulk, p99 with the tail.
        for _ in range(90):
            h.record(1.0)
        for _ in range(10):
            h.record(100.0)
        assert h.quantile(0.50) <= 2.0
        assert h.quantile(0.99) >= 64.0

    def test_quantiles_are_monotonic(self, reg):
        h = reg.histogram("h")
        for v in (0.3, 1.0, 2.5, 4.0, 9.0, 17.0, 64.0):
            h.record(v)
        qs = [h.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert qs == sorted(qs)
        assert all(h.min <= v <= h.max for v in qs)

    def test_percentiles_in_to_dict(self, reg):
        h = reg.histogram("h")
        for v in range(1, 101):
            h.record(float(v))
        d = h.to_dict()
        p = h.percentiles()
        assert set(p) == {"p50", "p95", "p99"}
        assert d["p50"] == p["p50"] and d["p99"] == p["p99"]
        assert p["p50"] <= p["p95"] <= p["p99"]


class TestRegistry:
    def test_typed_names_enforced(self, reg):
        reg.counter("n")
        with pytest.raises(MetricsError):
            reg.gauge("n")
        with pytest.raises(MetricsError):
            reg.histogram("n")

    def test_labels_are_distinct_instruments(self, reg):
        reg.histogram("sched.spin_wait_us", wg=0).record(1.0)
        reg.histogram("sched.spin_wait_us", wg=1).record(2.0)
        assert reg.histogram("sched.spin_wait_us", wg=0).count == 1
        assert len(reg.instruments("sched.spin_wait_us")) == 2

    def test_label_order_does_not_matter(self, reg):
        reg.counter("c", a=1, b=2).inc()
        assert reg.counter("c", b=2, a=1).value == 1

    def test_get_returns_none_for_untouched(self, reg):
        assert reg.get("nope") is None
        reg.counter("yes").inc()
        assert isinstance(reg.get("yes"), Counter)

    def test_iteration_and_len(self, reg):
        reg.counter("a").inc()
        reg.gauge("b").set(1)
        reg.histogram("c").record(1)
        assert len(reg) == 3
        kinds = {i.kind for i in reg}
        assert kinds == {"counter", "gauge", "histogram"}
        assert isinstance(list(reg)[1], Gauge)
        assert isinstance(list(reg)[2], Histogram)

    def test_to_dicts_sorted_by_name(self, reg):
        reg.counter("z").inc()
        reg.counter("a").inc()
        names = [d["name"] for d in reg.to_dicts()]
        assert names == ["a", "z"]


class TestScopedRegistry:
    def test_reset_drops_matching_prefix_only(self, reg):
        reg.counter("serve.admitted").inc(3)
        reg.counter("stream.launches").inc(1)
        dropped = reg.reset("serve.")
        assert dropped == 1
        assert reg.get("serve.admitted") is None
        assert reg.counter("stream.launches").value == 1
        # the name is reusable at the same type after a reset
        assert reg.counter("serve.admitted").value == 0

    def test_reset_without_prefix_clears_everything(self, reg):
        reg.counter("a").inc()
        reg.gauge("b").set(1)
        assert reg.reset() == 2
        assert len(reg) == 0

    def test_scoped_block_starts_from_zero_and_restores(self, reg):
        reg.counter("serve.admitted").inc(7)
        reg.counter("stream.launches").inc(2)
        with reg.scoped("serve."):
            # prior serve.* state is invisible inside the scope...
            assert reg.get("serve.admitted") is None
            reg.counter("serve.admitted").inc(1)
            assert reg.counter("serve.admitted").value == 1
            # ...and non-matching instruments are untouched
            assert reg.counter("stream.launches").value == 2
        # the block's instruments are discarded, the originals restored
        assert reg.counter("serve.admitted").value == 7
        assert reg.counter("stream.launches").value == 2

    def test_back_to_back_scopes_do_not_accumulate(self, reg):
        for _ in range(3):
            with reg.scoped("serve."):
                reg.counter("serve.batches").inc(5)
                assert reg.counter("serve.batches").value == 5
        assert reg.get("serve.batches") is None


class TestHistogramQuantileEdges:
    def test_empty_histogram_quantiles_are_zero(self, reg):
        h = reg.histogram("lat")
        assert h.quantile(0.5) == 0.0
        assert h.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_observation(self, reg):
        h = reg.histogram("lat")
        h.record(7.0)
        # With min == max every quantile collapses to the value itself.
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 7.0

    def test_all_values_equal(self, reg):
        h = reg.histogram("lat")
        for _ in range(50):
            h.record(3.0)
        assert h.quantile(0.5) == 3.0
        assert h.percentiles() == {"p50": 3.0, "p95": 3.0, "p99": 3.0}

    def test_single_bucket_interpolates_within_observed_range(self, reg):
        h = reg.histogram("lat")
        # All in the (4, 8] bucket: interpolation must stay inside the
        # observed [min, max], not the bucket's [4, 8].
        for v in (5.0, 6.0, 7.0):
            h.record(v)
        assert h.quantile(0.0) == 5.0
        assert h.quantile(1.0) == 7.0
        assert 5.0 <= h.quantile(0.5) <= 7.0

    def test_q_outside_01_clamps_to_min_max(self, reg):
        h = reg.histogram("lat")
        h.record(2.0)
        h.record(100.0)
        assert h.quantile(-0.5) == 2.0
        assert h.quantile(1.5) == 100.0

    def test_quantiles_are_monotone(self, reg):
        h = reg.histogram("lat")
        for v in (0.5, 1.0, 3.0, 9.0, 20.0, 200.0, 1000.0):
            h.record(v)
        qs = [h.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert qs == sorted(qs)
        assert all(0.5 <= v <= 1000.0 for v in qs)
