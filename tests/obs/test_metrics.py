"""The typed metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_get_or_create_accumulates(self, reg):
        reg.counter("stream.launches").inc()
        reg.counter("stream.launches").inc(4)
        assert reg.counter("stream.launches").value == 5

    def test_cannot_decrease(self, reg):
        with pytest.raises(MetricsError):
            reg.counter("c").inc(-1)

    def test_to_dict(self, reg):
        reg.counter("c", kind="x").inc(2)
        d = reg.counter("c", kind="x").to_dict()
        assert d == {"type": "counter", "name": "c",
                     "labels": {"kind": "x"}, "value": 2}


class TestGauge:
    def test_set_moves_both_ways(self, reg):
        g = reg.gauge("g")
        g.set(5)
        g.set(3)
        assert g.value == 3

    def test_set_max_keeps_peak(self, reg):
        g = reg.gauge("peak")
        g.set_max(5)
        g.set_max(3)
        g.set_max(9)
        assert g.value == 9

    def test_unset_gauge_is_none(self, reg):
        assert reg.gauge("fresh").value is None


class TestHistogram:
    def test_summary_stats(self, reg):
        h = reg.histogram("h")
        for v in (1.0, 3.0, 8.0):
            h.record(v)
        assert h.count == 3
        assert h.min == 1.0 and h.max == 8.0
        assert h.mean == pytest.approx(4.0)

    def test_power_of_two_buckets(self, reg):
        h = reg.histogram("h")
        h.record(0.5)   # <= 1
        h.record(3.0)   # <= 4
        h.record(4.0)   # <= 4
        h.record(100.0)  # <= 128
        assert h.to_dict()["buckets"] == {"1": 1, "4": 2, "128": 1}

    def test_empty_histogram_mean(self, reg):
        assert reg.histogram("h").mean == 0.0


class TestRegistry:
    def test_typed_names_enforced(self, reg):
        reg.counter("n")
        with pytest.raises(MetricsError):
            reg.gauge("n")
        with pytest.raises(MetricsError):
            reg.histogram("n")

    def test_labels_are_distinct_instruments(self, reg):
        reg.histogram("sched.spin_wait_us", wg=0).record(1.0)
        reg.histogram("sched.spin_wait_us", wg=1).record(2.0)
        assert reg.histogram("sched.spin_wait_us", wg=0).count == 1
        assert len(reg.instruments("sched.spin_wait_us")) == 2

    def test_label_order_does_not_matter(self, reg):
        reg.counter("c", a=1, b=2).inc()
        assert reg.counter("c", b=2, a=1).value == 1

    def test_get_returns_none_for_untouched(self, reg):
        assert reg.get("nope") is None
        reg.counter("yes").inc()
        assert isinstance(reg.get("yes"), Counter)

    def test_iteration_and_len(self, reg):
        reg.counter("a").inc()
        reg.gauge("b").set(1)
        reg.histogram("c").record(1)
        assert len(reg) == 3
        kinds = {i.kind for i in reg}
        assert kinds == {"counter", "gauge", "histogram"}
        assert isinstance(list(reg)[1], Gauge)
        assert isinstance(list(reg)[2], Histogram)

    def test_to_dicts_sorted_by_name(self, reg):
        reg.counter("z").inc()
        reg.counter("a").inc()
        names = [d["name"] for d in reg.to_dicts()]
        assert names == ["a", "z"]
