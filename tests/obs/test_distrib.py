"""Unit tests for repro.obs.distrib: clock calibration, span rings,
fork-safe span ids, and the fleet trace merger."""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro.obs.distrib import (ClockSync, SpanRing, TraceContext,
                               calibrate, merge_fleet_trace,
                               router_process_name, span_to_dict,
                               worker_process_name)
from repro.obs.export import validate_chrome_trace
from repro.obs.tracer import Span, new_span_id


# -- calibration ---------------------------------------------------------------


def _exchange(router_t, *, skew_us, up_us, down_us, proc_us=5.0):
    """One four-timestamp sample for a worker clock that reads
    ``router clock + skew_us``: t0/t3 on the router clock, t1/t2 on
    the worker clock."""
    t0 = router_t
    t1 = (router_t + up_us) + skew_us
    t2 = t1 + proc_us
    t3 = (t2 - skew_us) + down_us
    return (t0, t1, t2, t3)


@pytest.mark.parametrize("skew_us", [-125_000.0, -7.5, 0.0, 42.0,
                                     3_000_000.0])
def test_calibrate_recovers_injected_skew(skew_us):
    samples = [
        _exchange(1_000.0 * k, skew_us=skew_us,
                  up_us=20.0 + 3.0 * k, down_us=20.0 + 2.0 * k)
        for k in range(8)
    ]
    sync = calibrate(samples)
    # offset_us is router-minus-worker: it undoes the injected skew,
    # within the NTP asymmetry bound rtt/2.
    assert abs(sync.offset_us - (-skew_us)) <= sync.uncertainty_us
    assert sync.n_samples == 8
    worker_now = 500.0 + skew_us
    assert abs(sync.to_router_us(worker_now) - 500.0) \
        <= sync.uncertainty_us


def test_calibrate_min_rtt_sample_wins():
    skew = 10_000.0
    # One clean symmetric exchange and one grossly asymmetric one
    # (a queue stall on the way out would bias theta by ~25ms).
    clean = _exchange(0.0, skew_us=skew, up_us=10.0, down_us=10.0)
    noisy = _exchange(100.0, skew_us=skew, up_us=50_000.0, down_us=10.0)
    sync = calibrate([noisy, clean, noisy])
    assert sync.rtt_us == pytest.approx(20.0)
    assert sync.offset_us == pytest.approx(-skew, abs=sync.uncertainty_us)
    assert sync.uncertainty_us == pytest.approx(10.0)


def test_calibrate_requires_samples():
    with pytest.raises(ValueError):
        calibrate([])


def test_clock_sync_roundtrip():
    sync = ClockSync(offset_us=-123.456, uncertainty_us=7.8,
                     rtt_us=15.6, n_samples=4)
    back = ClockSync.from_dict(sync.to_dict())
    assert back.offset_us == pytest.approx(sync.offset_us, abs=1e-3)
    assert back.n_samples == 4
    assert ClockSync.from_dict(None) is None


# -- trace context -------------------------------------------------------------


def test_trace_context_roundtrip_and_child():
    ctx = TraceContext.new(request_id="req-9")
    child = ctx.child("abc-1")
    assert child.trace_id == ctx.trace_id
    assert child.parent_span_id == "abc-1"
    back = TraceContext.from_dict(child.to_dict())
    assert back == child
    assert TraceContext.from_dict(None) is None
    assert TraceContext.from_dict({"parent_span_id": "x"}) is None


# -- span ring -----------------------------------------------------------------


def _span(name, start, end, track="worker:0", args=None):
    sp = Span(name, "serve", track, start, dict(args or {}), tracer=None)
    sp.end_us = end
    return sp


def test_span_ring_snapshot_is_not_destructive():
    ring = SpanRing(capacity=8)
    ring.record_span(_span("a", 0.0, 1.0))
    ring.record_span(_span("b", 1.0, 2.0))
    first = ring.snapshot()
    second = ring.snapshot()
    assert [d["name"] for d in first] == ["a", "b"]
    assert [d["name"] for d in second] == ["a", "b"]
    assert len(ring) == 2


def test_span_ring_bounded():
    ring = SpanRing(capacity=4)
    for k in range(10):
        ring.record_span(_span(f"s{k}", float(k), float(k) + 0.5))
    names = [d["name"] for d in ring.snapshot()]
    assert names == ["s6", "s7", "s8", "s9"]


def test_mid_drain_collection_loses_no_spans():
    """A collection racing new spans must never lose a completed span:
    snapshots overlap, and the merger dedupes by span_id."""
    ring = SpanRing(capacity=64)
    ring.record_span(_span("early", 0.0, 1.0))
    mid_drain = ring.snapshot()          # e.g. collected on response
    ring.record_span(_span("late", 2.0, 3.0))
    final = ring.snapshot()              # e.g. collected on incident
    doc = merge_fleet_trace([], {"w0": mid_drain + final})
    merged = [ev["name"] for ev in doc["traceEvents"]
              if ev.get("ph") == "X"]
    assert sorted(merged) == ["early", "late"]


# -- fork-safe span ids --------------------------------------------------------


def _child_ids(queue, n):
    queue.put([new_span_id() for _ in range(n)])


def test_span_ids_unique_across_forked_processes():
    parent = {new_span_id() for _ in range(50)}
    ctx = mp.get_context()
    queue = ctx.Queue()
    procs = [ctx.Process(target=_child_ids, args=(queue, 50))
             for _ in range(2)]
    for p in procs:
        p.start()
    batches = [queue.get(timeout=30) for _ in procs]
    for p in procs:
        p.join(timeout=30)
    all_ids = list(parent)
    for batch in batches:
        all_ids.extend(batch)
    assert len(all_ids) == len(set(all_ids))


# -- the merger ----------------------------------------------------------------


def _dict_span(name, ts, dur, *, track, span_id, args=None):
    return {"name": name, "cat": "serve", "track": track,
            "ts_us": ts, "dur_us": dur, "args": dict(args or {}),
            "span_id": span_id}


def test_merge_fleet_trace_golden_two_workers(tmp_path):
    """Golden 2-worker merge: pid lanes, calibrated shifts, span-id
    args, and clock_sync metadata all come out exactly as specified."""
    router = [_dict_span("serve.request", 100.0, 50.0,
                         track="serve:req0", span_id="r-1",
                         args={"trace_id": "t1"})]
    workers = {
        "w0": [_dict_span("serve.execute", 40.0, 10.0,
                          track="server", span_id="a-1",
                          args={"trace_id": "t1",
                                "parent_span_id": "r-1"})],
        "w1": [_dict_span("serve.execute", 300.0, 5.0,
                          track="server", span_id="b-1")],
    }
    syncs = {"w0": ClockSync(offset_us=80.0, uncertainty_us=2.0,
                             rtt_us=4.0, n_samples=3),
             "w1": ClockSync(offset_us=-150.0, uncertainty_us=1.0,
                             rtt_us=2.0, n_samples=3)}
    out = tmp_path / "merged.json"
    doc = merge_fleet_trace(router, workers, clock_syncs=syncs, path=out)
    validate_chrome_trace(doc)
    assert out.exists()

    names = {(ev["pid"], ev["args"]["name"])
             for ev in doc["traceEvents"]
             if ev.get("ph") == "M" and ev["name"] == "process_name"}
    assert names == {(0, router_process_name()),
                     (1, worker_process_name("w0")),
                     (2, worker_process_name("w1"))}

    spans = {ev["args"]["span_id"]: ev for ev in doc["traceEvents"]
             if ev.get("ph") == "X"}
    assert set(spans) == {"r-1", "a-1", "b-1"}
    assert spans["r-1"]["ts"] == pytest.approx(100.0)
    # w0 shifted onto the router clock: 40 + 80 = 120.
    assert spans["a-1"]["ts"] == pytest.approx(120.0)
    assert spans["a-1"]["dur"] == pytest.approx(10.0)
    assert spans["a-1"]["args"]["parent_span_id"] == "r-1"
    # w1 shifted back: 300 - 150 = 150.
    assert spans["b-1"]["ts"] == pytest.approx(150.0)

    meta = doc["otherData"]["clock_sync"]
    assert meta["w0"]["offset_us"] == pytest.approx(80.0)
    assert meta["w1"]["offset_us"] == pytest.approx(-150.0)
    assert "rebased_us" not in doc["otherData"]


def test_merge_rebases_negative_timestamps():
    workers = {"w0": [_dict_span("k", 10.0, 5.0, track="t",
                                 span_id="x-1")]}
    syncs = {"w0": ClockSync(offset_us=-100.0, uncertainty_us=1.0,
                             rtt_us=2.0, n_samples=1)}
    doc = merge_fleet_trace(
        [_dict_span("root", 0.0, 20.0, track="r", span_id="r-1")],
        workers, clock_syncs=syncs)
    validate_chrome_trace(doc)
    xs = {ev["args"]["span_id"]: ev["ts"] for ev in doc["traceEvents"]
          if ev.get("ph") == "X"}
    # Floor was -90; everything rebased by +90.
    assert xs["x-1"] == pytest.approx(0.0)
    assert xs["r-1"] == pytest.approx(90.0)
    assert doc["otherData"]["rebased_us"] == pytest.approx(90.0)


def test_merge_accepts_sync_dicts_and_missing_sync():
    workers = {"w0": [_dict_span("k", 10.0, 5.0, track="t",
                                 span_id="x-1")],
               "w1": [_dict_span("k", 10.0, 5.0, track="t",
                                 span_id="y-1")]}
    doc = merge_fleet_trace(
        [], workers,
        clock_syncs={"w0": {"offset_us": 7.0, "uncertainty_us": 1.0,
                            "rtt_us": 2.0, "n_samples": 1}})
    xs = {ev["args"]["span_id"]: ev["ts"] for ev in doc["traceEvents"]
          if ev.get("ph") == "X"}
    assert xs["x-1"] == pytest.approx(17.0)
    assert xs["y-1"] == pytest.approx(10.0)  # identity for missing sync
    assert doc["otherData"]["clock_sync"]["w1"]["n_samples"] == 0


def test_span_to_dict_rounding_matches_exporter():
    sp = _span("k", 10.00049, 12.00051)
    d = span_to_dict(sp)
    assert d["ts_us"] == pytest.approx(10.0)
    assert d["ts_us"] + d["dur_us"] == pytest.approx(12.001)
    assert d["span_id"] == sp.span_id
