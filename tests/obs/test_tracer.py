"""The span tracer: lifecycle, nesting, modes, the disabled fast path."""

import pytest

from repro import obs
from repro.config import DSConfig
from repro.errors import ReproError
from repro.obs.tracer import NULL_SPAN, Span, Tracer


class FakeClock:
    """Injectable nanosecond clock advancing only on demand."""

    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def tick(self, us: float):
        self.ns += int(us * 1000)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer("full", clock=clock)


@pytest.fixture(autouse=True)
def no_global_tracer():
    """Tests here manage the global tracer explicitly."""
    obs.disable()
    yield
    obs.disable()


class TestModes:
    def test_resolve_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert obs.resolve_trace_mode() == "off"

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "spans")
        assert obs.resolve_trace_mode() == "spans"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "spans")
        assert obs.resolve_trace_mode("full") == "full"

    def test_unknown_mode_raises(self):
        with pytest.raises(ReproError):
            obs.resolve_trace_mode("verbose")

    def test_tracer_off_is_contradictory(self):
        with pytest.raises(ReproError):
            Tracer("off")

    def test_full_flag(self):
        assert Tracer("full").full
        assert not Tracer("spans").full


class TestDisabledPath:
    def test_no_active_tracer_by_default(self):
        assert obs.active() is None

    def test_span_returns_shared_null_span(self):
        sp = obs.span("anything", cat="phase")
        assert sp is NULL_SPAN
        assert sp.set(x=1) is sp
        assert sp.finish() is sp
        with sp:
            pass

    def test_instant_is_noop(self):
        obs.instant("nothing")  # must not raise, must not allocate state


class TestSpanLifecycle:
    def test_nesting_and_children(self, tracer, clock):
        with tracer.span("outer") as outer:
            clock.tick(10)
            with tracer.span("inner") as inner:
                clock.tick(5)
        assert outer.children == [inner]
        assert tracer.roots("host") == [outer]
        assert inner.start_us == pytest.approx(10.0)
        assert inner.duration_us == pytest.approx(5.0)
        assert outer.duration_us == pytest.approx(15.0)

    def test_tracks_are_independent_stacks(self, tracer):
        a = tracer.span("a", track="wg:0")
        b = tracer.span("b", track="wg:1")
        a.finish()
        b.finish()
        assert tracer.roots("wg:0") == [a]
        assert tracer.roots("wg:1") == [b]
        assert tracer.tracks == ["wg:0", "wg:1"]

    def test_host_track_sorts_first(self, tracer):
        tracer.span("w", track="wg:3").finish()
        tracer.span("h").finish()
        assert tracer.tracks[0] == "host"

    def test_finish_is_idempotent(self, tracer, clock):
        sp = tracer.span("once")
        clock.tick(3)
        sp.finish()
        end = sp.end_us
        clock.tick(3)
        sp.finish()
        assert sp.end_us == end

    def test_exception_closes_dangling_children(self, tracer, clock):
        outer = tracer.span("outer")
        tracer.span("leaked")
        clock.tick(7)
        outer.finish()  # must close the dangling child at the same time
        leaked = outer.children[0]
        assert leaked.end_us == outer.end_us

    def test_close_finishes_open_spans(self, tracer):
        sp = tracer.span("open", track="wg:2")
        tracer.close()
        assert sp.end_us is not None

    def test_set_attaches_args(self, tracer):
        sp = tracer.span("s", args={"a": 1}).set(b=2).finish()
        assert sp.args == {"a": 1, "b": 2}

    def test_add_span_explicit_timestamps(self, tracer):
        parent = tracer.add_span("store", track="wg:0", start_us=5.0,
                                 end_us=9.0, cat="phase")
        child = tracer.add_span("scan", track="wg:0", start_us=6.0,
                                end_us=7.0, cat="phase", parent=parent)
        assert parent.children == [child]
        assert tracer.roots("wg:0") == [parent]
        assert child.duration_us == pytest.approx(1.0)

    def test_iter_spans_depth_first(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        walk = [(sp.name, depth) for _, sp, depth in tracer.iter_spans()]
        assert walk == [("a", 0), ("b", 1), ("c", 1)]

    def test_find_spans_by_name_and_cat(self, tracer):
        tracer.span("x", cat="phase").finish()
        tracer.span("x", cat="sched").finish()
        assert len(tracer.find_spans("x")) == 2
        assert len(tracer.find_spans("x", cat="sched")) == 1
        assert tracer.find_spans(cat="phase")[0].cat == "phase"

    def test_instants_recorded_with_track(self, tracer, clock):
        clock.tick(2)
        tracer.instant("atomic_add", cat="event", track="wg:1")
        (ev,) = tracer.instants
        assert ev["name"] == "atomic_add"
        assert ev["track"] == "wg:1"
        assert ev["ts_us"] == pytest.approx(2.0)


class TestGlobalTracer:
    def test_enable_disable_roundtrip(self):
        t = obs.enable("spans")
        assert obs.active() is t
        sp = obs.span("visible")
        assert sp is not NULL_SPAN
        sp.finish()
        assert obs.disable() is t
        assert obs.active() is None

    def test_tracing_scope_restores_previous(self):
        outer = obs.enable("spans")
        with obs.tracing("full") as inner:
            assert obs.active() is inner
        assert obs.active() is outer

    def test_tracing_closes_spans_on_exit(self):
        with obs.tracing("spans") as t:
            t.span("left-open", track="wg:0")
        assert t.roots("wg:0")[0].end_us is not None

    def test_env_var_auto_installs_on_primitive_call(self, monkeypatch):
        import numpy as np

        from repro.primitives import ds_stream_compact

        monkeypatch.setenv("REPRO_TRACE", "spans")
        values = np.asarray([1.0, 0.0, 2.0, 0.0], dtype=np.float32)
        ds_stream_compact(values, 0.0, config=DSConfig(wg_size=32))
        t = obs.active()
        assert t is not None
        assert t.find_spans("ds_stream_compact", cat="primitive")

    def test_no_tracer_installed_when_env_off(self, monkeypatch):
        import numpy as np

        from repro.primitives import ds_stream_compact

        monkeypatch.delenv("REPRO_TRACE", raising=False)
        values = np.asarray([1.0, 0.0], dtype=np.float32)
        ds_stream_compact(values, 0.0, config=DSConfig(wg_size=32))
        assert obs.active() is None
