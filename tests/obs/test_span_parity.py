"""Backend equivalence of the emitted span trees.

Both execution backends must emit the *same* algorithm-phase structure
for the same input — the tracing analogue of the counter-equivalence
contract.  Because the simulated scheduler assigns tiles to hardware
slots via dynamic work-group IDs while the vectorized backend assigns
tile ``g`` to track ``g``, per-track trees are compared as a
**multiset** over the work-group tracks, and only ``cat == "phase"``
spans participate (``sched`` spans such as ``sync_wait`` are
schedule-dependent, exactly like ``n_spins``).
"""

from collections import Counter as Multiset

import numpy as np
import pytest

from repro import obs
from repro.config import DSConfig
from repro.primitives import (
    ds_copy_if,
    ds_pad,
    ds_partition,
    ds_remove_if,
    ds_stream_compact,
    ds_unique,
    ds_unique_by_key,
    ds_unpad,
)
from repro.workloads import (
    compaction_array,
    padding_matrix,
    predicate_fraction_array,
    runs_array,
)

N = 4096
WG = 64


def phase_tree(span):
    """Nested ``(name, children)`` shape of one span, phases only."""
    return (span.name, tuple(phase_tree(c) for c in span.children
                             if c.cat == "phase"))


def wg_phase_forest(tracer):
    """Multiset of per-work-group-track phase trees."""
    forest = Multiset()
    for track in tracer.tracks:
        if not track.startswith("wg:"):
            continue
        trees = tuple(phase_tree(sp) for sp in tracer.roots(track)
                      if sp.cat == "phase")
        forest[trees] += 1
    return forest


def traced(run):
    tracers = {}
    for backend in ("simulated", "vectorized"):
        with obs.tracing("spans") as t:
            run(backend)
        tracers[backend] = t
    return tracers


def assert_span_parity(run, primitive_name):
    tracers = traced(run)
    sim, vec = tracers["simulated"], tracers["vectorized"]

    # One root primitive span per call, on both backends, labelled.
    for name, t in tracers.items():
        roots = t.find_spans(primitive_name, cat="primitive")
        assert roots, f"{name}: no {primitive_name} primitive span"
        for sp in roots:
            assert sp.args["backend"] == name
            assert sp.end_us is not None

    # Same number of launch spans.
    assert len(sim.find_spans(cat="launch")) == \
        len(vec.find_spans(cat="launch"))

    # Identical multiset of per-track phase trees.
    assert wg_phase_forest(sim) == wg_phase_forest(vec), (
        f"{primitive_name}: phase trees differ between backends")


class TestRegularPrimitives:
    def test_pad(self):
        matrix = padding_matrix(64, 31)
        assert_span_parity(
            lambda b: ds_pad(matrix, 1,
                             config=DSConfig(wg_size=WG, seed=3, backend=b)),
            "ds_pad")

    def test_unpad(self):
        matrix = padding_matrix(64, 32)
        assert_span_parity(
            lambda b: ds_unpad(matrix, 1,
                               config=DSConfig(wg_size=WG, seed=3, backend=b)),
            "ds_unpad")

    def test_regular_tree_shape(self):
        """Regular DS phases are load -> sync -> store, no reduce."""
        matrix = padding_matrix(64, 31)
        with obs.tracing("spans") as t:
            ds_pad(matrix, 1,
                   config=DSConfig(wg_size=WG, seed=3, backend="vectorized"))
        for trees, _ in wg_phase_forest(t).items():
            assert [name for name, _ in trees] == ["load", "sync", "store"]


class TestIrregularPrimitives:
    def test_stream_compact(self):
        values = compaction_array(N, 0.5, seed=8)
        assert_span_parity(
            lambda b: ds_stream_compact(values, 0.0,
                                        config=DSConfig(
                                            wg_size=WG, seed=8, backend=b)),
            "ds_stream_compact")

    def test_remove_if(self):
        values, pred = predicate_fraction_array(N, 0.5, seed=12)
        assert_span_parity(
            lambda b: ds_remove_if(values, pred,
                                   config=DSConfig(
                                       wg_size=WG, seed=12, backend=b)),
            "ds_remove_if")

    def test_copy_if(self):
        values, pred = predicate_fraction_array(N, 0.25, seed=5)
        assert_span_parity(
            lambda b: ds_copy_if(values, pred,
                                 config=DSConfig(
                                     wg_size=WG, seed=5, backend=b)),
            "ds_copy_if")

    def test_unique(self):
        values = runs_array(N, 0.25, seed=16)
        assert_span_parity(
            lambda b: ds_unique(values,
                                config=DSConfig(
                                    wg_size=WG, seed=16, backend=b)),
            "ds_unique")

    def test_partition(self):
        values, pred = predicate_fraction_array(N, 0.5, seed=19)
        assert_span_parity(
            lambda b: ds_partition(values, pred,
                                   config=DSConfig(
                                       wg_size=WG, seed=19, backend=b)),
            "ds_partition")

    def test_irregular_tree_shape(self):
        """Irregular DS phases are load -> reduce -> sync -> store,
        with the flag-round scans nested inside store."""
        values = compaction_array(N, 0.5, seed=8)
        with obs.tracing("spans") as t:
            ds_stream_compact(values, 0.0,
                              config=DSConfig(
                                  wg_size=WG, seed=8, backend="vectorized"))
        saw_scan = False
        for trees, _ in wg_phase_forest(t).items():
            for name, children in trees:
                assert name in ("load", "reduce", "sync", "store")
                if name == "store" and children:
                    assert {c for c, _ in children} == {"scan"}
                    saw_scan = True
        assert saw_scan

    def test_sync_wait_only_on_simulated(self):
        values = compaction_array(N, 0.5, seed=8)
        tracers = traced(
            lambda b: ds_stream_compact(values, 0.0,
                                        config=DSConfig(
                                            wg_size=WG, seed=8, backend=b)))
        assert tracers["simulated"].find_spans("sync_wait", cat="sched")
        assert not tracers["vectorized"].find_spans("sync_wait")


class TestKeyedPrimitives:
    def test_unique_by_key(self):
        keys = runs_array(N, 0.25, seed=21)
        vals = np.arange(N, dtype=np.float32)
        assert_span_parity(
            lambda b: ds_unique_by_key(keys, vals,
                                       config=DSConfig(
                                           wg_size=WG, seed=21, backend=b)),
            "ds_unique_by_key")


class TestMetricsParity:
    def test_stream_counters_match_launch_counters(self):
        values = compaction_array(N, 0.5, seed=8)
        results = {}
        tracers = {}
        for backend in ("simulated", "vectorized"):
            with obs.tracing("spans") as t:
                results[backend] = ds_stream_compact(values, 0.0,
                                                     config=DSConfig(
                                                         wg_size=WG, seed=8, backend=backend))
            tracers[backend] = t
        for backend, t in tracers.items():
            c = results[backend].counters[0]
            m = t.metrics
            assert m.counter("stream.launches").value == 1
            assert m.counter("stream.bytes_loaded").value == c.bytes_loaded
            assert m.counter("stream.bytes_stored").value == c.bytes_stored
            assert m.counter("stream.atomics").value == c.n_atomics
            assert m.gauge("sched.peak_resident").value == c.peak_resident
        sim_m, vec_m = tracers["simulated"].metrics, \
            tracers["vectorized"].metrics
        for name in ("stream.bytes_loaded", "stream.bytes_stored",
                     "stream.atomics", "stream.barriers"):
            assert sim_m.counter(name).value == vec_m.counter(name).value

    @pytest.mark.slow
    def test_spin_wait_histograms_cover_waiting_groups(self):
        values = compaction_array(N, 0.5, seed=8)
        with obs.tracing("spans") as t:
            result = ds_stream_compact(values, 0.0,
                                       config=DSConfig(
                                           wg_size=WG, seed=8, backend="simulated"))
        n_wgs = result.extras["n_workgroups"]
        hists = t.metrics.instruments("sched.spin_wait_us")
        assert 0 < len(hists) <= n_wgs
        waits = t.find_spans("sync_wait", cat="sched")
        assert sum(h.count for h in hists) == len(waits)
        for h in hists:
            assert h.count > 0 and h.min >= 0.0
