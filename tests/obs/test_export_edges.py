"""Exporter edge cases: empty traces, unclosed spans, non-finite values.

The exporters feed dashboards and the analyzer; a trace captured mid
incident (spans still open, NaN timings from a failed measurement, or
nothing recorded at all) must still produce strictly valid JSON, never
a crash or an ``NaN`` literal that strict parsers reject.
"""

import json
import math

import pytest

from repro.obs.export import (
    export_chrome_trace,
    export_jsonl,
    validate_chrome_trace,
)
from repro.obs.tracer import Tracer


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def tick(self, us: float):
        self.ns += int(us * 1000)


def _strict_parse(path):
    """Parse with NaN/Infinity literals rejected, the way browsers do."""
    def _no_nan(s):
        raise ValueError(f"non-standard JSON literal {s!r} in output")
    return json.loads(path.read_text(), parse_constant=_no_nan)


class TestEmptyTrace:
    def test_empty_tracer_chrome_export_validates(self, tmp_path):
        path = tmp_path / "empty.json"
        doc = export_chrome_trace(Tracer("spans", clock=FakeClock()), path)
        validate_chrome_trace(doc)
        assert _strict_parse(path) == doc

    def test_empty_tracer_jsonl_export(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        records = export_jsonl(Tracer("spans", clock=FakeClock()), path)
        assert records == []
        assert path.read_text() == ""


class TestUnclosedSpans:
    def _dangling(self):
        clock = FakeClock()
        t = Tracer("spans", clock=clock)
        t.span("open_launch", cat="launch", track="host")  # never finished
        done = t.span("done", cat="phase", track="wg:0")
        clock.tick(12)
        done.finish()
        return t

    def test_chrome_export_closes_at_latest_timestamp(self, tmp_path):
        path = tmp_path / "dangling.json"
        doc = export_chrome_trace(self._dangling(), path)
        validate_chrome_trace(doc)
        (ev,) = [e for e in doc["traceEvents"]
                 if e.get("ph") == "X" and e["name"] == "open_launch"]
        assert ev["ts"] + ev["dur"] == pytest.approx(12.0)
        _strict_parse(path)

    def test_jsonl_marks_unclosed_spans(self, tmp_path):
        path = tmp_path / "dangling.jsonl"
        records = export_jsonl(self._dangling(), path)
        by_name = {r["name"]: r for r in records if r["type"] == "span"}
        assert by_name["open_launch"]["unclosed"] is True
        assert by_name["open_launch"]["dur_us"] == pytest.approx(12.0)
        assert "unclosed" not in by_name["done"]
        for line in path.read_text().splitlines():
            json.loads(line)


class TestNonFiniteValues:
    def _poisoned(self):
        clock = FakeClock()
        t = Tracer("spans", clock=clock)
        sp = t.span("launch[k]", cat="launch", track="host",
                    args={"speedup": float("nan"),
                          "bound": float("inf"),
                          "n": 64})
        clock.tick(3)
        sp.finish()
        h = t.metrics.histogram("sched.spin_wait_us")
        h.record(float("nan"))
        h.record(float("inf"))
        h.record(5.0)
        return t

    def test_chrome_export_sanitizes_and_stays_strict(self, tmp_path):
        path = tmp_path / "nonfinite.json"
        doc = export_chrome_trace(self._poisoned(), path)
        validate_chrome_trace(doc)
        parsed = _strict_parse(path)
        (ev,) = [e for e in parsed["traceEvents"]
                 if e.get("ph") == "X"]
        # non-finite args are nulled, finite ones preserved
        assert ev["args"]["speedup"] is None
        assert ev["args"]["bound"] is None
        assert ev["args"]["n"] == 64

    def test_histogram_nonfinite_values_survive_export(self, tmp_path):
        path = tmp_path / "nonfinite.json"
        export_chrome_trace(self._poisoned(), path)
        parsed = _strict_parse(path)
        (hist,) = [m for m in parsed["otherData"]["metrics"]["trace"]
                   if m["name"] == "sched.spin_wait_us"]
        assert hist["count"] == 1 and hist["nonfinite"] == 2
        assert all(v is None or math.isfinite(v)
                   for v in (hist["min"], hist["max"], hist["mean"]))

    def test_jsonl_sanitizes_nonfinite(self, tmp_path):
        path = tmp_path / "nonfinite.jsonl"
        export_jsonl(self._poisoned(), path)
        for line in path.read_text().splitlines():
            record = json.loads(
                line, parse_constant=lambda s: pytest.fail(
                    f"non-standard literal {s!r} in JSONL"))
            if record["type"] == "span":
                assert record["args"]["speedup"] is None
