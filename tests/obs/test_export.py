"""Exporters: Chrome-trace JSON (golden file), JSONL, validation."""

import json

import pytest

from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
    validate_chrome_trace,
)
from repro.obs.tracer import Tracer


class FakeClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def tick(self, us: float):
        self.ns += int(us * 1000)


def make_tracer() -> Tracer:
    """A small deterministic trace: one launch on the host, two
    work-groups with load/store phases, one instant, one metric."""
    clock = FakeClock()
    t = Tracer("full", clock=clock)
    launch = t.span("launch[k]", cat="launch", args={"grid_size": 2})
    wg0 = t.span("load", cat="phase", track="wg:0")
    clock.tick(10)
    wg0.finish()
    t.instant("atomic_add", cat="event", track="wg:0")
    wg1 = t.span("load", cat="phase", track="wg:1")
    clock.tick(5)
    wg1.finish()
    st = t.span("store", cat="phase", track="wg:0")
    clock.tick(5)
    st.finish()
    launch.finish()
    t.metrics.counter("stream.launches").inc()
    return t


#: The exact Chrome-trace document for :func:`make_tracer` — a golden
#: file inlined so a formatting regression is a visible diff, not a
#: silently rewritten artifact.
GOLDEN = {
    "traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "simulated"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "host"}},
        {"name": "thread_sort_index", "ph": "M", "pid": 0, "tid": 0,
         "args": {"sort_index": 0}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
         "args": {"name": "wg 0"}},
        {"name": "thread_sort_index", "ph": "M", "pid": 0, "tid": 1,
         "args": {"sort_index": 1}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": 2,
         "args": {"name": "wg 1"}},
        {"name": "thread_sort_index", "ph": "M", "pid": 0, "tid": 2,
         "args": {"sort_index": 2}},
        {"name": "launch[k]", "cat": "launch", "ph": "X", "ts": 0.0,
         "dur": 20.0, "pid": 0, "tid": 0, "args": {"grid_size": 2}},
        {"name": "load", "cat": "phase", "ph": "X", "ts": 0.0,
         "dur": 10.0, "pid": 0, "tid": 1, "args": {}},
        {"name": "store", "cat": "phase", "ph": "X", "ts": 15.0,
         "dur": 5.0, "pid": 0, "tid": 1, "args": {}},
        {"name": "load", "cat": "phase", "ph": "X", "ts": 10.0,
         "dur": 5.0, "pid": 0, "tid": 2, "args": {}},
        {"name": "atomic_add", "cat": "event", "ph": "i", "s": "t",
         "ts": 10.0, "pid": 0, "tid": 1, "args": {}},
    ],
    "displayTimeUnit": "ms",
    "otherData": {
        "generator": "repro.obs",
        "metrics": {
            "simulated": [
                {"type": "counter", "name": "stream.launches",
                 "labels": {}, "value": 1},
            ],
        },
    },
}


class TestChromeTrace:
    def test_golden_document(self, tmp_path):
        path = tmp_path / "trace.json"
        doc = export_chrome_trace({"simulated": make_tracer()}, path)
        assert doc == GOLDEN
        # and the on-disk bytes parse back to the same document
        assert json.loads(path.read_text()) == GOLDEN

    def test_golden_document_validates(self):
        validate_chrome_trace(GOLDEN)

    def test_single_tracer_gets_default_process(self):
        doc = export_chrome_trace(make_tracer())
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e["name"] == "process_name"]
        assert names == ["trace"]

    def test_two_tracers_two_pids(self):
        doc = export_chrome_trace({"simulated": make_tracer(),
                                   "vectorized": make_tracer()})
        assert {e["pid"] for e in doc["traceEvents"]} == {0, 1}
        assert set(doc["otherData"]["metrics"]) == {"simulated",
                                                    "vectorized"}

    def test_open_span_closed_at_latest_timestamp(self):
        clock = FakeClock()
        t = Tracer("spans", clock=clock)
        t.span("dangling", track="wg:0")
        clock.tick(4)
        t.span("done", track="wg:1").finish()
        (ev,) = [e for e in chrome_trace_events(t)
                 if e.get("ph") == "X" and e["name"] == "dangling"]
        assert ev["ts"] + ev["dur"] == pytest.approx(4.0)

    def test_adjacent_spans_stay_adjacent_after_rounding(self):
        t = Tracer("spans", clock=FakeClock())
        # endpoints chosen so round(ts) + round(dur) would overlap
        t.add_span("a", track="wg:0", start_us=0.0, end_us=10.00049)
        t.add_span("b", track="wg:0", start_us=10.00049, end_us=20.0)
        validate_chrome_trace(export_chrome_trace(t))


class TestJsonl:
    def test_records_spans_instants_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = export_jsonl(make_tracer(), path)
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines == records
        types = [r["type"] for r in records]
        assert types == ["span"] * 4 + ["instant", "counter"]
        launch = records[0]
        assert launch["track"] == "host" and launch["depth"] == 0
        assert launch["dur_us"] == pytest.approx(20.0)


class TestValidation:
    def test_rejects_non_document(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})

    def test_rejects_empty_events(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "B", "pid": 0, "tid": 0, "ts": 0}]})

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 0, "tid": 0,
                 "ts": 0, "dur": -1}]})

    def test_rejects_partial_overlap(self):
        with pytest.raises(ValueError, match="nest"):
            validate_chrome_trace({"traceEvents": [
                {"name": "a", "ph": "X", "pid": 0, "tid": 0,
                 "ts": 0, "dur": 10},
                {"name": "b", "ph": "X", "pid": 0, "tid": 0,
                 "ts": 5, "dur": 10},
            ]})

    def test_accepts_nesting_and_adjacency(self):
        validate_chrome_trace({"traceEvents": [
            {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 10},
            {"name": "b", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 4},
            {"name": "c", "ph": "X", "pid": 0, "tid": 0, "ts": 4, "dur": 6},
            {"name": "d", "ph": "X", "pid": 0, "tid": 1, "ts": 5, "dur": 99},
        ]})
