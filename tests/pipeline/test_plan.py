"""The batch planner and plan cache.

Planning is pure: the same op sequence, geometry, dtypes, parameters
and config must produce the same :func:`plan_key`, so a repeated batch
is a cache hit; any change to those inputs must miss.
"""

import numpy as np

from repro import DSConfig, Pipeline, obs
from repro.core.predicates import is_even
from repro.pipeline import GLOBAL_PLAN_CACHE, PlanCache


def _cfg(**kw):
    kw.setdefault("wg_size", 32)
    kw.setdefault("backend", "simulated")
    return DSConfig(**kw)


def _run_chain(a, cache, **pipeline_kw):
    p = Pipeline(config=_cfg(), plan_cache=cache, **pipeline_kw)
    f1 = p.compact(a.copy(), 0)
    p.unique(f1)
    p.run()
    return p


class TestPlanCache:
    def test_second_identical_batch_hits(self, rng):
        a = rng.integers(0, 5, 600).astype(np.int64)
        cache = PlanCache()
        _run_chain(a, cache)
        assert (cache.misses, cache.hits) == (1, 0)
        _run_chain(a, cache)
        assert (cache.misses, cache.hits) == (1, 1)
        assert len(cache) == 1

    def test_same_geometry_different_values_still_hits(self, rng):
        cache = PlanCache()
        _run_chain(rng.integers(0, 5, 600).astype(np.int64), cache)
        _run_chain(rng.integers(0, 5, 600).astype(np.int64), cache)
        assert cache.hits == 1

    def test_key_sensitivity(self, rng):
        """Size, dtype, config and fuse flag each change the key."""
        cache = PlanCache()
        base = rng.integers(0, 5, 600).astype(np.int64)
        _run_chain(base, cache)
        _run_chain(rng.integers(0, 5, 601).astype(np.int64), cache)  # size
        _run_chain(base.astype(np.int32), cache)                     # dtype
        _run_chain(base, cache, fuse=False)                          # fuse
        p = Pipeline(config=_cfg(wg_size=64), plan_cache=cache)
        f1 = p.compact(base.copy(), 0)                               # config
        p.unique(f1)
        p.run()
        assert (cache.misses, cache.hits) == (5, 0)

    def test_future_nested_in_container_keeps_its_dep_edge(self, rng):
        """A pending future inside a list/tuple must signature as a
        ``("dep", i)`` edge, not collapse to an object-dtype array —
        otherwise batches with different dataflow share one key."""
        from repro.pipeline.plan import _value_signature

        p = Pipeline(config=_cfg())
        f = p.compact(rng.integers(0, 5, 100).astype(np.int64), 0)
        sig = _value_signature([f, 3])
        assert sig == ("seq", ("dep", 0), 3)
        # A homogeneous numeric sequence still signatures as an array.
        assert _value_signature([1, 2, 3])[0] == "array"
        p.run()

    def test_op_parameters_change_the_key(self, rng):
        a = rng.integers(0, 5, 400).astype(np.int64)
        cache = PlanCache()
        for remove_value in (0, 1):
            p = Pipeline(config=_cfg(), plan_cache=cache)
            p.compact(a.copy(), remove_value)
            p.run()
        assert (cache.misses, cache.hits) == (2, 0)

    def test_eviction_bound(self, rng):
        cache = PlanCache(maxsize=2)
        for n in (100, 200, 300):
            p = Pipeline(config=_cfg(), plan_cache=cache)
            p.compact(rng.integers(0, 5, n).astype(np.int64), 0)
            p.run()
        assert len(cache) == 2

    def test_clear(self, rng):
        cache = PlanCache()
        _run_chain(rng.integers(0, 5, 100).astype(np.int64), cache)
        cache.clear()
        assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)

    def test_global_cache_is_the_default(self, rng):
        a = rng.integers(0, 7, 777).astype(np.int16)
        before = GLOBAL_PLAN_CACHE.hits
        p1 = Pipeline(config=_cfg())
        p1.compact(a.copy(), 3)
        p1.run()
        p2 = Pipeline(config=_cfg())
        p2.compact(a.copy(), 3)
        p2.run()
        assert GLOBAL_PLAN_CACHE.hits >= before + 1

    def test_metrics_emitted_when_tracing(self, rng):
        a = rng.integers(0, 5, 300).astype(np.int64)
        cache = PlanCache()
        with obs.tracing("spans") as tracer:
            _run_chain(a, cache)
            _run_chain(a, cache)
        counters = {c.name: c.value for c in tracer.metrics
                    if c.name.startswith("pipeline.plan_cache")}
        assert counters["pipeline.plan_cache.misses"] == 1
        assert counters["pipeline.plan_cache.hits"] == 1


class TestPlanCacheThreadSafety:
    def test_concurrent_lookup_store_hammer(self, rng):
        """Many threads hammering one small cache with overlapping keys
        must never corrupt it: every lookup returns either None or the
        exact plan stored under that key, the LRU bound holds, and the
        hit/miss counters add up."""
        import threading

        from repro.pipeline.plan import PlanCache

        cache = PlanCache(maxsize=8)
        keys = [("key", i) for i in range(16)]
        plans = {key: object() for key in keys}
        errors = []
        start = threading.Barrier(8)

        def hammer(seed):
            local = np.random.default_rng(seed)
            start.wait()
            for _ in range(400):
                key = keys[local.integers(0, len(keys))]
                got = cache.lookup(key)
                if got is not None and got is not plans[key]:
                    errors.append(f"wrong plan for {key}")
                    return
                cache.store(key, plans[key])

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 8
        hits, misses = cache.stats()
        assert hits + misses == 8 * 400

    def test_stats_snapshot_is_consistent(self, rng):
        cache = PlanCache()
        _run_chain(rng.integers(0, 5, 300).astype(np.int64), cache)
        _run_chain(rng.integers(0, 5, 300).astype(np.int64), cache)
        assert cache.stats() == (1, 1)

    def test_lru_recency_not_insertion_order(self, rng):
        """Touching an old entry must protect it from eviction."""
        cache = PlanCache(maxsize=2)
        a, b, c = object(), object(), object()
        cache.store(("a",), a)
        cache.store(("b",), b)
        assert cache.lookup(("a",)) is a  # refresh a
        cache.store(("c",), c)            # evicts b, not a
        assert cache.lookup(("a",)) is a
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("c",)) is c


class TestPlanStructure:
    def test_cached_plan_reused_across_batches_of_one_pipeline(self, rng):
        a = rng.integers(0, 5, 500).astype(np.int64)
        cache = PlanCache()
        p = Pipeline(config=_cfg(), plan_cache=cache)
        for _ in range(3):
            f1 = p.compact(a.copy(), 0)
            p.unique(f1)
            p.run()
        assert (cache.misses, cache.hits) == (1, 2)
        assert len(p.stream.batches) == 3

    def test_fused_plan_shape(self, rng):
        a = rng.integers(0, 5, 500).astype(np.int64)
        p = Pipeline(config=_cfg(), plan_cache=PlanCache())
        f1 = p.compact(a.copy(), 0)
        f2 = p.unique(f1)
        p.remove_if(f2, is_even())
        p.run()
        plan = p.last_plan
        assert plan.n_ops == 3
        assert len(plan.steps) == 1
        assert plan.steps[0].op_indices == (0, 1, 2)
        assert (plan.n_fused_groups, plan.n_fused_ops) == (1, 3)

    def test_two_stencils_split_the_run(self, rng):
        """A chain may carry at most one unique stage."""
        a = np.repeat(rng.integers(0, 30, 200), 3).astype(np.int64)
        p = Pipeline(config=_cfg(), plan_cache=PlanCache())
        f1 = p.compact(a.copy(), 0)
        f2 = p.unique(f1)
        p.unique(f2)
        p.run()
        plan = p.last_plan
        assert plan.n_fused_groups == 1
        assert [s.op_indices for s in plan.steps] == [(0, 1), (2,)]

    def test_regular_op_breaks_the_run(self, rng):
        a = rng.integers(0, 5, 400).astype(np.int64)
        p = Pipeline(config=_cfg(), plan_cache=PlanCache())
        f1 = p.compact(a.copy(), 0)
        f2 = p.partition(f1, is_even())  # reorders, not fusable
        p.unique(f2)
        p.run()
        assert p.last_plan.n_fused_groups == 0
        assert len(p.last_plan.steps) == 3

    def test_differing_per_op_config_blocks_fusion(self, rng):
        a = rng.integers(0, 5, 400).astype(np.int64)
        p = Pipeline(config=_cfg(), plan_cache=PlanCache())
        f1 = p.compact(a.copy(), 0)
        p.unique(f1, config=_cfg(wg_size=64))
        p.run()
        assert p.last_plan.n_fused_groups == 0
