"""Pipeline engine: futures, batched execution, fusion, parity.

The engine contract (docs/pipeline.md): a pipelined op runs through the
same runner a direct ``ds_*`` call uses, on one shared stream — so with
``fuse=False`` the batch matches the sequential calls byte for byte,
counters included, on both backends.  With fusion on, a compact→unique
chain collapses to a single launch whose output still matches.
"""

import warnings

import numpy as np
import pytest

from repro import DSConfig, Pipeline
from repro.core.predicates import is_even, less_than
from repro.errors import LaunchError
from repro.pipeline import PlanCache
from repro.primitives import (
    ds_partition,
    ds_remove_if,
    ds_stream_compact,
    ds_unique,
)
from repro.primitives.common import resolve_stream
from repro.reference import compact_ref, unique_ref

BACKENDS = ["simulated", "vectorized"]


def _cfg(backend, **kw):
    return DSConfig(wg_size=32, coarsening=2, backend=backend, **kw)


class TestFutures:
    def test_enqueue_returns_pending_future(self, rng):
        p = Pipeline(config=_cfg("simulated"))
        f = p.compact(rng.integers(0, 5, 100).astype(np.float32), 0)
        assert not f.done
        assert p.num_pending == 1

    def test_output_access_runs_the_batch(self, rng):
        a = rng.integers(0, 5, 400).astype(np.float32)
        p = Pipeline(config=_cfg("simulated"))
        f = p.compact(a, 0)
        out = f.output  # implicit run()
        assert f.done
        assert p.num_pending == 0
        assert np.array_equal(out, compact_ref(a, 0))

    def test_chained_future_is_a_dependency(self, rng):
        a = rng.integers(0, 5, 500).astype(np.int64)
        p = Pipeline(config=_cfg("simulated"), fuse=False)
        f1 = p.compact(a, 0)
        f2 = p.unique(f1)
        p.run()
        assert np.array_equal(f2.output, unique_ref(compact_ref(a, 0)))

    def test_full_names_and_enqueue_spelling(self, rng):
        a = rng.integers(0, 5, 200).astype(np.float32)
        p = Pipeline(config=_cfg("vectorized"))
        f1 = p.ds_stream_compact(a.copy(), 0)
        f2 = p.enqueue("compact", a.copy(), 0)
        results = p.run()
        assert len(results) == 2
        assert np.array_equal(f1.output, f2.output)

    def test_unknown_op_name_raises(self):
        p = Pipeline()
        with pytest.raises(AttributeError):
            p.sort_by_key

    def test_run_empty_is_noop(self):
        assert Pipeline().run() == []

    def test_legacy_tuning_kwargs_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            p = Pipeline(wg_size=32)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "Pipeline" in str(dep[0].message)
        assert p.config.wg_size == 32

    def test_conflicting_legacy_kwarg_raises(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(LaunchError, match="conflict"):
                Pipeline(config=DSConfig(wg_size=64), wg_size=32)


class TestForeignFutures:
    """A future from another pipeline is materialized at enqueue time —
    its batch-local index means nothing in the consuming batch, so it
    must never be recorded as a local dependency edge."""

    def test_colliding_foreign_index_is_not_aliased(self, rng):
        a = np.array([0, 1, 1, 2, 2, 3], dtype=np.int64)
        b = rng.integers(4, 9, 300).astype(np.int64)
        p1 = Pipeline(config=_cfg("simulated"))
        f1 = p1.compact(a.copy(), 0)  # index 0 of p1's batch
        p2 = Pipeline(config=_cfg("simulated"))
        g0 = p2.compact(b.copy(), 0)  # index 0 of p2's batch: collides
        g1 = p2.unique(f1)
        p2.run()
        assert np.array_equal(g1.output, unique_ref(compact_ref(a, 0)))
        assert np.array_equal(g0.output, compact_ref(b, 0))

    def test_out_of_range_foreign_index(self, rng):
        """A foreign index past the consuming batch's op count used to
        KeyError inside planning."""
        a = rng.integers(0, 5, 200).astype(np.int64)
        p1 = Pipeline(config=_cfg("simulated"))
        p1.compact(rng.integers(0, 5, 100).astype(np.int64), 0)
        f1 = p1.compact(a.copy(), 0)  # index 1 of p1's batch
        p2 = Pipeline(config=_cfg("simulated"))
        g = p2.unique(f1)  # p2's batch only has index 0
        assert np.array_equal(g.output, unique_ref(compact_ref(a, 0)))

    def test_enqueue_runs_the_foreign_batch(self, rng):
        a = rng.integers(0, 5, 150).astype(np.int64)
        p1 = Pipeline(config=_cfg("simulated"))
        f1 = p1.compact(a, 0)
        p2 = Pipeline(config=_cfg("simulated"))
        p2.unique(f1)
        assert f1.done
        assert p1.num_pending == 0


class TestKeywordSpelling:
    """Data params passed by keyword plan and fuse exactly like the
    positional spelling (review: ``p.remove_if(x, predicate=...)``
    crashed plan_key with IndexError)."""

    def test_data_params_by_keyword(self, rng):
        a = rng.integers(0, 9, 400).astype(np.int64)
        p = Pipeline(config=_cfg("simulated"))
        f1 = p.remove_if(a.copy(), predicate=is_even())
        f2 = p.compact(a.copy(), remove_value=0)
        p.run()
        assert np.array_equal(f1.output, a[a % 2 != 0])
        assert np.array_equal(f2.output, compact_ref(a, 0))

    def test_keyword_spelling_shares_the_plan_entry(self, rng):
        a = rng.integers(0, 9, 300).astype(np.int64)
        cache = PlanCache()
        p = Pipeline(config=_cfg("simulated"), plan_cache=cache)
        p.remove_if(a.copy(), is_even())
        p.run()
        p.remove_if(a.copy(), predicate=is_even())
        p.run()
        assert cache.hits == 1
        assert cache.misses == 1

    def test_keyword_args_still_fuse(self, rng):
        a = rng.integers(0, 9, 500).astype(np.int64)
        p = Pipeline(config=_cfg("simulated"), fuse=True)
        f1 = p.compact(a.copy(), remove_value=0)
        f2 = p.remove_if(f1, predicate=is_even())
        p.run()
        assert p.stream.num_launches == 1
        expected = compact_ref(a, 0)
        assert np.array_equal(f2.output, expected[expected % 2 != 0])


class TestSequentialParity:
    """fuse=False: the batch is observationally the sequential program."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chain_counters_match_sequential(self, rng, backend):
        a = rng.integers(0, 5, 1200).astype(np.int64)
        cfg = _cfg(backend)

        p = Pipeline(config=cfg, fuse=False)
        f1 = p.compact(a.copy(), 0)
        f2 = p.unique(f1)
        p.run()

        s = resolve_stream(None, seed=cfg.seed)
        r1 = ds_stream_compact(a.copy(), 0, s, config=cfg)
        r2 = ds_unique(r1.output, s, config=cfg)

        assert np.array_equal(f1.output, r1.output)
        assert np.array_equal(f2.output, r2.output)
        for rf, rs in ((f1.result(), r1), (f2.result(), r2)):
            assert len(rf.counters) == len(rs.counters)
            for cf, cs in zip(rf.counters, rs.counters):
                assert cf == cs  # full equality, spins and steps included

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_independent_chains_interleave(self, rng, backend):
        """Two chains round-robin: a1, b1, a2, b2 — the launch order a
        multi-stream driver would overlap — and the results still match
        the sequential program run in that order."""
        a = rng.integers(0, 5, 900).astype(np.int64)
        b = rng.integers(0, 9, 700).astype(np.float32)
        cfg = _cfg(backend)

        p = Pipeline(config=cfg, fuse=False)
        fa1 = p.compact(a.copy(), 0)
        fa2 = p.unique(fa1)
        fb1 = p.partition(b.copy(), is_even())
        p.run()

        order = [i for step in p.last_plan.steps for i in step.op_indices]
        assert order == [0, 2, 1]

        s = resolve_stream(None, seed=cfg.seed)
        r1 = ds_stream_compact(a.copy(), 0, s, config=cfg)
        r3 = ds_partition(b.copy(), is_even(), s, config=cfg)
        r2 = ds_unique(r1.output, s, config=cfg)
        for rf, rs in ((fa1.result(), r1), (fa2.result(), r2),
                       (fb1.result(), r3)):
            assert np.array_equal(rf.output, rs.output)
            assert [c for c in rf.counters] == [c for c in rs.counters]

    def test_per_op_config_override(self, rng):
        a = rng.integers(0, 5, 300).astype(np.float32)
        p = Pipeline(config=_cfg("simulated"))
        f = p.compact(a, 0, config=DSConfig(wg_size=64, coarsening=1,
                                            backend="simulated"))
        assert f.result().counters[0].wg_size == 64


class TestFusedExecution:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_compact_unique_fuses_to_one_launch(self, rng, backend):
        a = np.repeat(rng.integers(0, 6, 400), rng.integers(1, 4, 400))
        a = a.astype(np.int64)
        cfg = _cfg(backend)

        fused = Pipeline(config=cfg, fuse=True)
        g1 = fused.compact(a.copy(), 0)
        g2 = fused.unique(g1)
        fused.run()

        unfused = Pipeline(config=cfg, fuse=False)
        h1 = unfused.compact(a.copy(), 0)
        h2 = unfused.unique(h1)
        unfused.run()

        assert fused.stream.num_launches == 1
        assert unfused.stream.num_launches == 2
        assert np.array_equal(g2.output, h2.output)
        assert np.array_equal(g2.output, unique_ref(compact_ref(a, 0)))
        # The intermediate future still resolves, launch-free.
        assert np.array_equal(g1.output, h1.output)
        assert g1.result().counters == []
        assert g1.result().extras["fused"] is True
        assert g1.result().extras["fused_into"] == "ds_unique"
        assert g2.result().extras["fused_stages"] == \
            ["not_equal_to(0)", "unique"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_three_stage_chain(self, rng, backend):
        a = rng.integers(0, 9, 1000).astype(np.int64)
        p = Pipeline(config=_cfg(backend), fuse=True)
        f1 = p.compact(a.copy(), 0)
        f2 = p.unique(f1)
        f3 = p.remove_if(f2, is_even())
        p.run()
        assert p.stream.num_launches == 1
        expected = unique_ref(compact_ref(a, 0))
        expected = expected[expected % 2 != 0]
        assert np.array_equal(f3.output, expected)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fused_extras_match_sequential(self, rng, backend):
        """Each fused op's n_kept/n_removed is measured against its
        *own* input (the previous stage's survivors), exactly like the
        sequential calls the fusion replaces."""
        a = np.repeat(rng.integers(0, 6, 300), rng.integers(1, 4, 300))
        a = a.astype(np.int64)
        cfg = _cfg(backend)

        p = Pipeline(config=cfg, fuse=True)
        f1 = p.compact(a.copy(), 0)
        f2 = p.unique(f1)
        f3 = p.remove_if(f2, is_even())
        p.run()
        assert p.last_plan.n_fused_groups == 1

        s = resolve_stream(None, seed=cfg.seed)
        r1 = ds_stream_compact(a.copy(), 0, s, config=cfg)
        r2 = ds_unique(r1.output, s, config=cfg)
        r3 = ds_remove_if(r2.output, is_even(), s, config=cfg)
        for rf, rs in ((f1.result(), r1), (f2.result(), r2),
                       (f3.result(), r3)):
            assert rf.extras["n_kept"] == rs.extras["n_kept"]
            assert rf.extras["n_removed"] == rs.extras["n_removed"]

    def test_shared_intermediate_blocks_fusion(self, rng):
        """If something else reads the intermediate, it must really be
        materialized — the run cannot fuse."""
        a = rng.integers(0, 5, 600).astype(np.int64)
        p = Pipeline(config=_cfg("simulated"), fuse=True)
        f1 = p.compact(a.copy(), 0)
        f2 = p.unique(f1)
        f3 = p.partition(f1, less_than(3))  # second consumer of f1
        p.run()
        assert p.last_plan.n_fused_groups == 0
        assert np.array_equal(f2.output, unique_ref(compact_ref(a, 0)))
        assert f3.result().extras["n_true"] == int(
            (compact_ref(a, 0) < 3).sum())

    def test_race_tracking_blocks_fusion(self, rng):
        a = rng.integers(0, 5, 400).astype(np.int64)
        p = Pipeline(config=_cfg("simulated", race_tracking=True), fuse=True)
        f1 = p.compact(a.copy(), 0)
        p.unique(f1)
        p.run()
        assert p.last_plan.n_fused_groups == 0
        assert p.stream.num_launches == 2

    def test_empty_input_matches_sequential_error(self):
        """The fused path refuses empty inputs the same way a direct
        ds_* call does — by raising, not by silently skipping."""
        p = Pipeline(config=_cfg("simulated"), fuse=True)
        f1 = p.compact(np.array([], dtype=np.int64), 0)
        p.unique(f1)
        with pytest.raises(LaunchError, match="positive"):
            p.run()


class TestBatchObservability:
    def test_batch_record_and_events(self, rng):
        a = rng.integers(0, 5, 500).astype(np.int64)
        p = Pipeline(config=_cfg("simulated"), fuse=False)
        f1 = p.compact(a, 0)
        p.unique(f1)
        p.run()
        assert len(p.stream.batches) == 1
        batch = p.stream.batches[0]
        assert batch.label == "pipeline.batch#1"
        assert batch.num_launches == 2
        assert [e.label for e in batch.events] == \
            ["ds_stream_compact", "ds_unique"]
        # unique waited on compact's event: edge from launch 1 to launch 1.
        assert (1, 1) in p.stream.dependencies

    def test_second_run_is_a_second_batch(self, rng):
        a = rng.integers(0, 5, 300).astype(np.float32)
        p = Pipeline(config=_cfg("simulated"))
        p.compact(a.copy(), 0)
        p.run()
        p.compact(a.copy(), 0)
        p.run()
        assert [b.label for b in p.stream.batches] == \
            ["pipeline.batch#1", "pipeline.batch#2"]


class TestPlanWithoutRun:
    def test_plan_populates_cache_and_keeps_ops_pending(self, rng):
        a = rng.integers(0, 5, 400).astype(np.int64)
        cache = PlanCache()
        p = Pipeline(config=_cfg("simulated"), plan_cache=cache)
        f1 = p.compact(a, 0)
        p.unique(f1)
        assert p.plan() is not None
        assert (cache.misses, cache.hits) == (1, 0)
        assert not f1.done  # planning executed nothing
        results = p.run()   # the run is then a pure cache hit
        assert len(results) == 2
        assert (cache.misses, cache.hits) == (1, 1)

    def test_plan_on_empty_pipeline_is_none(self):
        p = Pipeline(config=_cfg("simulated"), plan_cache=PlanCache())
        assert p.plan() is None


class TestSignatureCache:
    def test_runner_signature_cache_is_bounded(self):
        from repro.pipeline import engine

        def probe(values, stream, *, config):  # mimics a runner
            return values

        baseline = dict(engine._signature_cache)
        try:
            fillers = []
            for i in range(engine._SIGNATURE_CACHE_MAX + 16):
                def filler(values, stream, *, config, _i=i):
                    return values
                fillers.append(filler)
                engine._data_param_names(filler)
            assert len(engine._signature_cache) <= \
                engine._SIGNATURE_CACHE_MAX
            # Lookups still work at the bound, hot entries stay cached.
            assert engine._data_param_names(probe) == ("values",)
            assert engine._data_param_names(probe) == ("values",)
            assert probe in engine._signature_cache
        finally:
            with engine._signature_lock:
                engine._signature_cache.clear()
                engine._signature_cache.update(baseline)

    def test_signature_cache_metrics_under_tracing(self, rng):
        from repro import obs

        a = rng.integers(0, 5, 200).astype(np.int64)
        with obs.tracing("spans") as tracer:
            p = Pipeline(config=_cfg("simulated"), plan_cache=PlanCache())
            p.compact(a.copy(), 0)
            p.run()
            p.compact(a.copy(), 0)
            p.run()
        counters = {c.name: c.value for c in tracer.metrics
                    if c.name.startswith("pipeline.signature_cache")}
        # The second enqueue of the same runner must be a cache hit.
        assert counters.get("pipeline.signature_cache.hits", 0) >= 1
