"""Generic slide primitives: insert_gap and erase_range."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LaunchError
from repro.primitives import ds_erase_range, ds_insert_gap
from repro.reference import erase_range_ref, insert_gap_ref
from repro.config import DSConfig


class TestInsertGap:
    def test_matches_reference(self, rng):
        a = rng.integers(0, 99, 900).astype(np.float32)
        r = ds_insert_gap(a, 250, 40, fill=-1.0,
                          config=DSConfig(wg_size=64, coarsening=2))
        assert np.array_equal(r.output, insert_gap_ref(a, 250, 40, fill=-1.0))

    def test_gap_at_front_is_a_pure_shift(self, rng):
        a = rng.integers(0, 99, 500).astype(np.float32)
        r = ds_insert_gap(a, 0, 30, fill=0.0, config=DSConfig(wg_size=32))
        assert np.array_equal(r.output[30:], a)
        assert (r.output[:30] == 0).all()

    def test_gap_at_end_moves_nothing(self, rng):
        a = rng.integers(0, 99, 500).astype(np.float32)
        r = ds_insert_gap(a, 500, 20, fill=7.0, config=DSConfig(wg_size=32))
        assert np.array_equal(r.output[:500], a)
        assert (r.output[500:] == 7.0).all()

    def test_no_fill_leaves_gap_unspecified_but_data_correct(self, rng):
        a = rng.integers(0, 99, 400).astype(np.float32)
        r = ds_insert_gap(a, 100, 10, config=DSConfig(wg_size=32))
        assert np.array_equal(r.output[:100], a[:100])
        assert np.array_equal(r.output[110:], a[100:])

    def test_race_tracking_clean(self, rng):
        a = rng.integers(0, 99, 600).astype(np.float32)
        ds_insert_gap(a, 200, 25,
                      config=DSConfig(wg_size=32, race_tracking=True))

    def test_single_launch(self, rng):
        a = rng.integers(0, 99, 300).astype(np.float32)
        assert ds_insert_gap(a, 50, 10, config=DSConfig(wg_size=32)).num_launches == 1

    def test_rejects_bad_position(self, rng):
        a = rng.integers(0, 9, 10).astype(np.float32)
        with pytest.raises(LaunchError):
            ds_insert_gap(a, 11, 1)


class TestEraseRange:
    def test_matches_reference(self, rng):
        a = rng.integers(0, 99, 900).astype(np.float32)
        r = ds_erase_range(a, 300, 150,
                           config=DSConfig(wg_size=64, coarsening=2))
        assert np.array_equal(r.output, erase_range_ref(a, 300, 150))

    def test_erase_prefix(self, rng):
        a = rng.integers(0, 99, 400).astype(np.float32)
        r = ds_erase_range(a, 0, 100, config=DSConfig(wg_size=32))
        assert np.array_equal(r.output, a[100:])

    def test_erase_suffix(self, rng):
        a = rng.integers(0, 99, 400).astype(np.float32)
        r = ds_erase_range(a, 300, 100, config=DSConfig(wg_size=32))
        assert np.array_equal(r.output, a[:300])

    def test_rejects_out_of_bounds_range(self, rng):
        a = rng.integers(0, 9, 10).astype(np.float32)
        with pytest.raises(LaunchError):
            ds_erase_range(a, 5, 6)


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 1500), data=st.data())
    def test_insert_then_erase_is_identity(self, n, data):
        position = data.draw(st.integers(0, n))
        gap = data.draw(st.integers(0, 64))
        seed = data.draw(st.integers(0, 2**16))
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 999, n).astype(np.float32)
        widened = ds_insert_gap(a, position, gap, fill=-1.0,
                                config=DSConfig(wg_size=32, coarsening=2, seed=seed)).output
        restored = ds_erase_range(widened, position, gap,
                                  config=DSConfig(wg_size=32, coarsening=2, seed=seed + 1)).output
        assert np.array_equal(restored, a)
