"""Ragged-to-uniform padding: the general per-group-constant regular DS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LaunchError
from repro.primitives import ds_ragged_pad, ds_ragged_unpad
from repro.config import DSConfig


def make_ragged(rng, n_rows, max_width):
    widths = rng.integers(0, max_width + 1, n_rows)
    if widths.sum() == 0:
        widths[0] = 1
    packed = rng.integers(0, 10_000, int(widths.sum())).astype(np.float32)
    return packed, widths


class TestRaggedPad:
    def test_rows_land_at_uniform_stride(self, rng):
        packed, widths = make_ragged(rng, 40, 25)
        r = ds_ragged_pad(packed, widths, fill=0.0,
                          config=DSConfig(wg_size=64))
        m = r.output
        prefix = np.concatenate(([0], np.cumsum(widths)))
        for i, w in enumerate(widths):
            assert np.array_equal(m[i, :w], packed[prefix[i]:prefix[i] + w])
            assert (m[i, w:] == 0.0).all()

    def test_explicit_stride(self, rng):
        packed, widths = make_ragged(rng, 10, 8)
        r = ds_ragged_pad(packed, widths, stride=32,
                          config=DSConfig(wg_size=32))
        assert r.output.shape == (10, 32)

    def test_uniform_widths_reduce_to_matrix_padding(self, rng):
        """With equal widths the result equals ds_pad of the 2-D view."""
        from repro.primitives import ds_pad
        widths = np.full(12, 7)
        packed = rng.integers(0, 99, 84).astype(np.float32)
        ragged = ds_ragged_pad(packed, widths, stride=10, fill=0.0,
                               config=DSConfig(wg_size=32)).output
        matrix = ds_pad(packed.reshape(12, 7), 3, fill=0.0,
                        config=DSConfig(wg_size=32)).output
        assert np.array_equal(ragged, matrix)

    def test_empty_rows_allowed(self, rng):
        widths = np.asarray([3, 0, 0, 2, 0, 4])
        packed = np.arange(9, dtype=np.float32)
        m = ds_ragged_pad(packed, widths, fill=-1.0,
                          config=DSConfig(wg_size=32)).output
        assert np.array_equal(m[0, :3], [0, 1, 2])
        assert (m[1] == -1.0).all() and (m[2] == -1.0).all()
        assert np.array_equal(m[3, :2], [3, 4])
        assert np.array_equal(m[5, :4], [5, 6, 7, 8])

    def test_single_launch_in_place(self, rng):
        packed, widths = make_ragged(rng, 20, 10)
        assert ds_ragged_pad(packed, widths, config=DSConfig(wg_size=32)).num_launches == 1

    def test_rejects_inconsistent_widths(self):
        with pytest.raises(LaunchError, match="sum"):
            ds_ragged_pad(np.zeros(5, dtype=np.float32), [2, 2])

    def test_rejects_narrow_stride(self):
        with pytest.raises(LaunchError, match="narrower"):
            ds_ragged_pad(np.zeros(6, dtype=np.float32), [2, 4], stride=3)

    def test_race_tracking_clean(self, rng):
        packed, widths = make_ragged(rng, 30, 20)
        ds_ragged_pad(packed, widths,
                      config=DSConfig(wg_size=32, race_tracking=True))


class TestRaggedUnpad:
    def test_packs_rows_back(self, rng):
        widths = np.asarray([4, 1, 0, 3])
        m = rng.integers(0, 99, (4, 6)).astype(np.float32)
        out = ds_ragged_unpad(m, widths, config=DSConfig(wg_size=32)).output
        expected = np.concatenate([m[i, :w] for i, w in enumerate(widths)])
        assert np.array_equal(out, expected)

    def test_rejects_bad_row_count(self, rng):
        m = rng.random((3, 4)).astype(np.float32)
        with pytest.raises(LaunchError, match="rows"):
            ds_ragged_unpad(m, [1, 2])

    def test_rejects_1d(self):
        with pytest.raises(LaunchError):
            ds_ragged_unpad(np.zeros(8, dtype=np.float32), [8])


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(n_rows=st.integers(1, 30), max_width=st.integers(1, 24),
           seed=st.integers(0, 2**16))
    def test_pad_then_unpad_is_identity(self, n_rows, max_width, seed):
        rng = np.random.default_rng(seed)
        packed, widths = make_ragged(rng, n_rows, max_width)
        padded = ds_ragged_pad(packed, widths,
                               config=DSConfig(wg_size=32, coarsening=2, seed=seed, race_tracking=True))
        back = ds_ragged_unpad(padded.output, widths,
                               config=DSConfig(wg_size=32, coarsening=2, seed=seed + 1, race_tracking=True))
        assert np.array_equal(back.output, packed)
