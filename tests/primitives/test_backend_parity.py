"""Backend parity: the vectorized fast path must be observationally
identical to the event-level scheduler.

The contract (docs/simulator.md): for every primitive, every dtype and
every launch geometry, the two backends produce the same output array,
the same element counts and the same deterministic counters — traffic
(bytes, transactions), event counts (loads, stores, atomics, barriers)
and occupancy.  Only schedule-dependent quantities (``n_spins``,
``steps``) may differ, because the fast path never contends.
"""

import numpy as np
import pytest

from repro import api
from repro.config import DSConfig
from repro.core.predicates import Predicate, is_even, less_than
from repro.primitives import (
    ds_compact_records,
    ds_copy_if,
    ds_erase_range,
    ds_insert_gap,
    ds_pad,
    ds_pad_to_alignment,
    ds_partition,
    ds_ragged_pad,
    ds_ragged_unpad,
    ds_remove_if,
    ds_stream_compact,
    ds_unique,
    ds_unique_by_key,
    ds_unpad,
)

# Every counter field that is a deterministic function of the launch —
# asserted equal between backends.  n_spins and steps are properties of
# the schedule, not the algorithm, and are deliberately absent.
PARITY_FIELDS = [
    "kernel_name",
    "grid_size",
    "wg_size",
    "bytes_loaded",
    "bytes_stored",
    "load_transactions",
    "store_transactions",
    "n_loads",
    "n_stores",
    "n_atomics",
    "n_barriers",
    "completed_wgs",
    "peak_resident",
]

GEOMETRIES = [(32, 1), (32, 3), (64, 2)]
DTYPES = [np.float32, np.int64, np.int16]


def run_both(fn, *args, **kwargs):
    tuning = {k: kwargs.pop(k) for k in ("wg_size", "coarsening")
              if k in kwargs}
    rs = fn(*args, config=DSConfig(backend="simulated", **tuning), **kwargs)
    rv = fn(*args, config=DSConfig(backend="vectorized", **tuning), **kwargs)
    return rs, rv


def assert_parity(rs, rv):
    assert np.array_equal(np.asarray(rs.output), np.asarray(rv.output))
    assert rv.num_launches == rs.num_launches
    for cs, cv in zip(rs.counters, rv.counters):
        for field in PARITY_FIELDS:
            assert getattr(cv, field) == getattr(cs, field), (
                f"{cs.kernel_name}: {field} differs "
                f"(simulated={getattr(cs, field)}, "
                f"vectorized={getattr(cv, field)})")
    assert rv.counters and rv.counters[-1].extras.get("vectorized") == 1.0


@pytest.fixture
def compiled_env(monkeypatch):
    """Force the compiled tier to execute (pure-Python mode when Numba
    is absent) so its kernels — not the fallback — are under test."""
    monkeypatch.setenv("REPRO_COMPILED_PYTHON", "1")
    monkeypatch.delenv("REPRO_BACKEND", raising=False)


def run_with_compiled(fn, *args, **kwargs):
    tuning = {k: kwargs.pop(k) for k in ("wg_size", "coarsening")
              if k in kwargs}
    rs = fn(*args, config=DSConfig(backend="simulated", **tuning), **kwargs)
    rc = fn(*args, config=DSConfig(backend="compiled", **tuning), **kwargs)
    return rs, rc


def assert_compiled_parity(rs, rc):
    """Same contract as assert_parity against the compiled tier.

    Irregular launches run the JIT chain kernel and stamp
    ``extras["compiled"]``; regular/keyed launches share the vectorized
    fast path by design and stamp ``extras["vectorized"]`` — either
    stamp proves the launch did not fall through to the simulator.
    """
    assert np.array_equal(np.asarray(rs.output), np.asarray(rc.output))
    assert rc.num_launches == rs.num_launches
    for cs, cc in zip(rs.counters, rc.counters):
        for field in PARITY_FIELDS:
            assert getattr(cc, field) == getattr(cs, field), (
                f"{cs.kernel_name}: {field} differs "
                f"(simulated={getattr(cs, field)}, "
                f"compiled={getattr(cc, field)})")
    assert rc.counters
    last = rc.counters[-1].extras
    assert last.get("compiled") == 1.0 or last.get("vectorized") == 1.0


class TestRegularParity:
    @pytest.mark.parametrize("wg_size,coarsening", GEOMETRIES)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_pad(self, rng, wg_size, coarsening, dtype):
        m = rng.integers(0, 100, (13, 37)).astype(dtype)
        rs, rv = run_both(ds_pad, m, 5, fill=0,
                          wg_size=wg_size, coarsening=coarsening)
        assert_parity(rs, rv)

    @pytest.mark.parametrize("wg_size,coarsening", GEOMETRIES)
    def test_unpad(self, rng, wg_size, coarsening):
        m = rng.integers(0, 100, (11, 40)).astype(np.float32)
        rs, rv = run_both(ds_unpad, m, 7,
                          wg_size=wg_size, coarsening=coarsening)
        assert_parity(rs, rv)

    def test_insert_gap_and_erase_range(self, rng):
        a = rng.integers(0, 9, 700).astype(np.int32)
        assert_parity(*run_both(ds_insert_gap, a, 123, 40, fill=-1,
                                wg_size=32, coarsening=2))
        assert_parity(*run_both(ds_erase_range, a, 123, 40,
                                wg_size=32, coarsening=2))

    def test_ragged_round_trip(self, rng):
        widths = rng.integers(0, 20, 40)
        values = rng.integers(0, 50, int(widths.sum())).astype(np.float32)
        rs, rv = run_both(ds_ragged_pad, values, widths, 24, fill=0,
                          wg_size=32, coarsening=2)
        assert_parity(rs, rv)
        assert_parity(*run_both(ds_ragged_unpad, rs.output, widths,
                                wg_size=32, coarsening=2))

    def test_pad_to_alignment(self, rng):
        m = rng.integers(0, 100, (9, 29)).astype(np.float32)
        assert_parity(*run_both(ds_pad_to_alignment, m, 128,
                                wg_size=32, coarsening=2))


class TestIrregularParity:
    @pytest.mark.parametrize("wg_size,coarsening", GEOMETRIES)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_stream_compact(self, rng, wg_size, coarsening, dtype):
        a = rng.integers(0, 5, 1500).astype(dtype)
        rs, rv = run_both(ds_stream_compact, a, 0,
                          wg_size=wg_size, coarsening=coarsening)
        assert_parity(rs, rv)
        assert rv.extras["n_kept"] == rs.extras["n_kept"]

    @pytest.mark.parametrize("predicate", [is_even(), less_than(3)],
                             ids=lambda p: p.name)
    def test_remove_if_and_copy_if(self, rng, predicate):
        a = rng.integers(0, 9, 900).astype(np.int64)
        assert_parity(*run_both(ds_remove_if, a, predicate,
                                wg_size=32, coarsening=2))
        assert_parity(*run_both(ds_copy_if, a, predicate,
                                wg_size=32, coarsening=2))

    @pytest.mark.parametrize("wg_size,coarsening", GEOMETRIES)
    def test_unique(self, rng, wg_size, coarsening):
        a = np.repeat(rng.integers(0, 50, 300), rng.integers(1, 6, 300))
        rs, rv = run_both(ds_unique, a.astype(np.int32),
                          wg_size=wg_size, coarsening=coarsening)
        assert_parity(rs, rv)

    @pytest.mark.parametrize("in_place", [True, False])
    def test_partition(self, rng, in_place):
        a = rng.integers(0, 9, 1100).astype(np.float32)
        rs, rv = run_both(ds_partition, a, is_even(), in_place=in_place,
                          wg_size=32, coarsening=2)
        assert_parity(rs, rv)
        assert rv.extras["n_true"] == rs.extras["n_true"]

    def test_all_removed_and_all_kept(self):
        zeros = np.zeros(500, dtype=np.float32)
        rs, rv = run_both(ds_stream_compact, zeros, 0.0,
                          wg_size=32, coarsening=2)
        assert_parity(rs, rv)
        assert rv.output.size == 0
        ones = np.ones(500, dtype=np.float32)
        rs, rv = run_both(ds_stream_compact, ones, 0.0,
                          wg_size=32, coarsening=2)
        assert_parity(rs, rv)
        assert rv.output.size == 500


class TestKeyedParity:
    @pytest.mark.parametrize("wg_size,coarsening", [(32, 2), (64, 1)])
    def test_unique_by_key(self, rng, wg_size, coarsening):
        keys = np.sort(rng.integers(0, 60, 800)).astype(np.int32)
        values = rng.random(800).astype(np.float32)
        rs, rv = run_both(ds_unique_by_key, keys, values,
                          wg_size=wg_size, coarsening=coarsening)
        assert_parity(rs, rv)
        assert np.array_equal(rs.extras["keys"], rv.extras["keys"])
        assert np.array_equal(rs.extras["values"], rv.extras["values"])

    def test_compact_records(self, rng):
        key = rng.integers(0, 9, 600).astype(np.int64)
        cols = {"a": rng.random(600).astype(np.float32),
                "b": rng.integers(0, 1000, 600).astype(np.int16)}
        rs, rv = run_both(ds_compact_records, key, cols, is_even(),
                          wg_size=32, coarsening=2)
        assert_parity(rs, rv)
        for name in cols:
            assert np.array_equal(rs.extras["columns"][name],
                                  rv.extras["columns"][name])


class TestCompiledTierParity:
    """The compiled tier must satisfy the same parity contract as the
    vectorized one, on every registered primitive (pure-Python kernel
    mode, so these run with or without Numba)."""

    @pytest.mark.parametrize("wg_size,coarsening", GEOMETRIES)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_pad(self, rng, compiled_env, wg_size, coarsening, dtype):
        m = rng.integers(0, 100, (13, 37)).astype(dtype)
        assert_compiled_parity(*run_with_compiled(
            ds_pad, m, 5, fill=0, wg_size=wg_size, coarsening=coarsening))

    def test_unpad(self, rng, compiled_env):
        m = rng.integers(0, 100, (11, 40)).astype(np.float32)
        assert_compiled_parity(*run_with_compiled(
            ds_unpad, m, 7, wg_size=32, coarsening=2))

    def test_insert_gap_and_erase_range(self, rng, compiled_env):
        a = rng.integers(0, 9, 700).astype(np.int32)
        assert_compiled_parity(*run_with_compiled(
            ds_insert_gap, a, 123, 40, fill=-1, wg_size=32, coarsening=2))
        assert_compiled_parity(*run_with_compiled(
            ds_erase_range, a, 123, 40, wg_size=32, coarsening=2))

    def test_ragged_round_trip(self, rng, compiled_env):
        widths = rng.integers(0, 20, 40)
        values = rng.integers(0, 50, int(widths.sum())).astype(np.float32)
        rs, rc = run_with_compiled(ds_ragged_pad, values, widths, 24, fill=0,
                                   wg_size=32, coarsening=2)
        assert_compiled_parity(rs, rc)
        assert_compiled_parity(*run_with_compiled(
            ds_ragged_unpad, rs.output, widths, wg_size=32, coarsening=2))

    def test_pad_to_alignment(self, rng, compiled_env):
        m = rng.integers(0, 100, (9, 29)).astype(np.float32)
        assert_compiled_parity(*run_with_compiled(
            ds_pad_to_alignment, m, 128, wg_size=32, coarsening=2))

    @pytest.mark.parametrize("wg_size,coarsening", GEOMETRIES)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_stream_compact(self, rng, compiled_env, wg_size, coarsening,
                            dtype):
        a = rng.integers(0, 5, 1500).astype(dtype)
        rs, rc = run_with_compiled(ds_stream_compact, a, 0,
                                   wg_size=wg_size, coarsening=coarsening)
        assert_compiled_parity(rs, rc)
        assert rc.extras["n_kept"] == rs.extras["n_kept"]
        # Irregular ops must genuinely run the JIT chain kernel.
        assert rc.counters[0].extras.get("compiled") == 1.0

    @pytest.mark.parametrize("predicate", [is_even(), less_than(3)],
                             ids=lambda p: p.name)
    def test_remove_if_and_copy_if(self, rng, compiled_env, predicate):
        a = rng.integers(0, 9, 900).astype(np.int64)
        assert_compiled_parity(*run_with_compiled(
            ds_remove_if, a, predicate, wg_size=32, coarsening=2))
        assert_compiled_parity(*run_with_compiled(
            ds_copy_if, a, predicate, wg_size=32, coarsening=2))

    @pytest.mark.parametrize("wg_size,coarsening", GEOMETRIES)
    def test_unique(self, rng, compiled_env, wg_size, coarsening):
        a = np.repeat(rng.integers(0, 50, 300), rng.integers(1, 6, 300))
        rs, rc = run_with_compiled(ds_unique, a.astype(np.int32),
                                   wg_size=wg_size, coarsening=coarsening)
        assert_compiled_parity(rs, rc)
        assert rc.counters[0].extras.get("compiled") == 1.0

    @pytest.mark.parametrize("in_place", [True, False])
    def test_partition(self, rng, compiled_env, in_place):
        a = rng.integers(0, 9, 1100).astype(np.float32)
        rs, rc = run_with_compiled(ds_partition, a, is_even(),
                                   in_place=in_place,
                                   wg_size=32, coarsening=2)
        assert_compiled_parity(rs, rc)
        assert rc.extras["n_true"] == rs.extras["n_true"]

    def test_all_removed_and_all_kept(self, compiled_env):
        zeros = np.zeros(500, dtype=np.float32)
        rs, rc = run_with_compiled(ds_stream_compact, zeros, 0.0,
                                   wg_size=32, coarsening=2)
        assert_compiled_parity(rs, rc)
        assert rc.output.size == 0
        ones = np.ones(500, dtype=np.float32)
        rs, rc = run_with_compiled(ds_stream_compact, ones, 0.0,
                                   wg_size=32, coarsening=2)
        assert_compiled_parity(rs, rc)
        assert rc.output.size == 500

    def test_keyed_ops(self, rng, compiled_env):
        keys = np.sort(rng.integers(0, 60, 800)).astype(np.int32)
        values = rng.random(800).astype(np.float32)
        rs, rc = run_with_compiled(ds_unique_by_key, keys, values,
                                   wg_size=32, coarsening=2)
        assert_compiled_parity(rs, rc)
        assert np.array_equal(rs.extras["keys"], rc.extras["keys"])
        key = rng.integers(0, 9, 600).astype(np.int64)
        cols = {"a": rng.random(600).astype(np.float32)}
        rs, rc = run_with_compiled(ds_compact_records, key, cols, is_even(),
                                   wg_size=32, coarsening=2)
        assert_compiled_parity(rs, rc)

    def test_fused_chain(self, rng, compiled_env, stream, maxwell):
        from repro.core.fused import FuseStage, run_fused_irregular
        from repro.simgpu.buffers import Buffer
        from repro.simgpu.stream import Stream

        a = np.sort(rng.integers(0, 30, 1200)).astype(np.int64)
        stages = [FuseStage("pred", less_than(25)), FuseStage("stencil"),
                  FuseStage("pred", is_even())]
        outputs, counters = [], []
        for backend in ("simulated", "compiled"):
            buf = Buffer(a.copy(), "fuse_in")
            res = run_fused_irregular(
                buf, stages, Stream(maxwell, seed=1234), backend=backend,
                wg_size=32, coarsening=2)
            outputs.append(buf.data[:res.n_true].copy())
            counters.append(res.counters)
        assert np.array_equal(outputs[0], outputs[1])
        for field in PARITY_FIELDS:
            assert getattr(counters[0], field) == getattr(counters[1], field)
        assert counters[1].extras.get("compiled") == 1.0

    def test_opaque_predicate_falls_back_per_launch(self, rng, compiled_env):
        """A predicate the lowering can't parse must still execute
        (vectorized fallback for that launch), with identical output."""
        opaque = Predicate(lambda v: v % 3 == 0, "mystery")
        a = rng.integers(0, 12, 700).astype(np.int64)
        rs, rc = run_with_compiled(ds_remove_if, a, opaque,
                                   wg_size=32, coarsening=2)
        assert_compiled_parity(rs, rc)
        assert rc.counters[0].extras.get("vectorized") == 1.0


class TestDispatchRules:
    def test_env_override_selects_vectorized(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "vectorized")
        a = rng.integers(0, 5, 400).astype(np.float32)
        r = ds_stream_compact(a, 0, config=DSConfig(wg_size=32))
        assert r.counters[0].extras.get("vectorized") == 1.0

    def test_env_override_selects_simulated(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "simulated")
        a = rng.integers(0, 5, 400).astype(np.float32)
        r = ds_stream_compact(a, 0, config=DSConfig(wg_size=32))
        assert "vectorized" not in r.counters[0].extras

    def test_explicit_backend_beats_env(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "simulated")
        a = rng.integers(0, 5, 400).astype(np.float32)
        r = ds_stream_compact(a, 0,
                              config=DSConfig(wg_size=32, backend="vectorized"))
        assert r.counters[0].extras.get("vectorized") == 1.0

    def test_race_tracking_forces_simulated(self, rng):
        a = rng.integers(0, 9, 400).astype(np.int64)
        r = ds_remove_if(a, is_even(),
                         config=DSConfig(wg_size=32, backend="vectorized", race_tracking=True))
        assert "vectorized" not in r.counters[0].extras

    def test_unknown_backend_rejected(self, rng):
        from repro.errors import LaunchError
        a = rng.integers(0, 9, 64).astype(np.int64)
        with pytest.raises(LaunchError):
            ds_unique(a, config=DSConfig(backend="cuda"))


class TestApiParity:
    def test_api_backend_names(self, rng):
        v = rng.integers(0, 5, 300).astype(np.int64)
        out_sim = api.compact(v, 0, backend="simulated")
        out_vec = api.compact(v, 0, backend="vectorized")
        out_np = api.compact(v, 0, backend="numpy")
        assert np.array_equal(out_sim, out_vec)
        assert np.array_equal(out_sim, out_np)

    def test_api_empty_input(self):
        empty = np.array([], dtype=np.int32)
        assert api.unique(empty, backend="vectorized").size == 0
        assert api.compact(empty, 0, backend="vectorized").size == 0

    def test_api_rejects_unknown(self, rng):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            api.unique(rng.integers(0, 5, 8), backend="warp")

    def test_api_pad_vectorized_result(self, rng):
        m = rng.integers(0, 100, (5, 17)).astype(np.int32)
        res = api.pad(m, 3, fill=0, backend="vectorized", return_result=True)
        assert res.counters[0].extras.get("vectorized") == 1.0
        assert np.array_equal(res.output,
                              api.pad(m, 3, fill=0, backend="numpy"))


class TestStreamRecord:
    def test_vectorized_launch_advances_stream_seed(self, rng):
        """A vectorized launch must consume a launch slot so subsequent
        simulated launches see the same per-launch seed either way."""
        from repro.primitives.common import resolve_stream
        a = rng.integers(0, 5, 300).astype(np.float32)
        s1 = resolve_stream("maxwell")
        ds_stream_compact(a.copy(), 0, s1,
                          config=DSConfig(wg_size=32, backend="simulated"))
        r1 = ds_stream_compact(a.copy(), 0, s1,
                               config=DSConfig(wg_size=32, backend="simulated"))
        s2 = resolve_stream("maxwell")
        ds_stream_compact(a.copy(), 0, s2,
                          config=DSConfig(wg_size=32, backend="vectorized"))
        r2 = ds_stream_compact(a.copy(), 0, s2,
                               config=DSConfig(wg_size=32, backend="simulated"))
        assert len(s1.records) == len(s2.records) == 2
        assert r1.counters[0].n_spins == r2.counters[0].n_spins
