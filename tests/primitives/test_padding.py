"""DS Padding / DS Unpadding user-facing primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LaunchError
from repro.primitives import ds_pad, ds_unpad
from repro.reference import pad_ref, unpad_ref
from repro.simgpu import Stream
from repro.config import DSConfig


class TestDsPad:
    def test_matches_reference(self, rng):
        m = rng.integers(0, 999, (21, 34)).astype(np.float32)
        r = ds_pad(m, 5, config=DSConfig(wg_size=64, coarsening=2))
        assert np.array_equal(r.output[:, :34], m)
        assert r.output.shape == (21, 39)

    def test_fill_value(self, rng):
        m = rng.integers(0, 999, (9, 13)).astype(np.float32)
        r = ds_pad(m, 3, fill=-7.0, config=DSConfig(wg_size=32, coarsening=2))
        assert np.array_equal(r.output, pad_ref(m, 3, fill=-7.0))

    def test_single_launch(self, rng, maxwell):
        m = rng.integers(0, 9, (8, 32)).astype(np.float32)
        r = ds_pad(m, 1, Stream(maxwell),
                   config=DSConfig(wg_size=32, coarsening=2))
        assert r.num_launches == 1

    def test_zero_pad_roundtrips(self, rng):
        m = rng.integers(0, 9, (5, 7)).astype(np.float32)
        assert np.array_equal(ds_pad(m, 0, config=DSConfig(wg_size=32)).output, m)

    def test_extras(self, rng):
        m = rng.integers(0, 9, (6, 8)).astype(np.float32)
        r = ds_pad(m, 2, config=DSConfig(wg_size=32, coarsening=2))
        assert r.extras["rows"] == 6 and r.extras["pad"] == 2
        assert r.extras["n_workgroups"] >= 1

    def test_rejects_1d(self):
        with pytest.raises(LaunchError):
            ds_pad(np.zeros(10, dtype=np.float32), 1)

    def test_dtype_preserved(self, rng):
        m = rng.integers(0, 9, (4, 6)).astype(np.float64)
        assert ds_pad(m, 1, config=DSConfig(wg_size=32)).output.dtype == np.float64

    def test_race_tracking_passes(self, rng):
        m = rng.integers(0, 9, (12, 16)).astype(np.float32)
        ds_pad(m, 4,
               config=DSConfig(wg_size=32, coarsening=2, race_tracking=True))


class TestDsUnpad:
    def test_matches_reference(self, rng):
        m = rng.integers(0, 999, (18, 27)).astype(np.float32)
        r = ds_unpad(m, 6, config=DSConfig(wg_size=64, coarsening=2))
        assert np.array_equal(r.output, unpad_ref(m, 6))

    def test_rejects_pad_ge_cols(self, rng):
        m = rng.integers(0, 9, (4, 4)).astype(np.float32)
        with pytest.raises(LaunchError):
            ds_unpad(m, 4)

    def test_zero_unpad(self, rng):
        m = rng.integers(0, 9, (5, 7)).astype(np.float32)
        assert np.array_equal(ds_unpad(m, 0, config=DSConfig(wg_size=32)).output, m)


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(rows=st.integers(1, 20), cols=st.integers(1, 30),
           pad=st.integers(0, 6), seed=st.integers(0, 2**16))
    def test_pad_then_unpad_is_identity(self, rows, cols, pad, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 1000, (rows, cols)).astype(np.float32)
        padded = ds_pad(m, pad,
                        config=DSConfig(wg_size=32, coarsening=2, seed=seed)).output
        restored = ds_unpad(padded, pad,
                            config=DSConfig(wg_size=32, coarsening=2, seed=seed + 1)).output
        assert np.array_equal(restored, m)
