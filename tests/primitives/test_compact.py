"""DS Stream Compaction primitive."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import ds_stream_compact
from repro.reference import compact_ref
from repro.workloads import compaction_array
from repro.config import DSConfig


class TestStreamCompact:
    def test_matches_reference(self, rng):
        a = rng.integers(0, 5, 3000).astype(np.float32)
        r = ds_stream_compact(a, 0, config=DSConfig(wg_size=64, coarsening=2))
        assert np.array_equal(r.output, compact_ref(a, 0))

    def test_workload_generator_fraction_is_exact(self):
        a = compaction_array(2000, 0.3, seed=1)
        r = ds_stream_compact(a, 0.0, config=DSConfig(wg_size=32))
        assert r.extras["n_removed"] == 600
        assert r.output.size == 1400

    def test_nonzero_sentinel(self, rng):
        a = rng.integers(0, 5, 1000).astype(np.float32)
        r = ds_stream_compact(a, 3, config=DSConfig(wg_size=32))
        assert np.array_equal(r.output, compact_ref(a, 3))

    def test_no_occurrences(self):
        a = np.ones(1000, dtype=np.float32)
        r = ds_stream_compact(a, 0.0, config=DSConfig(wg_size=32))
        assert np.array_equal(r.output, a)
        assert r.extras["n_removed"] == 0

    def test_all_removed(self):
        a = np.zeros(1000, dtype=np.float32)
        r = ds_stream_compact(a, 0.0, config=DSConfig(wg_size=32))
        assert r.output.size == 0

    def test_single_launch_in_place(self, rng):
        a = rng.integers(0, 5, 500).astype(np.float32)
        r = ds_stream_compact(a, 0, config=DSConfig(wg_size=32))
        assert r.num_launches == 1
        assert r.extras["in_place"] is True

    def test_race_tracking_passes(self, rng):
        a = rng.integers(0, 5, 2000).astype(np.float32)
        ds_stream_compact(a, 0,
                          config=DSConfig(wg_size=32, race_tracking=True))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 2500),
           fraction=st.floats(0.0, 1.0),
           seed=st.integers(0, 2**16))
    def test_property_matches_reference(self, n, fraction, seed):
        a = compaction_array(n, fraction, seed=seed)
        r = ds_stream_compact(a, 0.0,
                              config=DSConfig(wg_size=32, coarsening=2, seed=seed))
        assert np.array_equal(r.output, compact_ref(a, 0.0))
        assert r.extras["n_removed"] == int(round(n * fraction))
