"""The shared primitive plumbing: stream resolution and result envelope."""

import numpy as np
import pytest

from repro.primitives.common import DEFAULT_DEVICE, PrimitiveResult, resolve_stream
from repro.simgpu import Stream, get_device
from repro.simgpu.counters import LaunchCounters


class TestResolveStream:
    def test_none_defaults_to_maxwell(self):
        s = resolve_stream(None)
        assert s.device.name == DEFAULT_DEVICE == "maxwell"

    def test_device_name(self):
        assert resolve_stream("hawaii").device.name == "hawaii"

    def test_device_spec(self):
        assert resolve_stream(get_device("kepler")).device.name == "kepler"

    def test_existing_stream_passes_through(self):
        s = Stream("fermi", seed=5)
        assert resolve_stream(s) is s

    def test_seed_and_api_forwarded(self):
        s = resolve_stream(None, api="cuda", seed=9)
        assert s.api == "cuda" and s.seed == 9


class TestPrimitiveResult:
    def _result(self, n_launches=2):
        counters = []
        for i in range(n_launches):
            c = LaunchCounters(kernel_name=f"k{i}", grid_size=2, wg_size=32,
                               bytes_loaded=100, bytes_stored=50)
            counters.append(c)
        return PrimitiveResult(
            output=np.zeros(4), counters=counters,
            device=get_device("maxwell"), extras={"x": 1})

    def test_launch_count_and_bytes(self):
        r = self._result(3)
        assert r.num_launches == 3
        assert r.bytes_moved == 3 * 150

    def test_total_counters_merges(self):
        r = self._result(2)
        total = r.total_counters
        assert total.bytes_loaded == 200
        assert "k0" in total.kernel_name and "k1" in total.kernel_name

    def test_extras_default(self):
        r = PrimitiveResult(output=np.zeros(1), counters=[],
                            device=get_device("maxwell"))
        assert r.extras == {}
