"""DS Partition primitive (in-place and out-of-place)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import is_even, less_than
from repro.primitives import ds_partition
from repro.reference import partition_ref
from repro.config import DSConfig


class TestPartition:
    def test_in_place_matches_reference(self, rng):
        a = rng.integers(0, 100, 3000).astype(np.float32)
        r = ds_partition(a, is_even(),
                         config=DSConfig(wg_size=64, coarsening=2))
        expected, n_true = partition_ref(a, is_even())
        assert r.extras["n_true"] == n_true
        assert np.array_equal(r.output, expected)

    def test_out_of_place_matches_reference(self, rng):
        a = rng.integers(0, 100, 3000).astype(np.float32)
        r = ds_partition(a, is_even(), in_place=False,
                         config=DSConfig(wg_size=64))
        expected, _ = partition_ref(a, is_even())
        assert np.array_equal(r.output, expected)

    def test_in_place_needs_copyback_launch(self, rng):
        a = rng.integers(0, 100, 1000).astype(np.float32)
        r_in = ds_partition(a, is_even(), config=DSConfig(wg_size=32))
        r_out = ds_partition(a, is_even(), in_place=False,
                             config=DSConfig(wg_size=32))
        assert r_in.num_launches == 2   # split + false-tail copy-back
        assert r_out.num_launches == 1

    def test_all_true_skips_copyback(self):
        a = np.full(1000, 2.0, dtype=np.float32)
        r = ds_partition(a, is_even(), config=DSConfig(wg_size=32))
        assert r.num_launches == 1  # no false elements to move
        assert r.extras["n_false"] == 0

    def test_all_false(self):
        a = np.full(1000, 3.0, dtype=np.float32)
        r = ds_partition(a, is_even(), config=DSConfig(wg_size=32))
        assert r.extras["n_true"] == 0
        assert np.array_equal(r.output, a)

    def test_both_halves_are_stable(self, rng):
        # Strictly increasing payloads make order violations visible.
        a = (np.arange(2000) * 10 + rng.integers(0, 2, 2000)).astype(np.float64)
        r = ds_partition(a, is_even(),
                         config=DSConfig(wg_size=32, coarsening=2))
        n_true = r.extras["n_true"]
        assert (np.diff(r.output[:n_true]) > 0).all()
        assert (np.diff(r.output[n_true:]) > 0).all()

    def test_figure18_shape(self):
        a = np.asarray([5, 2, 8, 1, 4, 7, 6, 3], dtype=np.float32)
        r = ds_partition(a, is_even(), config=DSConfig(wg_size=32))
        assert np.array_equal(r.output, [2, 8, 4, 6, 5, 1, 7, 3])

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 2500), threshold=st.integers(0, 100),
           seed=st.integers(0, 2**16), in_place=st.booleans())
    def test_property_matches_reference(self, n, threshold, seed, in_place):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 100, n).astype(np.float32)
        pred = less_than(np.float32(threshold))
        r = ds_partition(a, pred, in_place=in_place,
                         config=DSConfig(wg_size=32, coarsening=2, seed=seed))
        expected, n_true = partition_ref(a, pred)
        assert r.extras["n_true"] == n_true
        assert np.array_equal(r.output, expected)
