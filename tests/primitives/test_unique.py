"""DS Unique primitive."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import ds_unique
from repro.reference import unique_ref
from repro.workloads import runs_array
from repro.config import DSConfig


class TestUnique:
    def test_matches_reference(self, rng):
        a = np.repeat(rng.integers(0, 30, 400),
                      rng.integers(1, 8, 400))[:2400].astype(np.float32)
        r = ds_unique(a, config=DSConfig(wg_size=64, coarsening=2))
        assert np.array_equal(r.output, unique_ref(a))

    def test_figure15_example(self):
        # The paper's Figure 15: one representative per run.
        a = np.asarray([1, 1, 2, 3, 3, 3, 1, 5, 5], dtype=np.float32)
        r = ds_unique(a, config=DSConfig(wg_size=32))
        assert np.array_equal(r.output, [1, 2, 3, 1, 5])

    def test_is_not_global_dedup(self):
        a = np.asarray([4, 4, 9, 4, 4], dtype=np.float32)
        r = ds_unique(a, config=DSConfig(wg_size=32))
        assert np.array_equal(r.output, [4, 9, 4])  # 4 appears twice

    def test_workload_generator_fraction(self):
        a = runs_array(2000, 0.5, seed=3)
        r = ds_unique(a, config=DSConfig(wg_size=32))
        assert r.extras["n_kept"] == 1000

    def test_single_element(self):
        r = ds_unique(np.asarray([42.0], dtype=np.float32),
                      config=DSConfig(wg_size=32))
        assert np.array_equal(r.output, [42.0])

    def test_single_launch_in_place(self, rng):
        a = rng.integers(0, 5, 500).astype(np.float32)
        r = ds_unique(a, config=DSConfig(wg_size=32))
        assert r.num_launches == 1 and r.extras["in_place"] is True

    def test_optimized_collectives_same_result(self, rng):
        a = np.repeat(rng.integers(0, 9, 300), 3)[:800].astype(np.float32)
        base = ds_unique(a, config=DSConfig(wg_size=32, scan_variant="tree"))
        opt = ds_unique(a, config=DSConfig(wg_size=32, scan_variant="ballot"))
        assert np.array_equal(base.output, opt.output)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 2500),
           fraction=st.floats(0.01, 1.0),
           seed=st.integers(0, 2**16))
    def test_property_matches_reference(self, n, fraction, seed):
        a = runs_array(n, fraction, seed=seed)
        r = ds_unique(a, config=DSConfig(wg_size=32, coarsening=2, seed=seed))
        expected = unique_ref(a)
        assert r.extras["n_kept"] == expected.size
        assert np.array_equal(r.output, expected)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_property_output_has_no_adjacent_duplicates(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 4, 1500).astype(np.float32)
        out = ds_unique(a, config=DSConfig(wg_size=32, seed=seed)).output
        assert (np.diff(out) != 0).all()
