"""Keyed irregular DS: unique_by_key and record compaction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import less_than
from repro.errors import LaunchError
from repro.primitives import ds_compact_records, ds_unique_by_key
from repro.reference import unique_by_key_ref
from repro.config import DSConfig


def make_runs(rng, n):
    keys = np.repeat(rng.integers(0, 40, n), rng.integers(1, 5, n))[:n]
    return keys.astype(np.float32)


class TestUniqueByKey:
    def test_matches_reference(self, rng):
        keys = make_runs(rng, 1500)
        values = np.arange(1500, dtype=np.float32)
        r = ds_unique_by_key(keys, values,
                             config=DSConfig(wg_size=64, coarsening=2))
        exp_k, exp_v = unique_by_key_ref(keys, values)
        assert r.extras["n_kept"] == exp_k.size
        assert np.array_equal(r.extras["keys"], exp_k)
        assert np.array_equal(r.extras["values"], exp_v)

    def test_values_follow_their_keys(self, rng):
        keys = np.asarray([7, 7, 7, 3, 3, 9], dtype=np.float32)
        values = np.asarray([10, 11, 12, 20, 21, 30], dtype=np.float32)
        r = ds_unique_by_key(keys, values, config=DSConfig(wg_size=32))
        assert np.array_equal(r.extras["keys"], [7, 3, 9])
        assert np.array_equal(r.extras["values"], [10, 20, 30])

    def test_single_launch_in_place(self, rng):
        keys = make_runs(rng, 600)
        r = ds_unique_by_key(keys, keys.copy(), config=DSConfig(wg_size=32))
        assert r.num_launches == 1
        assert r.extras["in_place"] is True

    def test_race_tracking_clean(self, rng):
        keys = make_runs(rng, 900)
        ds_unique_by_key(keys, keys * 2,
                         config=DSConfig(wg_size=32, race_tracking=True))

    def test_rejects_length_mismatch(self):
        with pytest.raises(LaunchError):
            ds_unique_by_key(np.zeros(4, dtype=np.float32),
                             np.zeros(5, dtype=np.float32))

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 1500), seed=st.integers(0, 2**16))
    def test_property_matches_reference(self, n, seed):
        rng = np.random.default_rng(seed)
        keys = make_runs(rng, n)
        values = rng.random(n).astype(np.float32)
        r = ds_unique_by_key(keys, values,
                             config=DSConfig(wg_size=32, coarsening=2, seed=seed))
        exp_k, exp_v = unique_by_key_ref(keys, values)
        assert np.array_equal(r.extras["keys"], exp_k)
        assert np.array_equal(r.extras["values"], exp_v)


class TestCompactRecords:
    def test_filters_all_columns_together(self, rng):
        n = 1200
        key = rng.integers(0, 100, n).astype(np.float32)
        qty = rng.integers(1, 9, n).astype(np.float32)
        price = rng.random(n).astype(np.float32)
        r = ds_compact_records(key, {"qty": qty, "price": price},
                               less_than(40),
                               config=DSConfig(wg_size=64, coarsening=2))
        mask = key < 40
        assert r.extras["n_kept"] == int(mask.sum())
        assert np.array_equal(r.output, key[mask])
        assert np.array_equal(r.extras["columns"]["qty"], qty[mask])
        assert np.array_equal(r.extras["columns"]["price"], price[mask])

    def test_mixed_dtypes(self, rng):
        n = 700
        key = rng.integers(0, 50, n).astype(np.float32)
        ids = np.arange(n, dtype=np.int64)
        r = ds_compact_records(key, {"id": ids}, less_than(25),
                               config=DSConfig(wg_size=32))
        mask = key < 25
        assert np.array_equal(r.extras["columns"]["id"], ids[mask])
        assert r.extras["columns"]["id"].dtype == np.int64

    def test_single_launch_for_any_column_count(self, rng):
        n = 500
        key = rng.integers(0, 10, n).astype(np.float32)
        columns = {f"c{i}": rng.random(n).astype(np.float32)
                   for i in range(5)}
        r = ds_compact_records(key, columns, less_than(5),
                               config=DSConfig(wg_size=32))
        assert r.num_launches == 1
        assert len(r.extras["columns"]) == 5

    def test_rejects_ragged_columns(self, rng):
        key = rng.random(10).astype(np.float32)
        with pytest.raises(LaunchError, match="rows"):
            ds_compact_records(key, {"bad": np.zeros(9, dtype=np.float32)},
                               less_than(0.5))

    def test_no_columns_degenerates_to_remove_if(self, rng):
        key = rng.integers(0, 10, 400).astype(np.float32)
        r = ds_compact_records(key, {}, less_than(5),
                               config=DSConfig(wg_size=32))
        assert np.array_equal(r.output, key[key < 5])

    def test_race_tracking_clean(self, rng):
        n = 800
        key = rng.integers(0, 10, n).astype(np.float32)
        cols = {"a": rng.random(n).astype(np.float32),
                "b": rng.random(n).astype(np.float32)}
        ds_compact_records(key, cols, less_than(5),
                           config=DSConfig(wg_size=32, race_tracking=True))

    def test_stability_across_columns(self, rng):
        # Strictly increasing payload proves relative order everywhere.
        n = 1000
        key = rng.integers(0, 10, n).astype(np.float32)
        order = np.arange(n, dtype=np.float64)
        r = ds_compact_records(key, {"order": order}, less_than(5),
                               config=DSConfig(wg_size=32, coarsening=2))
        kept_order = r.extras["columns"]["order"]
        assert (np.diff(kept_order) > 0).all()
