"""The unified DSConfig surface: every primitive accepts ``config=``,
the legacy tuning kwargs warn (once) and produce identical results, and
explicit config + conflicting legacy values is an error."""

import warnings

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG, DSConfig, resolve_config
from repro.core.predicates import is_even, less_than
from repro.errors import LaunchError
from repro.primitives import (
    ds_compact_records,
    ds_copy_if,
    ds_erase_range,
    ds_insert_gap,
    ds_pad,
    ds_pad_to_alignment,
    ds_partition,
    ds_ragged_pad,
    ds_ragged_unpad,
    ds_remove_if,
    ds_stream_compact,
    ds_unique,
    ds_unique_by_key,
    ds_unpad,
)

RNG = np.random.default_rng(7)
_M = RNG.integers(0, 50, (7, 19)).astype(np.float32)
_A = RNG.integers(0, 5, 700).astype(np.int64)
_KEYS = np.sort(RNG.integers(0, 40, 500)).astype(np.int32)

# Every ds_* primitive with a representative invocation and the legacy
# kwargs its old signature accepted (all of which must now route
# through DSConfig).
PRIMITIVES = [
    ("ds_pad", ds_pad, (_M, 3), {"fill": 0.0},
     {"wg_size": 32, "coarsening": 2, "race_tracking": True, "seed": 3}),
    ("ds_unpad", ds_unpad, (_M, 4), {},
     {"wg_size": 32, "coarsening": 2, "race_tracking": True, "seed": 3}),
    ("ds_remove_if", ds_remove_if, (_A, is_even()), {},
     {"wg_size": 32, "coarsening": 2, "reduction_variant": "tree",
      "scan_variant": "tree", "race_tracking": True, "seed": 3}),
    ("ds_copy_if", ds_copy_if, (_A, is_even()), {},
     {"wg_size": 32, "coarsening": 2, "seed": 3}),
    ("ds_stream_compact", ds_stream_compact, (_A, 0), {},
     {"wg_size": 32, "coarsening": 2, "race_tracking": True, "seed": 3}),
    ("ds_unique", ds_unique, (_A,), {},
     {"wg_size": 32, "coarsening": 2, "seed": 3}),
    ("ds_partition", ds_partition, (_A, is_even()), {"in_place": True},
     {"wg_size": 32, "coarsening": 2, "seed": 3}),
    ("ds_insert_gap", ds_insert_gap, (_A, 100, 30), {"fill": -1},
     {"wg_size": 32, "coarsening": 2, "seed": 3}),
    ("ds_erase_range", ds_erase_range, (_A, 100, 30), {},
     {"wg_size": 32, "coarsening": 2, "seed": 3}),
    ("ds_pad_to_alignment", ds_pad_to_alignment, (_M, 128), {"fill": 0.0},
     {"wg_size": 32, "coarsening": 2, "seed": 3}),
    ("ds_ragged_pad", ds_ragged_pad,
     (RNG.integers(0, 9, 60).astype(np.float32),
      np.array([10, 0, 25, 5, 20])), {"fill": 0.0},
     {"wg_size": 32, "coarsening": 2, "seed": 3}),
    ("ds_ragged_unpad", ds_ragged_unpad,
     (RNG.integers(0, 9, (5, 16)).astype(np.float32),
      np.array([10, 0, 12, 5, 16])), {},
     {"wg_size": 32, "coarsening": 2, "seed": 3}),
    ("ds_unique_by_key", ds_unique_by_key,
     (_KEYS, RNG.random(500).astype(np.float32)), {},
     {"wg_size": 32, "coarsening": 2, "race_tracking": True, "seed": 3}),
    ("ds_compact_records", ds_compact_records,
     (_A, {"x": RNG.random(700).astype(np.float32)}, less_than(3)), {},
     {"wg_size": 32, "coarsening": 2, "race_tracking": True, "seed": 3}),
]
IDS = [p[0] for p in PRIMITIVES]


def _assert_same_result(ra, rb):
    assert np.array_equal(np.asarray(ra.output), np.asarray(rb.output))
    assert len(ra.counters) == len(rb.counters)
    for ca, cb in zip(ra.counters, rb.counters):
        assert ca == cb  # full counter equality, spins and steps included


class TestEveryPrimitive:
    @pytest.mark.parametrize("name,fn,args,kwargs,legacy", PRIMITIVES, ids=IDS)
    def test_accepts_config(self, name, fn, args, kwargs, legacy):
        cfg = DSConfig(**legacy)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            r = fn(*args, config=cfg, **kwargs)
        assert r.output is not None

    @pytest.mark.parametrize("name,fn,args,kwargs,legacy", PRIMITIVES, ids=IDS)
    def test_legacy_kwargs_warn_once_and_match(self, name, fn, args, kwargs,
                                               legacy):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            r_legacy = fn(*args, **legacy, **kwargs)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1, f"{name}: expected exactly one warning"
        message = str(dep[0].message)
        assert name in message and "config=DSConfig" in message
        for kw in legacy:
            assert kw in message

        r_config = fn(*args, config=DSConfig(**legacy), **kwargs)
        _assert_same_result(r_legacy, r_config)

    @pytest.mark.parametrize("name,fn,args,kwargs,legacy", PRIMITIVES, ids=IDS)
    def test_conflicting_legacy_value_raises(self, name, fn, args, kwargs,
                                             legacy):
        cfg = DSConfig(**legacy)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(LaunchError, match="conflict"):
                fn(*args, config=cfg, wg_size=cfg.wg_size * 2, **kwargs)

    @pytest.mark.parametrize("name,fn,args,kwargs,legacy", PRIMITIVES, ids=IDS)
    def test_agreeing_legacy_value_passes(self, name, fn, args, kwargs,
                                          legacy):
        cfg = DSConfig(**legacy)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            r = fn(*args, config=cfg, wg_size=cfg.wg_size, **kwargs)
        assert r.output is not None


class TestDSConfig:
    def test_defaults(self):
        cfg = DSConfig()
        assert cfg.wg_size == 256
        assert cfg.coarsening is None
        assert cfg.reduction_variant == "tree"
        assert cfg.scan_variant == "tree"
        assert cfg.race_tracking is False
        assert cfg.backend is None
        assert cfg.seed == 0
        assert cfg == DEFAULT_CONFIG

    def test_frozen_and_hashable(self):
        cfg = DSConfig(wg_size=64)
        with pytest.raises(AttributeError):
            cfg.wg_size = 128
        assert len({cfg, DSConfig(wg_size=64), DSConfig()}) == 2

    def test_backend_shorthand_normalized(self):
        assert DSConfig(backend="vec") == DSConfig(backend="vectorized")
        assert DSConfig(backend="sim").backend == "simulated"

    def test_compiled_shorthands_normalized(self, monkeypatch):
        # Force the pure-Python compiled mode so "compiled" resolves to
        # itself regardless of whether Numba exists in this environment.
        monkeypatch.setenv("REPRO_COMPILED_PYTHON", "1")
        assert DSConfig(backend="jit") == DSConfig(backend="compiled")
        assert DSConfig(backend="numba").backend == "compiled"

    def test_compiled_degrades_to_vectorized_when_unavailable(
            self, monkeypatch):
        from repro.simgpu.vectorized import (fallback_count,
                                             reset_fallback_state)
        monkeypatch.delenv("REPRO_COMPILED_PYTHON", raising=False)
        monkeypatch.setenv("NUMBA_DISABLE_JIT", "1")
        reset_fallback_state()
        try:
            before = fallback_count()
            with pytest.warns(RuntimeWarning, match="falling back"):
                cfg = DSConfig(backend="compiled")
            assert cfg.backend == "vectorized"
            assert fallback_count() == before + 1
            # The warning fires once per process; the count keeps going.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert DSConfig(backend="jit").backend == "vectorized"
            assert fallback_count() == before + 2
        finally:
            reset_fallback_state()

    def test_validation(self):
        with pytest.raises(LaunchError):
            DSConfig(wg_size=0)
        with pytest.raises(LaunchError):
            DSConfig(coarsening=-1)
        with pytest.raises(LaunchError):
            DSConfig(backend="warp")

    def test_replace(self):
        cfg = DSConfig(wg_size=64).replace(coarsening=3)
        assert (cfg.wg_size, cfg.coarsening) == (64, 3)

    def test_from_env(self):
        env = {"REPRO_WG_SIZE": "128", "REPRO_COARSENING": "4",
               "REPRO_REDUCTION_VARIANT": "shuffle",
               "REPRO_SCAN_VARIANT": "ballot",
               "REPRO_RACE_TRACKING": "1", "REPRO_BACKEND": "vec",
               "REPRO_SEED": "17"}
        cfg = DSConfig.from_env(env)
        assert cfg == DSConfig(wg_size=128, coarsening=4,
                               reduction_variant="shuffle",
                               scan_variant="ballot", race_tracking=True,
                               backend="vectorized", seed=17)

    def test_from_env_empty(self):
        assert DSConfig.from_env({}) == DSConfig()

    def test_from_env_compiled(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_PYTHON", "1")
        for raw in ("compiled", "jit", "numba"):
            cfg = DSConfig.from_env({"REPRO_BACKEND": raw})
            assert cfg.backend == "compiled", raw

    def test_from_env_unknown_backend_names_variable_and_tiers(self):
        with pytest.raises(ValueError) as exc:
            DSConfig.from_env({"REPRO_BACKEND": "cuda"})
        msg = str(exc.value)
        assert "REPRO_BACKEND" in msg and "'cuda'" in msg
        for tier in ("simulated", "vectorized", "compiled"):
            assert tier in msg

    @pytest.mark.parametrize("var,raw", [
        ("REPRO_WG_SIZE", "big"),
        ("REPRO_WG_SIZE", "64.5"),
        ("REPRO_WG_SIZE", "0"),
        ("REPRO_WG_SIZE", "-32"),
        ("REPRO_COARSENING", "two"),
        ("REPRO_COARSENING", "0"),
        ("REPRO_REDUCTION_VARIANT", "butterfly"),
        ("REPRO_SCAN_VARIANT", "kogge"),
        ("REPRO_RACE_TRACKING", "maybe"),
        ("REPRO_RACE_TRACKING", "2"),
        ("REPRO_BACKEND", "warp"),
        ("REPRO_SEED", "0x11"),
    ])
    def test_from_env_malformed_value_names_the_variable(self, var, raw):
        env = {var: raw}
        with pytest.raises(ValueError) as exc:
            DSConfig.from_env(env)
        assert var in str(exc.value)
        assert repr(raw) in str(exc.value)

    def test_from_env_bool_spellings(self):
        for raw, expected in [("1", True), ("true", True), ("YES", True),
                              ("on", True), ("0", False), ("false", False),
                              ("No", False), ("off", False)]:
            cfg = DSConfig.from_env({"REPRO_RACE_TRACKING": raw})
            assert cfg.race_tracking is expected, raw

    def test_from_env_blank_values_ignored(self):
        env = {"REPRO_WG_SIZE": "  ", "REPRO_BACKEND": ""}
        assert DSConfig.from_env(env) == DSConfig()

    def test_resolve_config_rejects_unknown_kwarg(self):
        with pytest.raises(LaunchError):
            resolve_config("ds_x", None, warp_size=32)

    def test_resolve_config_no_legacy_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_config("ds_x", None) is DEFAULT_CONFIG
            cfg = DSConfig(wg_size=32)
            assert resolve_config("ds_x", cfg) is cfg
