"""Alignment-driven padding."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.primitives import alignment_pad_columns, ds_pad_to_alignment
from repro.config import DSConfig


class TestAlignmentCalculation:
    @pytest.mark.parametrize("cols,itemsize,alignment,expected", [
        (30, 4, 128, 2),    # 30 f32 = 120 B -> pad 2 -> 128 B
        (32, 4, 128, 0),    # already aligned
        (33, 4, 128, 31),   # worst case: nearly a full segment
        (15, 8, 128, 1),    # f64: 16 elements per 128 B
        (100, 4, 256, 28),  # 256-byte target
        (1, 4, 4, 0),       # trivial alignment
    ])
    def test_pad_columns(self, cols, itemsize, alignment, expected):
        assert alignment_pad_columns(cols, itemsize, alignment) == expected

    def test_result_is_always_aligned(self):
        for cols in range(1, 200):
            pad = alignment_pad_columns(cols, 4, 128)
            assert (cols + pad) * 4 % 128 == 0
            assert 0 <= pad < 32

    def test_rejects_bad_alignment(self):
        with pytest.raises(LaunchError):
            alignment_pad_columns(10, 4, 0)
        with pytest.raises(LaunchError):
            alignment_pad_columns(10, 4, 130)  # not a multiple of itemsize

    def test_rejects_bad_cols(self):
        with pytest.raises(LaunchError):
            alignment_pad_columns(0, 4, 128)


class TestPadToAlignment:
    def test_pads_and_preserves_data(self, rng):
        m = rng.random((16, 30)).astype(np.float32)
        r = ds_pad_to_alignment(m, 128, fill=0.0, config=DSConfig(wg_size=32))
        assert r.extras["pad"] == 2
        assert r.output.shape == (16, 32)
        assert np.array_equal(r.output[:, :30], m)
        assert r.output.strides[0] % 128 == 0

    def test_already_aligned_is_a_noop(self, rng):
        m = rng.random((8, 32)).astype(np.float32)
        r = ds_pad_to_alignment(m, 128)
        assert r.extras["pad"] == 0
        assert r.num_launches == 0
        assert np.array_equal(r.output, m)

    def test_f64(self, rng):
        m = rng.random((4, 15)).astype(np.float64)
        r = ds_pad_to_alignment(m, 128, config=DSConfig(wg_size=32))
        assert r.extras["pad"] == 1
        assert r.output.shape == (4, 16)

    def test_rejects_1d(self):
        with pytest.raises(LaunchError):
            ds_pad_to_alignment(np.zeros(8, dtype=np.float32))
