"""DS Remove_if / DS Copy_if primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import is_even, less_than
from repro.primitives import ds_copy_if, ds_remove_if
from repro.reference import copy_if_ref, remove_if_ref
from repro.config import DSConfig


class TestRemoveIf:
    def test_matches_reference(self, rng):
        a = rng.integers(0, 50, 3000).astype(np.float32)
        r = ds_remove_if(a, is_even(),
                         config=DSConfig(wg_size=64, coarsening=2))
        assert np.array_equal(r.output, remove_if_ref(a, is_even()))

    def test_counts(self, rng):
        a = rng.integers(0, 50, 2000).astype(np.float32)
        r = ds_remove_if(a, is_even(), config=DSConfig(wg_size=64))
        assert r.extras["n_kept"] + r.extras["n_removed"] == 2000
        assert r.extras["n_kept"] == r.output.size
        assert r.extras["in_place"] is True

    def test_single_launch(self, rng):
        a = rng.integers(0, 50, 1000).astype(np.float32)
        assert ds_remove_if(a, is_even(), config=DSConfig(wg_size=32)).num_launches == 1

    def test_nothing_removed(self):
        a = np.arange(1, 2001, 2, dtype=np.float32)  # all odd
        r = ds_remove_if(a, is_even(), config=DSConfig(wg_size=32))
        assert np.array_equal(r.output, a)

    def test_everything_removed(self):
        a = np.arange(0, 2000, 2, dtype=np.float32)  # all even
        r = ds_remove_if(a, is_even(), config=DSConfig(wg_size=32))
        assert r.output.size == 0

    def test_optimized_collectives_same_result(self, rng):
        a = rng.integers(0, 50, 2048).astype(np.float32)
        base = ds_remove_if(a, is_even(),
                            config=DSConfig(wg_size=64, scan_variant="tree"))
        opt = ds_remove_if(a, is_even(),
                           config=DSConfig(wg_size=64, scan_variant="shuffle", reduction_variant="shuffle"))
        assert np.array_equal(base.output, opt.output)

    def test_race_tracking_passes(self, rng):
        a = rng.integers(0, 50, 2000).astype(np.float32)
        ds_remove_if(a, is_even(),
                     config=DSConfig(wg_size=32, race_tracking=True))


class TestCopyIf:
    def test_matches_reference(self, rng):
        a = rng.integers(0, 50, 3000).astype(np.float32)
        r = ds_copy_if(a, less_than(25),
                       config=DSConfig(wg_size=64, coarsening=3))
        assert np.array_equal(r.output, copy_if_ref(a, less_than(25)))

    def test_out_of_place_flag(self, rng):
        a = rng.integers(0, 50, 500).astype(np.float32)
        assert ds_copy_if(a, is_even(), config=DSConfig(wg_size=32)).extras["in_place"] is False

    def test_complementarity_with_remove_if(self, rng):
        a = rng.integers(0, 50, 2000).astype(np.float32)
        kept = ds_remove_if(a, is_even(), config=DSConfig(wg_size=32)).output
        copied = ds_copy_if(a, is_even(), config=DSConfig(wg_size=32)).output
        assert kept.size + copied.size == a.size
        # Together they form a stable partition of the input.
        merged = np.concatenate([copied, kept])
        assert np.array_equal(np.sort(merged), np.sort(a))


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 2500), threshold=st.integers(0, 50),
           seed=st.integers(0, 2**16))
    def test_remove_and_copy_are_exact_complements(self, n, threshold, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 50, n).astype(np.float32)
        pred = less_than(np.float32(threshold))
        removed = ds_remove_if(a, pred,
                               config=DSConfig(wg_size=32, coarsening=2, seed=seed)).output
        copied = ds_copy_if(a, pred,
                            config=DSConfig(wg_size=32, coarsening=2, seed=seed)).output
        assert np.array_equal(removed, remove_if_ref(a, pred))
        assert np.array_equal(copied, copy_if_ref(a, pred))
