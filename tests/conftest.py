"""Shared fixtures for the test suite.

The simulator is exact but not fast, so tests default to small launch
geometries (wg_size 32-64, coarsening 2-4, arrays of a few thousand
elements) — every hazard the synchronization must survive already
occurs at that scale, because the scheduler interleaves work-groups at
memory-transaction granularity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simgpu import Stream, get_device


@pytest.fixture
def rng():
    """Deterministic RNG; per-test reseeding keeps failures replayable."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def maxwell():
    return get_device("maxwell")


@pytest.fixture
def stream(maxwell):
    """A fresh random-order Maxwell stream per test."""
    return Stream(maxwell, seed=1234)


@pytest.fixture
def small_stream(maxwell):
    """A stream with tight residency (8 slots) to stress scheduling."""
    return Stream(maxwell, seed=99, resident_limit=8)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running simulator tests (still < 1 min)"
    )
