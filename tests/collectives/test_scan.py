"""Binary prefix-sum variants (Section III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (
    SCAN_VARIANTS,
    ballot_exclusive_scan,
    binary_exclusive_scan,
    shuffle_exclusive_scan,
    tree_exclusive_scan,
)
from repro.errors import LaunchError


def reference_exclusive(pred):
    return np.concatenate(([0], np.cumsum(pred)[:-1]))


class TestTreeScan:
    def test_matches_reference(self):
        rng = np.random.default_rng(1)
        pred = (rng.random(256) < 0.4).astype(np.int64)
        out, rounds = tree_exclusive_scan(pred)
        assert np.array_equal(out, reference_exclusive(pred))
        assert rounds == 2 * 8  # upsweep + downsweep levels for 256

    def test_handles_general_integers(self):
        v = np.asarray([3, 1, 4, 1, 5, 9, 2, 6])
        out, _ = tree_exclusive_scan(v)
        assert np.array_equal(out, reference_exclusive(v))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(LaunchError):
            tree_exclusive_scan(np.ones(100))

    def test_input_not_mutated(self):
        v = np.ones(8, dtype=np.int64)
        tree_exclusive_scan(v)
        assert (v == 1).all()


class TestOptimizedScans:
    def test_ballot_matches_reference(self):
        rng = np.random.default_rng(2)
        pred = rng.random(256) < 0.5
        out, _ = ballot_exclusive_scan(pred, 32)
        assert np.array_equal(out, reference_exclusive(pred))

    def test_shuffle_matches_reference(self):
        rng = np.random.default_rng(3)
        pred = rng.random(256) < 0.5
        out, _ = shuffle_exclusive_scan(pred, 32)
        assert np.array_equal(out, reference_exclusive(pred))

    def test_wavefront64(self):
        rng = np.random.default_rng(4)
        pred = rng.random(256) < 0.3
        out, _ = ballot_exclusive_scan(pred, 64)
        assert np.array_equal(out, reference_exclusive(pred))

    def test_rejects_width_not_multiple_of_warp(self):
        with pytest.raises(LaunchError):
            ballot_exclusive_scan(np.ones(40, dtype=bool), 32)

    def test_single_warp_zero_cross_rounds(self):
        pred = np.ones(32, dtype=bool)
        _, rounds = ballot_exclusive_scan(pred, 32)
        assert rounds == 0


class TestDispatch:
    def test_unknown_variant(self):
        with pytest.raises(LaunchError):
            binary_exclusive_scan(np.ones(32, dtype=bool), "sorting-network")

    def test_variant_registry(self):
        assert SCAN_VARIANTS == ("tree", "ballot", "shuffle", "lookback")

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=128, max_size=128))
    def test_property_all_variants_agree(self, bits):
        pred = np.asarray(bits, dtype=bool)
        expected = reference_exclusive(pred)
        for variant in SCAN_VARIANTS:
            out, _ = binary_exclusive_scan(pred, variant, warp_size=32)
            assert np.array_equal(out, expected), variant

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from([32, 64, 128, 256]), st.integers(0, 2**16))
    def test_property_variants_agree_across_widths(self, width, seed):
        rng = np.random.default_rng(seed)
        pred = rng.random(width) < 0.5
        outs = [binary_exclusive_scan(pred, v, warp_size=32)[0]
                for v in SCAN_VARIANTS]
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])


class TestPartialWavefront:
    """Work-groups narrower than the hardware warp (AMD wavefront 64)."""

    def test_scan_clamps_warp_to_group_width(self):
        pred = np.asarray([1, 0, 1, 1] + [0] * 28, dtype=bool)  # 32 lanes
        for variant in ("ballot", "shuffle"):
            out, _ = binary_exclusive_scan(pred, variant, warp_size=64)
            assert np.array_equal(out, reference_exclusive(pred)), variant

    def test_reduce_clamps_warp_to_group_width(self):
        from repro.collectives import reduce_workgroup
        v = np.arange(32)
        total, _ = reduce_workgroup(v, "shuffle", warp_size=64)
        assert total == v.sum()

    def test_amd_narrow_workgroup_end_to_end(self, ):
        import repro
        from repro.simgpu import Stream
        rng = np.random.default_rng(5)
        a = rng.integers(0, 5, 1000).astype(np.float32)
        out = repro.compact(a, 0, stream=Stream("hawaii", seed=1),
                            config=repro.DSConfig(
                                wg_size=32, scan_variant="ballot",
                                reduction_variant="shuffle"))
        assert np.array_equal(out, repro.compact(a, 0, backend="numpy"))
