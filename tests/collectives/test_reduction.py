"""Work-group reduction variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import reduce_workgroup, shuffle_reduce, tree_reduce
from repro.errors import LaunchError


class TestTreeReduce:
    def test_sum_and_rounds(self):
        total, rounds = tree_reduce(np.arange(256))
        assert total == np.arange(256).sum()
        assert rounds == 8  # log2(256) halving levels

    def test_single_lane(self):
        total, rounds = tree_reduce(np.asarray([7]))
        assert total == 7 and rounds == 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(LaunchError):
            tree_reduce(np.arange(100))

    def test_rejects_empty(self):
        with pytest.raises(LaunchError):
            tree_reduce(np.asarray([], dtype=np.int64))

    def test_input_not_mutated(self):
        v = np.arange(8)
        tree_reduce(v)
        assert np.array_equal(v, np.arange(8))


class TestShuffleReduce:
    def test_matches_tree(self):
        rng = np.random.default_rng(0)
        v = rng.integers(0, 10, 256)
        assert shuffle_reduce(v, 32)[0] == tree_reduce(v)[0]

    def test_single_warp_needs_no_cross_rounds(self):
        total, rounds = shuffle_reduce(np.arange(32), 32)
        assert total == np.arange(32).sum()
        assert rounds == 0

    def test_cross_warp_rounds_smaller_than_tree(self):
        v = np.ones(256, dtype=np.int64)
        _, tree_rounds = tree_reduce(v)
        _, shfl_rounds = shuffle_reduce(v, 32)
        assert shfl_rounds < tree_rounds

    def test_rejects_width_not_multiple_of_warp(self):
        with pytest.raises(LaunchError):
            shuffle_reduce(np.arange(16), 32)


class TestDispatch:
    def test_variants_agree(self):
        v = np.arange(128)
        assert reduce_workgroup(v, "tree")[0] == reduce_workgroup(v, "shuffle")[0]

    def test_unknown_variant(self):
        with pytest.raises(LaunchError):
            reduce_workgroup(np.arange(32), "quantum")

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 64), min_size=64, max_size=64))
    def test_property_both_variants_equal_numpy_sum(self, values):
        v = np.asarray(values, dtype=np.int64)
        expected = int(v.sum())
        assert reduce_workgroup(v, "tree")[0] == expected
        assert reduce_workgroup(v, "shuffle", warp_size=32)[0] == expected
