"""Single-pass decoupled-lookback scan (the LightScan formulation).

Covers the device-level scan against the reference and the three
existing variants, the work-group binary variant's contract, and — the
part the sequential schedule cannot reach — out-of-order lookback
progress through :class:`LookbackScanSim`: a tile whose predecessor has
not published yet must spin, and aggregates published ahead of their
predecessors must still resolve to correct prefixes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import binary_exclusive_scan
from repro.collectives.lookback import (
    LOOKBACK_ROUNDS,
    TILE_AGGREGATE,
    TILE_INVALID,
    TILE_PREFIX,
    LookbackScanSim,
    decoupled_lookback_scan,
    lookback_exclusive_scan,
)
from repro.errors import LaunchError


def reference_exclusive(values):
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return values
    return np.concatenate(([0], np.cumsum(values)[:-1]))


class TestDeviceScan:
    @pytest.mark.parametrize("n,tile", [
        (0, 32), (1, 32), (31, 32), (32, 32), (33, 32),
        (1000, 64), (4096, 256), (777, 13),
    ])
    def test_matches_reference(self, n, tile):
        rng = np.random.default_rng(n + tile)
        values = rng.integers(-50, 50, n)
        scan, tile_prefix = decoupled_lookback_scan(values, tile)
        assert np.array_equal(scan, reference_exclusive(values))
        if n:
            assert tile_prefix[-1] == values.sum()

    def test_tile_prefix_is_inclusive_per_tile(self):
        values = np.arange(1, 65)
        _, tile_prefix = decoupled_lookback_scan(values, 16)
        for t in range(4):
            assert tile_prefix[t] == values[: (t + 1) * 16].sum()

    def test_all_false_predicate(self):
        scan, tile_prefix = decoupled_lookback_scan(np.zeros(256), 32)
        assert not scan.any()
        assert not tile_prefix.any()

    def test_single_tile(self):
        values = np.asarray([3, 1, 4, 1, 5])
        scan, tile_prefix = decoupled_lookback_scan(values, 8)
        assert np.array_equal(scan, reference_exclusive(values))
        assert tile_prefix.shape == (1,) and tile_prefix[0] == 14

    def test_rejects_nonpositive_tile(self):
        with pytest.raises(LaunchError):
            decoupled_lookback_scan(np.ones(8), 0)


class TestWorkgroupVariant:
    def test_matches_reference_and_reports_constant_rounds(self):
        rng = np.random.default_rng(11)
        for width in (32, 64, 128, 256, 1024):
            pred = rng.random(width) < 0.5
            out, rounds = lookback_exclusive_scan(pred, 32)
            assert np.array_equal(out, reference_exclusive(pred))
            # Single-pass: the round count never grows with the width.
            assert rounds == LOOKBACK_ROUNDS

    def test_rejects_width_not_multiple_of_warp(self):
        with pytest.raises(LaunchError):
            lookback_exclusive_scan(np.ones(40, dtype=bool), 32)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=128, max_size=128))
    def test_property_agrees_with_every_registered_variant(self, bits):
        pred = np.asarray(bits, dtype=bool)
        expected = binary_exclusive_scan(pred, "tree", warp_size=32)[0]
        out = binary_exclusive_scan(pred, "lookback", warp_size=32)[0]
        assert np.array_equal(out, expected)


class TestOutOfOrderLookback:
    """Drive the flag state machine through non-ascending schedules."""

    def _values(self, n_tiles, tile=8, seed=0):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 10, n_tiles * tile)

    def test_reverse_order_spins_then_resolves(self):
        values = self._values(8)
        sim = LookbackScanSim(values, 8)
        out = sim.run(order=list(range(7, -1, -1)))
        assert np.array_equal(out, reference_exclusive(values))
        # Every tile except tile 0 must have hit an INVALID predecessor
        # at least once when published in reverse.
        assert sim.n_spins >= 7
        assert (sim.state == TILE_PREFIX).all()

    def test_interleaved_order(self):
        values = self._values(6, seed=3)
        sim = LookbackScanSim(values, 8)
        out = sim.run(order=[3, 0, 5, 1, 4, 2])
        assert np.array_equal(out, reference_exclusive(values))

    def test_aggregate_published_before_predecessor_still_correct(self):
        # Tile 2 publishes its aggregate first; its lookback must spin
        # (tile 1 INVALID), and once tiles 0 and 1 resolve, tile 2's
        # prefix must include both predecessors' sums.
        values = np.asarray([1] * 8 + [2] * 8 + [4] * 8)
        sim = LookbackScanSim(values, 8)
        sim.publish_aggregate(2)
        assert not sim.try_resolve(2)
        assert sim.n_spins == 1
        assert sim.state[2] == TILE_AGGREGATE
        sim.publish_aggregate(0)
        assert sim.try_resolve(0)
        sim.publish_aggregate(1)
        assert sim.try_resolve(1)
        assert sim.try_resolve(2)
        assert sim.tile_prefix[2] == 8 + 16 + 32
        assert np.array_equal(sim.scan, reference_exclusive(values))

    def test_lookback_accumulates_aggregates_past_unresolved_tiles(self):
        # Tiles 1 and 2 hold AGGREGATE (not PREFIX) when tile 3 looks
        # back; the walk must sum their aggregates and terminate at
        # tile 0's PREFIX without spinning.
        values = np.asarray([1] * 8 + [2] * 8 + [4] * 8 + [8] * 8)
        sim = LookbackScanSim(values, 8)
        sim.publish_aggregate(0)
        sim.try_resolve(0)
        sim.publish_aggregate(1)
        sim.publish_aggregate(2)
        sim.publish_aggregate(3)
        spins_before = sim.n_spins
        assert sim.try_resolve(3)
        assert sim.n_spins == spins_before
        assert sim.tile_prefix[3] == 8 + 16 + 32 + 64
        assert sim.state[1] == TILE_AGGREGATE  # untouched by 3's walk

    def test_events_record_spin_then_prefix(self):
        values = self._values(3, seed=5)
        sim = LookbackScanSim(values, 8)
        sim.run(order=[2, 1, 0])
        kinds = [kind for kind, _ in sim.events]
        assert "spin" in kinds
        # A tile's prefix event always follows its aggregate event.
        for t in range(3):
            agg = sim.events.index(("aggregate", t))
            pre = sim.events.index(("prefix", t))
            assert agg < pre

    def test_resolve_before_aggregate_rejected(self):
        sim = LookbackScanSim(np.ones(16), 8)
        with pytest.raises(LaunchError):
            sim.try_resolve(1)

    def test_order_must_be_permutation(self):
        sim = LookbackScanSim(np.ones(16), 8)
        with pytest.raises(LaunchError):
            sim.run(order=[0, 0])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**16), st.integers(2, 10))
    def test_property_random_schedules_match_reference(self, seed, n_tiles):
        rng = np.random.default_rng(seed)
        values = rng.integers(-20, 20, n_tiles * 8)
        order = rng.permutation(n_tiles).tolist()
        sim = LookbackScanSim(values, 8)
        out = sim.run(order=order)
        assert np.array_equal(out, reference_exclusive(values))
        ascending = decoupled_lookback_scan(values, 8)[1]
        assert np.array_equal(sim.tile_prefix, ascending)

    def test_initial_state_all_invalid(self):
        sim = LookbackScanSim(np.ones(32), 8)
        assert (sim.state == TILE_INVALID).all()
        assert sim.n_spins == 0 and sim.events == []
