"""Workload generators: exact fractions, seeding, shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.reference import unique_ref
from repro.workloads import (
    PAPER_ARRAY_ELEMENTS,
    PAPER_FRACTIONS,
    compaction_array,
    predicate_fraction_array,
    runs_array,
)


class TestConstants:
    def test_paper_sweep(self):
        assert PAPER_FRACTIONS[0] == 0.0
        assert PAPER_FRACTIONS[-1] == 1.0
        assert len(PAPER_FRACTIONS) == 11
        assert PAPER_ARRAY_ELEMENTS == 16 * 1024 * 1024


class TestPredicateFraction:
    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5, 0.93, 1.0])
    def test_exact_fraction(self, fraction):
        values, pred = predicate_fraction_array(1000, fraction, seed=4)
        assert int(pred(values).sum()) == round(1000 * fraction)

    def test_seeded_reproducibility(self):
        a, _ = predicate_fraction_array(500, 0.3, seed=7)
        b, _ = predicate_fraction_array(500, 0.3, seed=7)
        c, _ = predicate_fraction_array(500, 0.3, seed=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_rejects_bad_inputs(self):
        with pytest.raises(WorkloadError):
            predicate_fraction_array(0, 0.5)
        with pytest.raises(WorkloadError):
            predicate_fraction_array(10, 1.5)

    def test_dtype(self):
        values, _ = predicate_fraction_array(100, 0.5, dtype=np.float64)
        assert values.dtype == np.float64

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 5000), fraction=st.floats(0, 1),
           seed=st.integers(0, 2**16))
    def test_property_exact_count(self, n, fraction, seed):
        values, pred = predicate_fraction_array(n, fraction, seed=seed)
        assert int(pred(values).sum()) == round(n * fraction)


class TestCompactionArray:
    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 1.0])
    def test_exact_sentinel_count(self, fraction):
        a = compaction_array(800, fraction, seed=2)
        assert int((a == 0.0).sum()) == round(800 * fraction)

    def test_custom_sentinel(self):
        a = compaction_array(100, 0.5, remove_value=-1.0, seed=1)
        assert int((a == -1.0).sum()) == 50

    def test_sentinel_collision_rejected(self):
        with pytest.raises(WorkloadError, match="collides"):
            compaction_array(100, 0.5, remove_value=1.5)


class TestRunsArray:
    @pytest.mark.parametrize("fraction", [0.01, 0.3, 0.5, 1.0])
    def test_exact_run_count(self, fraction):
        a = runs_array(1000, fraction, seed=9)
        assert unique_ref(a).size == max(1, round(1000 * fraction))

    def test_adjacent_runs_always_differ(self):
        a = runs_array(500, 0.4, seed=5)
        u = unique_ref(a)
        assert (np.diff(u) != 0).all()

    def test_full_fraction_all_distinct_neighbours(self):
        a = runs_array(300, 1.0, seed=3)
        assert (np.diff(a) != 0).all()

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 4000), fraction=st.floats(0.001, 1.0),
           seed=st.integers(0, 2**16))
    def test_property_exact_runs(self, n, fraction, seed):
        a = runs_array(n, fraction, seed=seed)
        assert a.size == n
        assert unique_ref(a).size == max(1, min(n, round(n * fraction)))
