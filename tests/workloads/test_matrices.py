"""Matrix workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    FIG2_SHAPE,
    PAPER_PAD_SWEEP,
    PAPER_SIZE_SWEEP,
    TABLE1_SHAPE,
    padding_matrix,
)


class TestConstants:
    def test_paper_shapes(self):
        assert FIG2_SHAPE == (5000, 4900, 100)
        assert TABLE1_SHAPE == (12000, 11999, 1)
        assert (12000, 11999) in PAPER_SIZE_SWEEP
        assert all(p >= 1 for p in PAPER_PAD_SWEEP)

    def test_fig2_pads_to_square(self):
        rows, cols, pad = FIG2_SHAPE
        assert cols + pad == rows


class TestPaddingMatrix:
    def test_values_encode_position(self):
        m = padding_matrix(5, 7)
        assert m[0, 0] == 0
        assert m[0, 6] == 6
        assert m[2, 3] == 2 * 10 + 3
        assert m[4, 0] == 40

    def test_all_values_distinct(self):
        m = padding_matrix(20, 30)
        assert np.unique(m).size == 600

    def test_seeded_jitter_preserves_identity(self):
        m = padding_matrix(10, 10, seed=3)
        # The jitter is < 0.25, so floor recovers the position code.
        assert np.array_equal(np.floor(m), padding_matrix(10, 10))

    def test_dtype(self):
        assert padding_matrix(3, 3, dtype=np.float64).dtype == np.float64

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            padding_matrix(0, 5)
