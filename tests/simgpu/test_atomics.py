"""Atomic read-modify-write semantics."""

import numpy as np
import pytest

from repro.simgpu import atomics as A
from repro.simgpu.buffers import Buffer


@pytest.fixture
def ibuf():
    return Buffer(np.zeros(8, dtype=np.int64), "flags")


class TestScalarAtomics:
    def test_atomic_add_returns_old(self, ibuf):
        assert A.atomic_add(ibuf, 0, 5) == 0
        assert A.atomic_add(ibuf, 0, 3) == 5
        assert ibuf.data[0] == 8

    def test_atomic_or_sets_bits(self, ibuf):
        assert A.atomic_or(ibuf, 1, 0b01) == 0
        assert A.atomic_or(ibuf, 1, 0b10) == 0b01
        assert ibuf.data[1] == 0b11

    def test_atomic_or_zero_is_a_read(self, ibuf):
        # The paper's spin loop: atom_or(&flags[i], 0) reads atomically.
        ibuf.data[2] = 7
        assert A.atomic_or(ibuf, 2, 0) == 7
        assert ibuf.data[2] == 7

    def test_atomic_read_alias(self, ibuf):
        ibuf.data[3] = 42
        assert A.atomic_read(ibuf, 3) == 42

    def test_atomic_max(self, ibuf):
        A.atomic_max(ibuf, 0, 5)
        assert A.atomic_max(ibuf, 0, 3) == 5
        assert ibuf.data[0] == 5

    def test_atomic_cas_success_and_failure(self, ibuf):
        assert A.atomic_cas(ibuf, 0, 0, 9) == 0
        assert ibuf.data[0] == 9
        assert A.atomic_cas(ibuf, 0, 0, 11) == 9  # compare fails
        assert ibuf.data[0] == 9

    def test_atomic_exchange(self, ibuf):
        ibuf.data[0] = 4
        assert A.atomic_exchange(ibuf, 0, 10) == 4
        assert ibuf.data[0] == 10

    def test_atomics_counted_in_stats(self, ibuf):
        A.atomic_add(ibuf, 0, 1)
        A.atomic_or(ibuf, 0, 1)
        assert ibuf.stats.atomic_ops == 2

    def test_bulk_atomic_add_reserves_range(self, ibuf):
        assert A.bulk_atomic_add(ibuf, 0, 10) == 0
        assert A.bulk_atomic_add(ibuf, 0, 5) == 10
        assert ibuf.data[0] == 15


class TestSimdAtomicAdd:
    def test_disjoint_lanes(self, ibuf):
        old = A.simd_atomic_add(ibuf, np.asarray([0, 1, 2]), np.asarray([1, 2, 3]))
        assert np.array_equal(old, [0, 0, 0])
        assert np.array_equal(ibuf.data[:3], [1, 2, 3])

    def test_conflicting_lanes_serialize_in_lane_order(self, ibuf):
        # Four lanes hit the same cursor: lane i sees the sum of lanes < i.
        old = A.simd_atomic_add(
            ibuf, np.zeros(4, dtype=np.int64), np.asarray([1, 1, 1, 1])
        )
        assert np.array_equal(old, [0, 1, 2, 3])
        assert ibuf.data[0] == 4

    def test_mixed_conflicts(self, ibuf):
        idx = np.asarray([0, 1, 0, 1, 0])
        val = np.asarray([1, 10, 2, 20, 3])
        old = A.simd_atomic_add(ibuf, idx, val)
        assert np.array_equal(old, [0, 0, 1, 10, 3])
        assert ibuf.data[0] == 6 and ibuf.data[1] == 30

    def test_counts_per_lane_atomics(self, ibuf):
        A.simd_atomic_add(ibuf, np.zeros(6, dtype=np.int64), np.ones(6, dtype=np.int64))
        assert ibuf.stats.atomic_ops == 6

    def test_empty_vector(self, ibuf):
        old = A.simd_atomic_add(ibuf, np.asarray([], dtype=np.int64),
                                np.asarray([], dtype=np.int64))
        assert old.size == 0
