"""WorkGroup context: loads, stores, atomics, spins, scratchpad."""

import numpy as np
import pytest

from repro.errors import ResourceError
from repro.simgpu import Buffer, get_device, launch
from repro.simgpu.scratchpad import Scratchpad


class TestScratchpad:
    def test_alloc_and_get(self):
        sp = Scratchpad(1024, "wg0")
        arr = sp.alloc("tile", (4, 8), dtype=np.float32)
        assert arr.shape == (4, 8)
        assert sp.get("tile") is arr
        assert sp.allocated_bytes == 128
        assert sp.free_bytes == 896

    def test_capacity_overflow(self):
        sp = Scratchpad(100)
        with pytest.raises(ResourceError, match="exceeds"):
            sp.alloc("big", (100,), dtype=np.float64)

    def test_duplicate_name(self):
        sp = Scratchpad(1024)
        sp.alloc("a", (4,))
        with pytest.raises(ResourceError, match="already"):
            sp.alloc("a", (4,))

    def test_missing_name(self):
        with pytest.raises(ResourceError, match="no local array"):
            Scratchpad(64).get("ghost")

    def test_touch_accounting(self):
        sp = Scratchpad(64)
        sp.touch(48)
        assert sp.bytes_accessed == 48


class TestWorkGroupOps:
    def test_lockstep_ids_and_warps(self, maxwell):
        seen = {}

        def kernel(wg):
            seen["wi"] = wg.wi_id.copy()
            seen["warps"] = wg.num_warps
            yield from wg.barrier()

        launch(kernel, grid_size=1, wg_size=64, device=maxwell)
        assert np.array_equal(seen["wi"], np.arange(64))
        assert seen["warps"] == 2

    def test_local_alloc_respects_device_capacity(self, maxwell):
        def kernel(wg):
            wg.local_alloc("huge", (maxwell.scratchpad_bytes_per_wg,),
                           dtype=np.float64)
            yield from wg.barrier()

        with pytest.raises(ResourceError):
            launch(kernel, grid_size=1, wg_size=32, device=maxwell)

    def test_local_touch_counted(self, maxwell):
        def kernel(wg):
            yield from wg.local_touch(256)

        c = launch(kernel, grid_size=2, wg_size=32, device=maxwell)
        assert c.local_bytes == 512

    def test_spin_until_returns_satisfying_value(self, maxwell):
        flags = Buffer(np.zeros(2, dtype=np.int64), "flags")
        flags.data[0] = 5
        result = {}

        def kernel(wg):
            result["v"] = yield from wg.spin_until(flags, 0, lambda v: v != 0)

        launch(kernel, grid_size=1, wg_size=32, device=maxwell)
        assert result["v"] == 5

    def test_spin_max_polls_guard(self, maxwell):
        flags = Buffer(np.zeros(2, dtype=np.int64), "flags")

        def producer_free_kernel(wg):
            yield from wg.spin_until(flags, 0, lambda v: v != 0, max_polls=3)

        # One lone work-group spinning on a flag nobody sets: the
        # scheduler would report deadlock, but max_polls fires first
        # only if the group gets rescheduled; with a single resident
        # group the scheduler detects the deadlock.
        from repro.errors import DeadlockError
        with pytest.raises(DeadlockError):
            launch(producer_free_kernel, grid_size=1, wg_size=32,
                   device=maxwell)

    def test_atomic_helpers(self, maxwell):
        counter = Buffer(np.zeros(1, dtype=np.int64), "cnt")
        got = []

        def kernel(wg):
            old = yield from wg.atomic_add(counter, 0, 1)
            got.append(old)

        launch(kernel, grid_size=5, wg_size=32, device=maxwell)
        assert sorted(got) == [0, 1, 2, 3, 4]
        assert counter.data[0] == 5

    def test_declare_reads_feeds_tracker(self, maxwell):
        buf = Buffer(np.arange(64, dtype=np.float32), "b")
        buf.arm_race_tracking()

        def kernel(wg):
            wg.declare_reads(buf, np.arange(32))
            vals = yield from wg.load(buf, np.arange(32))
            yield from wg.store(buf, np.arange(32), vals)

        launch(kernel, grid_size=1, wg_size=32, device=maxwell)  # no raise

    def test_simd_atomic_add_through_context(self, maxwell):
        cursor = Buffer(np.zeros(1, dtype=np.int64), "cur")
        got = {}

        def kernel(wg):
            old = yield from wg.simd_atomic_add(
                cursor, np.zeros(4, dtype=np.int64), np.ones(4, dtype=np.int64))
            got["old"] = old

        launch(kernel, grid_size=1, wg_size=32, device=maxwell)
        assert np.array_equal(got["old"], [0, 1, 2, 3])
