"""The shared utility kernels."""

import numpy as np

from repro.simgpu import Buffer, copy_kernel, fill_kernel, launch


class TestCopyKernel:
    def test_offset_copy(self, maxwell):
        src = Buffer(np.arange(100, dtype=np.float32), "src")
        dst = Buffer(np.zeros(300, dtype=np.float32), "dst")
        launch(copy_kernel, grid_size=2, wg_size=32, device=maxwell,
               args=(src, dst, 100, 0, 150, 2))
        assert np.array_equal(dst.data[150:250], src.data)
        assert (dst.data[:150] == 0).all() and (dst.data[250:] == 0).all()

    def test_source_offset(self, maxwell):
        src = Buffer(np.arange(100, dtype=np.float32), "src")
        dst = Buffer(np.zeros(50, dtype=np.float32), "dst")
        launch(copy_kernel, grid_size=1, wg_size=32, device=maxwell,
               args=(src, dst, 50, 50, 0, 2))
        assert np.array_equal(dst.data, src.data[50:])

    def test_partial_final_tile(self, maxwell):
        src = Buffer(np.arange(70, dtype=np.float32), "src")
        dst = Buffer(np.zeros(70, dtype=np.float32), "dst")
        launch(copy_kernel, grid_size=2, wg_size=32, device=maxwell,
               args=(src, dst, 70, 0, 0, 2))
        assert np.array_equal(dst.data, src.data)

    def test_reexported_from_partition_for_compatibility(self):
        from repro.primitives.partition import copy_kernel as ck
        assert ck is copy_kernel


class TestFillKernel:
    def test_fill_range(self, maxwell):
        dst = Buffer(np.zeros(200, dtype=np.float32), "dst")
        launch(fill_kernel, grid_size=2, wg_size=32, device=maxwell,
               args=(dst, 7.5, 100, 50, 2))
        assert (dst.data[50:150] == 7.5).all()
        assert (dst.data[:50] == 0).all() and (dst.data[150:] == 0).all()

    def test_fill_respects_dtype(self, maxwell):
        dst = Buffer(np.zeros(64, dtype=np.int64), "dst")
        launch(fill_kernel, grid_size=1, wg_size=32, device=maxwell,
               args=(dst, 42, 64, 0, 2))
        assert (dst.data == 42).all()
        assert dst.data.dtype == np.int64
