"""Event tokens and launch-counter aggregation."""

import pytest

from repro.simgpu.counters import LaunchCounters
from repro.simgpu.events import (
    AtomicRMW,
    Barrier,
    EventKind,
    GlobalLoad,
    GlobalStore,
    LocalAccess,
    Spin,
)


class TestEvents:
    def test_kinds(self):
        assert GlobalLoad(4, 1, "b").kind is EventKind.GLOBAL_LOAD
        assert GlobalStore(4, 1, "b").kind is EventKind.GLOBAL_STORE
        assert AtomicRMW("add", 8, "f").kind is EventKind.ATOMIC
        assert Barrier().kind is EventKind.BARRIER
        assert Spin("f").kind is EventKind.SPIN
        assert LocalAccess(16).kind is EventKind.LOCAL

    def test_payload_fields(self):
        e = GlobalLoad(1024, 8, "src")
        assert e.bytes == 1024 and e.transactions == 8
        assert e.buffer_name == "src"

    def test_atomic_records_op(self):
        assert AtomicRMW("cas", 8, "f").op == "cas"

    def test_barrier_scope(self):
        assert Barrier("global").scope == "global"
        assert Barrier().scope == "local"

    def test_events_are_slotted(self):
        with pytest.raises(AttributeError):
            GlobalLoad(4, 1, "b").arbitrary = 1


class TestLaunchCounters:
    def test_bytes_moved_and_transactions(self):
        c = LaunchCounters(bytes_loaded=100, bytes_stored=50,
                           load_transactions=3, store_transactions=2)
        assert c.bytes_moved == 150
        assert c.transactions == 5

    def test_merge_sums_and_maxes(self):
        a = LaunchCounters(kernel_name="a", grid_size=4, wg_size=64,
                           bytes_loaded=10, n_atomics=1, peak_resident=4,
                           steps=7, completed_wgs=4)
        b = LaunchCounters(kernel_name="b", grid_size=2, wg_size=128,
                           bytes_stored=20, n_spins=3, peak_resident=2,
                           steps=5, completed_wgs=2)
        m = a.merge(b)
        assert m.kernel_name == "a+b"
        assert m.grid_size == 6
        assert m.wg_size == 128  # max
        assert m.bytes_moved == 30
        assert m.n_atomics == 1 and m.n_spins == 3
        assert m.peak_resident == 4  # max
        assert m.steps == 12 and m.completed_wgs == 6

    def test_merge_combines_extras(self):
        a = LaunchCounters()
        a.extras["x"] = 1.0
        b = LaunchCounters()
        b.extras["y"] = 2.0
        m = a.merge(b)
        assert m.extras == {"x": 1.0, "y": 2.0}

    def test_summary_is_one_line(self):
        c = LaunchCounters(kernel_name="k", grid_size=2, wg_size=32)
        s = c.summary()
        assert "\n" not in s and "k" in s
