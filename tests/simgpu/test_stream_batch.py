"""Stream batches and events — the substrate under Pipeline.run()."""

import numpy as np
import pytest

from repro import obs
from repro.config import DSConfig
from repro.errors import LaunchError
from repro.primitives import ds_stream_compact, ds_unique
from repro.primitives.common import resolve_stream


def _launch(stream, rng, n=300):
    a = rng.integers(0, 5, n).astype(np.float32)
    return ds_stream_compact(a, 0, stream, config=DSConfig(wg_size=32))


class TestEvents:
    def test_record_event_snapshots_position(self, rng):
        s = resolve_stream("maxwell")
        e0 = s.record_event("before")
        _launch(s, rng)
        e1 = s.record_event("after")
        assert (e0.index, e1.index) == (0, 1)
        assert (e0.label, e1.label) == ("before", "after")

    def test_wait_event_records_edge(self, rng):
        s = resolve_stream("maxwell")
        _launch(s, rng)
        e = s.record_event()
        s.wait_event(e)
        _launch(s, rng)
        assert s.dependencies == [(1, 1)]

    def test_wait_event_rejects_foreign_stream(self, rng):
        s1 = resolve_stream("maxwell")
        s2 = resolve_stream("maxwell")
        e = s1.record_event()
        with pytest.raises(LaunchError, match="different stream"):
            s2.wait_event(e)


class TestBatches:
    def test_batch_window_counts_launches(self, rng):
        s = resolve_stream("maxwell")
        _launch(s, rng)  # before the window
        with s.batch("window") as record:
            r = _launch(s, rng)
            ds_unique(r.output, s, config=DSConfig(wg_size=32))
        assert (record.start, record.end) == (1, 3)
        assert record.num_launches == 2
        assert s.batches == [record]

    def test_events_inside_batch_are_collected(self, rng):
        s = resolve_stream("maxwell")
        with s.batch() as record:
            _launch(s, rng)
            s.record_event("mid")
        assert [e.label for e in record.events] == ["mid"]
        outside = s.record_event("outside")
        assert outside not in record.events

    def test_batches_do_not_nest(self):
        s = resolve_stream("maxwell")
        with s.batch():
            with pytest.raises(LaunchError, match="nest"):
                with s.batch():
                    pass

    def test_batch_closes_on_error(self, rng):
        s = resolve_stream("maxwell")
        with pytest.raises(RuntimeError):
            with s.batch() as record:
                _launch(s, rng)
                raise RuntimeError("boom")
        assert record.end == 1  # window still closed
        with s.batch():  # and a new batch opens fine
            pass

    def test_batch_metrics_when_tracing(self, rng):
        s = resolve_stream("maxwell")
        with obs.tracing("spans") as tracer:
            with s.batch():
                _launch(s, rng)
                _launch(s, rng)
        values = {c.name: c.value for c in tracer.metrics}
        assert values["stream.batches"] == 1
        assert values["stream.batch_launches"] == 2

    def test_reset_clears_batches_and_dependencies(self, rng):
        s = resolve_stream("maxwell")
        with s.batch():
            _launch(s, rng)
            s.wait_event(s.record_event())
        s.reset()
        assert s.batches == [] and s.dependencies == []
        assert s.num_launches == 0
