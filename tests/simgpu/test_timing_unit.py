"""Unit-level semantics of the timing replay (hand-crafted event lists)."""

import pytest

from repro.simgpu import get_device
from repro.simgpu.events import AtomicRMW, Barrier, GlobalLoad, LocalAccess, Spin
from repro.simgpu.timing import BARRIER_COST_US, MEM_LATENCY_US, replay_timing


@pytest.fixture
def mx():
    return get_device("maxwell")


class TestEventSemantics:
    def test_single_load_costs_latency_plus_transfer(self, mx):
        t = replay_timing([(0, GlobalLoad(1024, 8, "a"))], mx)
        assert t.makespan_us > MEM_LATENCY_US
        assert t.busy_us > 0

    def test_pipelined_same_direction_runs(self, mx):
        """A run of loads pays the latency once; alternating directions
        pays it per switch."""
        loads = [(0, GlobalLoad(1024, 8, "a")) for _ in range(8)]
        alternating = []
        from repro.simgpu.events import GlobalStore
        for i in range(4):
            alternating.append((0, GlobalLoad(1024, 8, "a")))
            alternating.append((0, GlobalStore(1024, 8, "a")))
        run_t = replay_timing(loads, mx).makespan_us
        alt_t = replay_timing(alternating, mx).makespan_us
        assert alt_t > run_t * 2

    def test_barrier_adds_fixed_cost(self, mx):
        one = replay_timing([(0, Barrier())], mx).makespan_us
        three = replay_timing([(0, Barrier())] * 3, mx).makespan_us
        assert one == pytest.approx(BARRIER_COST_US)
        assert three == pytest.approx(3 * BARRIER_COST_US)

    def test_atomics_serialize_per_buffer_only(self, mx):
        same = [(g, AtomicRMW("add", 8, "flags")) for g in range(4)]
        different = [(g, AtomicRMW("add", 8, f"flags{g}")) for g in range(4)]
        t_same = replay_timing(same, mx).makespan_us
        t_diff = replay_timing(different, mx).makespan_us
        assert t_same == pytest.approx(4 * mx.flag_latency_us)
        assert t_diff == pytest.approx(mx.flag_latency_us)

    def test_spin_waits_for_the_buffers_last_atomic(self, mx):
        trace = [
            (0, AtomicRMW("or", 8, "flags")),   # group 0 sets a flag
            (1, Spin("flags")),                  # group 1 was polling it
            (1, Barrier()),
        ]
        t = replay_timing(trace, mx)
        assert t.per_group_finish[1] == pytest.approx(
            mx.flag_latency_us + BARRIER_COST_US)

    def test_spin_on_untouched_buffer_is_free(self, mx):
        t = replay_timing([(0, Spin("ghost"))], mx)
        assert t.makespan_us == 0.0

    def test_local_access_is_free(self, mx):
        t = replay_timing([(0, LocalAccess(4096))], mx)
        assert t.makespan_us == 0.0

    def test_admission_slots_serialize_groups(self, mx):
        # Four groups, one slot: barrier costs stack end to end.
        trace = [(g, Barrier()) for g in range(4)]
        t1 = replay_timing(trace, mx, resident_limit=1).makespan_us
        t4 = replay_timing(trace, mx, resident_limit=4).makespan_us
        assert t1 == pytest.approx(4 * BARRIER_COST_US)
        assert t4 == pytest.approx(BARRIER_COST_US)
