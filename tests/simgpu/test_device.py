"""Device catalog and spec validation."""

import pytest

from repro.errors import ModelError
from repro.simgpu.device import (
    DEVICES,
    DeviceSpec,
    get_device,
    list_devices,
)


class TestCatalog:
    def test_catalog_has_the_papers_seven_platforms(self):
        assert set(DEVICES) == {
            "fermi", "kepler", "maxwell", "hawaii", "kaveri",
            "cpu-mxpa", "cpu-intel",
        }

    def test_get_device_is_case_insensitive(self):
        assert get_device("MAXWELL").name == "maxwell"
        assert get_device(" Kepler ").name == "kepler"

    def test_get_device_unknown_lists_catalog(self):
        with pytest.raises(ModelError, match="known devices"):
            get_device("volta")

    def test_list_devices_is_stable_and_complete(self):
        names = [d.name for d in list_devices()]
        assert names == ["fermi", "kepler", "maxwell", "hawaii", "kaveri",
                         "cpu-mxpa", "cpu-intel"]

    def test_peak_bandwidths_match_paper_quotes(self):
        assert get_device("kepler").peak_bandwidth_gbps == pytest.approx(208.0)
        assert get_device("maxwell").peak_bandwidth_gbps == pytest.approx(224.0)
        assert get_device("hawaii").peak_bandwidth_gbps == pytest.approx(320.0)
        assert get_device("cpu-mxpa").peak_bandwidth_gbps == pytest.approx(25.6)

    def test_shuffle_availability_matches_paper(self):
        # CUDA shuffle exists on Kepler+ only; no OpenCL stack exposes it.
        assert not get_device("fermi").has_shuffle_cuda
        assert get_device("kepler").has_shuffle_cuda
        assert get_device("maxwell").has_shuffle_cuda
        for d in list_devices():
            assert not d.has_shuffle_opencl

    def test_kepler_lacks_l1_for_global(self):
        assert not get_device("kepler").has_l1_for_global
        assert get_device("fermi").has_l1_for_global

    def test_amd_wavefront_is_64(self):
        assert get_device("hawaii").warp_size == 64
        assert get_device("kaveri").warp_size == 64

    def test_cpu_devices_flagged(self):
        assert get_device("cpu-mxpa").is_cpu
        assert get_device("cpu-intel").is_cpu
        assert not get_device("maxwell").is_cpu


class TestDerivedQuantities:
    def test_max_resident_wgs(self):
        d = get_device("maxwell")
        assert d.max_resident_wgs == d.num_compute_units * d.max_wg_per_cu

    def test_max_coarsening_scales_with_itemsize(self):
        d = get_device("maxwell")
        assert d.max_coarsening(4) == d.onchip_bytes_per_workitem // 4
        assert d.max_coarsening(8) == d.onchip_bytes_per_workitem // 8
        # Figure 6: the cliff appears at coarsening 40/48 for f32.
        assert 32 <= d.max_coarsening(4) < 40

    def test_max_coarsening_rejects_bad_itemsize(self):
        with pytest.raises(ModelError):
            get_device("maxwell").max_coarsening(0)

    def test_mlp_efficiency_ramp(self):
        d = get_device("maxwell")
        assert d.mlp_efficiency(0) == 0.0
        assert d.mlp_efficiency(d.saturation_wgs) == pytest.approx(1.0)
        assert d.mlp_efficiency(10 * d.saturation_wgs) == 1.0
        assert 0 < d.mlp_efficiency(1) < 1

    def test_bandwidth_bytes_per_us(self):
        d = get_device("maxwell")
        assert d.bandwidth_bytes_per_us() == pytest.approx(224e3)


class TestSpecValidation:
    def _spec(self, **overrides):
        base = dict(
            name="x", marketing_name="X", vendor="nvidia", architecture="T",
            peak_bandwidth_gbps=100.0, num_compute_units=4, max_wg_per_cu=2,
        )
        base.update(overrides)
        return DeviceSpec(**base)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ModelError):
            self._spec(peak_bandwidth_gbps=0)

    def test_rejects_nonpositive_cus(self):
        with pytest.raises(ModelError):
            self._spec(num_compute_units=0)

    def test_rejects_wg_size_not_warp_multiple(self):
        with pytest.raises(ModelError):
            self._spec(max_wg_size=100, warp_size=32)

    def test_spec_is_frozen(self):
        d = get_device("maxwell")
        with pytest.raises(Exception):
            d.peak_bandwidth_gbps = 1.0
