"""Buffer storage, accounting and read-before-overwrite tracking."""

import numpy as np
import pytest

from repro.errors import DataRaceError, LaunchError
from repro.simgpu.buffers import Buffer


class TestStorage:
    def test_copies_and_flattens_input(self):
        src = np.arange(12, dtype=np.float32).reshape(3, 4)
        buf = Buffer(src, "b")
        assert buf.size == 12 and buf.data.ndim == 1
        src[0, 0] = 99  # the buffer must own its storage
        assert buf.data[0] == 0

    def test_copy_false_shares_storage(self):
        src = np.arange(8, dtype=np.float32)
        buf = Buffer(src, "b", copy=False)
        buf.data[0] = 42
        assert src[0] == 42

    def test_copy_false_rejects_noncontiguous(self):
        src = np.arange(16, dtype=np.float32)[::2]
        with pytest.raises(LaunchError, match="contiguous"):
            Buffer(src, "b", copy=False)

    def test_copy_false_rejects_2d(self):
        with pytest.raises(LaunchError):
            Buffer(np.zeros((2, 2)), "b", copy=False)

    def test_properties(self):
        buf = Buffer(np.zeros(10, dtype=np.float64), "b")
        assert buf.itemsize == 8 and buf.nbytes == 80

    def test_to_numpy_is_a_copy(self):
        buf = Buffer(np.arange(4), "b")
        out = buf.to_numpy()
        out[0] = 99
        assert buf.data[0] == 0

    def test_rejects_bad_transaction_bytes(self):
        with pytest.raises(LaunchError):
            Buffer(np.zeros(4), "b", transaction_bytes=0)


class TestAccounting:
    def test_gather_counts_elements(self):
        buf = Buffer(np.arange(100, dtype=np.float32), "b")
        out = buf.gather(np.arange(10))
        assert np.array_equal(out, np.arange(10, dtype=np.float32))
        assert buf.stats.loads_elems == 10
        assert buf.stats.stores_elems == 0

    def test_scatter_counts_elements(self):
        buf = Buffer(np.zeros(100, dtype=np.float32), "b")
        buf.scatter(np.arange(5), np.ones(5, dtype=np.float32))
        assert buf.stats.stores_elems == 5
        assert np.array_equal(buf.data[:5], np.ones(5))

    def test_contiguous_access_transactions(self):
        # 128-byte transactions over f32: 32 elements per transaction.
        buf = Buffer(np.zeros(256, dtype=np.float32), "b")
        buf.gather(np.arange(64))
        assert buf.stats.load_transactions == 2

    def test_strided_access_inflates_transactions(self):
        buf = Buffer(np.zeros(2048, dtype=np.float32), "b")
        buf.gather(np.arange(0, 2048, 32))  # one element per segment
        assert buf.stats.load_transactions == 64

    def test_transaction_counting_can_be_disabled(self):
        buf = Buffer(np.zeros(64, dtype=np.float32), "b",
                     count_transactions=False)
        buf.gather(np.arange(64))
        assert buf.stats.load_transactions == 0
        assert buf.stats.loads_elems == 64

    def test_stats_reset(self):
        buf = Buffer(np.zeros(8, dtype=np.float32), "b")
        buf.gather(np.arange(8))
        buf.stats.reset()
        assert buf.stats.loads_elems == 0

    def test_bytes_helpers(self):
        buf = Buffer(np.zeros(8, dtype=np.float64), "b")
        buf.gather(np.arange(4))
        assert buf.stats.bytes_loaded(buf.itemsize) == 32

    def test_empty_access_is_free(self):
        buf = Buffer(np.zeros(8, dtype=np.float32), "b")
        buf.gather(np.asarray([], dtype=np.int64))
        assert buf.stats.loads_elems == 0
        assert buf.stats.load_transactions == 0


class TestRaceTracking:
    def test_store_to_unread_element_raises(self):
        buf = Buffer(np.arange(16, dtype=np.float32), "b")
        buf.arm_race_tracking()
        buf.expect_reads(reader_id=1, idx=np.arange(8))
        with pytest.raises(DataRaceError) as exc:
            buf.scatter(np.asarray([3]), np.asarray([9.0]), writer_id=2)
        assert exc.value.index == 3
        assert exc.value.writer == 2

    def test_store_after_read_is_fine(self):
        buf = Buffer(np.arange(16, dtype=np.float32), "b")
        buf.arm_race_tracking()
        buf.expect_reads(reader_id=1, idx=np.arange(8))
        buf.gather(np.arange(8), reader_id=1)
        buf.scatter(np.asarray([3]), np.asarray([9.0]), writer_id=2)  # no raise

    def test_own_writes_are_allowed(self):
        # A work-group may overwrite its own not-yet-loaded region (the
        # DS kernels never do, but the tracker is per-reader).
        buf = Buffer(np.arange(16, dtype=np.float32), "b")
        buf.arm_race_tracking()
        buf.expect_reads(reader_id=7, idx=np.arange(8))
        buf.scatter(np.asarray([2]), np.asarray([1.0]), writer_id=7)  # no raise

    def test_disarm_stops_tracking(self):
        buf = Buffer(np.arange(16, dtype=np.float32), "b")
        buf.arm_race_tracking()
        buf.expect_reads(reader_id=1, idx=np.arange(8))
        buf.disarm_race_tracking()
        buf.scatter(np.asarray([0]), np.asarray([5.0]), writer_id=2)  # no raise
        assert not buf.race_tracking_armed

    def test_expect_reads_noop_when_disarmed(self):
        buf = Buffer(np.arange(4, dtype=np.float32), "b")
        buf.expect_reads(reader_id=1, idx=np.arange(2))
        buf.scatter(np.asarray([0]), np.asarray([5.0]), writer_id=2)  # no raise


class TestTransactionCountingSwitch:
    def test_default_follows_bench_full_env(self, monkeypatch):
        from repro.simgpu.buffers import default_count_transactions
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert default_count_transactions() is True
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert default_count_transactions() is False
        monkeypatch.setenv("REPRO_BENCH_FULL", "0")
        assert default_count_transactions() is True

    def test_disabled_counting_reports_zero_transactions(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        buf = Buffer(np.arange(64, dtype=np.float32), "b")
        assert buf._transactions(np.arange(32)) == 0

    def test_explicit_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        buf = Buffer(np.arange(64, dtype=np.float32), "b",
                     count_transactions=True)
        assert buf._transactions(np.arange(32)) > 0
