"""The scheduler's optional event trace."""

import numpy as np

from repro.simgpu import Buffer, Stream, get_device, launch
from repro.simgpu.events import EventKind


def copy_kernel(wg, src, dst, n):
    pos = wg.group_index * wg.size + wg.wi_id
    m = pos < n
    vals = yield from wg.load(src, pos[m])
    yield from wg.store(dst, pos[m], vals)


class TestTrace:
    def test_trace_records_every_event_in_order(self, maxwell):
        src = Buffer(np.arange(256, dtype=np.float32), "src")
        dst = Buffer(np.zeros(256, dtype=np.float32), "dst")
        trace = []
        c = launch(copy_kernel, grid_size=4, wg_size=64, device=maxwell,
                   args=(src, dst, 256), trace=trace)
        assert len(trace) == c.steps - c.completed_wgs  # StopIterations excluded
        kinds = [e.kind for _, e in trace]
        assert kinds.count(EventKind.GLOBAL_LOAD) == 4
        assert kinds.count(EventKind.GLOBAL_STORE) == 4
        # Per group: the load precedes the store.
        for g in range(4):
            ops = [e.kind for gi, e in trace if gi == g]
            assert ops == [EventKind.GLOBAL_LOAD, EventKind.GLOBAL_STORE]

    def test_trace_disabled_by_default(self, maxwell):
        src = Buffer(np.arange(64, dtype=np.float32), "src")
        dst = Buffer(np.zeros(64, dtype=np.float32), "dst")
        launch(copy_kernel, grid_size=1, wg_size=64, device=maxwell,
               args=(src, dst, 64))  # no trace arg: nothing to assert,
        # just that the default path stays exercised.

    def test_trace_through_stream(self, maxwell):
        src = Buffer(np.arange(128, dtype=np.float32), "src")
        dst = Buffer(np.zeros(128, dtype=np.float32), "dst")
        trace = []
        s = Stream(maxwell, seed=3)
        s.launch(copy_kernel, grid_size=2, wg_size=64,
                 args=(src, dst, 128), trace=trace)
        assert trace and all(isinstance(g, int) for g, _ in trace)
        from repro.simgpu.events import Event
        assert all(isinstance(e, Event) for _, e in trace)

    def test_trace_shows_interleaving_of_groups(self, maxwell):
        """With several resident groups and random picking, the trace
        should interleave group indices (not run them to completion one
        at a time) — the property Figure 5's overlap relies on."""
        src = Buffer(np.arange(4096, dtype=np.float32), "src")
        dst = Buffer(np.zeros(4096, dtype=np.float32), "dst")
        trace = []

        def multi_round(wg, src, dst, n):
            pos = wg.group_index * 4 * wg.size + wg.wi_id
            for _ in range(4):
                m = pos < n
                vals = yield from wg.load(src, pos[m])
                yield from wg.store(dst, pos[m], vals)
                pos = pos + wg.size

        launch(multi_round, grid_size=16, wg_size=64, device=maxwell,
               args=(src, dst, 4096), trace=trace, seed=5)
        order = [g for g, _ in trace]
        switches = sum(1 for a, b in zip(order, order[1:]) if a != b)
        assert switches > 16  # far more context switches than groups
