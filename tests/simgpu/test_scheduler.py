"""Cooperative scheduler: dispatch orders, residency, deadlock detection."""

import numpy as np
import pytest

from repro.errors import DeadlockError, LaunchError
from repro.simgpu import Buffer, Stream, get_device
from repro.simgpu.scheduler import dispatch_order, launch


def copy_kernel(wg, src, dst, n):
    pos = wg.group_index * wg.size + wg.wi_id
    m = pos < n
    vals = yield from wg.load(src, pos[m])
    yield from wg.store(dst, pos[m], vals)


def chain_kernel(wg, flags):
    """Spin on flag[gid], set flag[gid+1] — a static dependency chain."""
    gid = wg.group_index
    yield from wg.spin_until(flags, gid, lambda v: v != 0)
    yield from wg.atomic_or(flags, gid + 1, 1)


class TestDispatchOrder:
    def test_ascending(self):
        assert np.array_equal(dispatch_order(4, "ascending"), [0, 1, 2, 3])

    def test_descending(self):
        assert np.array_equal(dispatch_order(4, "descending"), [3, 2, 1, 0])

    def test_random_is_seeded_permutation(self):
        a = dispatch_order(16, "random", seed=7)
        b = dispatch_order(16, "random", seed=7)
        c = dispatch_order(16, "random", seed=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.array_equal(np.sort(a), np.arange(16))

    def test_explicit_permutation(self):
        assert np.array_equal(dispatch_order(3, [2, 0, 1]), [2, 0, 1])

    def test_rejects_non_permutation(self):
        with pytest.raises(LaunchError):
            dispatch_order(3, [0, 0, 1])

    def test_rejects_unknown_name(self):
        with pytest.raises(LaunchError):
            dispatch_order(3, "zigzag")


class TestLaunchValidation:
    def test_rejects_bad_grid(self, maxwell):
        with pytest.raises(LaunchError):
            launch(copy_kernel, grid_size=0, wg_size=32, device=maxwell)

    def test_rejects_bad_wg_size(self, maxwell):
        with pytest.raises(LaunchError):
            launch(copy_kernel, grid_size=1, wg_size=0, device=maxwell)

    def test_rejects_wg_size_over_device_limit(self):
        hawaii = get_device("hawaii")  # max_wg_size = 256
        with pytest.raises(LaunchError, match="exceeds"):
            launch(copy_kernel, grid_size=1, wg_size=512, device=hawaii)

    def test_rejects_bad_api(self, maxwell):
        with pytest.raises(LaunchError):
            launch(copy_kernel, grid_size=1, wg_size=32, device=maxwell,
                   api="vulkan")

    def test_rejects_non_generator_yield(self, maxwell):
        def bad_kernel(wg):
            yield 42  # not an Event

        with pytest.raises(LaunchError, match="yield from"):
            launch(bad_kernel, grid_size=1, wg_size=32, device=maxwell)


class TestExecution:
    def test_copy_correct_under_all_orders(self, maxwell):
        for order in ("ascending", "descending", "random"):
            src = Buffer(np.arange(500, dtype=np.float32), "src")
            dst = Buffer(np.zeros(500, dtype=np.float32), "dst")
            launch(copy_kernel, grid_size=8, wg_size=64, device=maxwell,
                   args=(src, dst, 500), order=order, seed=5)
            assert np.array_equal(dst.data, src.data), order

    def test_counters_aggregate_bytes(self, maxwell):
        src = Buffer(np.arange(512, dtype=np.float32), "src")
        dst = Buffer(np.zeros(512, dtype=np.float32), "dst")
        c = launch(copy_kernel, grid_size=8, wg_size=64, device=maxwell,
                   args=(src, dst, 512))
        assert c.bytes_loaded == 512 * 4
        assert c.bytes_stored == 512 * 4
        assert c.completed_wgs == 8
        assert c.n_loads == 8 and c.n_stores == 8

    def test_peak_resident_respects_limit(self, maxwell):
        src = Buffer(np.arange(512, dtype=np.float32), "src")
        dst = Buffer(np.zeros(512, dtype=np.float32), "dst")
        c = launch(copy_kernel, grid_size=8, wg_size=64, device=maxwell,
                   args=(src, dst, 512), resident_limit=3)
        assert c.peak_resident <= 3

    def test_same_seed_reproduces_step_count(self, maxwell):
        def run():
            src = Buffer(np.arange(512, dtype=np.float32), "src")
            dst = Buffer(np.zeros(512, dtype=np.float32), "dst")
            return launch(copy_kernel, grid_size=8, wg_size=64,
                          device=maxwell, args=(src, dst, 512), seed=42).steps

        assert run() == run()


class TestChainsAndDeadlock:
    def _flags(self, n):
        f = Buffer(np.zeros(n + 1, dtype=np.int64), "flags")
        f.data[0] = 1
        return f

    def test_static_chain_completes_with_full_residency(self, maxwell):
        flags = self._flags(8)
        c = launch(chain_kernel, grid_size=8, wg_size=32, device=maxwell,
                   args=(flags,), order="descending")
        assert c.completed_wgs == 8
        assert (flags.data != 0).all()

    def test_static_chain_deadlocks_under_adversarial_dispatch(self, maxwell):
        # Descending dispatch + 2 hardware slots: the residents spin on
        # predecessors that can never be scheduled (Figure 4's hazard).
        flags = self._flags(8)
        with pytest.raises(DeadlockError) as exc:
            launch(chain_kernel, grid_size=8, wg_size=32, device=maxwell,
                   args=(flags,), order="descending", resident_limit=2)
        assert len(exc.value.waiting) == 2
        assert exc.value.steps > 0

    def test_static_chain_fine_with_ascending_dispatch(self, maxwell):
        flags = self._flags(8)
        c = launch(chain_kernel, grid_size=8, wg_size=32, device=maxwell,
                   args=(flags,), order="ascending", resident_limit=2)
        assert c.completed_wgs == 8

    def test_spins_are_counted_and_bounded(self, maxwell):
        flags = self._flags(16)
        c = launch(chain_kernel, grid_size=16, wg_size=32, device=maxwell,
                   args=(flags,), order="ascending", resident_limit=4)
        # Parking means spins stay proportional to atomics x residents.
        assert 0 <= c.n_spins <= c.n_atomics * 4 + 16


class TestStream:
    def test_records_accumulate(self, maxwell):
        s = Stream(maxwell, seed=3)
        src = Buffer(np.arange(64, dtype=np.float32), "src")
        dst = Buffer(np.zeros(64, dtype=np.float32), "dst")
        s.launch(copy_kernel, grid_size=2, wg_size=32, args=(src, dst, 64))
        s.launch(copy_kernel, grid_size=2, wg_size=32, args=(src, dst, 64))
        assert s.num_launches == 2
        assert s.total().bytes_loaded == 2 * 64 * 4

    def test_reset(self, maxwell):
        s = Stream(maxwell)
        src = Buffer(np.arange(64, dtype=np.float32), "src")
        dst = Buffer(np.zeros(64, dtype=np.float32), "dst")
        s.launch(copy_kernel, grid_size=2, wg_size=32, args=(src, dst, 64))
        s.reset()
        assert s.num_launches == 0

    def test_accepts_device_name(self):
        s = Stream("kepler")
        assert s.device.name == "kepler"

    def test_empty_total(self, maxwell):
        assert Stream(maxwell).total().bytes_moved == 0


def noisy_signal_kernel(wg, flags, noise, rounds):
    """wg 0 waits on flags[1]; wg 1 hammers an unrelated flag slot
    ``rounds`` times before signalling."""
    if wg.group_index == 0:
        yield from wg.spin_until(flags, 1, lambda v: v != 0)
    else:
        for _ in range(rounds):
            yield from wg.atomic_add(noise, 3, 1)
        yield from wg.atomic_or(flags, 1, 1)


class TestTargetedWakeup:
    def _flags(self, n):
        return Buffer(np.zeros(n, dtype=np.int64), "flags")

    def test_unrelated_atomics_do_not_wake_spinners(self, maxwell):
        """A parked group watches one (buffer, index) slot; atomics on
        other slots must not wake it, so its failed polls stay O(1)
        instead of O(noise atomics)."""
        flags = self._flags(4)
        noise = self._flags(4)
        c = launch(noisy_signal_kernel, grid_size=2, wg_size=32,
                   device=maxwell, args=(flags, noise, 50),
                   order="ascending")
        assert c.completed_wgs == 2
        assert c.n_spins <= 1

    def test_same_buffer_other_index_does_not_wake(self, maxwell):
        flags = self._flags(8)
        c = launch(noisy_signal_kernel, grid_size=2, wg_size=32,
                   device=maxwell, args=(flags, flags, 50),
                   order="ascending")
        assert c.completed_wgs == 2
        assert c.n_spins <= 1

    def test_matching_atomic_wakes_spinner(self, maxwell):
        flags = self._flags(4)
        c = launch(noisy_signal_kernel, grid_size=2, wg_size=32,
                   device=maxwell, args=(flags, flags, 0),
                   order="ascending")
        assert c.completed_wgs == 2
        assert flags.data[1] == 1

    def test_parked_only_grid_still_deadlocks(self, maxwell):
        def forever(wg, flags):
            yield from wg.spin_until(flags, 1, lambda v: v != 0)

        flags = self._flags(4)
        with pytest.raises(DeadlockError):
            launch(forever, grid_size=1, wg_size=32, device=maxwell,
                   args=(flags,))
