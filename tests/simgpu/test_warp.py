"""Warp-level primitives: shuffle, ballot, popc and their scans."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LaunchError
from repro.simgpu import warp as W


class TestShuffle:
    def test_shfl_up_shifts_within_warp(self):
        v = np.arange(64)
        out = W.shfl_up(v, 1, warp_size=32)
        assert out[0] == 0          # lane 0 keeps its own value
        assert out[1] == 0
        assert out[31] == 30
        assert out[32] == 32        # warp boundary: lane 0 of warp 1
        assert out[33] == 32

    def test_shfl_up_zero_delta_is_identity(self):
        v = np.arange(32)
        assert np.array_equal(W.shfl_up(v, 0), v)

    def test_shfl_up_delta_past_warp_is_identity(self):
        v = np.arange(32)
        assert np.array_equal(W.shfl_up(v, 40), v)

    def test_shfl_up_rejects_negative_delta(self):
        with pytest.raises(LaunchError):
            W.shfl_up(np.arange(32), -1)

    def test_shfl_down(self):
        v = np.arange(64)
        out = W.shfl_down(v, 2, warp_size=32)
        assert out[0] == 2
        assert out[30] == 30  # top lanes keep their own value
        assert out[31] == 31
        assert out[32] == 34

    def test_shfl_idx_broadcasts(self):
        v = np.arange(64)
        out = W.shfl_idx(v, 5, warp_size=32)
        assert (out[:32] == 5).all()
        assert (out[32:] == 37).all()

    def test_shfl_idx_rejects_out_of_range_lane(self):
        with pytest.raises(LaunchError):
            W.shfl_idx(np.arange(32), 32)

    def test_rejects_non_multiple_width(self):
        with pytest.raises(LaunchError):
            W.shfl_up(np.arange(33), 1, warp_size=32)

    def test_rejects_2d_input(self):
        with pytest.raises(LaunchError):
            W.shfl_up(np.zeros((2, 32)), 1)


class TestBallotPopc:
    def test_ballot_bitmask(self):
        pred = np.zeros(32, dtype=bool)
        pred[0] = pred[3] = True
        masks = W.ballot(pred, 32)
        assert (masks == 0b1001).all()

    def test_ballot_per_warp(self):
        pred = np.concatenate([np.ones(32, dtype=bool), np.zeros(32, dtype=bool)])
        masks = W.ballot(pred, 32)
        assert masks[0] == np.uint64(0xFFFFFFFF)
        assert masks[32] == 0

    def test_ballot_wavefront64(self):
        pred = np.ones(64, dtype=bool)
        masks = W.ballot(pred, 64)
        assert masks[0] == np.uint64(0xFFFFFFFFFFFFFFFF)

    def test_ballot_rejects_oversized_warp(self):
        with pytest.raises(LaunchError):
            W.ballot(np.ones(128, dtype=bool), 128)

    def test_popc(self):
        v = np.asarray([0, 1, 0b1011, 0xFFFFFFFF], dtype=np.uint64)
        assert np.array_equal(W.popc(v), [0, 1, 3, 32])

    def test_lane_masks(self):
        lm = W.lane_masks(4)
        assert np.array_equal(lm, [0, 1, 3, 7])


class TestWarpScans:
    def test_binary_exclusive_scan_manual(self):
        pred = np.asarray([1, 0, 1, 1] + [0] * 28, dtype=bool)
        out = W.warp_binary_exclusive_scan(pred, 32)
        assert out[0] == 0 and out[1] == 1 and out[2] == 1 and out[3] == 2

    def test_inclusive_matches_exclusive_plus_pred(self):
        rng = np.random.default_rng(3)
        pred = rng.random(64) < 0.5
        incl = W.warp_binary_inclusive_scan(pred, 32)
        excl = W.warp_binary_exclusive_scan(pred, 32)
        assert np.array_equal(incl, excl + pred)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_scan_matches_cumsum_per_warp(self, bits_a, bits_b):
        pred = np.concatenate([
            np.asarray([(bits_a >> i) & 1 for i in range(32)], dtype=bool),
            np.asarray([(bits_b >> i) & 1 for i in range(32)], dtype=bool),
        ])
        out = W.warp_binary_exclusive_scan(pred, 32)
        for w in range(2):
            sl = pred[w * 32:(w + 1) * 32]
            expected = np.concatenate(([0], np.cumsum(sl)[:-1]))
            assert np.array_equal(out[w * 32:(w + 1) * 32], expected)

    def test_warp_sum(self):
        v = np.arange(64, dtype=np.int64)
        out = W.warp_sum(v, 32)
        assert (out[:32] == np.arange(32).sum()).all()
        assert (out[32:] == np.arange(32, 64).sum()).all()
