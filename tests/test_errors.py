"""The exception hierarchy and its diagnostic payloads."""

import pytest

from repro.errors import (
    DataRaceError,
    DeadlockError,
    LaunchError,
    ModelError,
    ReproError,
    ResourceError,
    SimulatorError,
    WorkloadError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (SimulatorError, DeadlockError, DataRaceError,
                    LaunchError, ResourceError, ModelError, WorkloadError):
            assert issubclass(exc, ReproError)

    def test_simulator_errors(self):
        for exc in (DeadlockError, DataRaceError, LaunchError, ResourceError):
            assert issubclass(exc, SimulatorError)

    def test_model_and_workload_are_not_simulator_errors(self):
        assert not issubclass(ModelError, SimulatorError)
        assert not issubclass(WorkloadError, SimulatorError)

    def test_one_except_clause_catches_the_library(self):
        with pytest.raises(ReproError):
            raise DeadlockError("boom")


class TestPayloads:
    def test_deadlock_carries_waiting_set_and_steps(self):
        e = DeadlockError("stuck", waiting=(3, 5), steps=42)
        assert e.waiting == (3, 5)
        assert e.steps == 42
        assert "stuck" in str(e)

    def test_deadlock_defaults(self):
        e = DeadlockError("stuck")
        assert e.waiting == () and e.steps == 0

    def test_data_race_carries_index_and_writer(self):
        e = DataRaceError("clobber", index=17, writer=4)
        assert e.index == 17 and e.writer == 4

    def test_data_race_defaults(self):
        e = DataRaceError("clobber")
        assert e.index == -1 and e.writer == -1
