"""The Numba shim: import safety, kernel unwrapping, and the graceful
compiled→vectorized degradation (warn once, count every fallback)."""

import subprocess
import sys
import warnings

import pytest

from repro.compiled.jit import (
    callable_kernel,
    compiled_available,
    is_jitted,
    njit,
    numba_available,
    pure_python_compiled,
)
from repro.simgpu.vectorized import (
    fallback_count,
    reset_fallback_state,
    resolve_backend,
)


@pytest.fixture
def no_numba(monkeypatch):
    """Force the 'Numba unusable, no pure-Python override' environment."""
    monkeypatch.setenv("NUMBA_DISABLE_JIT", "1")
    monkeypatch.delenv("REPRO_COMPILED_PYTHON", raising=False)
    reset_fallback_state()
    yield
    reset_fallback_state()


class TestAvailability:
    def test_numba_disable_jit_makes_numba_unavailable(self, monkeypatch):
        monkeypatch.setenv("NUMBA_DISABLE_JIT", "1")
        assert numba_available() is False

    def test_pure_python_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_PYTHON", "1")
        assert pure_python_compiled() is True
        assert compiled_available() is True
        monkeypatch.setenv("REPRO_COMPILED_PYTHON", "0")
        assert pure_python_compiled() is False

    def test_compiled_unavailable_without_either(self, no_numba):
        assert compiled_available() is False

    def test_import_never_requires_numba(self):
        # A fresh interpreter with Numba hard-disabled must import the
        # package (and resolve the backend) without raising.
        code = (
            "import repro.compiled, warnings\n"
            "from repro.simgpu.vectorized import resolve_backend\n"
            "with warnings.catch_warnings():\n"
            "    warnings.simplefilter('ignore')\n"
            "    print(resolve_backend('compiled'))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "NUMBA_DISABLE_JIT": "1", "PATH": ""},
            cwd="/root/repo",
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() in ("vectorized", "compiled")


class TestKernelForms:
    def test_njit_preserves_behavior(self):
        @njit
        def double(x):
            return 2 * x

        assert callable_kernel(double)(21) == 42

    def test_callable_kernel_unwraps_in_pure_python_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_PYTHON", "1")

        def plain(x):
            return x + 1

        if numba_available():
            import numba
            kernel = numba.njit(plain)
            assert is_jitted(kernel)
            assert callable_kernel(kernel) is kernel.py_func
        else:
            kernel = njit(plain)
            assert not is_jitted(kernel)
            assert callable_kernel(kernel) is kernel
        assert callable_kernel(kernel)(1) == 2

    def test_is_jitted_false_for_plain_function(self):
        assert is_jitted(lambda x: x) is False


class TestGracefulFallback:
    def test_resolve_compiled_degrades_and_warns_once(self, no_numba):
        with pytest.warns(RuntimeWarning, match="numba"):
            assert resolve_backend("compiled") == "vectorized"
        assert fallback_count() == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("jit") == "vectorized"
            assert resolve_backend("numba") == "vectorized"
        assert fallback_count() == 3

    def test_fallback_counter_metric(self, no_numba):
        from repro import obs
        with obs.tracing() as tracer, warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resolve_backend("compiled")
        assert tracer.metrics.counter("backend.fallback").value >= 1

    def test_no_fallback_in_pure_python_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_PYTHON", "1")
        reset_fallback_state()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("compiled") == "compiled"
        assert fallback_count() == 0

    def test_primitive_still_runs_when_compiled_degrades(self, no_numba):
        import numpy as np
        from repro.config import DSConfig
        from repro.primitives import ds_remove_if
        from repro.core.predicates import is_even
        values = np.arange(100, dtype=np.int64)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = ds_remove_if(values, is_even(),
                                  config=DSConfig(backend="compiled"))
        assert np.array_equal(result.output, values[values % 2 != 0])
