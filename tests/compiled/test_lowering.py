"""Predicate-chain lowering: the parse grammar, the probe verification
that refuses to trust lying names, the program cache, and agreement
between the kernel's scalar opcode interpreter and the NumPy oracle."""

import numpy as np
import pytest

from repro.compiled.kernels import _eval_op
from repro.compiled.jit import callable_kernel
from repro.compiled.lowering import (
    OP_ALWAYS_FALSE,
    OP_ALWAYS_TRUE,
    OP_EQUAL_TO,
    OP_GREATER_EQUAL,
    OP_IS_EVEN,
    OP_LESS_THAN,
    OP_NOT_EQUAL_TO,
    ChainProgram,
    _emulate,
    _probe_values,
    clear_program_cache,
    lower_chain,
    lower_predicate,
    program_cache_stats,
)
from repro.core.fused import FuseStage
from repro.core.predicates import (
    Predicate,
    always_false,
    always_true,
    equal_to,
    greater_equal,
    is_even,
    less_than,
    nonzero,
    not_equal_to,
)

ALL_FACTORIES = [
    ("is_even", is_even, OP_IS_EVEN, 0.0),
    ("always_true", always_true, OP_ALWAYS_TRUE, 0.0),
    ("always_false", always_false, OP_ALWAYS_FALSE, 0.0),
    ("nonzero", nonzero, OP_NOT_EQUAL_TO, 0.0),
    ("less_than(5)", lambda: less_than(5), OP_LESS_THAN, 5.0),
    ("greater_equal(-2)", lambda: greater_equal(-2), OP_GREATER_EQUAL, -2.0),
    ("equal_to(3)", lambda: equal_to(3), OP_EQUAL_TO, 3.0),
    ("not_equal_to(0)", lambda: not_equal_to(0), OP_NOT_EQUAL_TO, 0.0),
]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_program_cache()
    yield
    clear_program_cache()


class TestLowerPredicate:
    @pytest.mark.parametrize("name,factory,op,operand", ALL_FACTORIES)
    def test_whole_grammar_lowers(self, name, factory, op, operand):
        lowered = lower_predicate(factory(), np.int64)
        assert lowered is not None, name
        assert (lowered.op, lowered.negate, lowered.operand) == \
            (op, False, operand)

    @pytest.mark.parametrize("name,factory,op,operand", ALL_FACTORIES)
    def test_negation_unwraps(self, name, factory, op, operand):
        lowered = lower_predicate(~factory(), np.int64)
        assert lowered is not None and lowered.negate is True

    def test_double_negation_cancels(self):
        lowered = lower_predicate(~~is_even(), np.int64)
        assert lowered is not None and lowered.negate is False

    def test_unknown_name_returns_none(self):
        p = Predicate(lambda v: v > 0, "is_positive")
        assert lower_predicate(p, np.int64) is None

    def test_non_numeric_operand_returns_none(self):
        p = Predicate(lambda v: v < 0, "less_than(zero)")
        assert lower_predicate(p, np.int64) is None

    def test_lying_name_caught_by_probe(self):
        # Name says even, function computes odd: the probe must refuse.
        liar = Predicate(lambda v: (v.astype(np.int64) % 2) != 0, "is_even")
        assert lower_predicate(liar, np.int64) is None

    def test_lying_operand_caught_by_probe(self):
        liar = Predicate(lambda v: v < 99, "less_than(5)")
        assert lower_predicate(liar, np.int64) is None

    def test_raising_predicate_returns_none(self):
        def boom(v):
            raise RuntimeError("no probe for you")
        assert lower_predicate(Predicate(boom, "is_even"), np.int64) is None

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int16,
                                       np.int32, np.int64, np.uint32])
    def test_probe_vector_representable(self, dtype):
        probe = _probe_values(np.dtype(dtype))
        assert probe.dtype == np.dtype(dtype)
        assert probe.size >= 5


class TestOpcodeInterpreter:
    """The kernel's scalar ``_eval_op`` must agree with the NumPy
    oracle the probe verification uses — element by element."""

    OPS = [(OP_ALWAYS_TRUE, 0.0), (OP_ALWAYS_FALSE, 0.0),
           (OP_IS_EVEN, 0.0), (OP_LESS_THAN, 1.5), (OP_LESS_THAN, -2.0),
           (OP_GREATER_EQUAL, 0.0), (OP_EQUAL_TO, 2.0),
           (OP_NOT_EQUAL_TO, 0.0)]

    @pytest.mark.parametrize("dtype", [np.float64, np.float32,
                                       np.int64, np.int32, np.int16])
    def test_kernel_matches_oracle(self, dtype):
        ev = callable_kernel(_eval_op)
        vals = _probe_values(np.dtype(dtype))
        for op, operand in self.OPS:
            expected = _emulate(op, False, operand, vals)
            got = [bool(ev(op, operand, v)) for v in vals]
            assert got == expected.tolist(), (op, operand, dtype)

    def test_negative_modulo_parity(self):
        # Python's % on negative ints differs from C's; both the kernel
        # and the oracle must land on the same (Python) convention.
        ev = callable_kernel(_eval_op)
        for v in (-4, -3, -2, -1):
            assert bool(ev(OP_IS_EVEN, 0.0, v)) == (v % 2 == 0)


class TestLowerChain:
    def _stages(self):
        return [FuseStage("pred", less_than(25)), FuseStage("stencil"),
                FuseStage("pred", is_even())]

    def test_chain_shapes(self):
        program = lower_chain(self._stages(), np.int64)
        assert isinstance(program, ChainProgram)
        assert program.has_stencil is True
        assert program.pre_ops.shape == (1,)
        assert program.post_ops.shape == (1,)
        assert program.n_predicates == 2
        assert program.pre_ops.dtype == np.int64
        assert program.pre_negs.dtype == np.uint8
        assert program.pre_operands.dtype == np.float64

    def test_single_stage_chain_is_valid(self):
        # Unlike fused execution (>= 2 stages), the compiled backend
        # lowers plain single-predicate launches through the same path.
        program = lower_chain([FuseStage("pred", is_even())], np.int64)
        assert program is not None and not program.has_stencil
        assert (program.n_predicates, program.post_ops.size) == (1, 0)

    def test_stencil_only_chain(self):
        program = lower_chain([FuseStage("stencil")], np.int64)
        assert program is not None and program.has_stencil
        assert program.n_predicates == 0

    def test_two_stencils_rejected(self):
        stages = [FuseStage("stencil"), FuseStage("pred", is_even()),
                  FuseStage("stencil")]
        assert lower_chain(stages, np.int64) is None

    def test_unlowerable_stage_rejects_whole_chain(self):
        stages = [FuseStage("pred", less_than(25)),
                  FuseStage("pred", Predicate(lambda v: v % 3 == 0, "mod3"))]
        assert lower_chain(stages, np.int64) is None

    def test_cache_hit_on_repeat(self):
        stages = self._stages()
        lower_chain(stages, np.int64)
        hits0, misses0 = program_cache_stats()
        again = lower_chain(self._stages(), np.int64)
        hits1, misses1 = program_cache_stats()
        assert (hits1, misses1) == (hits0 + 1, misses0)
        assert again is lower_chain(stages, np.int64)

    def test_cache_keyed_by_dtype(self):
        lower_chain(self._stages(), np.int64)
        _, misses0 = program_cache_stats()
        lower_chain(self._stages(), np.float32)
        _, misses1 = program_cache_stats()
        assert misses1 == misses0 + 1

    def test_cache_hit_still_probes_the_real_predicate(self):
        # Same labels, different function: the label-keyed cache alone
        # would return the honest program; the re-probe must refuse.
        lower_chain([FuseStage("pred", is_even())], np.int64)
        liar = Predicate(lambda v: (v.astype(np.int64) % 2) != 0, "is_even")
        assert lower_chain([FuseStage("pred", liar)], np.int64) is None

    def test_cache_metrics_exported(self):
        from repro import obs
        with obs.tracing() as tracer:
            lower_chain(self._stages(), np.int64)
            lower_chain(self._stages(), np.int64)
        assert tracer.metrics.counter("compiled.program_cache.misses").value == 1
        assert tracer.metrics.counter("compiled.program_cache.hits").value == 1
