"""The top-level convenience API: sim and numpy backends agree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.config import DSConfig
from repro.core import is_even, less_than
from repro.errors import ReproError


class TestBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="backend"):
            repro.compact(np.zeros(4, dtype=np.float32), 0, backend="gpu")

    def test_return_result_flag(self, rng):
        a = rng.integers(0, 5, 200).astype(np.float32)
        result = repro.compact(a, 0, return_result=True)
        assert hasattr(result, "counters")
        assert result.num_launches == 1

    def test_numpy_backend_has_no_launches(self, rng):
        a = rng.integers(0, 5, 200).astype(np.float32)
        result = repro.compact(a, 0, return_result=True, backend="numpy")
        assert result.num_launches == 0
        assert result.extras["backend"] == "numpy"

    def test_partition_returns_split_point(self, rng):
        a = rng.integers(0, 10, 300).astype(np.float32)
        out, n_true = repro.partition(a, is_even(),
                                                 config=DSConfig(wg_size=32))
        assert n_true == int(is_even()(a).sum())
        assert out.size == a.size


class TestBackendEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 1500), seed=st.integers(0, 2**16))
    def test_compact(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 4, n).astype(np.float32)
        sim = repro.compact(a, 0,
                            config=DSConfig(
                                wg_size=32, coarsening=2, seed=seed))
        ref = repro.compact(a, 0, backend="numpy")
        assert np.array_equal(sim, ref)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 1500), threshold=st.integers(0, 10),
           seed=st.integers(0, 2**16))
    def test_select_family(self, n, threshold, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 10, n).astype(np.float32)
        pred = less_than(np.float32(threshold))
        assert np.array_equal(
            repro.remove_if(a, pred, config=DSConfig(wg_size=32, seed=seed)),
            repro.remove_if(a, pred, backend="numpy"))
        assert np.array_equal(
            repro.copy_if(a, pred, config=DSConfig(wg_size=32, seed=seed)),
            repro.copy_if(a, pred, backend="numpy"))

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 1200), seed=st.integers(0, 2**16))
    def test_unique(self, n, seed):
        rng = np.random.default_rng(seed)
        a = np.repeat(rng.integers(0, 8, n), rng.integers(1, 4, n))[:n]
        a = a.astype(np.float32)
        assert np.array_equal(
            repro.unique(a, config=DSConfig(wg_size=32, seed=seed)),
            repro.unique(a, backend="numpy"))

    @settings(max_examples=12, deadline=None)
    @given(rows=st.integers(1, 16), cols=st.integers(1, 24),
           pad=st.integers(0, 5), seed=st.integers(0, 2**16))
    def test_pad_unpad(self, rows, cols, pad, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 99, (rows, cols)).astype(np.float32)
        assert np.array_equal(
            repro.pad(m, pad, fill=0, config=DSConfig(wg_size=32, seed=seed)),
            repro.pad(m, pad, fill=0, backend="numpy"))
        if pad < cols:
            assert np.array_equal(
                repro.unpad(m, pad, config=DSConfig(wg_size=32, seed=seed)),
                repro.unpad(m, pad, backend="numpy"))

    @settings(max_examples=12, deadline=None)
    @given(n=st.integers(1, 1200), seed=st.integers(0, 2**16))
    def test_partition(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 10, n).astype(np.float32)
        sim_out, sim_n = repro.partition(a, is_even(),
                                                    config=DSConfig(
                                                        wg_size=32, seed=seed))
        ref_out, ref_n = repro.partition(a, is_even(), backend="numpy")
        assert sim_n == ref_n
        assert np.array_equal(sim_out, ref_out)
