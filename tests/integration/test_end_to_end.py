"""Cross-primitive integration flows on the simulator."""

import numpy as np
import pytest

import repro
from repro.config import DSConfig
from repro.core import is_even, nonzero
from repro.primitives import ds_pad, ds_stream_compact, ds_unique, ds_unpad
from repro.simgpu import Stream, get_device


class TestChainedPrimitives:
    def test_compact_then_unique_pipeline(self, rng):
        """A relational-style pipeline: drop NULLs, then collapse runs."""
        a = np.repeat(rng.integers(0, 20, 400), rng.integers(2, 4, 400))
        a = a[:800].astype(np.float32)
        assert a.size == 800
        a[rng.choice(800, 200, replace=False)] = 0.0
        step1 = repro.compact(a, 0.0, config=DSConfig(wg_size=32))
        step2 = repro.unique(step1, config=DSConfig(wg_size=32))
        expected = repro.unique(repro.compact(a, 0.0, backend="numpy"), backend="numpy")
        assert np.array_equal(step2, expected)

    def test_pad_compute_unpad_roundtrip(self, rng):
        """The paper's motivating workflow: pad for alignment, work on
        the padded matrix, unpad to compact storage."""
        m = rng.random((24, 30)).astype(np.float32)
        padded = repro.pad(m, 2, fill=0.0, config=DSConfig(wg_size=32))
        padded[:, :30] *= 2.0  # the "computation"
        restored = repro.unpad(padded, 2, config=DSConfig(wg_size=32))
        assert np.allclose(restored, 2.0 * m)

    def test_partition_then_compact_halves(self, rng):
        a = rng.integers(0, 10, 600).astype(np.float32)
        out, n_true = repro.partition(a, is_even(),
                                                 config=DSConfig(wg_size=32))
        evens, odds = out[:n_true], out[n_true:]
        assert is_even()(evens).all()
        assert not is_even()(odds).any()

    def test_sparse_vector_compaction_flow(self, rng):
        """Sparse linear-algebra style: extract non-zeros with their
        original order preserved."""
        v = np.zeros(1000, dtype=np.float32)
        nz = rng.choice(1000, 150, replace=False)
        v[nz] = rng.random(150).astype(np.float32) + 1.0
        kept = repro.copy_if(v, nonzero(), config=DSConfig(wg_size=32))
        assert np.array_equal(kept, v[np.sort(nz)])


class TestSharedStreamAccounting:
    def test_one_stream_accumulates_a_whole_pipeline(self, rng):
        stream = Stream(get_device("maxwell"), seed=7)
        m = rng.integers(0, 99, (16, 20)).astype(np.float32)
        ds_pad(m, 2, stream, config=DSConfig(wg_size=32, coarsening=2))
        a = rng.integers(0, 5, 500).astype(np.float32)
        ds_stream_compact(a, 0, stream, config=DSConfig(wg_size=32))
        ds_unique(a, stream, config=DSConfig(wg_size=32))
        assert stream.num_launches == 3
        total = stream.total()
        assert total.bytes_moved > 0
        assert total.completed_wgs > 0

    def test_priced_end_to_end(self, rng):
        """A recorded pipeline can be priced on any catalog device."""
        from repro.perfmodel import price_pipeline
        stream = Stream(get_device("maxwell"), seed=9)
        a = rng.integers(0, 5, 2000).astype(np.float32)
        ds_stream_compact(a, 0, stream,
                          config=DSConfig(wg_size=64, coarsening=2))
        for dev_name in ("maxwell", "hawaii", "cpu-mxpa"):
            cost = price_pipeline(stream.records, get_device(dev_name))
            assert cost.total_us > 0


class TestDtypeCoverage:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32,
                                       np.int64])
    def test_compaction_across_dtypes(self, rng, dtype):
        a = rng.integers(0, 5, 400).astype(dtype)
        out = repro.compact(a, 0, config=DSConfig(wg_size=32))
        assert out.dtype == dtype
        assert np.array_equal(out, a[a != 0])

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_padding_across_dtypes(self, rng, dtype):
        m = rng.random((8, 12)).astype(dtype)
        out = repro.pad(m, 3, fill=0, config=DSConfig(wg_size=32))
        assert out.dtype == dtype
        assert np.array_equal(out[:, :12], m)
