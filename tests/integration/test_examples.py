"""Every example script runs cleanly (they double as living docs)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout}\n{proc.stderr}")
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable: quickstart + 2 domains
