"""Figure 5's claim: with adjacent synchronization, work-groups overlap
their memory phases instead of serializing at kernel boundaries.

The paper's Figure 5 contrasts the DS timeline (loads and stores of
different work-groups interleave freely, with only a lightweight flag
hop between a group's own load and store phases) against the baseline's
kernel-relaunch timeline (a global barrier between every wave).  We
verify the schedule-level half of that claim: during one DS launch, the
simulator actually interleaves one group's loads with another group's
stores — something a kernel-per-wave execution cannot do.
"""

import numpy as np

from repro.core import pad_remap, run_regular_ds
from repro.simgpu import Buffer, Stream, get_device


class TraceBuffer(Buffer):
    """A buffer that logs (op, writer/reader) in execution order."""

    def __init__(self, data, name, log):
        super().__init__(data, name)
        self._log = log

    def gather(self, idx, *, reader_id=-1):
        self._log.append(("load", reader_id))
        return super().gather(idx, reader_id=reader_id)

    def scatter(self, idx, values, *, writer_id=-1):
        self._log.append(("store", writer_id))
        super().scatter(idx, values, writer_id=writer_id)


class TestPhaseOverlap:
    def test_ds_launch_interleaves_loads_and_stores(self, rng):
        log = []
        m = rng.integers(0, 99, (24, 32)).astype(np.float32)
        buf = TraceBuffer(np.zeros(24 * 36, dtype=np.float32), "m", log)
        buf.data[: 24 * 32] = m.reshape(-1)
        stream = Stream(get_device("maxwell"), seed=13, resident_limit=6)
        run_regular_ds(buf, pad_remap(24, 32, 4), stream,
                       wg_size=32, coarsening=2)
        # Result is still correct...
        assert np.array_equal(buf.data.reshape(24, 36)[:, :32], m)
        # ...and at least one load happened after some store: the phases
        # of different work-groups overlapped (no global barrier).
        first_store = next(i for i, (op, _) in enumerate(log) if op == "store")
        loads_after = [i for i, (op, _) in enumerate(log)
                       if op == "load" and i > first_store]
        assert loads_after, (
            "no load after the first store: execution degenerated to "
            "globally-barriered waves")

    def test_multi_kernel_baseline_never_overlaps_iterations(self, rng):
        """By contrast, Sung's scheme is a sequence of kernel launches;
        all traffic of iteration k precedes all traffic of k+1."""
        from repro.baselines import sung_pad

        m = rng.integers(0, 99, (16, 12)).astype(np.float32)
        r = sung_pad(m, 6, wg_size=32)
        # The per-iteration counters are disjoint records — the global
        # synchronization between iterations is structural.
        assert r.num_launches == len(r.extras["iterations"])
        assert r.num_launches > 1
