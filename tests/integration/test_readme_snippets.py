"""The README's code snippets actually behave as documented."""

import numpy as np

import repro
from repro.core import is_even


class TestQuickTaste:
    def test_compact_snippet(self):
        out = repro.compact(
            np.asarray([3., 0., 7., 0., 1.], dtype=np.float32), 0.0)
        assert np.array_equal(out, np.asarray([3., 7., 1.], dtype=np.float32))

    def test_partition_snippet(self):
        a = np.asarray([5, 2, 8, 1, 4, 7, 6, 3], dtype=np.float32)
        out, n_true = repro.partition(a, is_even())
        assert n_true == 4
        assert np.array_equal(out, [2, 8, 4, 6, 5, 1, 7, 3])

    def test_pad_snippet(self):
        m = np.arange(12, dtype=np.float32).reshape(3, 4)
        out = repro.pad(m, 2, fill=0)
        assert out.shape == (3, 6)
        assert np.array_equal(out[:, :4], m)
        assert (out[:, 4:] == 0).all()

    def test_dsconfig_pipeline_snippet(self):
        """The 'Tuning and batching' section example."""
        cfg = repro.DSConfig(wg_size=128, coarsening=4, backend="vectorized")
        a = np.asarray([4, 4, 0, 9, 9, 9, 2], dtype=np.int64)
        assert np.array_equal(repro.ds_unique(a, config=cfg).output,
                              [4, 0, 9, 2])
        assert np.array_equal(repro.ds("unique", a, config=cfg).output,
                              [4, 0, 9, 2])
        p = repro.Pipeline(config=cfg)
        f1 = p.compact(a, 0)
        f2 = p.unique(f1)
        assert np.array_equal(f2.output, [4, 9, 2])

    def test_return_result_carries_counters(self):
        a = np.asarray([3., 0., 7.], dtype=np.float32)
        r = repro.compact(a, 0.0, return_result=True)
        c = r.counters[0]
        assert c.bytes_loaded > 0 and c.bytes_stored > 0
        assert c.peak_resident >= 1

    def test_price_pipeline_snippet(self):
        from repro.perfmodel import price_pipeline
        from repro.simgpu import get_device
        a = np.arange(4096, dtype=np.float32)
        a[::3] = 0.0
        r = repro.compact(a, 0.0, return_result=True)
        for dev in ("maxwell", "hawaii"):
            assert price_pipeline(r.counters, get_device(dev)).total_us > 0

    def test_api_doctest_example(self):
        """The module docstring example of repro.api."""
        from repro.api import compact
        out = compact(np.asarray([3.0, 0.0, 7.0, 0.0, 1.0],
                                 dtype=np.float32), 0.0)
        assert np.array_equal(out, [3.0, 7.0, 1.0])

    def test_profile_doctest_example(self):
        from repro.perfmodel import profile_result
        r = repro.compact(np.asarray([1., 0., 2.], dtype=np.float32), 0.0,
                          return_result=True)
        report = profile_result(r, device="maxwell")
        assert sorted(report) == ["bytes_moved", "device", "gbps",
                                  "launches", "time_us", "useful_bytes"]
