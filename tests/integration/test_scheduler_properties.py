"""Property-based stress of the whole stack under random scheduling.

Hypothesis drives the launch configuration space — grid geometry,
residency, dispatch order, seeds — while race tracking is armed, so any
ordering bug in the synchronization layers shows up as a
``DataRaceError`` or a wrong result.  These are the tests that give the
in-place claim its teeth.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.config import DSConfig
from repro.core import less_than, pad_remap, run_regular_ds
from repro.core.irregular import run_irregular_ds
from repro.simgpu import Buffer, Stream


@st.composite
def launch_configs(draw):
    return {
        "wg_size": draw(st.sampled_from([32, 64, 128])),
        "coarsening": draw(st.integers(1, 4)),
        "order": draw(st.sampled_from(["ascending", "descending", "random"])),
        "resident_limit": draw(st.integers(2, 32)),
        "seed": draw(st.integers(0, 2**16)),
    }


class TestRandomSchedules:
    @settings(max_examples=25, deadline=None)
    @given(cfg=launch_configs(), rows=st.integers(2, 24),
           cols=st.integers(2, 40), pad=st.integers(1, 6))
    def test_padding_with_race_tracking(self, cfg, rows, cols, pad):
        rng = np.random.default_rng(cfg["seed"])
        m = rng.integers(0, 10_000, (rows, cols)).astype(np.float32)
        buf = Buffer(np.zeros(rows * (cols + pad), dtype=np.float32), "m")
        buf.data[: rows * cols] = m.reshape(-1)
        stream = Stream("maxwell", seed=cfg["seed"], order=cfg["order"],
                        resident_limit=cfg["resident_limit"])
        run_regular_ds(buf, pad_remap(rows, cols, pad), stream,
                       wg_size=cfg["wg_size"], coarsening=cfg["coarsening"],
                       race_tracking=True)
        got = buf.data.reshape(rows, cols + pad)[:, :cols]
        assert np.array_equal(got, m)

    @settings(max_examples=25, deadline=None)
    @given(cfg=launch_configs(), n=st.integers(1, 3000),
           threshold=st.integers(0, 10))
    def test_compaction_with_race_tracking(self, cfg, n, threshold):
        rng = np.random.default_rng(cfg["seed"])
        a = rng.integers(0, 10, n).astype(np.float32)
        pred = less_than(np.float32(threshold))
        buf = Buffer(a, "a")
        stream = Stream("maxwell", seed=cfg["seed"], order=cfg["order"],
                        resident_limit=cfg["resident_limit"])
        r = run_irregular_ds(buf, pred, stream, wg_size=cfg["wg_size"],
                             coarsening=cfg["coarsening"],
                             race_tracking=True)
        expected = a[pred(a)]
        assert r.n_true == expected.size
        assert np.array_equal(buf.data[: r.n_true], expected)

    @settings(max_examples=15, deadline=None)
    @given(cfg=launch_configs(), n=st.integers(1, 2000))
    def test_unique_under_random_schedules(self, cfg, n):
        rng = np.random.default_rng(cfg["seed"])
        a = rng.integers(0, 5, n).astype(np.float32)
        stream = Stream("maxwell", seed=cfg["seed"], order=cfg["order"],
                        resident_limit=cfg["resident_limit"])
        out = repro.unique(a, stream=stream,
                           config=DSConfig(
                               wg_size=cfg["wg_size"], coarsening=cfg["coarsening"]))
        ref = repro.unique(a, backend="numpy")
        assert np.array_equal(out, ref)

    @settings(max_examples=10, deadline=None)
    @given(seed_a=st.integers(0, 2**16), seed_b=st.integers(0, 2**16))
    def test_results_schedule_invariant(self, seed_a, seed_b):
        """Different legal schedules, identical results — determinism of
        outcome despite non-determinism of execution."""
        rng = np.random.default_rng(7)
        a = rng.integers(0, 10, 2000).astype(np.float32)
        out_a = repro.compact(a, 0.0, stream=Stream("maxwell", seed=seed_a),
                                                    config=DSConfig(
                                                        wg_size=64))
        out_b = repro.compact(a, 0.0, stream=Stream("maxwell", seed=seed_b),
                                                    config=DSConfig(
                                                        wg_size=64))
        assert np.array_equal(out_a, out_b)
