"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table1" in out

    def test_single_figure(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "coarsening" in out
        assert "12000x11999" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Padding" in out and "speedup" in out

    def test_cpu(self, capsys):
        assert main(["cpu"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "GTX 980" in out and "Hawaii" in out

    def test_unknown_experiment_exits_with_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["fig99"])
        assert exc.value.code == 2

    @pytest.mark.slow
    def test_all(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for fid in ("fig2", "fig6", "fig12", "fig13", "fig16", "fig19"):
            assert f"== {fid}" in out
        assert "Table I" in out
