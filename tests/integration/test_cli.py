"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table1" in out

    def test_list_mentions_trace_subcommand(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "trace <experiment> -o trace.json" in out
        assert "fig13" in out

    def test_single_figure(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "coarsening" in out
        assert "12000x11999" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Padding" in out and "speedup" in out

    def test_cpu(self, capsys):
        assert main(["cpu"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "GTX 980" in out and "Hawaii" in out

    def test_unknown_experiment_exits_with_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["fig99"])
        assert exc.value.code == 2

    def test_trace_exports_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs.export import validate_chrome_trace

        path = tmp_path / "trace.json"
        assert main(["trace", "fig13", "-o", str(path),
                     "--elements", "4096", "--check"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        procs = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["name"] == "process_name"}
        assert procs == {"simulated", "vectorized"}
        threads = {e["args"]["name"] for e in doc["traceEvents"]
                   if e["name"] == "thread_name"}
        assert "host" in threads and "wg 0" in threads

    def test_trace_single_backend_jsonl(self, capsys, tmp_path):
        import json

        path = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        assert main(["trace", "fig08", "-o", str(path),
                     "--backend", "vectorized", "--mode", "spans",
                     "--elements", "4096", "--jsonl", str(jsonl),
                     "--check"]) == 0
        records = [json.loads(line)
                   for line in jsonl.read_text().splitlines()]
        assert any(r["type"] == "span" and r["cat"] == "phase"
                   for r in records)

    def test_trace_unknown_experiment_exits_with_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "fig99"])
        assert exc.value.code == 2

    @pytest.mark.slow
    def test_all(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for fid in ("fig2", "fig6", "fig12", "fig13", "fig16", "fig19"):
            assert f"== {fid}" in out
        assert "Table I" in out
