"""Large-scale smoke tests: the kernels at ~1M elements.

Most tests run at a few thousand elements; these catch scaling bugs
(index-dtype overflow, partial-final-tile interactions at deep
coarsening, flag-chain length) that only appear with realistic grids.
"""

import numpy as np
import pytest

import repro
from repro.config import DSConfig
from repro.core import less_than
from repro.reference import unique_ref
from repro.workloads import compaction_array, runs_array

N = 1 << 20  # 1M elements


@pytest.mark.slow
class TestLargeScale:
    def test_compaction_1m(self):
        a = compaction_array(N, 0.5, seed=1)
        out = repro.compact(a, 0.0, config=DSConfig(wg_size=256))
        assert out.size == N - N // 2
        assert np.array_equal(out, a[a != 0.0])

    def test_unique_1m(self):
        a = runs_array(N, 0.3, seed=2)
        out = repro.unique(a, config=DSConfig(wg_size=256))
        assert np.array_equal(out, unique_ref(a))

    def test_padding_1k_square(self):
        m = np.arange(1000 * 999, dtype=np.float32).reshape(1000, 999)
        padded = repro.pad(m, 1, fill=-1.0, config=DSConfig(wg_size=256))
        assert padded.shape == (1000, 1000)
        assert np.array_equal(padded[:, :999], m)
        assert (padded[:, 999] == -1.0).all()

    def test_partition_1m(self):
        rng = np.random.default_rng(3)
        a = rng.random(N).astype(np.float32)
        out, n_true = repro.partition(a, less_than(np.float32(0.25)),
                                                              config=DSConfig(
                                                                  wg_size=256))
        assert abs(n_true - N // 4) < N // 50
        assert (out[:n_true] < 0.25).all()
        assert (out[n_true:] >= 0.25).all()

    def test_deep_coarsening_partial_tile(self):
        # A size chosen so the last tile is one element.
        n = 36 * 256 * 100 + 1
        a = compaction_array(n, 0.5, seed=4)
        out = repro.compact(a, 0.0,
                            config=DSConfig(wg_size=256, coarsening=36))
        assert np.array_equal(out, a[a != 0.0])
