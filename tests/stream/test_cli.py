"""The ``python -m repro stream`` smoke CLI, per-shard trace analysis
and the ``stream`` bench-index rows."""

import json

import numpy as np
import pytest

from repro import DSConfig, obs
from repro.obs.analyze import analyze, render_text
from repro.obs.benchindex import row_from_stream_run
from repro.obs.export import export_chrome_trace
from repro.stream import ArraySource, stream_run
from repro.stream.cli import build_parser, main


class TestStreamCli:
    def test_check_exit_zero(self, tmp_path):
        trace = tmp_path / "trace.json"
        bench = tmp_path / "bench"
        bench.mkdir()
        rc = main(["--check", "--elements", "8192",
                   "--shard-elems", "1024", "--workers", "2",
                   "--file", str(tmp_path / "in.dat"),
                   "--trace", str(trace),
                   "--bench-dir", str(bench)])
        assert rc == 0
        assert trace.exists()
        doc = json.loads((bench / "BENCH_INDEX.json").read_text())
        stream_rows = [r for r in doc["rows"] if r["backend"] == "stream"]
        assert len(stream_rows) >= 1
        for row in stream_rows:
            assert row["shards"] >= 4
            assert row["elements"] == 8192
            assert row["throughput_meps"] > 0

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.shard_elems < args.elements  # multi-shard by default
        assert args.workers >= 1

    def test_bad_geometry_fails(self, tmp_path):
        # A shard budget of 0 must surface the config error, not crash.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--shard-elems"])  # missing value


class TestAnalyzeStream:
    @pytest.fixture
    def report(self, rng, tmp_path):
        values = rng.integers(0, 9, 3000).astype(np.float32)
        config = DSConfig(shard_elems=512)
        tracer = obs.enable("spans")
        try:
            stream_run([("compact", 0.0), "unique"], ArraySource(values),
                       config=config)
        finally:
            obs.disable()
        path = tmp_path / "trace.json"
        export_chrome_trace({"stream": tracer}, path)
        return analyze(str(path))

    def test_per_shard_attribution(self, report):
        streams = [p["stream"] for p in report["processes"]
                   if p.get("stream")]
        assert len(streams) == 1
        st = streams[0]
        assert st["n_shards"] == 6  # ceil(3000 / 512)
        assert st["n_runs"] == 1
        for shard in st["shards"]:
            for key in ("load_us", "compute_us", "store_us", "total_us"):
                assert shard[key] >= 0.0
            assert shard["total_us"] == pytest.approx(
                shard["load_us"] + shard["compute_us"] + shard["store_us"])
        assert sum(st["shares"].values()) == pytest.approx(1.0)

    def test_render_mentions_stream_section(self, report):
        text = render_text(report)
        assert "stream pipeline" in text
        assert "shard" in text


class TestBenchRow:
    def test_row_fields(self):
        row = row_from_stream_run(
            bench_id="stream_compact_unique/seq",
            ops="compact+unique", elements=1 << 18, dtype="float32",
            wall_s=0.25,
            extras={"shards": 8, "shard_elems": 1 << 15, "n_workers": 0,
                    "double_buffer": True, "boundary_drops": 3})
        assert row["backend"] == "stream"
        assert row["elements"] == 1 << 18
        assert row["throughput_meps"] == pytest.approx(
            (1 << 18) / 0.25 / 1e6)
        assert row["shards"] == 8
        assert row["n_workers"] == 0
        assert row["boundary_drops"] == 3
        assert "timestamp" in row and "rev" in row
