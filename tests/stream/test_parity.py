"""Shard-boundary parity: streamed == monolithic, byte for byte.

The acceptance bar of the streaming engine: running any streamable
primitive shard-by-shard (with the inter-shard flag/ledger protocol
carrying offsets and unique's boundary values) produces **exactly** the
output of the monolithic run over the whole array, on both execution
backends — including shard sizes that land in the middle of a run of
kept/duplicate elements.
"""

import warnings

import numpy as np
import pytest

from repro import DSConfig, ds
from repro.core.predicates import is_even, less_than
from repro.stream import ArraySource, stream_run
from repro.stream.engine import normalize_chain

BACKENDS = ["simulated", "vectorized"]


def _cfg(backend, shard_elems):
    return DSConfig(wg_size=32, coarsening=2, backend=backend,
                    shard_elems=shard_elems)


def _monolithic(chain, values, config):
    out = np.asarray(values)
    result = None
    for desc, args, kwargs in normalize_chain(chain):
        result = desc.runner(out, *args, config=config, **kwargs)
        out = result.output
    return result


def _streamed(chain, values, config, **kw):
    # ArraySource is in-core; stream_run itself streams anything.
    return stream_run(chain, ArraySource(np.asarray(values)),
                      config=config, **kw)


def _workload(rng, n=1400):
    values = rng.integers(0, 9, n).astype(np.float32)
    # Duplicate runs so unique has shard-boundary work.
    starts = rng.integers(0, n - 6, n // 40)
    for s in starts:
        values[s:s + 6] = values[s]
    return values


@pytest.mark.parametrize("backend", BACKENDS)
class TestPrimitiveParity:
    @pytest.mark.parametrize("chain", [
        [("compact", 0.0)],
        [("remove_if", less_than(4.0))],
        [("copy_if", is_even())],
        ["unique"],
        [("partition", less_than(5.0))],
    ], ids=["compact", "remove_if", "copy_if", "unique", "partition"])
    def test_streamed_matches_monolithic(self, rng, backend, chain):
        values = _workload(rng)
        config = _cfg(backend, shard_elems=257)  # prime: boundaries mid-run
        ref = _monolithic(chain, values, config)
        res = _streamed(chain, values, config)
        np.testing.assert_array_equal(res.output, ref.output)
        assert res.output.dtype == ref.output.dtype
        assert res.extras["streamed"] and res.extras["shards"] > 1
        for key in ("n_kept", "n_true"):
            if key in ref.extras:
                assert res.extras[key] == ref.extras[key]
        if "n_removed" in ref.extras:
            assert res.extras["n_removed"] == ref.extras["n_removed"]

    def test_chain_compact_unique(self, rng, backend):
        values = _workload(rng)
        config = _cfg(backend, shard_elems=193)
        chain = [("compact", 0.0), "unique"]
        ref = _monolithic(chain, values, config)
        res = _streamed(chain, values, config)
        np.testing.assert_array_equal(res.output, ref.output)
        assert res.extras["n_kept"] == ref.extras["n_kept"]
        assert res.extras["n_removed"] == ref.extras["n_removed"]

    def test_pad_row_aligned(self, rng, backend):
        matrix = rng.integers(0, 99, (30, 8)).astype(np.float32)
        config = _cfg(backend, shard_elems=70)  # 8 rows? -> 64 elems/shard
        ref = _monolithic([("pad", 3)], matrix, config)
        res = _streamed([("pad", 3)], matrix, config)
        assert res.output.shape == ref.output.shape
        # Fill cells beyond each row's data are unspecified unless
        # fill= is passed; compare the data columns.
        np.testing.assert_array_equal(res.output[:, :8], ref.output[:, :8])
        assert res.extras["shards"] > 1

    def test_unpad_row_aligned(self, rng, backend):
        matrix = rng.integers(0, 99, (24, 10)).astype(np.float32)
        config = _cfg(backend, shard_elems=65)
        ref = _monolithic([("unpad", 4)], matrix, config)
        res = _streamed([("unpad", 4)], matrix, config)
        np.testing.assert_array_equal(res.output, ref.output)


class TestBoundaryCases:
    def test_unique_boundary_mid_run(self):
        # One long run of equal values crossing several shard
        # boundaries: every boundary must drop its duplicate head.
        values = np.full(300, 7.0, dtype=np.float32)
        config = _cfg("vectorized", shard_elems=61)
        res = _streamed(["unique"], values, config)
        np.testing.assert_array_equal(res.output, [7.0])
        assert res.extras["shards"] == 5
        assert res.extras["boundary_drops"] == 4
        assert res.extras["n_kept"] == 1
        assert res.extras["n_removed"] == 299

    def test_unique_boundary_crafted_run(self, rng):
        values = rng.integers(0, 20, 500).astype(np.float32)
        values[115:140] = 3.0  # run straddling the 128-elem boundary
        config = _cfg("vectorized", shard_elems=128)
        ref = _monolithic(["unique"], values, config)
        res = _streamed(["unique"], values, config)
        np.testing.assert_array_equal(res.output, ref.output)
        assert res.extras["boundary_drops"] >= 1

    def test_shard_entirely_removed(self):
        values = np.arange(1, 401, dtype=np.float32)
        values[100:200] = 0.0  # shard 1 (of 100-elem shards) all removed
        config = _cfg("vectorized", shard_elems=100)
        ref = _monolithic([("compact", 0.0)], values, config)
        res = _streamed([("compact", 0.0)], values, config)
        np.testing.assert_array_equal(res.output, ref.output)
        assert res.extras["n_kept"] == 300

    def test_empty_input(self):
        config = _cfg("vectorized", shard_elems=64)
        res = _streamed([("compact", 0.0)],
                        np.empty(0, dtype=np.float32), config)
        assert res.output.size == 0
        assert res.extras["n_kept"] == 0

    def test_iterator_source_parity(self, rng):
        values = _workload(rng, 900)
        config = _cfg("vectorized", shard_elems=173)
        chunks = iter(np.array_split(values, 7))
        ref = _monolithic([("compact", 0.0), "unique"], values, config)
        res = stream_run([("compact", 0.0), "unique"], chunks,
                         config=config)
        np.testing.assert_array_equal(res.output, ref.output)
        assert res.extras["shards"] > 1


class TestCounterConsistency:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_streamed_counters_match_per_shard_runs(self, rng, backend):
        """The streamed run launches exactly the kernels the per-shard
        monolithic runs would: same names, same bytes moved, in shard
        order — streaming adds orchestration, never kernel work."""
        from repro.primitives.common import resolve_stream
        from repro.stream import plan_shards

        values = _workload(rng, 800)
        config = _cfg(backend, shard_elems=211)
        res = _streamed([("compact", 0.0)], values, config)
        expected = []
        stream = resolve_stream(None, seed=config.seed)
        for shard in plan_shards(values.size, 211):
            r = ds("compact", values[shard.lo:shard.hi], 0.0,
                   stream=stream, config=config)
            expected.extend(r.counters)
        assert len(res.counters) == len(expected)
        for got, want in zip(res.counters, expected):
            assert got.kernel_name == want.kernel_name
            assert got.bytes_moved == want.bytes_moved

    def test_fallback_warns_and_matches(self, rng):
        """A chain with a non-streamable op falls back to one
        monolithic run, with a warning naming the reason."""
        values = rng.integers(0, 9, 300).astype(np.float32)
        config = _cfg("vectorized", shard_elems=64)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = _streamed([("insert_gap", 10, 5)], values, config)
        assert any("shard-boundary protocol" in str(w.message)
                   for w in caught)
        ref = _monolithic([("insert_gap", 10, 5)], values, config)
        np.testing.assert_array_equal(res.output, ref.output)
        assert res.extras["streamed"] is False
        assert res.extras["shards"] == 1
