"""Shard planning and the inter-shard offset ledger.

The ledger is the shard-level instance of the paper's adjacent
synchronization: each shard publishes its local count (AGGREGATE) and
resolves its exclusive prefix by walking predecessors until one holds a
PREFIX — the decoupled-lookback state machine of
:mod:`repro.collectives.lookback` lifted to shard boundaries.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.stream import Shard, ShardLedger, plan_shards


class TestPlanShards:
    def test_contiguous_half_open_cover(self):
        shards = plan_shards(100, 32)
        assert [(s.lo, s.hi) for s in shards] == \
            [(0, 32), (32, 64), (64, 96), (96, 100)]
        assert [s.index for s in shards] == [0, 1, 2, 3]
        assert sum(s.n_elems for s in shards) == 100

    def test_single_shard_when_fits(self):
        shards = plan_shards(10, 1000)
        assert len(shards) == 1 and shards[0] == Shard(0, 0, 10)

    def test_row_alignment(self):
        # 7 rows of 6 elems, shard budget 20 -> 18 elems (3 rows) per shard.
        shards = plan_shards(42, 20, row_elems=6)
        assert all(s.lo % 6 == 0 and s.hi % 6 == 0 for s in shards)
        assert shards[0].n_elems == 18

    def test_budget_below_one_row_raises(self):
        with pytest.raises(ReproError, match="REPRO_SHARD_ELEMS"):
            plan_shards(42, 4, row_elems=6)

    def test_invalid_shard_elems_raises(self):
        with pytest.raises(ReproError, match="REPRO_SHARD_ELEMS"):
            plan_shards(10, 0)


class TestShardLedger:
    def test_out_of_order_publish_matches_cumsum(self, rng):
        counts = [int(c) for c in rng.integers(0, 50, 12)]
        ledger = ShardLedger(len(counts))
        order = rng.permutation(len(counts))
        for k in order:
            ledger.publish(int(k), counts[int(k)])
        offsets = [ledger.resolve(k) for k in range(len(counts))]
        expected = np.concatenate([[0], np.cumsum(counts)[:-1]])
        np.testing.assert_array_equal(offsets, expected)
        assert ledger.total() == sum(counts)

    def test_try_resolve_spins_on_invalid_predecessor(self):
        ledger = ShardLedger(3)
        ledger.publish(2, 5)
        assert ledger.try_resolve(2) is None  # predecessors still INVALID
        assert ledger.n_spins >= 1
        ledger.publish(0, 1)
        ledger.publish(1, 2)
        assert ledger.try_resolve(2) == 3

    def test_prefix_short_circuits_lookback(self):
        ledger = ShardLedger(4)
        for k, c in enumerate([3, 4, 5, 6]):
            ledger.publish(k, c)
        assert ledger.resolve(1) == 3  # publishes shard 1's PREFIX
        # Resolving 2 now walks only to shard 1's PREFIX, not to 0.
        assert ledger.resolve(2) == 7
        assert ledger.resolve(3) == 12

    def test_double_publish_raises(self):
        ledger = ShardLedger(2)
        ledger.publish(0, 1)
        with pytest.raises(ReproError):
            ledger.publish(0, 1)

    def test_grow_for_unsized_streams(self):
        ledger = ShardLedger(1)
        ledger.publish(0, 2)
        ledger.grow(2)
        ledger.publish(1, 3)
        ledger.publish(2, 4)
        assert [ledger.resolve(k) for k in range(3)] == [0, 2, 5]
        assert ledger.total() == 9
