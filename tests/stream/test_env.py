"""The ``REPRO_SHARD_*`` environment knobs.

Both config front doors (:meth:`DSConfig.from_env` and
:meth:`ServeConfig.from_env`) must accept the shard knobs and reject
malformed values with an error *naming the variable* — an operator
reading the traceback should know which knob to fix without opening
the source.
"""

import pytest

from repro import DSConfig
from repro.serve import ServeConfig


class TestDSConfigShardKnobs:
    def test_defaults_when_unset(self):
        cfg = DSConfig.from_env(environ={})
        assert cfg.shard_elems == DSConfig().shard_elems
        assert cfg.shard_workers == 0
        assert cfg.double_buffer is True

    def test_valid_values(self):
        cfg = DSConfig.from_env(environ={
            "REPRO_SHARD_ELEMS": "4096",
            "REPRO_SHARD_WORKERS": "3",
            "REPRO_SHARD_DOUBLE_BUFFER": "0",
        })
        assert cfg.shard_elems == 4096
        assert cfg.shard_workers == 3
        assert cfg.double_buffer is False

    def test_non_integer_elems_names_variable(self):
        with pytest.raises(ValueError, match="REPRO_SHARD_ELEMS"):
            DSConfig.from_env(environ={"REPRO_SHARD_ELEMS": "abc"})

    def test_zero_elems_names_variable(self):
        with pytest.raises(ValueError, match="REPRO_SHARD_ELEMS"):
            DSConfig.from_env(environ={"REPRO_SHARD_ELEMS": "0"})

    def test_negative_workers_names_variable(self):
        with pytest.raises(ValueError, match="REPRO_SHARD_WORKERS"):
            DSConfig.from_env(environ={"REPRO_SHARD_WORKERS": "-1"})

    def test_bad_bool_names_variable(self):
        with pytest.raises(ValueError, match="REPRO_SHARD_DOUBLE_BUFFER"):
            DSConfig.from_env(
                environ={"REPRO_SHARD_DOUBLE_BUFFER": "maybe"})

    def test_whitespace_is_unset(self):
        cfg = DSConfig.from_env(environ={"REPRO_SHARD_ELEMS": "  "})
        assert cfg.shard_elems == DSConfig().shard_elems


class TestServeConfigShardKnobs:
    def test_shard_workers_accepted(self):
        cfg = ServeConfig.from_env(environ={"REPRO_SHARD_WORKERS": "2"})
        assert cfg.shard_workers == 2

    def test_default_zero(self):
        assert ServeConfig.from_env(environ={}).shard_workers == 0

    def test_non_integer_names_variable(self):
        with pytest.raises(ValueError, match="REPRO_SHARD_WORKERS"):
            ServeConfig.from_env(environ={"REPRO_SHARD_WORKERS": "two"})

    def test_negative_names_variable(self):
        with pytest.raises(ValueError, match="REPRO_SHARD_WORKERS"):
            ServeConfig.from_env(environ={"REPRO_SHARD_WORKERS": "-2"})
