"""The unified ``repro.Future`` interface across all three surfaces.

``repro.ds`` (eager result), ``Pipeline.enqueue`` (deferred batch) and
``Server.submit`` (async serve) historically returned three unrelated
handle types.  They now all satisfy one ABC with one extras schema, so
result-draining code is surface-agnostic.
"""

import numpy as np
import pytest

import repro
from repro import DSConfig, EXTRAS_DEFAULTS, Future, Pipeline, ds
from repro.futures import normalized_extras
from repro.serve import ServeConfig, Server


@pytest.fixture
def data(rng):
    return rng.integers(0, 5, 200).astype(np.float64)


class TestOneInterface:
    def test_ds_result_is_a_future(self, data):
        res = ds("compact", data, 0.0)
        assert isinstance(res, Future)
        assert res.done
        assert res.result() is res.result()  # idempotent
        np.testing.assert_array_equal(res.output, data[data != 0.0])

    def test_pipeline_future_is_a_future(self, data):
        pipe = Pipeline()
        fut = pipe.enqueue("compact", data, 0.0)
        assert isinstance(fut, Future)
        out = fut.result(timeout=5.0).output  # timeout accepted
        np.testing.assert_array_equal(out, data[data != 0.0])
        assert fut.done

    def test_serve_future_is_a_future(self, data):
        with Server(ServeConfig(max_wait_ms=1.0, num_workers=1)) as srv:
            fut = srv.submit("compact", data, 0.0)
            assert isinstance(fut, Future)
            out = fut.result(timeout=5.0).output
        np.testing.assert_array_equal(out, data[data != 0.0])

    def test_surface_agnostic_drain(self, data):
        def drain(fut: repro.Future):
            assert fut.done or fut.result() is not None
            return fut.output

        pipe = Pipeline()
        with Server(ServeConfig(max_wait_ms=1.0, num_workers=1)) as srv:
            handles = [
                ds("compact", data, 0.0),
                pipe.enqueue("compact", data, 0.0),
                srv.submit("compact", data, 0.0),
            ]
            outs = [drain(f) for f in handles]
        for out in outs[1:]:
            np.testing.assert_array_equal(out, outs[0])


class TestSharedExtrasSchema:
    def test_defaults_keys(self):
        assert set(EXTRAS_DEFAULTS) == {"degraded", "shards", "request_id"}
        assert EXTRAS_DEFAULTS["degraded"] is False
        assert EXTRAS_DEFAULTS["shards"] == 1
        assert EXTRAS_DEFAULTS["request_id"] is None

    def test_normalized_extras_fills_missing(self):
        merged = normalized_extras({"n_kept": 3})
        assert merged["n_kept"] == 3
        assert merged["degraded"] is False and merged["shards"] == 1

    @pytest.mark.parametrize("surface", ["ds", "pipeline", "serve"])
    def test_every_surface_has_schema_keys(self, data, surface):
        # `.extras` stays the raw producer dict on an eager result (old
        # assertions depend on it); `.normalized_extras` is the shared
        # schema on every surface.
        if surface == "ds":
            fut = ds("compact", data, 0.0)
        elif surface == "pipeline":
            fut = Pipeline().enqueue("compact", data, 0.0)
        else:
            with Server(ServeConfig(max_wait_ms=1.0, num_workers=1)) as srv:
                fut = srv.submit("compact", data, 0.0)
                fut.result(timeout=5.0)
        extras = fut.normalized_extras
        for key in EXTRAS_DEFAULTS:
            assert key in extras, (surface, key)

    def test_serve_sets_request_id(self, data):
        with Server(ServeConfig(max_wait_ms=1.0, num_workers=1)) as srv:
            extras = srv.submit("compact", data, 0.0).extras
        assert extras["request_id"] is not None
        assert extras["degraded"] is False

    def test_streamed_ds_sets_shards(self, tmp_path, data):
        path = tmp_path / "in.dat"
        data.tofile(path)
        mm = np.memmap(path, dtype=np.float64, mode="r")
        config = DSConfig(shard_elems=64)
        fut = ds("compact", mm, 0.0, config=config)
        assert fut.extras["shards"] > 1
        assert fut.normalized_extras["degraded"] is False

    def test_reexports(self):
        assert repro.Future is Future
        assert repro.EXTRAS_DEFAULTS is EXTRAS_DEFAULTS
