"""The multi-process worker pool: shared-memory shards, one per process.

Pool execution must be observably identical to sequential streaming —
same bytes, same extras schema, same per-shard kernel counters — with
``n_workers`` the only difference.  Where the pool cannot honor the
protocol (unique not last, unsized sources, no fork), it must *fall
back loudly* to the sequential path, never silently corrupt.
"""

import warnings

import numpy as np
import pytest

from repro import DSConfig
from repro.core.predicates import less_than
from repro.stream import MemmapSource, stream_run
from repro.stream.pool import fork_unavailable_reason

pytestmark = pytest.mark.skipif(
    fork_unavailable_reason() is not None,
    reason=f"fork start method unavailable: {fork_unavailable_reason()}")


def _cfg(shard_elems, **kw):
    return DSConfig(wg_size=32, coarsening=2, backend="vectorized",
                    shard_elems=shard_elems, **kw)


@pytest.fixture
def mm(rng, tmp_path):
    values = rng.integers(0, 12, 2000).astype(np.float32)
    starts = rng.integers(0, 1990, 40)
    for s in starts:
        values[s:s + 8] = values[s]
    path = tmp_path / "pool_in.dat"
    values.tofile(path)
    return np.memmap(path, dtype=np.float32, mode="r")


class TestPoolParity:
    def test_memmap_chain_matches_sequential(self, mm):
        config = _cfg(307)
        chain = [("compact", 0.0), "unique"]
        seq = stream_run(chain, MemmapSource(mm), config=config, workers=0)
        par = stream_run(chain, MemmapSource(mm), config=config, workers=3)
        np.testing.assert_array_equal(par.output, seq.output)
        assert par.extras["n_workers"] == 3
        assert seq.extras["n_workers"] == 0
        assert par.extras["shards"] == seq.extras["shards"] > 1
        assert par.extras["n_kept"] == seq.extras["n_kept"]
        assert par.extras["n_removed"] == seq.extras["n_removed"]
        assert par.extras["boundary_drops"] == seq.extras["boundary_drops"]

    def test_counters_identical_to_sequential(self, mm):
        config = _cfg(401)
        seq = stream_run([("compact", 0.0)], MemmapSource(mm),
                         config=config, workers=0)
        par = stream_run([("compact", 0.0)], MemmapSource(mm),
                         config=config, workers=2)
        assert len(par.counters) == len(seq.counters)
        for a, b in zip(par.counters, seq.counters):
            assert a.kernel_name == b.kernel_name
            assert a.bytes_moved == b.bytes_moved

    def test_in_core_input_through_scratch_shm(self, rng):
        values = rng.integers(0, 30, 1500).astype(np.float32)
        config = _cfg(256)
        seq = stream_run([("remove_if", less_than(10.0))], values,
                         config=config, workers=0)
        par = stream_run([("remove_if", less_than(10.0))], values,
                         config=config, workers=2)
        np.testing.assert_array_equal(par.output, seq.output)

    def test_partition_chain(self, mm):
        config = _cfg(333)
        chain = [("compact", 0.0), ("partition", less_than(6.0))]
        seq = stream_run(chain, MemmapSource(mm), config=config, workers=0)
        par = stream_run(chain, MemmapSource(mm), config=config, workers=2)
        np.testing.assert_array_equal(par.output, seq.output)
        assert par.extras["n_true"] == seq.extras["n_true"]

    def test_config_shard_workers_default(self, mm):
        config = _cfg(307, shard_workers=2)
        res = stream_run([("compact", 0.0)], MemmapSource(mm),
                         config=config)  # workers from config
        assert res.extras["n_workers"] == 2


class TestPoolFallbacks:
    def test_unique_mid_chain_falls_back_sequential(self, mm):
        config = _cfg(307)
        chain = ["unique", ("compact", 0.0)]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            par = stream_run(chain, MemmapSource(mm), config=config,
                             workers=2)
        assert any("unique" in str(w.message) for w in caught
                   if issubclass(w.category, RuntimeWarning))
        seq = stream_run(chain, MemmapSource(mm), config=config, workers=0)
        np.testing.assert_array_equal(par.output, seq.output)
        assert par.extras["n_workers"] == 0  # it ran sequentially

    def test_unsized_source_falls_back_sequential(self, rng):
        values = rng.integers(0, 9, 600).astype(np.float32)
        config = _cfg(128)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = stream_run([("compact", 0.0)],
                             iter(np.array_split(values, 5)),
                             config=config, workers=2)
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        ref = stream_run([("compact", 0.0)], values, config=config)
        np.testing.assert_array_equal(res.output, ref.output)
        assert res.extras["n_workers"] == 0
