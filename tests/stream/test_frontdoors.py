"""DSSource routing at the three front doors.

The contract: out-of-core sources stream transparently; in-core
ndarrays NEVER silently change execution path (their counters and
extras are covered by older assertions); legacy implicit coercions warn
once naming the exact call site.
"""

import warnings

import numpy as np
import pytest

from repro import DSConfig, Pipeline, ds
from repro.serve import ServeConfig, Server


@pytest.fixture
def data(rng):
    return rng.integers(0, 6, 512).astype(np.float64)


@pytest.fixture
def mm(data, tmp_path):
    path = tmp_path / "in.dat"
    data.tofile(path)
    return np.memmap(path, dtype=np.float64, mode="r")


def _cfg(**kw):
    kw.setdefault("shard_elems", 128)
    return DSConfig(**kw)


class TestDsFrontDoor:
    def test_memmap_streams(self, data, mm):
        res = ds("compact", mm, 0.0, config=_cfg())
        np.testing.assert_array_equal(res.output, data[data != 0.0])
        assert res.extras["streamed"] is True
        assert res.extras["shards"] == 4

    def test_in_core_never_auto_streams(self, data):
        res = ds("compact", data, 0.0, config=_cfg())
        np.testing.assert_array_equal(res.output, data[data != 0.0])
        assert "streamed" not in res.extras  # the classic eager path

    def test_coercion_warns_naming_site(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ds("compact", [1.0, 0.0, 2.0], 0.0)
        assert any("repro.ds" in str(w.message) for w in caught
                   if issubclass(w.category, DeprecationWarning))


class TestPipelineFrontDoor:
    def test_memmap_streams_then_chains_in_core(self, data, mm):
        pipe = Pipeline(config=_cfg())
        fut = pipe.enqueue("compact", mm, 0.0)
        fut2 = pipe.enqueue("unique", fut)
        ref = np.asarray(data[data != 0.0])
        ref = ref[np.concatenate([[True], ref[1:] != ref[:-1]])]
        np.testing.assert_array_equal(fut2.output, ref)
        assert fut.result().extras["streamed"] is True

    def test_streamed_call_excluded_from_fusion(self, data, mm):
        # In-core, compact -> unique fuses into one flag chain; with a
        # streamed head the chain must not fuse (the intermediate is
        # never resident as one array).
        pipe = Pipeline(config=_cfg())
        f1 = pipe.enqueue("compact", data, 0.0)
        pipe.enqueue("unique", f1).result()
        assert pipe.last_plan.n_fused_groups == 1

        pipe2 = Pipeline(config=_cfg())
        g1 = pipe2.enqueue("compact", mm, 0.0)
        g2 = pipe2.enqueue("unique", g1)
        ref = np.asarray(data[data != 0.0])
        ref = ref[np.concatenate([[True], ref[1:] != ref[:-1]])]
        np.testing.assert_array_equal(g2.output, ref)
        assert pipe2.last_plan.n_fused_groups == 0

    def test_coercion_warns_naming_site(self, data):
        pipe = Pipeline()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pipe.enqueue("compact", list(data), 0.0).result()
        assert any("Pipeline.enqueue" in str(w.message) for w in caught
                   if issubclass(w.category, DeprecationWarning))


class TestServeFrontDoor:
    def test_memmap_request_streams(self, data, mm):
        cfg = ServeConfig(max_wait_ms=1.0, num_workers=1)
        with Server(cfg, ds_config=_cfg()) as srv:
            res = srv.submit_chain([("compact", 0.0), "unique"], mm) \
                     .result(timeout=10.0)
        ref = np.asarray(data[data != 0.0])
        ref = ref[np.concatenate([[True], ref[1:] != ref[:-1]])]
        np.testing.assert_array_equal(res.output, ref)
        assert res.extras["streamed"] is True
        assert res.extras["shards"] == 4
        assert res.extras["request_id"] is not None

    def test_in_core_request_unchanged(self, data):
        cfg = ServeConfig(max_wait_ms=1.0, num_workers=1)
        with Server(cfg) as srv:
            res = srv.submit("compact", data, 0.0).result(timeout=10.0)
        np.testing.assert_array_equal(res.output, data[data != 0.0])
        assert "streamed" not in res.extras
        assert res.extras["request_id"] is not None

    def test_coercion_warns_naming_site(self, data):
        cfg = ServeConfig(max_wait_ms=1.0, num_workers=1)
        with Server(cfg) as srv:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                srv.submit("compact", list(data), 0.0).result(timeout=10.0)
        assert any("Server.submit" in str(w.message) for w in caught
                   if issubclass(w.category, DeprecationWarning))

    def test_serveconfig_shard_workers_applies(self, data, mm):
        cfg = ServeConfig(max_wait_ms=1.0, num_workers=1, shard_workers=2)
        with Server(cfg, ds_config=_cfg()) as srv:
            res = srv.submit("compact", mm, 0.0).result(timeout=30.0)
        np.testing.assert_array_equal(res.output, data[data != 0.0])
        assert res.extras["n_workers"] == 2

    def test_streamed_and_resident_share_a_batch_window(self, data, mm):
        # A streamed and an in-core request admitted together must both
        # resolve correctly — the batcher splits them internally.
        cfg = ServeConfig(max_wait_ms=20.0, max_batch_size=4,
                          num_workers=1)
        with Server(cfg, ds_config=_cfg()) as srv:
            f1 = srv.submit("compact", mm, 0.0)
            f2 = srv.submit("compact", data, 0.0)
            out1 = f1.result(timeout=10.0).output
            out2 = f2.result(timeout=10.0).output
        np.testing.assert_array_equal(out1, data[data != 0.0])
        np.testing.assert_array_equal(out2, data[data != 0.0])
