"""The DSSource input protocol: one front door for every input kind.

``as_source`` is the single coercion point the three entry surfaces
(:func:`repro.ds`, ``Pipeline.enqueue``, ``Server.submit``) share: an
ndarray stays in-core, a memmap / shared-memory handle / shard iterator
becomes an out-of-core source, and anything else coerces with one
deprecation warning naming the call site (mirroring the DSConfig
legacy-kwarg pattern).
"""

import warnings
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.errors import ReproError
from repro.stream import (
    ArraySource,
    DSSource,
    MemmapSource,
    ShardIterSource,
    SharedMemorySource,
    as_source,
)


@pytest.fixture
def mm(tmp_path):
    data = np.arange(1000, dtype=np.float32)
    path = tmp_path / "in.dat"
    data.tofile(path)
    return np.memmap(path, dtype=np.float32, mode="r")


class TestArraySource:
    def test_in_core_and_materialize_identity(self):
        arr = np.arange(10.0)
        src = as_source(arr)
        assert isinstance(src, ArraySource)
        assert src.in_core and src.kind == "array"
        assert src.materialize() is arr
        assert src.n_elems == 10 and str(src.dtype) == "float64"

    def test_read_slices(self):
        src = ArraySource(np.arange(20.0))
        np.testing.assert_array_equal(src.read(5, 9), [5.0, 6.0, 7.0, 8.0])

    def test_signature(self):
        n, dt = as_source(np.zeros(7, dtype=np.int64)).signature()
        assert n == 7 and dt == "int64"


class TestMemmapSource:
    def test_out_of_core(self, mm):
        src = as_source(mm)
        assert isinstance(src, MemmapSource)
        assert not src.in_core and src.kind == "memmap"
        assert src.n_elems == 1000

    def test_read_returns_plain_array(self, mm):
        chunk = as_source(mm).read(10, 20)
        assert type(chunk) is np.ndarray
        np.testing.assert_array_equal(chunk, np.arange(10, 20, dtype=np.float32))

    def test_materialize(self, mm):
        np.testing.assert_array_equal(
            as_source(mm).materialize(), np.arange(1000, dtype=np.float32))


class TestSharedMemorySource:
    def test_roundtrip(self):
        shm = shared_memory.SharedMemory(create=True, size=8 * 16)
        try:
            np.ndarray(16, dtype=np.float64, buffer=shm.buf)[:] = \
                np.arange(16.0)
            src = as_source(shm, dtype=np.float64)
            assert isinstance(src, SharedMemorySource)
            assert not src.in_core and src.n_elems == 16
            np.testing.assert_array_equal(src.read(2, 5), [2.0, 3.0, 4.0])
        finally:
            shm.close()
            shm.unlink()

    def test_requires_dtype(self):
        shm = shared_memory.SharedMemory(create=True, size=64)
        try:
            with pytest.raises(ReproError, match="dtype"):
                as_source(shm)
        finally:
            shm.close()
            shm.unlink()


class TestShardIterSource:
    def test_forward_only_stream(self):
        chunks = iter([np.arange(5.0), np.arange(5.0, 8.0)])
        src = as_source(chunks)
        assert isinstance(src, ShardIterSource)
        assert not src.in_core
        assert src.n_elems is None  # unsized until exhausted
        first = src.next_shard(5)
        np.testing.assert_array_equal(first, np.arange(5.0))
        rest = src.next_shard(100)
        np.testing.assert_array_equal(rest, [5.0, 6.0, 7.0])
        assert src.next_shard(100) is None
        assert src.n_elems == 8

    def test_materialize_drains(self):
        src = as_source(iter([np.arange(4.0), np.arange(4.0, 6.0)]))
        np.testing.assert_array_equal(src.materialize(), np.arange(6.0))


class TestAsSourceCoercion:
    def test_source_passthrough(self, mm):
        src = MemmapSource(mm)
        assert as_source(src) is src

    def test_list_warns_naming_site(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            src = as_source([1.0, 2.0], site="repro.ds")
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert any("repro.ds" in m for m in messages), messages
        assert isinstance(src, ArraySource)
        np.testing.assert_array_equal(src.materialize(), [1.0, 2.0])

    def test_ndarray_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            as_source(np.arange(3.0), site="repro.ds")

    def test_every_source_is_a_dssource(self, mm):
        for value in (np.arange(4.0), mm, iter([np.arange(2.0)])):
            assert isinstance(as_source(value), DSSource)


class TestDeprecationStacklevel:
    def test_warning_names_this_file_on_a_direct_call(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            as_source([1.0, 2.0], site="repro.ds")
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert deprecations, "expected a legacy-coercion warning"
        assert deprecations[0].filename == __file__

    def test_warning_skips_repro_internals_on_an_indirect_call(self):
        # stage_payload -> as_source adds a repro-internal frame; the
        # warning must still blame this test file, not the dispatch
        # internals between the user and as_source.
        from repro.fleet.transport import stage_payload

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            desc, scratch, meta = stage_payload([1.0, 2.0, 3.0])
        if scratch is not None:
            scratch.close()
            scratch.unlink()
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert deprecations, "expected a legacy-coercion warning"
        assert deprecations[0].filename == __file__
