"""The bounded knob space: validation and sweep sizing."""

import pytest

from repro.errors import ReproError
from repro.tune.space import KnobSpace


class TestValidation:
    def test_defaults_are_valid(self):
        space = KnobSpace()
        assert space.kernel_sweep_size() >= 1
        assert len(space.serve_grid()) == (len(space.max_batch_sizes)
                                           * len(space.max_waits_ms))

    def test_bad_wg_size_rejected_eagerly(self):
        with pytest.raises(ReproError):
            KnobSpace(wg_sizes=(0,))

    def test_bad_scan_variant_rejected(self):
        with pytest.raises(ReproError):
            KnobSpace(scan_variants=("tree", "quantum"))

    def test_empty_axis_rejected(self):
        with pytest.raises(ReproError):
            KnobSpace(coarsenings=())


class TestMembership:
    def test_valid_kernel_knobs(self):
        space = KnobSpace()
        assert space.valid_kernel_knobs(
            {"coarsening": 4, "wg_size": 128, "scan_variant": "lookback"})
        assert space.valid_kernel_knobs({})
        assert not space.valid_kernel_knobs({"coarsening": 3})
        assert not space.valid_kernel_knobs({"wg_size": 1024})
        assert not space.valid_kernel_knobs({"unknown_knob": 1})

    def test_valid_serve_knobs(self):
        space = KnobSpace()
        assert space.valid_serve_knobs(
            {"max_batch_size": 4, "max_wait_ms": 0.5})
        assert not space.valid_serve_knobs({"max_batch_size": 3})
        assert not space.valid_serve_knobs({"wg_size": 64})

    def test_chain_sweep_is_larger(self):
        space = KnobSpace()
        assert space.kernel_sweep_size(chain=True) \
            == space.kernel_sweep_size() + 1
