"""The staged-sweep autotuner: guarantees, persistence, observability,
and the serve-layer tuned-warmup loop."""

import numpy as np
import pytest

from repro import obs as _obs
from repro.config import DSConfig
from repro.errors import ReproError
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServeConfig, Server
from repro.tune.db import TuningDB, kernel_key
from repro.tune.objective import ServeScore, TrialScore, better
from repro.tune.space import KnobSpace
from repro.tune.tuner import make_fig_workload, tune_kernel, tune_serve

#: A deliberately tiny space so a full staged sweep stays fast.
SMALL = KnobSpace(wg_sizes=(64, 128), coarsenings=(None, 2),
                  scan_variants=("tree", "lookback"),
                  max_batch_sizes=(1, 2), max_waits_ms=(0.0,))


@pytest.fixture
def array(rng):
    return rng.integers(0, 4, 1024).astype(np.float64)


class TestObjective:
    def test_lower_wall_wins_outside_margin(self):
        a = TrialScore(wall_ms=1.0, spin_idle_share=0.9)
        b = TrialScore(wall_ms=2.0, spin_idle_share=0.1)
        assert better(a, b) and not better(b, a)

    def test_tie_broken_by_spin_idle_share(self):
        a = TrialScore(wall_ms=1.000, spin_idle_share=0.10)
        b = TrialScore(wall_ms=1.001, spin_idle_share=0.30)
        assert better(a, b) and not better(b, a)

    def test_serve_tie_broken_by_throughput(self):
        a = ServeScore(p95_ms=5.00, throughput_rps=900.0)
        b = ServeScore(p95_ms=5.01, throughput_rps=400.0)
        assert better(a, b) and not better(b, a)

    def test_none_incumbent_always_loses(self):
        assert better(TrialScore(wall_ms=9.0, spin_idle_share=1.0), None)


class TestTuneKernel:
    def test_winner_never_slower_than_baseline(self, array):
        result = tune_kernel((("compact", 0.0),), array,
                             backend="vectorized", space=SMALL,
                             budget=20, samples=1)
        assert result.kind == "kernel"
        assert result.trials[0].knobs == {}  # baseline is trial #1
        assert result.best_score.wall_ms <= result.baseline_score.wall_ms
        assert SMALL.valid_kernel_knobs(result.best_knobs)
        assert result.budget_used <= 20

    def test_budget_one_keeps_static_default(self, array):
        result = tune_kernel((("compact", 0.0),), array,
                             backend="vectorized", space=SMALL,
                             budget=1, samples=1)
        assert result.budget_used == 1
        assert not result.improved and result.best_knobs == {}

    def test_budget_must_be_positive(self, array):
        with pytest.raises(ReproError):
            tune_kernel((("compact", 0.0),), array, budget=0)

    def test_chain_gets_fusion_probe(self, array):
        result = tune_kernel((("compact", 0.0), "unique"), array,
                             backend="vectorized", space=SMALL,
                             budget=20, samples=1)
        assert any("fuse" in t.knobs for t in result.trials)

    def test_persists_with_provenance(self, tmp_path, array):
        db = TuningDB(tmp_path / "db.json")
        result = tune_kernel((("compact", 0.0),), array,
                             backend="vectorized", space=SMALL,
                             budget=20, samples=2, db=db,
                             timestamp=1754600000.0, set_default=True)
        reloaded = TuningDB.load(db.path)
        entry = reloaded.get(result.key)
        assert entry is not None and entry["kind"] == "kernel"
        assert entry["backend"] == "vectorized"
        assert entry["samples"] == 2 and entry["timestamp"] == 1754600000.0
        assert entry["knobs"] == result.best_knobs
        assert entry["baseline"]["wall_ms"] >= entry["objective"]["wall_ms"]
        # The default| entry only carries DSConfig fields, never fuse.
        default = reloaded.default_knobs("vectorized")
        assert default is not None and "fuse" not in default

    def test_emits_metrics_and_flight_events(self, array):
        metrics = MetricsRegistry()
        flight = FlightRecorder(256)
        result = tune_kernel((("compact", 0.0),), array,
                             backend="vectorized", space=SMALL,
                             budget=20, samples=1, metrics=metrics,
                             flight=flight)
        assert metrics.counter("tune.trials").value == result.budget_used
        assert metrics.histogram("tune.trial_wall_ms").count \
            == result.budget_used
        assert metrics.gauge("tune.best_wall_ms").value \
            == result.best_score.wall_ms
        names = [e["event"] for e in flight.events()]
        assert names.count("tune.trial") == result.budget_used
        assert "tune.sweep_done" in names

    def test_sweep_span_tree_on_outer_tracer(self, array):
        with _obs.tracing("spans") as tracer:
            tune_kernel((("compact", 0.0),), array, backend="vectorized",
                        space=SMALL, budget=4, samples=1)
        assert len(tracer.find_spans("tune.sweep")) == 1
        assert len(tracer.find_spans("tune.trial")) == 4

    def test_fig_workloads(self):
        ops, array, config = make_fig_workload("fig13", n=2048)
        assert array.size == 2048 and config.seed == 8
        result = tune_kernel(ops, array, config=config,
                             backend="vectorized", space=SMALL,
                             budget=3, samples=1)
        assert result.budget_used == 3
        with pytest.raises(ReproError):
            make_fig_workload("fig99")


class TestTuneServe:
    def test_grid_sweep_baseline_first(self):
        result = tune_serve("compact", n=128, clients=2,
                            requests_per_client=3,
                            ds_config=DSConfig(backend="vectorized"),
                            space=SMALL, budget=3)
        assert result.kind == "serve"
        assert result.trials[0].knobs == {}  # ServeConfig defaults
        assert result.budget_used <= 3
        assert result.best_score.p95_ms <= result.baseline_score.p95_ms
        assert result.best_score.completed == result.best_score.requests


class TestServerTunedWarmup:
    def test_prime_tuned_applies_db_knobs(self, tmp_path, array):
        cfg = DSConfig(backend="vectorized")
        db = TuningDB(tmp_path / "db.json")
        tune_kernel((("compact", 0.0),), array, config=cfg, space=SMALL,
                    budget=20, samples=1, db=db)
        assert len(db) == 1

        srv = Server(ServeConfig(num_workers=1), tuning_db=db,
                     autostart=False)
        srv.prime((("compact", 0.0),), array, config=cfg, tuned=True)
        stats = srv.stats()
        assert len(stats["tuned"]) == 1
        (label, knobs), = stats["tuned"].items()
        assert label == "compact|n=1024|float64"
        assert knobs == db.knobs(kernel_key((("compact", 0.0),), array,
                                            cfg, "vectorized"))

        # The tuned config must not change answers, only speed.
        srv.start()
        out = srv.submit_chain((("compact", 0.0),), array,
                               config=cfg).result(timeout=30).output
        assert np.array_equal(out, array[array != 0.0])
        srv.close()

    def test_prime_without_db_is_untuned(self, array):
        srv = Server(ServeConfig(num_workers=1), autostart=False)
        srv.prime((("compact", 0.0),), array, tuned=True)
        assert srv.stats()["tuned"] == {}
        srv.close(drain=False)
