"""TuningDB: keying, persistence, and the tuned-resolution plumbing."""

import json

import numpy as np
import pytest

from repro.config import DSConfig
from repro.errors import ReproError
from repro.tune.db import (
    TuningDB,
    default_key,
    kernel_key,
    normalize_config,
    serve_key,
)


@pytest.fixture
def array(rng):
    return rng.integers(0, 4, 256).astype(np.float64)


class TestKeys:
    def test_key_invariant_under_tuned_knobs(self, array):
        """Every trial of one workload shares one key: the knobs the
        tuner varies are stripped before hashing."""
        base = kernel_key((("compact", 0.0),), array,
                          DSConfig(), "vectorized")
        tuned = kernel_key((("compact", 0.0),), array,
                           DSConfig(wg_size=64, coarsening=8,
                                    scan_variant="lookback", seed=42),
                           "vectorized")
        assert base == tuned
        assert base.startswith("kernel|")

    def test_key_distinguishes_workloads(self, array):
        k1 = kernel_key((("compact", 0.0),), array, None, "vectorized")
        k2 = kernel_key(("unique",), array, None, "vectorized")
        k3 = kernel_key((("compact", 0.0),), array[:128], None, "vectorized")
        k4 = kernel_key((("compact", 0.0),), array, None, "simulated")
        assert len({k1, k2, k3, k4}) == 4

    def test_serve_key_same_identity_different_kind(self, array):
        kk = kernel_key((("compact", 0.0),), array, None, "vectorized")
        sk = serve_key((("compact", 0.0),), array, None, "vectorized")
        assert kk.split("|", 1)[1] == sk.split("|", 1)[1]
        assert sk.startswith("serve|")

    def test_normalize_pins_backend_and_strips_knobs(self):
        norm = normalize_config(
            DSConfig(wg_size=64, coarsening=2, scan_variant="ballot",
                     seed=7), "vectorized")
        assert norm.wg_size == 256 and norm.coarsening is None
        assert norm.scan_variant == "tree" and norm.seed == 0
        assert norm.backend == "vectorized"
        # Non-tuned fields survive.
        norm2 = normalize_config(DSConfig(race_tracking=True), "simulated")
        assert norm2.race_tracking is True


class TestPersistence:
    def test_round_trip(self, tmp_path, array):
        path = tmp_path / "db.json"
        db = TuningDB(path)
        key = kernel_key((("compact", 0.0),), array, None, "vectorized")
        db.set(key, kind="kernel", knobs={"coarsening": 4},
               objective={"wall_ms": 1.0}, baseline={"wall_ms": 2.0},
               samples=3, trials=12, backend="vectorized",
               timestamp=1754600000.0)
        db.save()
        reloaded = TuningDB.load(path)
        assert len(reloaded) == 1 and key in reloaded
        entry = reloaded.get(key)
        assert entry["knobs"] == {"coarsening": 4}
        assert entry["timestamp"] == 1754600000.0
        assert reloaded.knobs(key) == {"coarsening": 4}

    def test_missing_file_is_empty(self, tmp_path):
        db = TuningDB.load(tmp_path / "absent.json")
        assert len(db) == 0
        assert db.get("anything") is None

    def test_malformed_file_raises_naming_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="bad.json"):
            TuningDB.load(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ReproError, match="version"):
            TuningDB.load(path)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="kind"):
            TuningDB().set("k", kind="quantum", knobs={}, objective={})

    def test_default_entry(self, tmp_path):
        db = TuningDB(tmp_path / "db.json")
        db.set_default("vectorized", {"coarsening": 8}, trials=5)
        db.save()
        reloaded = TuningDB.load(db.path)
        assert reloaded.default_knobs("vectorized") == {"coarsening": 8}
        assert reloaded.default_knobs("simulated") is None
        assert default_key("vectorized") in reloaded.keys()


class TestFromEnvTuned:
    def test_tuned_mode_fills_unpinned_fields(self, tmp_path):
        db = TuningDB(tmp_path / "db.json")
        db.set_default("vectorized",
                       {"coarsening": 8, "wg_size": 128,
                        "scan_variant": "lookback"})
        db.save()
        env = {"REPRO_TUNED": "1", "REPRO_TUNING_DB": str(db.path),
               "REPRO_BACKEND": "vectorized"}
        cfg = DSConfig.from_env(env)
        assert cfg.coarsening == 8 and cfg.wg_size == 128
        assert cfg.scan_variant == "lookback"

    def test_explicit_env_beats_tuned(self, tmp_path):
        db = TuningDB(tmp_path / "db.json")
        db.set_default("vectorized", {"coarsening": 8, "wg_size": 128})
        db.save()
        env = {"REPRO_TUNED": "1", "REPRO_TUNING_DB": str(db.path),
               "REPRO_BACKEND": "vectorized", "REPRO_WG_SIZE": "512"}
        cfg = DSConfig.from_env(env)
        assert cfg.wg_size == 512       # pinned wins
        assert cfg.coarsening == 8      # unpinned filled from the DB

    def test_tuned_mode_without_db_is_noop(self, tmp_path):
        env = {"REPRO_TUNED": "1",
               "REPRO_TUNING_DB": str(tmp_path / "absent.json")}
        assert DSConfig.from_env(env) == DSConfig()

    def test_tuned_off_ignores_db(self, tmp_path):
        db = TuningDB(tmp_path / "db.json")
        db.set_default("vectorized", {"coarsening": 8})
        db.save()
        env = {"REPRO_TUNING_DB": str(db.path),
               "REPRO_BACKEND": "vectorized"}
        assert DSConfig.from_env(env).coarsening is None
