"""The pure-NumPy oracle semantics themselves."""

import numpy as np
import pytest

from repro.core.predicates import is_even
from repro.reference import (
    compact_ref,
    copy_if_ref,
    pad_ref,
    partition_ref,
    remove_if_ref,
    unique_ref,
    unpad_ref,
)


class TestPadUnpad:
    def test_pad_shape_and_fill(self):
        m = np.arange(6).reshape(2, 3)
        out = pad_ref(m, 2, fill=-1)
        assert out.shape == (2, 5)
        assert np.array_equal(out[:, :3], m)
        assert (out[:, 3:] == -1).all()

    def test_unpad_inverse_of_pad(self):
        m = np.arange(12).reshape(3, 4)
        assert np.array_equal(unpad_ref(pad_ref(m, 2), 2), m)

    def test_pad_rejects_1d_and_negative(self):
        with pytest.raises(ValueError):
            pad_ref(np.arange(4), 1)
        with pytest.raises(ValueError):
            pad_ref(np.zeros((2, 2)), -1)

    def test_unpad_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            unpad_ref(np.zeros((2, 3)), 3)

    def test_unpad_returns_copy(self):
        m = np.arange(6, dtype=float).reshape(2, 3)
        out = unpad_ref(m, 1)
        out[0, 0] = 99
        assert m[0, 0] == 0


class TestSelectFamily:
    def test_remove_keeps_complement(self):
        a = np.asarray([1, 2, 3, 4, 5])
        assert np.array_equal(remove_if_ref(a, is_even()), [1, 3, 5])

    def test_copy_keeps_matching(self):
        a = np.asarray([1, 2, 3, 4, 5])
        assert np.array_equal(copy_if_ref(a, is_even()), [2, 4])

    def test_compact_drops_value(self):
        a = np.asarray([3.0, 0.0, 7.0, 0.0])
        assert np.array_equal(compact_ref(a, 0.0), [3.0, 7.0])

    def test_empty_inputs(self):
        e = np.asarray([], dtype=np.float32)
        assert remove_if_ref(e, is_even()).size == 0
        assert compact_ref(e, 0).size == 0
        assert unique_ref(e).size == 0


class TestUnique:
    def test_figure15(self):
        a = np.asarray([1, 1, 2, 3, 3, 3, 1])
        assert np.array_equal(unique_ref(a), [1, 2, 3, 1])

    def test_not_global_dedup(self):
        assert np.array_equal(unique_ref(np.asarray([1, 2, 1])), [1, 2, 1])

    def test_single(self):
        assert np.array_equal(unique_ref(np.asarray([9])), [9])


class TestPartition:
    def test_stable_split(self):
        a = np.asarray([5, 2, 8, 1, 4])
        out, n_true = partition_ref(a, is_even())
        assert n_true == 3
        assert np.array_equal(out, [2, 8, 4, 5, 1])

    def test_counts_sum(self):
        a = np.arange(10)
        out, n_true = partition_ref(a, is_even())
        assert out.size == 10 and n_true == 5
