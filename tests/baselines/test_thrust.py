"""Thrust-1.8-style multi-pass baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.thrust import (
    thrust_copy_if,
    thrust_partition,
    thrust_partition_copy,
    thrust_remove,
    thrust_remove_copy,
    thrust_remove_copy_if,
    thrust_remove_if,
    thrust_stable_partition,
    thrust_stable_partition_copy,
)
from repro.config import DSConfig
from repro.core.predicates import is_even, less_than
from repro.primitives import ds_remove_if
from repro.reference import (
    compact_ref,
    copy_if_ref,
    partition_ref,
    remove_if_ref,
    unique_ref,
)
from repro.baselines.thrust import thrust_unique, thrust_unique_copy


@pytest.fixture
def data(rng):
    return rng.integers(0, 10, 3000).astype(np.float32)


class TestCorrectness:
    def test_remove_if(self, data):
        r = thrust_remove_if(data, is_even(), wg_size=64)
        assert np.array_equal(r.output, remove_if_ref(data, is_even()))

    def test_remove(self, data):
        r = thrust_remove(data, 0, wg_size=64)
        assert np.array_equal(r.output, compact_ref(data, 0))

    def test_remove_copy_if(self, data):
        r = thrust_remove_copy_if(data, is_even(), wg_size=64)
        assert np.array_equal(r.output, remove_if_ref(data, is_even()))

    def test_remove_copy(self, data):
        r = thrust_remove_copy(data, 0, wg_size=64)
        assert np.array_equal(r.output, compact_ref(data, 0))

    def test_copy_if(self, data):
        r = thrust_copy_if(data, less_than(5), wg_size=64)
        assert np.array_equal(r.output, copy_if_ref(data, less_than(5)))

    def test_unique(self, data):
        r = thrust_unique(data, wg_size=64)
        assert np.array_equal(r.output, unique_ref(data))

    def test_unique_copy(self, data):
        r = thrust_unique_copy(data, wg_size=64)
        assert np.array_equal(r.output, unique_ref(data))

    def test_stable_partition(self, data):
        expected, n_true = partition_ref(data, is_even())
        r = thrust_stable_partition(data, is_even(), wg_size=64)
        assert r.extras["n_true"] == n_true
        assert np.array_equal(r.output, expected)

    def test_stable_partition_copy(self, data):
        expected, _ = partition_ref(data, is_even())
        r = thrust_stable_partition_copy(data, is_even(), wg_size=64)
        assert np.array_equal(r.output, expected)

    def test_unstable_variants_modelled_as_stable(self, data):
        expected, _ = partition_ref(data, is_even())
        r1 = thrust_partition(data, is_even(), wg_size=64)
        r2 = thrust_partition_copy(data, is_even(), wg_size=64)
        assert np.array_equal(r1.output, expected)
        assert np.array_equal(r2.output, expected)
        assert r1.extras["stable"] is False


class TestPipelineStructure:
    """The structural costs the paper attributes to Thrust."""

    def test_out_of_place_uses_four_launches(self, data):
        assert thrust_copy_if(data, is_even(), wg_size=64).num_launches == 4

    def test_in_place_adds_a_copyback(self, data):
        assert thrust_remove_if(data, is_even(), wg_size=64).num_launches == 5

    def test_partition_double_scan_adds_a_pass(self, data):
        assert thrust_stable_partition_copy(
            data, is_even(), wg_size=64).num_launches == 5
        assert thrust_stable_partition(
            data, is_even(), wg_size=64).num_launches == 6

    def test_thrust_moves_far_more_bytes_than_ds(self, data):
        """The paper's Section V point: repeated global loads/stores."""
        ds = ds_remove_if(data, is_even(), config=DSConfig(wg_size=64))
        th = thrust_remove_if(data, is_even(), wg_size=64)
        assert th.bytes_moved > 2.5 * ds.bytes_moved

    def test_input_read_three_times(self, data):
        th = thrust_copy_if(data, is_even(), wg_size=64)
        n_bytes = data.size * 4
        # reduce + downsweep + scatter each read the input once; the
        # scatter also reads the scan array.
        assert th.total_counters.bytes_loaded >= 3 * n_bytes

    def test_scatter_marked_irregular_for_the_model(self, data):
        th = thrust_copy_if(data, is_even(), wg_size=64)
        scatters = [c for c in th.counters if c.kernel_name.endswith("scatter")]
        assert len(scatters) == 1
        assert scatters[0].extras.get("irregular") == 1.0


class TestPropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 2000), threshold=st.integers(0, 10),
           seed=st.integers(0, 2**16))
    def test_thrust_and_ds_agree(self, n, threshold, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 10, n).astype(np.float32)
        pred = less_than(np.float32(threshold))
        th = thrust_remove_if(a, pred, wg_size=32, seed=seed).output
        ds = ds_remove_if(a, pred,
                          config=DSConfig(wg_size=32, seed=seed)).output
        assert np.array_equal(th, ds)
