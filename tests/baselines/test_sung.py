"""Sung's iterative padding/unpadding baseline [11]."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import iteration_schedule, movable_rows, sung_pad, sung_unpad
from repro.errors import LaunchError
from repro.reference import pad_ref, unpad_ref


class TestMovableRows:
    def test_at_least_one_row_always_moves(self):
        assert movable_rows(1, 100, 101) == 1
        assert movable_rows(50, 100, 101) >= 1

    def test_row_zero_never_moves(self):
        assert movable_rows(0, 100, 110) == 0

    def test_large_pad_allows_bulk_moves(self):
        # Doubling the stride lets roughly half the rows move at once.
        m = 99
        assert movable_rows(m, 100, 200) == m - 50 + 1

    def test_tiny_pad_forces_serial_moves(self):
        # One padded column on a wide matrix: one row at a time.
        assert movable_rows(9999, 10000, 10001) == 1


class TestSchedule:
    def test_schedule_moves_every_row_once(self):
        sched = iteration_schedule(100, 90, 10)
        assert sum(sched) == 99  # rows 1..99

    def test_schedule_is_decreasing_parallelism(self):
        sched = iteration_schedule(5000, 4900, 100)
        assert sched[0] > sched[-1]
        assert sched[-1] == 1  # the sequential tail of Figure 2
        assert max(sched) == sched[0]

    def test_fig2_shape(self):
        # 5000x4900 padded to square: initial parallelism ~100 decaying
        # to a one-row-at-a-time tail, as Figure 2 shows.
        sched = iteration_schedule(*__import__(
            "repro.workloads", fromlist=["FIG2_SHAPE"]).FIG2_SHAPE)
        assert 90 <= sched[0] <= 110
        tail = [p for p in sched if p == 1]
        assert len(tail) > 10

    def test_zero_pad_empty_schedule(self):
        assert iteration_schedule(10, 5, 0) == []


class TestSungPad:
    def test_matches_reference(self, rng):
        m = rng.integers(0, 999, (25, 30)).astype(np.float32)
        r = sung_pad(m, 7, wg_size=32)
        assert np.array_equal(r.output[:, :30], pad_ref(m, 7)[:, :30])

    def test_one_launch_per_iteration(self, rng):
        m = rng.integers(0, 9, (20, 16)).astype(np.float32)
        r = sung_pad(m, 4, wg_size=32)
        iters = r.extras["iterations"]
        assert r.num_launches == len(iters)
        assert sum(i.parallelism for i in iters) == 19

    def test_parallelism_matches_schedule(self, rng):
        m = rng.integers(0, 9, (30, 24)).astype(np.float32)
        r = sung_pad(m, 6, wg_size=32)
        sched = iteration_schedule(30, 24, 6)
        assert [i.parallelism for i in r.extras["iterations"]] == sched

    def test_single_column_pad_is_fully_serial(self, rng):
        m = rng.integers(0, 9, (12, 40)).astype(np.float32)
        r = sung_pad(m, 1, wg_size=32)
        assert all(i.parallelism == 1 for i in r.extras["iterations"])
        assert np.array_equal(r.output[:, :40], m)

    def test_rejects_1d(self):
        with pytest.raises(LaunchError):
            sung_pad(np.zeros(8, dtype=np.float32), 1)

    @settings(max_examples=15, deadline=None)
    @given(rows=st.integers(2, 20), cols=st.integers(1, 24),
           pad=st.integers(1, 8), seed=st.integers(0, 2**16))
    def test_property_matches_ds_semantics(self, rows, cols, pad, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 99, (rows, cols)).astype(np.float32)
        r = sung_pad(m, pad, wg_size=32, seed=seed)
        assert np.array_equal(r.output[:, :cols], m)


class TestSungUnpad:
    def test_matches_reference(self, rng):
        m = rng.integers(0, 999, (22, 31)).astype(np.float32)
        r = sung_unpad(m, 9, wg_size=32)
        assert np.array_equal(r.output, unpad_ref(m, 9))

    def test_always_single_workgroup_single_launch(self, rng):
        m = rng.integers(0, 9, (15, 20)).astype(np.float32)
        r = sung_unpad(m, 5, wg_size=32)
        assert r.num_launches == 1
        assert r.counters[0].grid_size == 1
        assert r.counters[0].peak_resident == 1
        assert r.extras["single_workgroup"] is True

    def test_rejects_pad_ge_cols(self, rng):
        m = rng.integers(0, 9, (4, 4)).astype(np.float32)
        with pytest.raises(LaunchError):
            sung_unpad(m, 4)


class TestProgressiveUnpad:
    """The alternative scheme the paper sketches in Section V."""

    def test_matches_reference(self, rng):
        from repro.baselines import sung_unpad_progressive
        from repro.reference import unpad_ref
        m = rng.integers(0, 999, (28, 21)).astype(np.float32)
        r = sung_unpad_progressive(m, 7, wg_size=32)
        assert np.array_equal(r.output, unpad_ref(m, 7))

    def test_schedule_mirrors_figure2(self):
        from repro.baselines import unpad_iteration_schedule
        sched = unpad_iteration_schedule(200, 150, 50)
        assert sched[0] == 1                  # sequential start
        assert sched[-2] > sched[0]           # parallel finish
        assert sum(sched) == 199

    def test_narrow_pad_stays_sequential(self):
        from repro.baselines import unpad_iteration_schedule
        sched = unpad_iteration_schedule(50, 1000, 1)
        assert all(p == 1 for p in sched)

    def test_one_launch_per_iteration(self, rng):
        from repro.baselines import sung_unpad_progressive, unpad_iteration_schedule
        m = rng.integers(0, 9, (24, 16)).astype(np.float32)
        r = sung_unpad_progressive(m, 4, wg_size=32)
        sched = unpad_iteration_schedule(24, 16, 4)
        assert r.num_launches == len(sched)
        assert [i.parallelism for i in r.extras["iterations"]] == sched

    def test_zero_pad_is_noop(self, rng):
        from repro.baselines import sung_unpad_progressive
        m = rng.integers(0, 9, (5, 8)).astype(np.float32)
        r = sung_unpad_progressive(m, 0, wg_size=32)
        assert r.num_launches == 0
        assert np.array_equal(r.output, m)

    def test_analytic_builder_matches_sim(self, rng):
        from repro.baselines import sung_unpad_progressive
        from repro.perfmodel import sung_unpad_progressive_launches
        from repro.simgpu import Stream, get_device
        mx = get_device("maxwell")
        m = rng.integers(0, 9, (26, 20)).astype(np.float32)
        r = sung_unpad_progressive(m, 5, Stream(mx, seed=4), wg_size=32)
        analytic = sung_unpad_progressive_launches(26, 20, 5, 4, mx, wg_size=32)
        assert len(analytic) == r.num_launches
        for a, meas in zip(analytic, r.counters):
            assert a.grid_size == meas.grid_size
            assert a.bytes_loaded == meas.bytes_loaded
