"""Unstable atomic-based compaction baselines (Figure 13)."""

import numpy as np
import pytest

from repro.baselines import (
    atomic_compact,
    atomic_compact_plain,
    atomic_compact_shared,
    atomic_compact_warp,
)
from repro.reference import compact_ref
from repro.workloads import compaction_array


@pytest.fixture
def workload():
    return compaction_array(3000, 0.4, seed=11)


class TestCorrectness:
    @pytest.mark.parametrize("method", ["plain", "shared", "warp"])
    def test_keeps_the_right_multiset(self, workload, method):
        r = atomic_compact(workload, 0.0, method, wg_size=64, coarsening=2)
        expected = compact_ref(workload, 0.0)
        assert r.extras["n_kept"] == expected.size
        assert np.array_equal(np.sort(r.output), np.sort(expected))

    @pytest.mark.parametrize("method", ["plain", "shared", "warp"])
    def test_unstable_flag_set(self, workload, method):
        r = atomic_compact(workload, 0.0, method, wg_size=64)
        assert r.extras["stable"] is False
        assert r.extras["in_place"] is False

    def test_unknown_method_rejected(self, workload):
        with pytest.raises(ValueError, match="unknown atomic"):
            atomic_compact(workload, 0.0, "quantum")

    def test_convenience_wrappers(self, workload):
        expected = np.sort(compact_ref(workload, 0.0))
        for fn in (atomic_compact_plain, atomic_compact_shared,
                   atomic_compact_warp):
            r = fn(workload, 0.0, wg_size=64, coarsening=2)
            assert np.array_equal(np.sort(r.output), expected)


class TestContentionStructure:
    def test_atomic_counts_ordered_plain_gt_warp_gt_shared(self, workload):
        """The three schemes exist to trade atomic contention: plain
        does one atomic per kept element, warp one per warp-round,
        shared one per work-group."""
        counts = {}
        for method in ("plain", "shared", "warp"):
            r = atomic_compact(workload, 0.0, method, wg_size=64, coarsening=2)
            counts[method] = r.extras["serialized_atomics"]
        assert counts["plain"] > counts["warp"] > counts["shared"]

    def test_plain_counts_equal_kept(self, workload):
        r = atomic_compact(workload, 0.0, "plain", wg_size=64, coarsening=2)
        assert r.extras["serialized_atomics"] == r.extras["n_kept"]

    def test_shared_counts_equal_grid(self, workload):
        r = atomic_compact(workload, 0.0, "shared", wg_size=64, coarsening=2)
        assert r.extras["serialized_atomics"] == r.counters[0].grid_size

    def test_nothing_kept_means_no_atomics(self):
        a = np.zeros(1000, dtype=np.float32)
        r = atomic_compact(a, 0.0, "shared", wg_size=32)
        assert r.extras["n_kept"] == 0
        assert r.output.size == 0
