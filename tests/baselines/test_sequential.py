"""Sequential CPU baselines."""

import numpy as np
import pytest

from repro.baselines import seq_compact, seq_pad, seq_unpad
from repro.reference import compact_ref, pad_ref, unpad_ref


class TestSeqPad:
    def test_matches_reference(self, rng):
        m = rng.integers(0, 99, (13, 17)).astype(np.float32)
        r = seq_pad(m, 4, fill=0)
        assert np.array_equal(r.output, pad_ref(m, 4, fill=0))

    def test_bytes_and_rows_accounting(self, rng):
        m = rng.integers(0, 9, (10, 8)).astype(np.float32)
        r = seq_pad(m, 2)
        assert r.bytes_moved == 2 * 10 * 8 * 4
        assert r.rows_moved == 9

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            seq_pad(np.zeros(5), 1)

    def test_rejects_negative_pad(self, rng):
        with pytest.raises(ValueError):
            seq_pad(rng.integers(0, 9, (2, 2)), -1)


class TestSeqUnpad:
    def test_matches_reference(self, rng):
        m = rng.integers(0, 99, (11, 19)).astype(np.float32)
        r = seq_unpad(m, 6)
        assert np.array_equal(r.output, unpad_ref(m, 6))

    def test_roundtrip(self, rng):
        m = rng.integers(0, 99, (7, 9)).astype(np.float32)
        assert np.array_equal(seq_unpad(seq_pad(m, 3).output, 3).output, m)

    def test_rejects_pad_ge_cols(self, rng):
        with pytest.raises(ValueError):
            seq_unpad(rng.integers(0, 9, (3, 4)), 4)


class TestSeqCompact:
    def test_matches_reference(self, rng):
        a = rng.integers(0, 4, 500).astype(np.float32)
        r = seq_compact(a, 0)
        assert np.array_equal(r.output, compact_ref(a, 0))

    def test_is_stable(self):
        a = np.asarray([5, 0, 3, 0, 5, 1], dtype=np.float32)
        assert np.array_equal(seq_compact(a, 0).output, [5, 3, 5, 1])

    def test_bytes_accounting(self):
        a = np.asarray([1, 0, 1, 0], dtype=np.float32)
        r = seq_compact(a, 0)
        assert r.bytes_moved == (4 + 2) * 4
