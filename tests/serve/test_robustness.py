"""The robustness ring: deadlines, cancellation, retries, the circuit
breaker and sequential-baseline degradation.

The invariant under test everywhere: a request either completes with
**correct** bytes or fails with a **typed** error — never silently
wrong, never lost.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.predicates import less_than
from repro.errors import (
    DeadlineExceeded,
    LaunchError,
    RequestCancelled,
)
from repro.reference import (
    copy_if_ref,
    erase_range_ref,
    insert_gap_ref,
    partition_ref,
    remove_if_ref,
    unique_by_key_ref,
    unique_ref,
)
from repro.serve import CircuitBreaker, ServeConfig, Server
from repro.serve.degrade import SEQUENTIAL_BASELINES


def _cfg(**kw):
    kw.setdefault("max_wait_ms", 1.0)
    kw.setdefault("num_workers", 1)
    return ServeConfig(**kw)


@pytest.fixture
def data(rng):
    return rng.integers(0, 4, 256).astype(np.float64)


class TestDeadlines:
    def test_expired_queued_request_never_executes(self, data):
        srv = Server(_cfg(), autostart=False)
        fut = srv.submit("compact", data, 0.0, deadline_ms=1.0)
        time.sleep(0.01)  # expire while the server is not even running
        srv.start()
        with pytest.raises(DeadlineExceeded):
            fut.result(timeout=10)
        srv.close()
        assert fut.state == "expired"
        assert srv.metrics.get("serve.expired").value == 1
        assert srv.metrics.get("serve.batch_size") is None  # no batch ran

    def test_default_deadline_from_config(self, data):
        srv = Server(_cfg(default_deadline_ms=1.0), autostart=False)
        fut = srv.submit("compact", data, 0.0)
        time.sleep(0.01)
        srv.start()
        assert isinstance(fut.exception(timeout=10), DeadlineExceeded)
        srv.close()

    def test_generous_deadline_completes(self, data):
        with Server(_cfg()) as srv:
            out = srv.submit("compact", data, 0.0,
                             deadline_ms=30_000).output
        assert np.array_equal(out, data[data != 0.0])


class TestCancellation:
    def test_cancel_queued_request(self, data):
        srv = Server(_cfg(), autostart=False)
        fut = srv.submit("compact", data, 0.0)
        assert fut.cancel() is True
        assert fut.cancel() is False  # idempotent: already cancelled
        with pytest.raises(RequestCancelled):
            fut.result(timeout=5)
        assert srv.metrics.get("serve.cancelled").value == 1
        srv.start()
        srv.close()  # drains cleanly; the cancelled request is gone

    def test_cancel_after_completion_fails(self, data):
        with Server(_cfg()) as srv:
            fut = srv.submit("compact", data, 0.0)
            fut.result(timeout=30)
            assert fut.cancel() is False

    def test_cancelled_request_releases_queue_slot(self, data):
        srv = Server(_cfg(max_queue_depth=1), autostart=False)
        srv.submit("compact", data, 0.0).cancel()
        srv.submit("compact", data, 0.0)  # slot is free again
        srv.start()
        srv.close()


class TestRetries:
    def test_transient_fault_is_retried_to_success(self, data):
        calls = {"n": 0}

        def flaky(batch):
            calls["n"] += 1
            if calls["n"] == 1:
                raise LaunchError("injected transient fault")

        with Server(_cfg(max_retries=2, retry_backoff_ms=0.0),
                    fault_hook=flaky) as srv:
            out = srv.submit("compact", data, 0.0).output
        assert np.array_equal(out, data[data != 0.0])
        assert srv.metrics.get("serve.retries").value == 1
        assert srv.metrics.get("serve.degraded") is None

    def test_exhausted_retries_degrade(self, data):
        def always_fail(batch):
            raise LaunchError("injected permanent fault")

        with Server(_cfg(max_retries=1, retry_backoff_ms=0.0,
                         breaker_threshold=10),
                    fault_hook=always_fail) as srv:
            res = srv.submit("compact", data, 0.0).result()
        assert np.array_equal(res.output, data[data != 0.0])
        assert res.extras["degraded"] is True
        assert srv.metrics.get("serve.degraded").value == 1


class TestCircuitBreaker:
    def test_threshold_opens_and_cooldown_reprobes(self):
        t = {"now": 0.0}
        br = CircuitBreaker(threshold=2, cooldown_ms=50,
                            clock=lambda: t["now"])
        key = ("ds_stream_compact",)
        assert br.allows(key)
        br.record_failure(key)
        assert br.state(key) == "closed"
        assert br.record_failure(key) is True  # threshold crossed
        assert br.state(key) == "open"
        assert not br.allows(key)
        t["now"] = 0.06  # past cooldown: one probe slot
        assert br.allows(key)
        assert not br.allows(key)  # second caller is still shut out
        br.record_success(key)
        assert br.state(key) == "closed" and br.allows(key)

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        t = {"now": 0.0}
        br = CircuitBreaker(threshold=1, cooldown_ms=50,
                            clock=lambda: t["now"])
        key = ("ds_unique",)
        br.record_failure(key)
        t["now"] = 0.06
        assert br.allows(key)              # probe
        assert br.record_failure(key) is True
        assert not br.allows(key)          # cooldown restarted at 0.06
        t["now"] = 0.13
        assert br.allows(key)

    def test_open_breaker_serves_degraded_then_recovers(self, data):
        healthy = threading.Event()

        def fail_until_healthy(batch):
            if not healthy.is_set():
                raise LaunchError("injected outage")

        with Server(_cfg(max_retries=0, retry_backoff_ms=0.0,
                         breaker_threshold=1, breaker_cooldown_ms=1.0),
                    fault_hook=fail_until_healthy) as srv:
            expected = data[data != 0.0]
            # Outage: first request opens the breaker, both degrade.
            r1 = srv.submit("compact", data, 0.0).result()
            r2 = srv.submit("compact", data, 0.0).result()
            assert r1.extras["degraded"] and r2.extras["degraded"]
            assert np.array_equal(r1.output, expected)
            assert srv.breaker.state(("ds_stream_compact",)) != "closed"
            # Recovery: cooldown elapses, the probe succeeds, the fast
            # path returns (degraded flag gone, launch counters back).
            healthy.set()
            time.sleep(0.005)
            r3 = srv.submit("compact", data, 0.0).result()
            assert not r3.extras.get("degraded")
            assert r3.counters  # real launches again
            assert np.array_equal(r3.output, expected)
            assert srv.breaker.state(("ds_stream_compact",)) == "closed"

    def test_breaker_is_per_op_chain(self, data):
        with Server(_cfg(max_retries=0, breaker_threshold=1,
                         breaker_cooldown_ms=60_000)) as srv:
            srv.breaker.force_open(("ds_stream_compact",))
            deg = srv.submit("compact", data, 0.0).result()
            ok = srv.submit("unique", data).result()
        assert deg.extras["degraded"]
        assert not ok.extras.get("degraded")  # other ops unaffected


class TestDegradationCorrectness:
    """Every degradable op must return exactly what the fast path
    would, so flipping the breaker is invisible to clients (modulo
    latency and the ``degraded`` extra)."""

    def _degraded(self, srv, op, data, *args, **kwargs):
        srv.breaker.force_open((dict(
            compact="ds_stream_compact", unique="ds_unique",
            remove_if="ds_remove_if", copy_if="ds_copy_if",
            partition="ds_partition", insert_gap="ds_insert_gap",
            erase_range="ds_erase_range", pad="ds_pad",
            unpad="ds_unpad", unique_by_key="ds_unique_by_key")[op],))
        res = srv.submit(op, data, *args, **kwargs).result()
        assert res.extras["degraded"]
        return res.output

    @pytest.fixture
    def srv(self):
        with Server(_cfg(max_retries=0, breaker_threshold=1,
                         breaker_cooldown_ms=60_000)) as s:
            yield s

    def test_compact(self, srv, data):
        out = self._degraded(srv, "compact", data, 0.0)
        assert np.array_equal(out, data[data != 0.0])

    def test_unique(self, srv, data):
        runs = np.repeat(data, 2)
        assert np.array_equal(self._degraded(srv, "unique", runs),
                              unique_ref(runs))

    def test_remove_if_and_copy_if(self, srv, rng):
        x = rng.random(200)
        pred = less_than(0.5)
        assert np.array_equal(self._degraded(srv, "remove_if", x, pred),
                              remove_if_ref(x, pred))
        assert np.array_equal(self._degraded(srv, "copy_if", x, pred),
                              copy_if_ref(x, pred))

    def test_partition(self, srv, rng):
        x = rng.random(200)
        pred = less_than(0.5)
        expected, _ = partition_ref(x, pred)
        assert np.array_equal(self._degraded(srv, "partition", x, pred),
                              expected)

    def test_slide_ops(self, srv, rng):
        x = rng.random(64)
        assert np.array_equal(
            self._degraded(srv, "insert_gap", x, 10, 6, fill=-1.0),
            insert_gap_ref(x, 10, 6, fill=-1.0))
        assert np.array_equal(
            self._degraded(srv, "erase_range", x, 10, 6),
            erase_range_ref(x, 10, 6))

    def test_pad_roundtrip(self, srv, rng):
        x = rng.random((6, 10))
        padded = self._degraded(srv, "pad", x, 3, fill=0.0)
        assert padded.shape == (6, 13)
        assert np.array_equal(self._degraded(srv, "unpad", padded, 3), x)

    def test_unique_by_key(self, srv, rng):
        keys = np.repeat(rng.integers(0, 20, 40), 3).astype(np.float64)
        vals = rng.random(keys.size)
        out = self._degraded(srv, "unique_by_key", keys, vals)
        ek, ev = unique_by_key_ref(keys, vals)
        assert np.array_equal(out[0], ek) and np.array_equal(out[1], ev)

    def test_every_baseline_has_a_registered_op(self):
        from repro.primitives.opspec import get_op

        for name in SEQUENTIAL_BASELINES:
            assert get_op(name).name == name
