"""The closed-loop load generator and its acceptance gate."""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import ServeConfig, check_report, run_load
from repro.serve.loadgen import LoadReport, make_shape

_FAST = ServeConfig(max_batch_size=4, max_wait_ms=1.0, num_workers=2,
                    breaker_threshold=2, breaker_cooldown_ms=5.0,
                    retry_backoff_ms=0.0)


class TestShapes:
    @pytest.mark.parametrize("name", ["compact", "unique", "remove_if",
                                      "partition", "chain"])
    def test_shape_builds_with_nonempty_expectation(self, name):
        spec = make_shape(name, 256)
        assert spec.array.size == 256
        assert spec.expected.size > 0
        assert spec.ops

    def test_unknown_shape(self):
        with pytest.raises(ServeError, match="unknown load shape"):
            make_shape("nope", 128)

    def test_shapes_are_deterministic(self):
        a, b = make_shape("chain", 128, seed=9), make_shape("chain", 128,
                                                            seed=9)
        assert np.array_equal(a.array, b.array)


class TestRunLoad:
    def test_healthy_run_meets_acceptance(self):
        report = run_load(shape="chain", clients=3, requests_per_client=8,
                          n=256, serve_config=_FAST)
        check_report(report)  # must not raise
        assert report.completed == 24 and report.wrong == 0
        assert report.batch_size_max >= 2
        assert report.plan_hit_rate > 0.90
        assert report.latency_p99_ms >= report.latency_p50_ms > 0

    def test_faulted_run_degrades_but_stays_correct(self):
        report = run_load(shape="compact", clients=2,
                          requests_per_client=6, n=256,
                          serve_config=_FAST, fault="always")
        check_report(report, faulted=True)
        assert report.completed == 12 and report.wrong == 0
        assert report.degraded > 0 and report.faults_injected > 0

    def test_report_roundtrips_to_dict(self):
        report = run_load(shape="unique", clients=2, requests_per_client=3,
                          n=128, serve_config=_FAST)
        d = report.to_dict()
        assert d["completed"] == 6
        assert isinstance(report.summary(), str)


class TestCheckReport:
    def _good(self):
        return LoadReport(shape="chain", clients=2, requests=10,
                          completed=10, batch_size_max=4,
                          plan_hit_rate=1.0)

    def test_passes_on_good_report(self):
        check_report(self._good())

    def test_flags_incomplete(self):
        r = self._good()
        r.completed = 9
        r.failed = 1
        with pytest.raises(ServeError, match="completed 9/10"):
            check_report(r)

    def test_flags_wrong_results(self):
        r = self._good()
        r.wrong = 2
        with pytest.raises(ServeError, match="wrong outputs"):
            check_report(r)

    def test_flags_missing_batching(self):
        r = self._good()
        r.batch_size_max = 1
        with pytest.raises(ServeError, match="batching is not engaging"):
            check_report(r)

    def test_flags_cold_plan_cache(self):
        r = self._good()
        r.plan_hit_rate = 0.5
        with pytest.raises(ServeError, match="hit rate"):
            check_report(r)

    def test_faulted_requires_degradation(self):
        r = self._good()
        r.plan_hit_rate = 0.0  # irrelevant when faulted
        r.degraded = 0
        with pytest.raises(ServeError, match="never degraded"):
            check_report(r, faulted=True)
        r.degraded = 3
        check_report(r, faulted=True)
