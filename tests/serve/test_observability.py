"""Serve-layer instrumentation: spans and metrics under ``repro.obs``,
plus the always-on flight recorder and its incident triggers.

With a tracer active, every request must leave a ``serve.request`` span
(with queued/batch_window/execute/finalize children) on its own track,
and the ``serve.*`` metrics must land on the tracer's registry so one
export carries the whole story.  Without a tracer, the flight recorder
still rings lifecycle events and dumps incident bundles that name the
failing request, op chain and phase.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.errors import LaunchError
from repro.serve import ServeConfig, Server


@pytest.fixture
def data(rng):
    return rng.integers(0, 4, 200).astype(np.float64)


def test_request_spans_and_metrics_under_tracing(data):
    with obs.tracing("spans") as tracer:
        with Server(ServeConfig(max_wait_ms=1.0, num_workers=1)) as srv:
            srv.submit("compact", data, 0.0).result(timeout=30)
            srv.submit_chain([("compact", 0.0), "unique"], data) \
               .result(timeout=30)
        assert srv.metrics is tracer.metrics

    spans = [(track, sp) for track, sp, _ in tracer.iter_spans()
             if track.startswith("serve:req")]
    roots = [sp for _, sp in spans if sp.name == "serve.request"]
    assert len(roots) == 2
    for root in roots:
        names = {c.name for c in root.children}
        assert {"serve.queued", "serve.batch_window",
                "serve.execute", "serve.finalize"} <= names
        assert root.args["state"] == "done"
        assert root.args["request_id"] == root.args["id"]
        assert root.end_us >= root.start_us
        # lifecycle children tile the request without overlap
        kids = sorted(root.children, key=lambda c: c.start_us)
        for a, b in zip(kids, kids[1:]):
            assert a.end_us <= b.start_us + 1e-6

    chain_root = next(sp for sp in roots
                      if sp.args["ops"] == "ds_stream_compact+ds_unique")
    assert chain_root.args["degraded"] is False

    counters = {c.name: c.value for c in tracer.metrics
                if c.name.startswith("serve.") and c.kind == "counter"}
    assert counters["serve.admitted"] == 2
    assert counters["serve.completed"] == 2


def test_no_tracer_no_spans(data):
    # Without obs.tracing the server keeps private metrics and never
    # touches a tracer — the hot path must not require one.
    with Server(ServeConfig(max_wait_ms=1.0, num_workers=1)) as srv:
        srv.submit("compact", data, 0.0).result(timeout=30)
    assert srv.metrics.get("serve.completed").value == 1
    assert obs.active() is None


def test_launch_spans_carry_request_ids(data):
    # End-to-end correlation: the batch's request ids must be threaded
    # through the annotation scope into the launch spans it produced.
    with obs.tracing("spans") as tracer:
        with Server(ServeConfig(max_wait_ms=1.0, num_workers=1)) as srv:
            fut = srv.submit("compact", data, 0.0)
            fut.result(timeout=30)
    launches = [sp for _, sp, _ in tracer.iter_spans()
                if sp.cat == "launch"]
    annotated = [sp for sp in launches if "request_ids" in sp.args]
    assert annotated, "no launch span carried request_ids"
    assert fut.request_id in annotated[0].args["request_ids"]
    assert annotated[0].args["batch_ops"] == "ds_stream_compact"


class TestFlightRecorder:
    def test_ring_records_lifecycle_without_tracer(self, data):
        with Server(ServeConfig(max_wait_ms=1.0, num_workers=1)) as srv:
            srv.submit("compact", data, 0.0).result(timeout=30)
            events = [e["event"] for e in srv.flight.events()]
        assert "serve.admit" in events
        assert "serve.dispatch" in events
        assert "serve.request_done" in events
        assert obs.active() is None

    def test_flight_capacity_zero_disables_recorder(self, data):
        cfg = ServeConfig(max_wait_ms=1.0, num_workers=1,
                          flight_capacity=0)
        with Server(cfg) as srv:
            srv.submit("compact", data, 0.0).result(timeout=30)
            assert srv.flight is None
            assert srv.stats()["flight"] is None

    def test_fault_storm_dumps_one_bundle_naming_the_failure(
            self, data, tmp_path):
        def chaos(batch):
            raise LaunchError("injected by test")

        cfg = ServeConfig(max_wait_ms=1.0, num_workers=1, max_retries=1,
                          breaker_threshold=2,
                          incident_dir=str(tmp_path / "incidents"),
                          incident_cooldown_ms=60_000.0)
        with Server(cfg, fault_hook=chaos) as srv:
            futs = [srv.submit("compact", data, 0.0) for _ in range(3)]
            for fut in futs:
                fut.result(timeout=30)  # degradation still serves them
            dumps = list(srv.flight.dumps)
        assert dumps, "no incident bundle was written"
        manifest = json.loads((dumps[0] / "manifest.json").read_text())
        assert manifest["trigger"] in ("breaker_open", "launch_error")
        ctx = manifest["context"]
        assert ctx["phase"] == "execute"
        assert ctx["ops"] == "ds_stream_compact"
        assert futs[0].request_id in ctx["request_ids"]
        assert manifest["serve_config"]["max_retries"] == 1
        failed = [e for e in manifest["events"]
                  if e["event"] == "serve.fast_path_failed"]
        assert failed and "injected by test" in failed[0]["error"]

    def test_deadline_trigger_names_queue_phase(self, data, tmp_path):
        cfg = ServeConfig(max_wait_ms=1.0, num_workers=1,
                          incident_dir=str(tmp_path))
        srv = Server(cfg, autostart=False)
        fut = srv.submit("compact", data, 0.0, deadline_ms=0.001)
        import time
        time.sleep(0.01)  # expire while staged (server not started)
        srv.start()
        with pytest.raises(Exception):
            fut.result(timeout=30)
        srv.close(drain=True)
        assert srv.flight.dumps
        manifest = json.loads(
            (srv.flight.dumps[0] / "manifest.json").read_text())
        assert manifest["trigger"] == "deadline"
        assert manifest["context"]["phase"] == "queue"
        assert manifest["context"]["request_ids"] == [fut.request_id]

    def test_slo_breach_trigger(self, data, tmp_path):
        cfg = ServeConfig(max_wait_ms=1.0, num_workers=1,
                          slo_ms=0.0001, incident_dir=str(tmp_path))
        with Server(cfg) as srv:
            srv.submit("compact", data, 0.0).result(timeout=30)
        # read after close(): the dump happens in _finalize, which may
        # still be running when the future resolves
        assert srv.metrics.get("serve.slo_breaches").value >= 1
        dumps = list(srv.flight.dumps)
        manifest = json.loads((dumps[0] / "manifest.json").read_text())
        assert manifest["trigger"] == "slo_breach"
        assert manifest["context"]["phase"] == "finalize"

    def test_no_incident_dir_records_but_never_dumps(self, data):
        def chaos(batch):
            raise LaunchError("injected by test")

        cfg = ServeConfig(max_wait_ms=1.0, num_workers=1, max_retries=0,
                          breaker_threshold=1)  # incident_dir=None
        with Server(cfg, fault_hook=chaos) as srv:
            srv.submit("compact", data, 0.0).result(timeout=30)
            events = [e["event"] for e in srv.flight.events()]
            assert "serve.incident_trigger" in events
            assert srv.flight.dumps == []


class TestStats:
    def test_stats_snapshot_shape(self, data):
        with Server(ServeConfig(max_wait_ms=1.0, num_workers=1)) as srv:
            for _ in range(4):
                srv.submit("compact", data, 0.0).result(timeout=30)
            stats = srv.stats()
        lat = stats["serve.latency_ms"]
        assert lat["count"] == 4
        assert lat["p50"] <= lat["p95"] <= lat["p99"]
        assert stats["inflight"] == 0 and stats["queue_depth"] == 0
        assert 0.0 <= stats["plan_cache.hit_rate"] <= 1.0
        assert set(stats["signature_cache"]) == {"hits", "misses",
                                                 "size", "hit_rate"}
        assert stats["flight"]["capacity"] == 4096
        assert stats["flight"]["n_events"] > 0


class TestEventLog:
    def test_event_log_file_threads_request_ids(self, data, tmp_path):
        log_path = tmp_path / "serve.log.jsonl"
        cfg = ServeConfig(max_wait_ms=1.0, num_workers=1,
                          event_log=str(log_path))
        with Server(cfg) as srv:
            fut = srv.submit("compact", data, 0.0)
            fut.result(timeout=30)
        records = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        events = {r["event"] for r in records}
        assert {"serve.admit", "serve.dispatch",
                "serve.request_done", "launch.done"} <= events
        # one grep by request_id follows the request across layers
        mine = [r for r in records
                if r.get("request_id") == fut.request_id
                or fut.request_id in (r.get("request_ids") or [])]
        kinds = {r["event"] for r in mine}
        assert {"serve.admit", "serve.dispatch", "launch.done",
                "serve.request_done"} <= kinds
        # the server uninstalls the log it installed
        from repro.obs import log as obslog
        assert obslog.get() is None
