"""Serve-layer instrumentation: spans and metrics under ``repro.obs``.

With a tracer active, every request must leave a ``serve.request`` span
(with queued/execute children) on its own track, and the ``serve.*``
metrics must land on the tracer's registry so one export carries the
whole story.
"""

import numpy as np
import pytest

from repro import obs
from repro.serve import ServeConfig, Server


@pytest.fixture
def data(rng):
    return rng.integers(0, 4, 200).astype(np.float64)


def test_request_spans_and_metrics_under_tracing(data):
    with obs.tracing("spans") as tracer:
        with Server(ServeConfig(max_wait_ms=1.0, num_workers=1)) as srv:
            srv.submit("compact", data, 0.0).result(timeout=30)
            srv.submit_chain([("compact", 0.0), "unique"], data) \
               .result(timeout=30)
        assert srv.metrics is tracer.metrics

    spans = [(track, sp) for track, sp, _ in tracer.iter_spans()
             if track.startswith("serve:req")]
    roots = [sp for _, sp in spans if sp.name == "serve.request"]
    assert len(roots) == 2
    for root in roots:
        names = {c.name for c in root.children}
        assert "serve.queued" in names and "serve.execute" in names
        assert root.args["state"] == "done"
        assert root.end_us >= root.start_us

    chain_root = next(sp for sp in roots
                      if sp.args["ops"] == "ds_stream_compact+ds_unique")
    assert chain_root.args["degraded"] is False

    counters = {c.name: c.value for c in tracer.metrics
                if c.name.startswith("serve.") and c.kind == "counter"}
    assert counters["serve.admitted"] == 2
    assert counters["serve.completed"] == 2


def test_no_tracer_no_spans(data):
    # Without obs.tracing the server keeps private metrics and never
    # touches a tracer — the hot path must not require one.
    with Server(ServeConfig(max_wait_ms=1.0, num_workers=1)) as srv:
        srv.submit("compact", data, 0.0).result(timeout=30)
    assert srv.metrics.get("serve.completed").value == 1
    assert obs.active() is None
