"""ServeConfig: validation and environment parsing.

The serving knobs must fail fast and name the offending field (or the
``REPRO_SERVE_*`` variable a bad value arrived through) — an operator
tuning a service should never discover a typo as a deep runtime error.
"""

import pytest

from repro.serve import DEFAULT_SERVE_CONFIG, ServeConfig


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = ServeConfig()
        assert cfg == DEFAULT_SERVE_CONFIG
        assert cfg.max_batch_size >= 1
        assert cfg.default_deadline_ms is None

    def test_replace(self):
        cfg = ServeConfig().replace(max_batch_size=16, max_wait_ms=0.0)
        assert (cfg.max_batch_size, cfg.max_wait_ms) == (16, 0.0)
        assert ServeConfig().max_batch_size == 8  # original untouched

    @pytest.mark.parametrize("field_name,bad", [
        ("max_batch_size", 0),
        ("max_queue_depth", 0),
        ("num_workers", 0),
        ("breaker_threshold", 0),
        ("max_wait_ms", -1.0),
        ("max_retries", -1),
        ("retry_backoff_ms", -0.5),
        ("breaker_cooldown_ms", -1.0),
        ("default_deadline_ms", 0),
    ])
    def test_rejects_out_of_range(self, field_name, bad):
        with pytest.raises(ValueError, match=f"ServeConfig.{field_name}"):
            ServeConfig(**{field_name: bad})

    def test_zero_is_fine_where_meaningful(self):
        cfg = ServeConfig(max_wait_ms=0.0, max_retries=0,
                          retry_backoff_ms=0.0, breaker_cooldown_ms=0.0)
        assert cfg.max_retries == 0


class TestFromEnv:
    def test_empty_env_gives_defaults(self):
        assert ServeConfig.from_env({}) == ServeConfig()

    def test_reads_every_variable(self):
        cfg = ServeConfig.from_env({
            "REPRO_SERVE_BATCH_SIZE": "16",
            "REPRO_SERVE_WAIT_MS": "5.5",
            "REPRO_SERVE_QUEUE_DEPTH": "64",
            "REPRO_SERVE_WORKERS": "3",
            "REPRO_SERVE_DEADLINE_MS": "250",
            "REPRO_SERVE_RETRIES": "1",
            "REPRO_SERVE_BACKOFF_MS": "2.5",
            "REPRO_SERVE_BREAKER_THRESHOLD": "5",
            "REPRO_SERVE_BREAKER_COOLDOWN_MS": "100",
            "REPRO_SERVE_SEED": "7",
        })
        assert cfg == ServeConfig(
            max_batch_size=16, max_wait_ms=5.5, max_queue_depth=64,
            num_workers=3, default_deadline_ms=250.0, max_retries=1,
            retry_backoff_ms=2.5, breaker_threshold=5,
            breaker_cooldown_ms=100.0, seed=7)

    def test_blank_values_are_ignored(self):
        cfg = ServeConfig.from_env({"REPRO_SERVE_BATCH_SIZE": "  "})
        assert cfg.max_batch_size == ServeConfig().max_batch_size

    @pytest.mark.parametrize("var,raw", [
        ("REPRO_SERVE_BATCH_SIZE", "eight"),
        ("REPRO_SERVE_BATCH_SIZE", "3.5"),
        ("REPRO_SERVE_WAIT_MS", "soon"),
        ("REPRO_SERVE_WORKERS", "two"),
        ("REPRO_SERVE_BREAKER_COOLDOWN_MS", "x"),
    ])
    def test_malformed_value_names_the_variable(self, var, raw):
        with pytest.raises(ValueError, match=var):
            ServeConfig.from_env({var: raw})

    @pytest.mark.parametrize("var,raw", [
        ("REPRO_SERVE_BATCH_SIZE", "0"),
        ("REPRO_SERVE_WORKERS", "-1"),
        ("REPRO_SERVE_WAIT_MS", "-2"),
        ("REPRO_SERVE_DEADLINE_MS", "0"),
    ])
    def test_out_of_range_value_names_the_variable(self, var, raw):
        with pytest.raises(ValueError, match=var):
            ServeConfig.from_env({var: raw})


class TestObservabilityKnobs:
    def test_flight_env_vars(self):
        cfg = ServeConfig.from_env({
            "REPRO_SERVE_FLIGHT_CAPACITY": "128",
            "REPRO_SERVE_INCIDENT_DIR": "/tmp/incidents",
            "REPRO_SERVE_INCIDENT_COOLDOWN_MS": "500",
            "REPRO_SERVE_SLO_MS": "25.0",
            "REPRO_SERVE_EVENT_LOG": "/tmp/serve.log.jsonl",
        })
        assert cfg.flight_capacity == 128
        assert cfg.incident_dir == "/tmp/incidents"
        assert cfg.incident_cooldown_ms == 500.0
        assert cfg.slo_ms == 25.0
        assert cfg.event_log == "/tmp/serve.log.jsonl"

    def test_defaults_keep_dumping_and_log_off(self):
        cfg = ServeConfig()
        assert cfg.flight_capacity == 4096
        assert cfg.incident_dir is None
        assert cfg.event_log is None
        assert cfg.slo_ms is None

    def test_flight_capacity_zero_is_allowed(self):
        assert ServeConfig(flight_capacity=0).flight_capacity == 0

    @pytest.mark.parametrize("var,raw", [
        ("REPRO_SERVE_FLIGHT_CAPACITY", "-1"),
        ("REPRO_SERVE_SLO_MS", "0"),
        ("REPRO_SERVE_INCIDENT_COOLDOWN_MS", "-5"),
    ])
    def test_out_of_range_observability_value(self, var, raw):
        with pytest.raises(ValueError, match=var):
            ServeConfig.from_env({var: raw})
