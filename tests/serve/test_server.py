"""The serve layer's happy path: correctness, batching, admission.

Every response must be byte-identical to the reference semantics no
matter how requests were grouped — batching is an optimization, never
an observable behavior (except in the metrics).
"""

import numpy as np
import pytest

from repro import DSConfig
from repro.core.predicates import less_than
from repro.errors import Overloaded, ServeError
from repro.reference import remove_if_ref, unique_ref
from repro.serve import ServeConfig, Server


def _cfg(**kw):
    kw.setdefault("max_wait_ms", 1.0)
    kw.setdefault("num_workers", 1)
    return ServeConfig(**kw)


@pytest.fixture
def data(rng):
    return rng.integers(0, 4, 256).astype(np.float64)


class TestCorrectness:
    def test_single_compact(self, data):
        with Server(_cfg()) as srv:
            out = srv.submit("compact", data, 0.0).output
        assert np.array_equal(out, data[data != 0.0])

    def test_single_unique(self, data):
        runs = np.repeat(data, 3)
        with Server(_cfg()) as srv:
            out = srv.submit("unique", runs).output
        assert np.array_equal(out, unique_ref(runs))

    def test_remove_if_with_predicate(self, rng):
        x = rng.random(300)
        pred = less_than(0.5)
        with Server(_cfg()) as srv:
            out = srv.submit("remove_if", x, pred).output
        assert np.array_equal(out, remove_if_ref(x, pred))

    def test_pad_kwargs_travel(self, rng):
        x = rng.random((8, 16))
        with Server(_cfg()) as srv:
            res = srv.submit("pad", x, 4, fill=-1.0).result()
        assert res.output.shape == (8, 20)
        assert np.all(res.output[:, 16:] == -1.0)

    def test_chain_fuses_compact_unique(self, data):
        with Server(_cfg()) as srv:
            res = srv.submit_chain([("compact", 0.0), "unique"], data) \
                     .result()
        assert np.array_equal(res.output, unique_ref(data[data != 0.0]))
        # The chain rode the pipeline's fused flag chain, not two
        # separate launches.
        assert res.extras.get("fused_stages")

    def test_full_names_and_shorts_both_resolve(self, data):
        with Server(_cfg()) as srv:
            a = srv.submit("ds_stream_compact", data, 0.0).output
            b = srv.submit("compact", data, 0.0).output
        assert np.array_equal(a, b)

    def test_unknown_op_rejected_at_submit(self, data):
        with Server(_cfg()) as srv:
            with pytest.raises(Exception, match="no_such_op"):
                srv.submit("no_such_op", data)


class TestBatching:
    def test_identical_requests_share_one_batch(self, data):
        srv = Server(_cfg(max_batch_size=4), autostart=False)
        futs = [srv.submit("compact", data, 0.0) for _ in range(4)]
        srv.start()
        for f in futs:
            assert np.array_equal(f.output, data[data != 0.0])
        srv.close()
        hist = srv.metrics.get("serve.batch_size")
        assert hist.count == 1 and hist.max == 4

    def test_incompatible_requests_split_batches(self, data):
        srv = Server(_cfg(max_batch_size=8), autostart=False)
        futs = [srv.submit("compact", data, 0.0),
                srv.submit("compact", data, 1.0),      # different param
                srv.submit("unique", data),            # different op
                srv.submit("compact", data[:100], 0.0)]  # different size
        srv.start()
        for f in futs:
            f.result(timeout=30)
        srv.close()
        hist = srv.metrics.get("serve.batch_size")
        assert hist.count == 4 and hist.max == 1

    def test_batch_respects_max_batch_size(self, data):
        srv = Server(_cfg(max_batch_size=3), autostart=False)
        futs = [srv.submit("compact", data, 0.0) for _ in range(7)]
        srv.start()
        for f in futs:
            f.result(timeout=30)
        srv.close()
        hist = srv.metrics.get("serve.batch_size")
        assert hist.max <= 3 and hist.count >= 3

    def test_per_request_config_separates_batches(self, data):
        srv = Server(_cfg(max_batch_size=8), autostart=False)
        futs = [srv.submit("compact", data, 0.0,
                           config=DSConfig(wg_size=32)),
                srv.submit("compact", data, 0.0,
                           config=DSConfig(wg_size=64))]
        srv.start()
        for f in futs:
            f.result(timeout=30)
        srv.close()
        assert srv.metrics.get("serve.batch_size").max == 1

    def test_prime_prewarns_the_plan_cache(self, data):
        srv = Server(_cfg(max_batch_size=4), autostart=False)
        srv.prime([("compact", 0.0)], data)
        hits0, misses0 = srv.plan_cache.stats()
        assert misses0 == 4  # one plan per batch size 1..4
        futs = [srv.submit("compact", data, 0.0) for _ in range(4)]
        srv.start()
        for f in futs:
            f.result(timeout=30)
        srv.close()
        hits1, misses1 = srv.plan_cache.stats()
        assert misses1 == misses0  # serving planned nothing new
        assert hits1 > hits0


class TestAdmission:
    def test_overloaded_sheds_with_context(self, data):
        srv = Server(_cfg(max_queue_depth=2), autostart=False)
        srv.submit("compact", data, 0.0)
        srv.submit("compact", data, 0.0)
        with pytest.raises(Overloaded) as exc:
            srv.submit("compact", data, 0.0)
        assert exc.value.queue_depth == 2 and exc.value.limit == 2
        assert srv.metrics.get("serve.shed").value == 1
        srv.start()
        srv.close()  # the two admitted requests still drain

    def test_closed_server_rejects_submissions(self, data):
        srv = Server(_cfg())
        srv.close()
        with pytest.raises(ServeError, match="closed"):
            srv.submit("compact", data, 0.0)

    def test_close_without_drain_cancels_queued(self, data):
        srv = Server(_cfg(), autostart=False)
        fut = srv.submit("compact", data, 0.0)
        srv.close(drain=False)
        assert fut.exception(timeout=5) is not None
        assert fut.state == "cancelled"


class TestIntrospection:
    def test_stats_snapshot(self, data):
        with Server(_cfg()) as srv:
            srv.submit("compact", data, 0.0).result(timeout=30)
            stats = srv.stats()
        assert stats["serve.admitted"] == 1
        assert stats["serve.completed"] == 1
        assert "plan_cache.hits" in stats and "breaker" in stats

    def test_queue_depth_gauge_returns_to_zero(self, data):
        with Server(_cfg()) as srv:
            srv.submit("compact", data, 0.0).result(timeout=30)
        srv.close()
        assert srv.metrics.get("serve.queue_depth").value == 0

    def test_stats_consistent_with_requests_in_flight(self, data):
        # Requests staged on a not-yet-started server are all visible in
        # the snapshot as queued (nothing lost, nothing double-counted).
        srv = Server(_cfg(max_batch_size=4), autostart=False)
        futs = [srv.submit("compact", data, 0.0) for _ in range(6)]
        stats = srv.stats()
        # inflight counts admitted-but-not-completed, so before start it
        # equals the queue depth — every request visible, none twice.
        assert stats["serve.admitted"] == 6
        assert stats["inflight"] == 6
        assert stats["queue_depth"] == 6
        assert stats.get("serve.completed", 0) == 0
        assert stats["tuned"] == {}

        # While the server drains, every concurrent snapshot must keep
        # the books balanced.  completed is counted just before inflight
        # is decremented, so a snapshot can transiently see both — the
        # invariant is admitted <= completed + inflight, never a loss.
        srv.start()
        for _ in range(50):
            s = srv.stats()
            done = s.get("serve.completed", 0)
            assert done <= s["serve.admitted"]
            assert done + s["inflight"] >= s["serve.admitted"]
            assert s["queue_depth"] <= s["inflight"] + done
            if done == 6:
                break
        for fut in futs:
            assert np.array_equal(fut.result(timeout=30).output,
                                  data[data != 0.0])
        stats = srv.stats()
        assert stats["serve.completed"] == 6
        assert stats["queue_depth"] == 0 and stats["inflight"] == 0
        srv.close()
