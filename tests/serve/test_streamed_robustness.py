"""Streamed (out-of-core) requests through the robustness ring.

``tests/serve/test_robustness.py`` exercises the circuit breaker and
the sequential-baseline degrade path with resident arrays only; these
tests push :class:`~repro.stream.source.DSSource` inputs through the
same machinery.  The invariant is unchanged — correct bytes or a typed
error — plus one streamed-specific fact: degradation *materializes*
the source (the baseline is the correctness backstop, not the memory
one) and must still return exactly what the fast streaming path would.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.reference import unique_ref
from repro.serve import ServeConfig, Server
from repro.stream.source import MemmapSource


def _cfg(**kw):
    kw.setdefault("max_wait_ms", 1.0)
    kw.setdefault("num_workers", 1)
    return ServeConfig(**kw)


@pytest.fixture
def data(rng):
    return rng.integers(0, 4, 257).astype(np.float64)


@pytest.fixture
def source(tmp_path, data):
    """An out-of-core memmap source over ``data``."""
    path = tmp_path / "payload.bin"
    mm = np.memmap(path, dtype=np.float64, mode="w+", shape=data.shape)
    mm[:] = data
    mm.flush()
    src = MemmapSource(np.memmap(path, dtype=np.float64, mode="r",
                                 shape=data.shape))
    assert not src.in_core
    return src


class TestStreamedDegrade:
    def test_open_breaker_materializes_and_stays_correct(self, source,
                                                         data):
        with Server(_cfg(max_retries=0, breaker_threshold=1,
                         breaker_cooldown_ms=60_000)) as srv:
            srv.breaker.force_open(("ds_stream_compact",))
            res = srv.submit("compact", source, 0.0).result(timeout=30)
        assert res.extras["degraded"] is True
        assert np.array_equal(res.output, data[data != 0.0])
        assert srv.metrics.get("serve.degraded").value == 1

    def test_exhausted_retries_degrade_a_streamed_chain(self, source,
                                                        data):
        def always_fail(batch):
            raise LaunchError("injected permanent fault")

        with Server(_cfg(max_retries=1, retry_backoff_ms=0.0,
                         breaker_threshold=10),
                    fault_hook=always_fail) as srv:
            res = srv.submit_chain([("compact", 0.0), "unique"],
                                   source).result(timeout=30)
        assert res.extras["degraded"] is True
        assert np.array_equal(res.output, unique_ref(data[data != 0.0]))
        assert srv.metrics.get("serve.retries").value >= 1

    def test_streamed_failures_trip_the_breaker_then_recover(
            self, source, data):
        healthy = threading.Event()

        def fail_until_healthy(batch):
            if not healthy.is_set():
                raise LaunchError("injected outage")

        with Server(_cfg(max_retries=0, retry_backoff_ms=0.0,
                         breaker_threshold=1, breaker_cooldown_ms=1.0),
                    fault_hook=fail_until_healthy) as srv:
            expected = data[data != 0.0]
            r1 = srv.submit("compact", source, 0.0).result(timeout=30)
            assert r1.extras["degraded"] is True
            assert np.array_equal(r1.output, expected)
            assert srv.breaker.state(("ds_stream_compact",)) != "closed"
            # Recovery: the probe succeeds and the streamed fast path
            # (sharded engine, not the baseline) serves again.
            healthy.set()
            time.sleep(0.005)
            r2 = srv.submit("compact", source, 0.0).result(timeout=30)
            assert not r2.extras.get("degraded")
            assert np.array_equal(r2.output, expected)
            assert srv.breaker.state(("ds_stream_compact",)) == "closed"

    def test_breaker_covers_streamed_and_resident_traffic_alike(
            self, source, data):
        # Streamed and resident requests batch apart (different batch
        # keys) but share one breaker keyed on the op chain: an outage
        # of the op degrades both forms, and both stay byte-correct.
        with Server(_cfg(max_retries=0, breaker_threshold=1,
                         breaker_cooldown_ms=60_000)) as srv:
            srv.breaker.force_open(("ds_stream_compact",))
            streamed = srv.submit("compact", source, 0.0).result(timeout=30)
            resident = srv.submit("compact", data, 0.0).result(timeout=30)
        expected = data[data != 0.0]
        for res in (streamed, resident):
            assert res.extras["degraded"] is True
            assert np.array_equal(res.output, expected)

    def test_fast_path_still_streams_when_healthy(self, source, data):
        with Server(_cfg(breaker_threshold=10)) as srv:
            res = srv.submit("compact", source, 0.0).result(timeout=30)
        assert not res.extras.get("degraded")
        assert np.array_equal(res.output, data[data != 0.0])
        # The healthy path went through the sharded engine, which
        # stamps how many shards the single pass covered.
        assert res.extras.get("shards", 0) >= 1
