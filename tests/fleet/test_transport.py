"""Cross-process transport: op-chain freezing with probe-verified
predicates, and the zero-copy shared-memory payload/result path."""

import numpy as np
import pytest

from repro.core import predicates
from repro.core.predicates import Predicate
from repro.errors import FleetError
from repro.fleet.transport import (PROBE, attach_payload, fetch_result,
                                   freeze_ops, revive_ops, stage_payload,
                                   stage_result)


class TestFreezeRevive:
    def test_roundtrip_preserves_chain_shape(self):
        ops = [("compact", 0.0), "unique",
               ("remove_if", predicates.is_even())]
        revived = revive_ops(freeze_ops(ops))
        assert revived[0] == ("compact", 0.0)
        assert revived[1] == ("unique",)
        name, pred = revived[2]
        assert name == "remove_if"
        assert isinstance(pred, Predicate)
        assert np.array_equal(pred(PROBE), predicates.is_even()(PROBE))

    def test_frozen_form_is_plain_picklable_data(self):
        import pickle

        frozen = freeze_ops([("remove_if", predicates.less_than(0.5))])
        assert frozen == [["remove_if", ["__pred__", "less_than(0.5)"]]]
        assert pickle.loads(pickle.dumps(frozen)) == frozen

    def test_numpy_scalars_cross_as_python_scalars(self):
        frozen = freeze_ops([("compact", np.float64(0.5))])
        assert frozen == [["compact", 0.5]]
        assert type(frozen[0][1]) is float

    def test_kwargs_dict_roundtrips(self):
        ops = [("compact", 0.0, {"threshold": 1.5})]
        assert revive_ops(freeze_ops(ops)) == \
            [("compact", 0.0, {"threshold": 1.5})]

    def test_lying_predicate_rejected_at_freeze(self):
        # The name claims is_even, the closure computes something else:
        # probe verification in the router must catch it before a
        # worker silently computes the wrong answer.
        liar = Predicate(lambda x: x > 100, "is_even")
        with pytest.raises(FleetError, match="probe"):
            freeze_ops([("remove_if", liar)])

    def test_unnameable_predicate_rejected_at_freeze(self):
        custom = Predicate(lambda x: x > 0, "my_custom_thing")
        with pytest.raises(FleetError, match="vocabulary"):
            freeze_ops([("remove_if", custom)])

    def test_array_argument_is_not_transportable(self):
        with pytest.raises(FleetError, match="not.*transportable"):
            freeze_ops([("compact", np.array([1.0, 2.0]))])

    def test_empty_chain_rejected(self):
        with pytest.raises(FleetError):
            freeze_ops([])


class TestPayloads:
    def test_in_core_payload_is_zero_copy_shm(self):
        data = np.arange(257, dtype=np.float64)
        desc, scratch, meta = stage_payload(data)
        assert meta["in_core"] is True
        assert desc[0] == "shm"
        try:
            view, shm = attach_payload(desc, meta)
            try:
                assert isinstance(view, np.ndarray)
                assert np.array_equal(view, data)
            finally:
                del view
                shm.close()
        finally:
            scratch.close()
            scratch.unlink()

    def test_out_of_core_memmap_payload_stays_streamed(self, tmp_path):
        from repro.stream.source import MemmapSource

        path = tmp_path / "payload.bin"
        data = np.arange(129, dtype=np.float64)
        mm = np.memmap(path, dtype=np.float64, mode="w+",
                       shape=data.shape)
        mm[:] = data
        mm.flush()
        desc, scratch, meta = stage_payload(MemmapSource(mm))
        assert meta["in_core"] is False
        assert desc[0] == "memmap"
        assert scratch is None
        source, shm = attach_payload(desc, meta)
        assert shm is None
        assert isinstance(source, MemmapSource)
        assert not source.in_core
        assert np.array_equal(source.materialize(), data)

    def test_result_roundtrip_copies_then_unlinks(self):
        from multiprocessing import shared_memory

        out = np.linspace(-2.0, 2.0, 63)
        desc, seg = stage_result(out)
        seg.close()  # the worker posts the descriptor and lets go
        fetched = fetch_result(desc)
        assert np.array_equal(fetched, out)
        assert fetched.dtype == out.dtype
        # fetch_result unlinked the segment; it must be gone.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=desc[1])

    def test_empty_result_roundtrips(self):
        out = np.array([], dtype=np.float64)
        desc, seg = stage_result(out)
        seg.close()
        assert fetch_result(desc).shape == (0,)
