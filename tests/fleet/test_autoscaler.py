"""Autoscaler policy: hysteresis streaks, cooldown freezes and the
pool-size bounds, tick by deterministic tick."""

from repro.fleet.autoscaler import Autoscaler, TickSnapshot
from repro.fleet.config import FleetConfig


def _cfg(**kw):
    base = dict(n_workers=1, min_workers=1, max_workers=4,
                queue_high=8, queue_low=1, p95_high_ms=250.0,
                up_after=2, down_after=3, cooldown_ticks=2)
    base.update(kw)
    return FleetConfig(**base)


def _pressured(n_workers=1):
    # queue at exactly queue_high * n_workers counts as pressure.
    return TickSnapshot(n_workers=n_workers, queue_depth=8 * n_workers,
                        inflight=8 * n_workers, p95_ms=0.0,
                        completed_delta=5)


def _idle(n_workers=2):
    return TickSnapshot(n_workers=n_workers, queue_depth=0, inflight=0,
                        p95_ms=1.0, completed_delta=0)


def _busy(n_workers=1):
    return TickSnapshot(n_workers=n_workers, queue_depth=2, inflight=3,
                        p95_ms=10.0, completed_delta=7)


class TestScaleUp:
    def test_requires_consecutive_pressured_ticks(self):
        scaler = Autoscaler(_cfg(up_after=2))
        assert scaler.observe(_pressured()) is None
        assert scaler.observe(_pressured()) == "up"

    def test_streak_resets_on_a_calm_tick(self):
        scaler = Autoscaler(_cfg(up_after=2))
        assert scaler.observe(_pressured()) is None
        assert scaler.observe(_busy()) is None
        assert scaler.observe(_pressured()) is None  # streak restarted

    def test_p95_alone_is_pressure(self):
        scaler = Autoscaler(_cfg(up_after=1, p95_high_ms=100.0))
        snap = TickSnapshot(n_workers=1, queue_depth=0, inflight=1,
                            p95_ms=150.0, completed_delta=3)
        assert scaler.observe(snap) == "up"

    def test_never_exceeds_max_workers(self):
        scaler = Autoscaler(_cfg(up_after=1, cooldown_ticks=0,
                                 max_workers=2))
        assert scaler.observe(_pressured(n_workers=2)) is None


class TestScaleDown:
    def test_requires_consecutive_idle_ticks(self):
        scaler = Autoscaler(_cfg(n_workers=2, down_after=3))
        assert scaler.observe(_idle()) is None
        assert scaler.observe(_idle()) is None
        assert scaler.observe(_idle()) == "down"

    def test_completions_block_idleness(self):
        scaler = Autoscaler(_cfg(n_workers=2, down_after=1))
        snap = TickSnapshot(n_workers=2, queue_depth=0, inflight=0,
                            p95_ms=1.0, completed_delta=4)
        assert scaler.observe(snap) is None

    def test_never_drops_below_min_workers(self):
        scaler = Autoscaler(_cfg(down_after=1, cooldown_ticks=0))
        for _ in range(5):
            assert scaler.observe(_idle(n_workers=1)) is None


class TestCooldown:
    def test_cooldown_freezes_both_streaks(self):
        scaler = Autoscaler(_cfg(up_after=2, cooldown_ticks=2))
        scaler.observe(_pressured())
        assert scaler.observe(_pressured()) == "up"
        # Two cooldown ticks: pressure keeps arriving but nothing fires
        # and no streak accumulates behind the scenes.
        assert scaler.observe(_pressured(n_workers=2)) is None
        assert scaler.observe(_pressured(n_workers=2)) is None
        # Fresh evidence is required after the cooldown expires.
        assert scaler.observe(_pressured(n_workers=2)) is None
        assert scaler.observe(_pressured(n_workers=2)) == "up"


class TestHistory:
    def test_every_tick_is_logged_with_an_index(self):
        scaler = Autoscaler(_cfg(up_after=2))
        scaler.observe(_busy())
        scaler.observe(_pressured())
        scaler.observe(_pressured())
        assert [h["tick"] for h in scaler.history] == [0, 1, 2]
        assert [h["decision"] for h in scaler.history] == [None, None, "up"]
        assert scaler.history[1]["pressured"] is True
        assert scaler.history[0]["idle"] is False
