"""End-to-end fleet smoke: a small real worker pool serving requests
through the hash router, sticky placement, health rollup and drain.

Kept deliberately small (2 workers, short chains) — the heavyweight
acceptance path lives in ``python -m repro fleet --check``.
"""

import numpy as np
import pytest

from repro.fleet import Fleet, FleetConfig
from repro.serve.config import ServeConfig
from repro.serve.loadgen import make_shape
from repro.stream.pool import fork_unavailable_reason

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        fork_unavailable_reason() is not None,
        reason=f"fork start method unavailable: {fork_unavailable_reason()}"),
]


def _config(**kw):
    base = dict(n_workers=2, min_workers=1, max_workers=3,
                tick_interval_s=0.0,
                serve=ServeConfig(max_wait_ms=1.0))
    base.update(kw)
    return FleetConfig(**base)


@pytest.fixture
def fleet():
    f = Fleet(_config()).start()
    try:
        yield f
    finally:
        f.close()


class TestFleetEndToEnd:
    def test_results_match_reference_and_routing_is_sticky(self, fleet):
        spec = make_shape("chain", 255, seed=42)
        futures = [fleet.submit_chain(list(spec.ops), spec.array)
                   for _ in range(4)]
        results = [f.result(timeout=60.0) for f in futures]
        for res in results:
            assert np.array_equal(res.output, spec.expected)
        # Identical batch keys must pin to one worker (warm plan cache).
        assert len({f.worker_id for f in futures}) == 1

    def test_distinct_shapes_spread_and_stats_roll_up(self, fleet):
        for name, n in (("compact", 128), ("unique", 128),
                        ("chain", 64), ("remove_if", 96)):
            spec = make_shape(name, n, seed=7)
            res = fleet.submit_chain(list(spec.ops),
                                     spec.array).result(timeout=60.0)
            assert np.array_equal(res.output, spec.expected)
        stats = fleet.stats()
        assert stats["kind"] == "repro-fleet-stats"
        assert stats["n_workers"] == 2
        assert stats["rollup"]["serve.completed"] >= 4
        assert stats["ring"]["keys"] >= 4
        assert sum(stats["routing"].values()) >= 4
        assert set(stats["workers"]) == set(stats["ring"]["loads"])

    def test_drain_hands_keys_over_and_serving_continues(self, fleet):
        spec = make_shape("compact", 128, seed=3)
        first = fleet.submit_chain(list(spec.ops), spec.array)
        assert np.array_equal(first.result(timeout=60.0).output,
                              spec.expected)
        drained = fleet.drain(first.worker_id)
        assert drained["worker_id"] == first.worker_id
        after = fleet.submit_chain(list(spec.ops), spec.array)
        assert after.worker_id != first.worker_id
        assert np.array_equal(after.result(timeout=60.0).output,
                              spec.expected)
        assert fleet.stats()["n_workers"] == 1
