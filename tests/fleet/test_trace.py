"""Distributed-tracing integration over a real (small) fleet: trace
context rides the shm transport, worker rings come back calibrated,
and the merged Chrome trace joins both sides of every request.

Kept to 2 workers and a handful of requests — the heavyweight tracing
acceptance is phase 5 of ``python -m repro fleet --check``.
"""

import numpy as np
import pytest

from repro.fleet import Fleet, FleetConfig
from repro.obs import analyze as obs_analyze
from repro.obs.export import validate_chrome_trace
from repro.serve.config import ServeConfig
from repro.serve.loadgen import make_shape
from repro.stream.pool import fork_unavailable_reason

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        fork_unavailable_reason() is not None,
        reason=f"fork start method unavailable: {fork_unavailable_reason()}"),
]


@pytest.fixture
def fleet():
    f = Fleet(FleetConfig(
        n_workers=2, min_workers=1, max_workers=3,
        tick_interval_s=0.0, trace="full",
        serve=ServeConfig(max_wait_ms=1.0))).start()
    try:
        yield f
    finally:
        f.close()


def _drive(fleet, n_requests=6, seed=11):
    specs = [make_shape(name, 128 + 32 * k, seed=seed)
             for k, name in enumerate(("chain", "compact", "unique"))]
    futures = [fleet.submit_chain(list(spec.ops), spec.array)
               for k in range(n_requests)
               for spec in (specs[k % len(specs)],)]
    for fut, k in zip(futures, range(n_requests)):
        res = fut.result(timeout=60.0)
        assert np.array_equal(res.output,
                              specs[k % len(specs)].expected)
    return futures


class TestFleetTracing:
    def test_clocks_calibrated_at_spawn(self, fleet):
        syncs = fleet.stats()["trace"]["clock_sync"]
        assert set(syncs) == set(fleet.worker_ids)
        for sync in syncs.values():
            assert sync["n_samples"] >= 1
            # CLOCK_MONOTONIC is shared; only the per-process tracer
            # origins differ, and the residual must be bounded by the
            # handshake's own rtt.
            assert sync["uncertainty_us"] <= sync["rtt_us"]

    def test_merged_trace_joins_router_and_worker_spans(self, fleet,
                                                        tmp_path):
        _drive(fleet)
        out = tmp_path / "fleet-trace.json"
        doc = fleet.dump_trace(path=out)
        validate_chrome_trace(doc)

        spans = [ev for ev in doc["traceEvents"] if ev.get("ph") == "X"]
        by_pid = {}
        for ev in spans:
            by_pid.setdefault(ev["pid"], []).append(ev)
        assert 0 in by_pid and len(by_pid) == 3  # router + 2 workers

        # Every router serve.request root must be continued by a
        # worker-side span carrying the same trace id (the context
        # crossed the fork through the transport meta dict).
        roots = [ev for ev in by_pid[0] if ev["name"] == "serve.request"]
        assert len(roots) == 6
        worker_tids = {ev["args"].get("trace_id")
                       for pid, evs in by_pid.items() if pid != 0
                       for ev in evs}
        for root in roots:
            assert root["args"]["trace_id"] in worker_tids

        # The worker side parents its serve.request under the router's
        # root span id, and kernel-level spans made it across too.
        worker_roots = [ev for pid, evs in by_pid.items() if pid != 0
                        for ev in evs if ev["name"] == "serve.request"]
        root_ids = {ev["args"]["span_id"] for ev in roots}
        assert worker_roots
        for ev in worker_roots:
            assert ev["args"]["parent_span_id"] in root_ids
        worker_cats = {ev["cat"] for pid, evs in by_pid.items()
                       if pid != 0 for ev in evs}
        assert not worker_cats.isdisjoint({"kernel", "pipeline",
                                           "launch", "phase"})

    def test_analyze_decomposes_cross_process_critical_path(
            self, fleet, tmp_path):
        _drive(fleet)
        out = tmp_path / "fleet-trace.json"
        fleet.dump_trace(path=out)
        report = obs_analyze.analyze(str(out))
        requests = report["fleet_requests"]
        assert len(requests) == 6
        joined = [r for r in requests if r["worker_detail"]]
        assert joined
        for req in joined:
            if not req["complete"]:
                continue
            # route + transport + worker + response tile the wall.
            assert req["sum_ratio"] == pytest.approx(1.0, abs=0.02)
        assert obs_analyze.check_report(report) == []

    def test_drain_archives_spans_no_loss(self, fleet, tmp_path):
        futures = _drive(fleet)
        victim = futures[0].worker_id
        drained = fleet.drain(victim)
        assert drained["worker_id"] == victim
        doc = fleet.dump_trace(path=tmp_path / "after-drain.json")
        names = {ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev.get("ph") == "M"
                 and ev["name"] == "process_name"}
        # The drained worker's lane survives through the archived ring.
        assert f"worker {victim}" in names
        spans = [ev for ev in doc["traceEvents"] if ev.get("ph") == "X"]
        assert any(ev["name"] == "serve.execute" for ev in spans)

    def test_stats_expose_trace_block(self, fleet):
        _drive(fleet, n_requests=3)
        trace = fleet.stats()["trace"]
        assert trace["mode"] == "full"
        assert trace["router_spans"] >= 3
        assert trace["fleet_incidents"] == []
