"""Incident replay planning: manifest loading and deterministic
traffic reconstruction from the recorded loadgen profile."""

import json

import pytest

from repro.errors import ReproError, ServeError
from repro.fleet.replay import (check_replay, load_bundle, plan_replay)
from repro.serve.config import ServeConfig


def _manifest(*, fault="0.5", profile=True, **overrides):
    events = [{"event": "serve.request", "op": "compact"}]
    if profile:
        events.append({"event": "loadgen.profile", "shape": "chain",
                       "n": 256, "clients": 2, "requests_per_client": 5,
                       "seed": 7, "fault": fault, "deadline_ms": None,
                       "prime": True})
    doc = {
        "kind": "repro-incident-bundle",
        "trigger": "breaker_open",
        "reason": "breaker compact+unique opened",
        "serve_config": {"max_batch_size": 4, "max_wait_ms": 2.0,
                         "not_a_field": "ignored"},
        "events": events,
    }
    doc.update(overrides)
    return doc


def _bundle_dir(tmp_path, doc):
    bundle = tmp_path / "incident-0001"
    bundle.mkdir()
    (bundle / "manifest.json").write_text(json.dumps(doc))
    return bundle


class TestLoadBundle:
    def test_loads_from_directory_or_manifest_path(self, tmp_path):
        bundle = _bundle_dir(tmp_path, _manifest())
        assert load_bundle(bundle)["trigger"] == "breaker_open"
        assert load_bundle(bundle / "manifest.json")["trigger"] == \
            "breaker_open"

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ReproError, match="manifest.json"):
            load_bundle(tmp_path / "nope")

    def test_wrong_kind_raises(self, tmp_path):
        bundle = _bundle_dir(tmp_path, {"kind": "something-else"})
        with pytest.raises(ReproError, match="not a repro incident"):
            load_bundle(bundle)

    def test_malformed_json_raises(self, tmp_path):
        bundle = tmp_path / "broken"
        bundle.mkdir()
        (bundle / "manifest.json").write_text("{not json")
        with pytest.raises(ReproError, match="unreadable"):
            load_bundle(bundle)


class TestPlanReplay:
    def test_reconstructs_the_recorded_traffic(self):
        plan = plan_replay(_manifest())
        assert plan["trigger"] == "breaker_open"
        assert plan["shape"] == "chain"
        assert plan["n"] == 256
        assert plan["clients"] == 2
        assert plan["requests_per_client"] == 5
        assert plan["seed"] == 7
        assert plan["fault"] == 0.5  # numeric rate parses to float
        assert plan["prime"] is True

    def test_always_fault_schedule_survives_as_is(self):
        assert plan_replay(_manifest(fault="always"))["fault"] == "always"

    def test_serve_config_rebuilds_dropping_unknown_fields(self):
        cfg = plan_replay(_manifest())["serve_config"]
        assert isinstance(cfg, ServeConfig)
        assert cfg.max_batch_size == 4
        assert cfg.max_wait_ms == 2.0

    def test_missing_profile_event_is_an_actionable_error(self):
        with pytest.raises(ReproError, match="loadgen.profile"):
            plan_replay(_manifest(profile=False))

    def test_latest_profile_wins_when_the_ring_saw_several(self):
        doc = _manifest()
        doc["events"].append({"event": "loadgen.profile", "shape":
                              "unique", "n": 64, "clients": 1,
                              "requests_per_client": 2, "seed": 9,
                              "fault": None, "prime": False})
        plan = plan_replay(doc)
        assert plan["shape"] == "unique"
        assert plan["seed"] == 9
        assert plan["fault"] is None


class TestCheckReplay:
    def test_unreproduced_trigger_raises(self):
        with pytest.raises(ServeError, match="did not reproduce"):
            check_replay({"bundle": "b", "trigger": "breaker_open",
                          "reproduced": False, "all_bundles": []})

    def test_reproduced_trigger_passes(self):
        check_replay({"bundle": "b", "trigger": "breaker_open",
                      "reproduced": True,
                      "all_bundles": ["b/replay/incident-0001"]})
