"""Consistent hashing with bounded loads: determinism, stability and
the 2x skew bound the fleet acceptance check rides on."""

import pytest

from repro.fleet.hashring import HashRing


def _route_all(ring, keys):
    return {k: ring.route(k) for k in keys}


KEYS = [f"batch-key-{i}" for i in range(200)]


class TestDeterminism:
    def test_same_keys_same_placement_across_instances(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w0", "w1", "w2"])
        assert _route_all(a, KEYS) == _route_all(b, KEYS)

    def test_route_is_sticky(self):
        ring = HashRing(["w0", "w1"])
        first = {k: ring.route(k) for k in KEYS}
        assert all(ring.route(k) == w for k, w in first.items())

    def test_non_string_keys_route_by_repr(self):
        ring = HashRing(["w0", "w1"])
        key = ("compact", 512, "float64")
        assert ring.route(key) == ring.route(repr(key))


class TestBoundedLoads:
    def test_no_worker_exceeds_the_bounded_loads_cap(self):
        import math

        ring = HashRing(["w0", "w1", "w2"], load_factor=1.25)
        for k in KEYS:
            ring.route(k)
        cap = math.ceil(1.25 * len(KEYS) / 3)
        assert max(ring.loads().values()) <= cap
        assert ring.skew() < 2.0  # the fleet --check bound, with margin

    def test_loads_sum_to_key_count(self):
        ring = HashRing(["w0", "w1", "w2"])
        for k in KEYS:
            ring.route(k)
        assert sum(ring.loads().values()) == len(KEYS)
        assert set(ring.loads()) == {"w0", "w1", "w2"}


class TestMembershipChanges:
    def test_add_then_rebalance_moves_bounded_fraction(self):
        ring = HashRing(["w0", "w1"])
        before = {k: ring.route(k) for k in KEYS}
        ring.add("w2")
        moved = ring.rebalance()
        # Only keys that migrated to the new worker (or rebalanced off
        # an over-capacity one) move; the bulk of placements survive.
        assert 0 < len(moved) < len(KEYS) // 2 + len(KEYS) // 3
        for k in KEYS:
            expected = moved.get(k, before[k])
            assert ring.route(k) == expected
        import math

        cap = math.ceil(1.25 * len(KEYS) / 3)
        assert max(ring.loads().values()) <= cap

    def test_remove_migrates_only_the_lost_workers_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {k: ring.route(k) for k in KEYS}
        lost = [k for k, w in before.items() if w == "w1"]
        moved = ring.remove("w1")
        assert set(moved) == set(lost)
        for k in KEYS:
            if k in moved:
                assert ring.route(k) == moved[k] != "w1"
            else:
                assert ring.route(k) == before[k]

    def test_remove_last_worker_forgets_assignments(self):
        ring = HashRing(["w0"])
        ring.route("some-key")
        assert ring.remove("w0") == {}
        assert ring.loads() == {}

    def test_route_with_no_workers_raises(self):
        with pytest.raises(ValueError):
            HashRing().route("key")
