"""Fleet health rollup: counter sums, count-weighted histogram merges
with conservative tail percentiles, and worst-state breaker folding."""

from repro.obs.rollup import (fleet_p95_ms, merge_histograms,
                              merge_server_stats)


def _hist(count, total, *, lo, hi, p50, p95, p99):
    return {"count": count, "sum": total, "min": lo, "max": hi,
            "mean": total / count, "p50": p50, "p95": p95, "p99": p99}


class TestMergeHistograms:
    def test_count_weighted_merge(self):
        a = _hist(10, 100.0, lo=1.0, hi=20.0, p50=9.0, p95=18.0, p99=19.0)
        b = _hist(30, 60.0, lo=0.5, hi=5.0, p50=2.0, p95=4.0, p99=5.0)
        merged = merge_histograms([a, b])
        assert merged["count"] == 40
        assert merged["sum"] == 160.0
        assert merged["mean"] == 4.0  # 160/40, not the mean of means
        assert merged["min"] == 0.5
        assert merged["max"] == 20.0
        # Percentiles take the max across workers: the conservative
        # bound the autoscaler scales on.
        assert merged["p95"] == 18.0
        assert merged["p99"] == 19.0

    def test_empty_and_zero_count_summaries_drop_out(self):
        merged = merge_histograms([None, {}, {"count": 0, "sum": 0,
                                             "mean": 0.0}])
        assert merged["count"] == 0
        assert merged["p95"] == 0.0


class TestMergeServerStats:
    def _two_workers(self):
        return {
            "w0": {
                "serve.completed": 10,
                "serve.latency_ms": _hist(10, 50.0, lo=1.0, hi=9.0,
                                          p50=5.0, p95=8.0, p99=9.0),
                "inflight": 1, "queue_depth": 2, "warm_keys": 3,
                "plan_cache.hits": 8, "plan_cache.misses": 2,
                "breaker": {"compact+unique": "closed"},
                "flight": {"incidents": ["/tmp/a"], "n_events": 5},
            },
            "w1": {
                "serve.completed": 30,
                "serve.latency_ms": _hist(30, 60.0, lo=0.5, hi=30.0,
                                          p50=2.0, p95=25.0, p99=30.0),
                "inflight": 0, "queue_depth": 1, "warm_keys": 1,
                "plan_cache.hits": 2, "plan_cache.misses": 8,
                "breaker": {"compact+unique": {"state": "open"}},
                "flight": {"incidents": ["/tmp/b"], "n_events": 7},
            },
        }

    def test_counters_sum_and_hit_rate_rederives(self):
        merged = merge_server_stats(self._two_workers())
        assert merged["n_workers"] == 2
        assert merged["serve.completed"] == 40
        assert merged["queue_depth"] == 3
        assert merged["warm_keys"] == 4
        assert merged["plan_cache.hits"] == 10
        assert merged["plan_cache.misses"] == 10
        # 10/20, not the mean of the per-worker rates (0.8 and 0.2
        # would also average to 0.5 here, so pin the derivation too).
        assert merged["plan_cache.hit_rate"] == 0.5

    def test_latency_merges_and_p95_reads_off(self):
        merged = merge_server_stats(self._two_workers())
        assert merged["serve.latency_ms"]["count"] == 40
        assert fleet_p95_ms(merged) == 25.0

    def test_breakers_fold_to_worst_state_naming_the_worker(self):
        merged = merge_server_stats(self._two_workers())
        snap = merged["breaker"]["compact+unique"]
        assert snap["state"] == "open"
        assert snap["workers"] == ["w1"]

    def test_incident_bundles_concatenate(self):
        merged = merge_server_stats(self._two_workers())
        assert sorted(merged["flight"]["incidents"]) == ["/tmp/a", "/tmp/b"]
        assert merged["flight"]["n_events"] == 12

    def test_empty_fleet(self):
        merged = merge_server_stats({})
        assert merged["n_workers"] == 0
        assert merged["plan_cache.hit_rate"] == 0.0
        assert fleet_p95_ms(merged) is None
