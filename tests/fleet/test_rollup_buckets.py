"""Exact bucket-wise histogram merge in the fleet rollup.

When every worker summary carries its power-of-two ``buckets`` (as
``Server.stats()`` snapshots do), :func:`merge_histograms` must produce
the *same* percentiles one :class:`~repro.obs.metrics.Histogram` would
report after recording the pooled observations — not the conservative
max-of-percentiles bound used for bucket-less summaries.
"""

from __future__ import annotations

import random

import pytest

from repro.obs.metrics import Histogram
from repro.obs.rollup import fleet_p95_ms, merge_histograms


def _summary(values):
    h = Histogram("serve.latency_ms")
    for v in values:
        h.record(v)
    d = h.to_dict()
    return {k: d[k] for k in ("count", "sum", "min", "max", "mean",
                              "p50", "p95", "p99", "buckets",
                              "nonfinite")}


def _pooled_reference(*value_lists):
    h = Histogram("ref")
    for values in value_lists:
        for v in values:
            h.record(v)
    return h


@pytest.mark.parametrize("seed", [7, 21, 1234])
def test_bucketwise_merge_matches_pooled_histogram(seed):
    rng = random.Random(seed)
    worker_a = [rng.uniform(0.5, 40.0) for _ in range(300)]
    worker_b = [rng.uniform(10.0, 400.0) for _ in range(120)]
    worker_c = [rng.uniform(0.1, 2.0) for _ in range(80)]

    merged = merge_histograms([_summary(worker_a), _summary(worker_b),
                               _summary(worker_c)])
    ref = _pooled_reference(worker_a, worker_b, worker_c)

    assert merged["count"] == ref.count
    assert merged["sum"] == pytest.approx(ref.total)
    assert merged["min"] == pytest.approx(ref.min)
    assert merged["max"] == pytest.approx(ref.max)
    assert merged["mean"] == pytest.approx(ref.mean)
    for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        assert merged[name] == pytest.approx(ref.quantile(q)), name
    assert merged["buckets"] == ref.to_dict()["buckets"]


def test_exact_beats_max_of_percentiles():
    """The pooled p95 can sit strictly *below* the worst worker's p95:
    a tiny worker with terrible latency must not dominate the fleet
    percentile the way the conservative fallback lets it."""
    bulk = [2.0 + 0.001 * k for k in range(950)]    # fast traffic
    straggler = [900.0, 950.0]                      # 2 slow requests
    merged = merge_histograms([_summary(bulk), _summary(straggler)])
    ref = _pooled_reference(bulk, straggler)
    worst_worker_p95 = _summary(straggler)["p95"]
    assert merged["p95"] == pytest.approx(ref.quantile(0.95))
    assert merged["p95"] < worst_worker_p95
    assert fleet_p95_ms({"serve.latency_ms": merged}) \
        == pytest.approx(merged["p95"])


def test_missing_buckets_falls_back_to_max():
    with_buckets = _summary([1.0, 2.0, 3.0])
    legacy = {"count": 3, "sum": 60.0, "min": 10.0, "max": 30.0,
              "mean": 20.0, "p50": 20.0, "p95": 29.0, "p99": 30.0}
    merged = merge_histograms([with_buckets, legacy])
    # Any bucket-less participant disables the exact path.
    assert "buckets" not in merged
    assert merged["p95"] == pytest.approx(
        max(with_buckets["p95"], 29.0))
    assert merged["count"] == 6


def test_malformed_bucket_keys_fall_back():
    good = _summary([4.0, 8.0])
    bad = dict(_summary([4.0, 8.0]), buckets={"3.7": 2})
    merged = merge_histograms([good, bad])
    assert "buckets" not in merged
    assert merged["p95"] == pytest.approx(max(good["p95"], bad["p95"]))


def test_nonfinite_counts_ride_the_exact_merge():
    a = Histogram("x")
    for v in (1.0, float("nan"), 2.0):
        a.record(v)
    b = Histogram("x")
    for v in (float("inf"), 4.0):
        b.record(v)
    merged = merge_histograms([a.to_dict(), b.to_dict()])
    assert merged["count"] == 3
    assert merged["nonfinite"] == 2
