"""FleetConfig: eager validation and REPRO_FLEET_* environment
construction that names the offending variable."""

import pytest

from repro.fleet.config import DEFAULT_FLEET_CONFIG, FleetConfig


class TestValidation:
    def test_defaults_are_valid(self):
        assert DEFAULT_FLEET_CONFIG.n_workers == 2
        assert DEFAULT_FLEET_CONFIG.min_workers <= \
            DEFAULT_FLEET_CONFIG.n_workers <= \
            DEFAULT_FLEET_CONFIG.max_workers

    def test_pool_bounds_must_bracket_n_workers(self):
        with pytest.raises(ValueError, match="min_workers <= n_workers"):
            FleetConfig(n_workers=5, min_workers=1, max_workers=4)

    def test_load_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="load_factor"):
            FleetConfig(load_factor=0.9)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            FleetConfig(n_workers=0)

    def test_replace_returns_validated_copy(self):
        cfg = FleetConfig().replace(n_workers=3, max_workers=3)
        assert cfg.n_workers == 3
        assert FleetConfig().n_workers == 2  # original untouched
        with pytest.raises(ValueError):
            FleetConfig().replace(n_workers=99)


class TestFromEnv:
    def test_reads_every_fleet_variable(self):
        cfg = FleetConfig.from_env({
            "REPRO_FLEET_WORKERS": "3",
            "REPRO_FLEET_MIN_WORKERS": "2",
            "REPRO_FLEET_MAX_WORKERS": "6",
            "REPRO_FLEET_VNODES": "16",
            "REPRO_FLEET_LOAD_FACTOR": "1.5",
            "REPRO_FLEET_QUEUE_HIGH": "4",
            "REPRO_FLEET_P95_HIGH_MS": "100.5",
            "REPRO_FLEET_UP_AFTER": "1",
            "REPRO_FLEET_INCIDENT_DIR": "/tmp/incidents",
        })
        assert cfg.n_workers == 3
        assert cfg.min_workers == 2
        assert cfg.max_workers == 6
        assert cfg.vnodes == 16
        assert cfg.load_factor == 1.5
        assert cfg.queue_high == 4
        assert cfg.p95_high_ms == 100.5
        assert cfg.up_after == 1
        assert cfg.incident_dir == "/tmp/incidents"

    def test_empty_environment_gives_defaults(self):
        cfg = FleetConfig.from_env({})
        assert cfg.n_workers == DEFAULT_FLEET_CONFIG.n_workers

    def test_malformed_value_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_FLEET_WORKERS"):
            FleetConfig.from_env({"REPRO_FLEET_WORKERS": "three"})

    def test_out_of_range_value_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_FLEET_VNODES"):
            FleetConfig.from_env({"REPRO_FLEET_VNODES": "0"})

    def test_embedded_serve_config_reads_repro_serve_vars(self):
        cfg = FleetConfig.from_env({"REPRO_SERVE_BATCH_SIZE": "16"})
        assert cfg.serve.max_batch_size == 16
