"""``ServeConfig`` — every tuning knob of the serving layer.

Mirrors :class:`repro.config.DSConfig`: one frozen, hashable value that
travels with the server, constructible from ``REPRO_SERVE_*``
environment variables with eager validation (a malformed value raises
:class:`ValueError` naming the variable, never a deep launch failure).

The knobs fall into three groups:

* **batching policy** — ``max_batch_size`` / ``max_wait_ms`` close a
  micro-batch window on whichever trips first; ``num_workers`` sizes
  the executor pool (one :class:`~repro.simgpu.stream.Stream` each);
* **admission control** — ``max_queue_depth`` bounds the number of
  requests the server holds (queued *and* executing); beyond it,
  :meth:`~repro.serve.Server.submit` sheds with
  :class:`~repro.errors.Overloaded`.  ``default_deadline_ms`` applies
  to requests submitted without an explicit deadline;
* **robustness ring** — ``max_retries`` / ``retry_backoff_ms`` bound
  the exponential-backoff retry of transient
  :class:`~repro.errors.LaunchError`\\ s, and ``breaker_threshold`` /
  ``breaker_cooldown_ms`` parameterize the per-op circuit breaker that
  flips a failing op to the sequential baseline
  (:mod:`repro.serve.degrade`) until a cooldown re-probe succeeds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["ServeConfig", "DEFAULT_SERVE_CONFIG"]


def _positive(name: str, value, *, zero_ok: bool = False) -> None:
    bound = 0 if zero_ok else 1
    if value < bound:
        raise ValueError(
            f"ServeConfig.{name} must be >= {bound}, got {value!r}")


@dataclass(frozen=True)
class ServeConfig:
    """Tuning surface of :class:`repro.serve.Server`.

    Attributes
    ----------
    max_batch_size:
        Upper bound on requests fused into one pipeline batch.
    max_wait_ms:
        Longest a batch window stays open waiting for compatible
        requests after its first request arrives.  ``0`` dispatches
        immediately (no batching delay, batches still form from
        already-queued compatible requests).
    max_queue_depth:
        Admission bound on in-flight requests (queued + executing).
    num_workers:
        Executor threads; each owns one stream on the server's device.
    default_deadline_ms:
        Deadline applied when ``submit`` is not given one; ``None``
        means no deadline.
    max_retries:
        Fast-path retries per batch on transient launch errors.
    retry_backoff_ms:
        Base backoff; attempt *k* sleeps ``retry_backoff_ms * 2**k``.
    breaker_threshold:
        Consecutive fast-path failures (per op chain) that open the
        circuit breaker.
    breaker_cooldown_ms:
        Open time before a single half-open probe is allowed.
    seed:
        Base scheduling seed; worker *i* uses ``seed + i``.
    flight_capacity:
        Ring size of the server's always-on flight recorder (spans and
        events retained for incident bundles); ``0`` disables the
        recorder entirely (the overhead-check baseline).
    incident_dir:
        Directory incident bundles are written to on a trigger
        (breaker-open, deadline, launch error, SLO breach).  ``None``
        disables dumping — the ring still records.
    incident_cooldown_ms:
        Minimum gap between two bundles for the same trigger, so a
        failure storm produces one bundle per window, not thousands.
    slo_ms:
        Latency objective; a completed request slower than this fires
        the ``slo_breach`` incident trigger.  ``None`` disables it.
    event_log:
        Path for the structured JSONL event log
        (:mod:`repro.obs.log`); ``None`` keeps events in memory only
        (they still reach incident bundles via the flight recorder).
    shard_workers:
        Forked shard-worker processes for requests whose input streams
        out of core (:mod:`repro.stream`); ``0`` streams such requests
        sequentially inside the serve worker thread.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    max_queue_depth: int = 256
    num_workers: int = 2
    default_deadline_ms: Optional[float] = None
    max_retries: int = 2
    retry_backoff_ms: float = 1.0
    breaker_threshold: int = 3
    breaker_cooldown_ms: float = 50.0
    seed: int = 0
    flight_capacity: int = 4096
    incident_dir: Optional[str] = None
    incident_cooldown_ms: float = 1000.0
    slo_ms: Optional[float] = None
    event_log: Optional[str] = None
    shard_workers: int = 0

    def __post_init__(self) -> None:
        _positive("max_batch_size", int(self.max_batch_size))
        _positive("max_queue_depth", int(self.max_queue_depth))
        _positive("num_workers", int(self.num_workers))
        _positive("breaker_threshold", int(self.breaker_threshold))
        _positive("max_wait_ms", float(self.max_wait_ms), zero_ok=True)
        _positive("max_retries", int(self.max_retries), zero_ok=True)
        _positive("retry_backoff_ms", float(self.retry_backoff_ms),
                  zero_ok=True)
        _positive("breaker_cooldown_ms", float(self.breaker_cooldown_ms),
                  zero_ok=True)
        _positive("flight_capacity", int(self.flight_capacity),
                  zero_ok=True)
        _positive("incident_cooldown_ms", float(self.incident_cooldown_ms),
                  zero_ok=True)
        _positive("shard_workers", int(self.shard_workers), zero_ok=True)
        if (self.default_deadline_ms is not None
                and float(self.default_deadline_ms) <= 0):
            raise ValueError(
                "ServeConfig.default_deadline_ms must be positive or None, "
                f"got {self.default_deadline_ms!r}")
        if self.slo_ms is not None and float(self.slo_ms) <= 0:
            raise ValueError(
                "ServeConfig.slo_ms must be positive or None, "
                f"got {self.slo_ms!r}")

    def replace(self, **changes) -> "ServeConfig":
        """A copy with ``changes`` applied (the frozen-dataclass idiom)."""
        return replace(self, **changes)

    @classmethod
    def from_env(cls, environ=None) -> "ServeConfig":
        """Build a config from ``REPRO_SERVE_*`` environment variables.

        Recognized: ``REPRO_SERVE_BATCH_SIZE``, ``REPRO_SERVE_WAIT_MS``,
        ``REPRO_SERVE_QUEUE_DEPTH``, ``REPRO_SERVE_WORKERS``,
        ``REPRO_SERVE_DEADLINE_MS``, ``REPRO_SERVE_RETRIES``,
        ``REPRO_SERVE_BACKOFF_MS``, ``REPRO_SERVE_BREAKER_THRESHOLD``,
        ``REPRO_SERVE_BREAKER_COOLDOWN_MS``, ``REPRO_SERVE_SEED``,
        ``REPRO_SERVE_FLIGHT_CAPACITY``, ``REPRO_SERVE_INCIDENT_DIR``,
        ``REPRO_SERVE_INCIDENT_COOLDOWN_MS``, ``REPRO_SERVE_SLO_MS``,
        ``REPRO_SERVE_EVENT_LOG``, and — shared with
        :meth:`repro.config.DSConfig.from_env` — ``REPRO_SHARD_WORKERS``.
        Malformed values raise :class:`ValueError` naming the variable.
        """
        env = os.environ if environ is None else environ

        def _get(name):
            raw = env.get(name, "")
            return raw.strip() or None

        def _str(name):
            return _get(name)

        def _int(name):
            raw = _get(name)
            try:
                return int(raw)
            except ValueError:
                raise ValueError(
                    f"{name}={raw!r}: expected an integer") from None

        def _float(name):
            raw = _get(name)
            try:
                return float(raw)
            except ValueError:
                raise ValueError(
                    f"{name}={raw!r}: expected a number") from None

        kwargs = {}
        spec = [
            ("REPRO_SERVE_BATCH_SIZE", "max_batch_size", _int),
            ("REPRO_SERVE_WAIT_MS", "max_wait_ms", _float),
            ("REPRO_SERVE_QUEUE_DEPTH", "max_queue_depth", _int),
            ("REPRO_SERVE_WORKERS", "num_workers", _int),
            ("REPRO_SERVE_DEADLINE_MS", "default_deadline_ms", _float),
            ("REPRO_SERVE_RETRIES", "max_retries", _int),
            ("REPRO_SERVE_BACKOFF_MS", "retry_backoff_ms", _float),
            ("REPRO_SERVE_BREAKER_THRESHOLD", "breaker_threshold", _int),
            ("REPRO_SERVE_BREAKER_COOLDOWN_MS", "breaker_cooldown_ms",
             _float),
            ("REPRO_SERVE_SEED", "seed", _int),
            ("REPRO_SERVE_FLIGHT_CAPACITY", "flight_capacity", _int),
            ("REPRO_SERVE_INCIDENT_DIR", "incident_dir", _str),
            ("REPRO_SERVE_INCIDENT_COOLDOWN_MS", "incident_cooldown_ms",
             _float),
            ("REPRO_SERVE_SLO_MS", "slo_ms", _float),
            ("REPRO_SERVE_EVENT_LOG", "event_log", _str),
            ("REPRO_SHARD_WORKERS", "shard_workers", _int),
        ]
        for var, field_name, parse in spec:
            if _get(var):
                kwargs[field_name] = parse(var)
        try:
            return cls(**kwargs)
        except ValueError as exc:
            # Re-tag the field-level message with the variable name the
            # bad value came from, so operators can fix the right knob.
            field_to_var = {f: v for v, f, _ in spec}
            for field_name, var in field_to_var.items():
                if f"ServeConfig.{field_name}" in str(exc):
                    raise ValueError(
                        f"{var}: {exc}") from None
            raise


DEFAULT_SERVE_CONFIG = ServeConfig()
