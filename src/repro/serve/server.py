"""The micro-batching DS server: queue → batcher → worker pool.

Architecture (one in-process service; see docs/serving.md)::

    submit() ──admission──> request queue ──window──> batch queue
      │ Overloaded when full     │ max_wait_ms /        │
      │                          │ max_batch_size       ▼
      ▼                          ▼                 worker pool
    ServeFuture <──resolve── deadline check    (one Stream each)
                                               fast path: Pipeline
                                               (shared PlanCache,
                                                fusion, retries)
                                               fallback: sequential
                                               baseline via breaker

* **Admission control** — :meth:`Server.submit` bounds in-flight
  requests (queued + executing) at ``max_queue_depth`` and sheds the
  excess with a typed :class:`~repro.errors.Overloaded` instead of
  growing without bound.
* **Micro-batching** — a single batcher thread closes a window on
  ``max_batch_size`` or ``max_wait_ms`` (whichever first) and groups
  requests with equal :func:`~repro.serve.request.make_batch_key`
  (same op chain, geometry, dtype, params, config, backend) into one
  :class:`~repro.pipeline.Pipeline` batch, so identical traffic shares
  a plan-cache entry and chained ops ride fused flag chains.
* **Workers** — ``num_workers`` threads, each with its own
  :class:`~repro.simgpu.stream.Stream`, execute batches: fast path
  through the pipeline engine with bounded exponential-backoff retries
  on transient :class:`~repro.errors.LaunchError`; on repeated failure
  the per-op :class:`~repro.serve.breaker.CircuitBreaker` opens and the
  batch (and subsequent ones) is served by the sequential baseline
  (:mod:`repro.serve.degrade`) until a cooldown probe of the fast path
  succeeds.
* **Deadlines** — a request that expires while queued is finalized
  with :class:`~repro.errors.DeadlineExceeded` and *never executed*;
  :meth:`ServeFuture.cancel <repro.serve.request.ServeFuture.cancel>`
  similarly removes not-yet-dispatched work.
* **Observability** — every edge increments a ``serve.*`` metric on
  the server's registry (queue-depth gauge, batch-size/wait and
  latency histograms, shed/expired/retry/degraded counters), and when
  a :mod:`repro.obs` tracer is active each request additionally gets a
  ``serve.request`` span with ``queued``/``batch_window``/``execute``/
  ``finalize`` children.  Independently of tracing, an always-on
  :class:`~repro.obs.flight.FlightRecorder` rings the recent spans and
  lifecycle events; breaker-open, deadline-expiry, retry-exhaustion and
  SLO-breach triggers dump it into an incident bundle naming the
  affected ``request_id``\\ s, op chain and failing phase (see
  docs/observability.md).  Batch execution runs under
  :func:`repro.obs.annotate`, so kernel-launch spans and ``launch.done``
  event-log records carry the request ids they served.
"""

from __future__ import annotations

import queue as _queue_mod
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs as _obs
from repro.config import DEFAULT_CONFIG, DSConfig
from repro.errors import (
    DeadlineExceeded,
    LaunchError,
    Overloaded,
    RequestCancelled,
    ResourceError,
    ServeError,
)
from repro.obs import log as _obslog
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.engine import Pipeline, signature_cache_stats
from repro.pipeline.plan import PlanCache
from repro.primitives.common import DEFAULT_DEVICE, PrimitiveResult
from repro.primitives.opspec import OpDescriptor, get_op
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.degrade import degraded_result, run_degraded_stage
from repro.serve.request import (
    CANCELLED,
    DISPATCHED,
    DONE,
    EXPIRED,
    FAILED,
    OpStage,
    QUEUED,
    ServeFuture,
    ServeRequest,
    make_batch_key,
)
from repro.simgpu.device import DeviceSpec
from repro.simgpu.stream import Stream

__all__ = ["Server"]

#: Errors the executor treats as transient: retry, then degrade.  The
#: simulator raises LaunchError/ResourceError for launch-time failures;
#: injected faults reuse LaunchError.
TRANSIENT_ERRORS = (LaunchError, ResourceError)

# The obs tracer keeps per-track span stacks that are not safe against
# interleaved pushes from several threads on the *same* track (the
# pipeline's spans land on the host track).  Workers therefore serialize
# pipeline execution whenever a tracer is active; with tracing off the
# lock is never taken and workers run concurrently.
_TRACE_EXEC_LOCK = threading.Lock()


def _chain_spec(ops) -> List[Tuple[OpDescriptor, tuple, dict]]:
    """Normalize a submit/submit_chain op spec into descriptor triples."""
    stages = []
    for item in ops:
        if isinstance(item, str):
            item = (item,)
        if not item:
            raise ServeError("empty op spec in chain")
        name, *args = item
        kwargs = {}
        if args and isinstance(args[-1], dict):
            kwargs = args.pop()
        stages.append((get_op(name), tuple(args), kwargs))
    if not stages:
        raise ServeError("a request needs at least one op")
    return stages


class Server:
    """An in-process micro-batching server over the DS primitives.

    Parameters
    ----------
    config:
        The :class:`~repro.serve.config.ServeConfig` knobs (batching,
        admission, retries, breaker).
    ds_config:
        Default :class:`~repro.config.DSConfig` for submitted ops
        (per-request override via ``submit(..., config=...)``).
    device:
        Device every worker stream binds to (name or spec).
    plan_cache:
        Shared :class:`~repro.pipeline.plan.PlanCache`; defaults to a
        fresh server-private cache so hit-rate numbers are isolated.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry`; defaults to the
        active tracer's registry when tracing is on (so ``serve.*``
        metrics export with everything else), else a private one.
    fault_hook:
        Test/chaos hook called with the batch's request list before
        every fast-path execution; raising a transient error simulates
        backend failure.
    tuning_db:
        A :class:`~repro.tune.db.TuningDB` of autotuner winners.  When
        given, every admitted request shape is looked up under its
        (normalized) batch key and any persisted kernel knobs
        (coarsening/wg_size/scan_variant/fusion) are applied before
        batching — so identical traffic lands on the *tuned* plan-cache
        entry; :meth:`prime` with ``tuned=True`` additionally warms
        those plans and adopts persisted serve batching knobs, and
        :meth:`stats` reports the active tuned knobs per batch key.
    autostart:
        Start the batcher/worker threads immediately.  Tests pass
        ``False`` to stage requests deterministically, then
        :meth:`start`.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        ds_config: Optional[DSConfig] = None,
        device: Union[DeviceSpec, str] = DEFAULT_DEVICE,
        plan_cache: Optional[PlanCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        breaker: Optional[CircuitBreaker] = None,
        fault_hook=None,
        tuning_db=None,
        autostart: bool = True,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.ds_config = ds_config if ds_config is not None else DEFAULT_CONFIG
        self.device = device
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        if metrics is None:
            tracer = _obs.active()
            metrics = tracer.metrics if tracer is not None else MetricsRegistry()
        self.metrics = metrics
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown_ms)
        self.fault_hook = fault_hook
        self.tuning_db = tuning_db
        # Tuned-knob resolution state: ``_tuned_cache`` memoizes the DB
        # lookup per *original* batch key (None = "no entry, stop
        # asking"); ``_tuned_active`` / ``_tuned_fuse`` are keyed by the
        # *tuned* batch key the request actually batches under.
        self._tuned_cache: Dict[tuple, Optional[dict]] = {}
        self._tuned_active: Dict[tuple, dict] = {}
        self._tuned_fuse: Dict[tuple, bool] = {}
        # Warm-set registry (the fleet router hook): every distinct
        # request shape this server has planned or served, keyed by its
        # TuningDB-shaped kernel key.  ``_warm_memo`` memoizes the key
        # construction per batch key so the hot admit path pays it once
        # per traffic shape, not once per request.
        self._warm_memo: Dict[tuple, str] = {}
        self._warm_shapes: Dict[str, dict] = {}
        # Always-on flight recorder (``flight_capacity=0`` disables it,
        # which the overhead check uses as its baseline).  Incidents are
        # only *dumped* when ``incident_dir`` is configured; the ring
        # records regardless so a later manual dump still has history.
        self.flight: Optional[FlightRecorder] = None
        if self.config.flight_capacity > 0:
            self.flight = FlightRecorder(
                self.config.flight_capacity,
                incident_dir=self.config.incident_dir or "incidents",
                cooldown_ms=self.config.incident_cooldown_ms).install()
        self._event_log = (_obslog.install(self.config.event_log)
                           if self.config.event_log else None)

        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._mlock = threading.Lock()  # guards metric updates
        self._inflight = 0
        self._next_id = 0
        self._accepting = True
        self._stopping = False
        self._started = False
        self._batches: "_queue_mod.Queue" = _queue_mod.Queue()
        self._batcher: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        if autostart:
            self.start()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Server":
        """Start the batcher and worker threads (idempotent)."""
        with self._cond:
            if self._started:
                return self
            if self._stopping:
                raise ServeError("server was closed; create a new one")
            self._started = True
        self._batcher = threading.Thread(
            target=self._batch_loop, name="repro-serve-batcher", daemon=True)
        self._batcher.start()
        for i in range(self.config.num_workers):
            w = threading.Thread(target=self._worker_loop, args=(i,),
                                 name=f"repro-serve-worker-{i}", daemon=True)
            w.start()
            self._workers.append(w)
        return self

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting requests, then shut the threads down.

        With ``drain=True`` (default) every already-admitted request is
        still served before the workers exit; with ``drain=False``
        queued requests are finalized with
        :class:`~repro.errors.RequestCancelled`.
        """
        with self._cond:
            self._accepting = False
            if not drain:
                for req in list(self._queue):
                    if req.transition(QUEUED, CANCELLED):
                        self._count("serve.cancelled")
                        self._finalize(req, error=RequestCancelled(
                            f"request #{req.id}: server closed"))
                self._queue.clear()
            self._cond.notify_all()
        if self._started:
            deadline = time.monotonic() + timeout
            with self._cond:
                while self._inflight > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServeError(
                            f"close(drain=True): {self._inflight} requests "
                            f"still in flight after {timeout}s")
                    self._cond.wait(remaining)
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._started:
            for _ in self._workers:
                self._batches.put(None)
            self._batcher.join(timeout)
            for w in self._workers:
                w.join(timeout)
        if self.flight is not None:
            self.flight.uninstall()
        if self._event_log is not None:
            if _obslog.get() is self._event_log:
                _obslog.uninstall()
            else:  # someone re-installed over ours; just close ours
                self._event_log.close()
            self._event_log = None

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close(drain=exc_type is None)
        return False

    # -- metrics helpers -----------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._mlock:
            self.metrics.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        with self._mlock:
            self.metrics.histogram(name).record(value)

    def _gauge_queue_depth_locked(self) -> None:
        # Called with self._cond held; only the gauge write needs _mlock.
        depth = len(self._queue)
        with self._mlock:
            self.metrics.gauge("serve.queue_depth").set(depth)

    # -- flight recorder / event log / incidents -----------------------

    def _event(self, event: str, **fields) -> None:
        """One structured lifecycle record to both always-on sinks: the
        flight-recorder ring and (when installed) the JSONL event log."""
        if self.flight is not None:
            self.flight.record_event(event, **fields)
        _obslog.emit(event, **fields)

    def _incident(self, trigger: str, reason: str, *, phase: str,
                  requests: Sequence[ServeRequest] = (), **context) -> None:
        """Fire one incident trigger.

        The trigger event always lands in the ring/event log; a bundle
        is only written when ``incident_dir`` is configured, and then at
        most once per ``incident_cooldown_ms`` per trigger.  The
        bundle's context names the affected request ids, their op chain
        and the lifecycle phase that failed (queue/plan/execute/...).
        """
        ids = [req.id for req in requests]
        ops = "+".join(requests[0].op_key) if requests else None
        self._event("serve.incident_trigger", trigger=trigger,
                    reason=reason, phase=phase, request_ids=ids, ops=ops)
        if self.flight is None or self.config.incident_dir is None:
            return
        ctx = {"phase": phase, "request_ids": ids, "ops": ops}
        ctx.update(context)
        bundle = self.flight.maybe_dump(
            trigger, reason=reason, metrics=self.metrics,
            ds_config=self.ds_config, serve_config=self.config,
            context=ctx)
        if bundle is not None:
            self._count("serve.incidents")
            self._event("serve.incident_dumped", trigger=trigger,
                        bundle=str(bundle))

    # -- submission ----------------------------------------------------

    def submit(self, op: str, values, *args,
               config: Optional[DSConfig] = None,
               deadline_ms: Optional[float] = None,
               trace=None,
               **kwargs) -> ServeFuture:
        """Queue one op call; returns its :class:`ServeFuture`.

        ``op``/``args``/``kwargs`` mirror :func:`repro.ds`:
        ``server.submit("compact", x, 0.0)``.  ``values`` is any
        :class:`~repro.stream.source.DSSource` input — a plain array
        executes as one resident batch op, while a memmap / shared
        memory / shard-iterator source streams shard-by-shard through
        :mod:`repro.stream` (``ds_config.shard_elems`` /
        ``shard_workers`` apply).  Raises
        :class:`~repro.errors.Overloaded` when admission control sheds
        the request.
        """
        desc = get_op(op)
        return self._admit([(desc, tuple(args), dict(kwargs))], values,
                           config=config, deadline_ms=deadline_ms,
                           trace=trace)

    def submit_chain(self, ops: Sequence, values: np.ndarray, *,
                     config: Optional[DSConfig] = None,
                     deadline_ms: Optional[float] = None,
                     trace=None) -> ServeFuture:
        """Queue a chain of ops over one input; each op consumes its
        predecessor's output (so fusable chains fuse)::

            server.submit_chain([("compact", 0.0), "unique"], x)

        ``trace`` is an optional
        :class:`~repro.obs.distrib.TraceContext` carried over from a
        remote caller (the fleet front door): the request's
        ``serve.request`` span then advertises the caller's
        ``trace_id``/``parent_span_id`` so the fleet merger can parent
        this process's spans under the router's.
        """
        return self._admit(_chain_spec(list(ops)), values,
                           config=config, deadline_ms=deadline_ms,
                           trace=trace)

    def _tuned_for(self, stages, array, cfg: DSConfig,
                   backend: str) -> Optional[dict]:
        """Resolve persisted tuned knobs for one request shape.

        Memoized per original batch key: the normalized-key
        construction and DB lookup run once per distinct traffic shape,
        not once per request.  Returns ``None`` when the DB has no
        entry for the shape.
        """
        orig_key = make_batch_key(stages, array, cfg, backend)
        try:
            return self._tuned_cache[orig_key]
        except KeyError:
            pass
        from repro.tune.db import KERNEL_CONFIG_KNOBS, kernel_key

        key = kernel_key(stages, array, cfg, backend)
        entry = self.tuning_db.get(key)
        resolved = None
        if entry is not None and entry.get("knobs"):
            knobs = dict(entry["knobs"])
            config_knobs = {k: v for k, v in knobs.items()
                            if k in KERNEL_CONFIG_KNOBS}
            resolved = {
                "key": key,
                "knobs": knobs,
                "config": cfg.replace(**config_knobs) if config_knobs
                else cfg,
                "fuse": bool(knobs.get("fuse", True)),
                "ops": "+".join(s.desc.short for s in stages),
                "n": int(array.size),
                "dtype": str(array.dtype),
            }
        self._tuned_cache[orig_key] = resolved
        return resolved

    def _activate_tuned(self, info: dict, batch_key: tuple) -> None:
        """Register tuned knobs under the batch key they serve."""
        if batch_key in self._tuned_active:
            return
        self._tuned_fuse[batch_key] = info["fuse"]
        self._tuned_active[batch_key] = info
        self._count("serve.tuned_keys")
        self._event("serve.tuned_applied", ops=info["ops"],
                    n=info["n"], dtype=info["dtype"],
                    knobs=repr(info["knobs"]), key=info["key"])

    def _note_warm(self, batch_key: tuple, stages, array, cfg: DSConfig,
                   backend: str) -> None:
        """Record one warm traffic shape under its TuningDB-shaped
        kernel key — the stable, persistable identity :mod:`repro.fleet`
        uses to re-prime replacement workers with the plans a drained
        worker had warmed.  Memoized per batch key so the admit path
        pays the key construction once per distinct shape; a race
        between client threads merely duplicates that cheap work.
        """
        if batch_key in self._warm_memo:
            return
        from repro.tune.db import kernel_key

        key = kernel_key(stages, array, cfg, backend)
        self._warm_memo[batch_key] = key
        if key not in self._warm_shapes:
            self._warm_shapes[key] = {
                "ops": "+".join(s.desc.name for s in stages),
                "n": int(array.size),
                "dtype": str(array.dtype),
                "backend": backend,
            }

    def warm_keys(self) -> List[str]:
        """TuningDB-shaped kernel keys of every distinct request shape
        this server has planned (via :meth:`prime`) or admitted, sorted.
        The fleet router collects these when draining a worker so its
        warm set survives the process."""
        return sorted(self._warm_shapes)

    def warm_shapes(self) -> Dict[str, dict]:
        """Per-warm-key shape facts (``ops``/``n``/``dtype``/``backend``)
        backing :meth:`warm_keys`."""
        return {k: dict(v) for k, v in self._warm_shapes.items()}

    def _admit(self, spec, values, *, config, deadline_ms,
               trace=None) -> ServeFuture:
        cfg = config if config is not None else self.ds_config
        # The unified DSSource front door: in-core inputs admit as the
        # plain array they always did; out-of-core sources (memmap,
        # shared memory, shard iterator) stay sources and execute
        # through the sharded streaming engine inside the pipeline.
        from repro.stream.source import as_source

        source = as_source(values, site="Server.submit")
        array = source.materialize() if source.in_core else source
        if (not source.in_core and self.config.shard_workers
                and not cfg.shard_workers):
            # The serve-level pool knob (ServeConfig.shard_workers /
            # REPRO_SHARD_WORKERS) applies to streamed requests unless
            # the per-request DSConfig already pinned a pool size.
            cfg = cfg.replace(shard_workers=self.config.shard_workers)
        stages = [OpStage(desc, args, kwargs) for desc, args, kwargs in spec]
        backend = cfg.resolved_backend()
        if self.tuning_db is not None and isinstance(array, np.ndarray):
            tuned = self._tuned_for(stages, array, cfg, backend)
            if tuned is not None:
                cfg = tuned["config"]
                self._activate_tuned(
                    tuned, make_batch_key(stages, array, cfg, backend))
        batch_key = make_batch_key(stages, array, cfg, backend)
        if isinstance(array, np.ndarray):
            self._note_warm(batch_key, stages, array, cfg, backend)
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        deadline = (time.monotonic() + float(deadline_ms) / 1000.0
                    if deadline_ms is not None else None)
        with self._cond:
            if not self._accepting:
                raise ServeError("server is closed to new requests")
            if self._inflight >= self.config.max_queue_depth:
                with self._mlock:
                    self.metrics.counter("serve.shed").inc()
                self._event("serve.admission_rejected",
                            ops="+".join(s.desc.name for s in stages),
                            inflight=self._inflight,
                            limit=self.config.max_queue_depth)
                raise Overloaded(
                    f"server at capacity ({self._inflight} in flight, "
                    f"limit {self.config.max_queue_depth}); retry later",
                    queue_depth=self._inflight,
                    limit=self.config.max_queue_depth)
            request = ServeRequest(self._next_id, stages, array, cfg,
                                   batch_key, deadline)
            request.server = self
            request.trace = trace
            self._next_id += 1
            self._inflight += 1
            tracer = _obs.active()
            if tracer is not None:
                request.tracer = tracer
                request.t_submit_us = tracer.now_us()
            self._queue.append(request)
            self._count_locked_admitted()
            self._gauge_queue_depth_locked()
            self._event("serve.admit", request_id=request.id,
                        ops="+".join(request.op_key),
                        queue_depth=len(self._queue),
                        inflight=self._inflight)
            self._cond.notify_all()
        return request.future

    def _count_locked_admitted(self) -> None:
        with self._mlock:
            self.metrics.counter("serve.admitted").inc()

    def cancel(self, request: ServeRequest) -> bool:
        """Cancel ``request`` if still queued (see ServeFuture.cancel)."""
        if not request.transition(QUEUED, CANCELLED):
            return False
        self._count("serve.cancelled")
        self._finalize(request, error=RequestCancelled(
            f"request #{request.id} was cancelled before dispatch"))
        return True

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    # -- cache priming -------------------------------------------------

    def prime(self, ops: Sequence, values: np.ndarray, *,
              config: Optional[DSConfig] = None,
              tuned: bool = False) -> int:
        """Pre-plan every batch size for one request shape.

        Plans (without executing) the pipeline batches of size
        ``1..max_batch_size`` a stream of identical requests can
        produce, so a fresh server starts at a ~100% plan-cache hit
        rate instead of paying one planning miss per batch shape.
        When the configured backend resolves to the compiled tier, the
        JIT kernel for the request's element dtype is warmed too
        (``repro.compiled.warmup``), so the first served batch never
        pays a compile stall.

        With ``tuned=True`` (and a ``tuning_db``) the shape is first
        resolved against the tuning DB: persisted kernel knobs replace
        the config the plans are primed under (so the cache warms the
        plans traffic will actually hit), and — when the server has not
        started yet — a persisted serve entry for the shape adopts its
        (max_batch_size, max_wait_ms) batching knobs.  Returns the
        number of plans now cached for the shape.
        """
        cfg = config if config is not None else self.ds_config
        spec = _chain_spec(list(ops) if not isinstance(ops, str) else [ops])
        from repro.stream.source import as_source

        src = as_source(values, site="Server.prime")
        array = src.materialize() if src.in_core else src
        stages = [OpStage(desc, args, kwargs) for desc, args, kwargs in spec]
        fuse = True
        if (tuned and self.tuning_db is not None
                and isinstance(array, np.ndarray)):
            backend = cfg.resolved_backend()
            info = self._tuned_for(stages, array, cfg, backend)
            if info is not None:
                cfg = info["config"]
                fuse = info["fuse"]
                self._activate_tuned(
                    info, make_batch_key(stages, array, cfg, backend))
            from repro.tune.db import SERVE_CONFIG_KNOBS, serve_key

            serve_knobs = self.tuning_db.knobs(
                serve_key(stages, array, cfg, backend))
            if serve_knobs:
                allowed = {k: v for k, v in serve_knobs.items()
                           if k in SERVE_CONFIG_KNOBS}
                if allowed and not self._started:
                    self.config = self.config.replace(**allowed)
                    self._event("serve.tuned_serve_config", **allowed)
        if isinstance(array, np.ndarray):
            backend = cfg.resolved_backend()
            self._note_warm(make_batch_key(stages, array, cfg, backend),
                            stages, array, cfg, backend)
        if cfg.resolved_backend() == "compiled":
            from repro.compiled import warmup

            warmup([array.dtype])
        for k in range(1, self.config.max_batch_size + 1):
            p = Pipeline(Stream(self.device, seed=self.config.seed),
                         config=cfg, fuse=fuse, plan_cache=self.plan_cache)
            for _ in range(k):
                prev: object = array
                for desc, args, kwargs in spec:
                    prev = p.enqueue(desc, prev, *args, config=cfg, **kwargs)
            p.plan()
        return self.config.max_batch_size

    # -- batcher -------------------------------------------------------

    def _pop_live_locked(self) -> Optional[ServeRequest]:
        """Pop the first request that is still QUEUED and unexpired,
        finalizing expired ones on the way.  Caller holds ``_cond``."""
        while self._queue:
            req = self._queue.popleft()
            if req.state != QUEUED:
                continue  # cancelled; already finalized
            if req.expired():
                if req.transition(QUEUED, EXPIRED):
                    self._expire(req)
                continue
            if req.transition(QUEUED, DISPATCHED):
                self._mark_dispatched(req)
                return req
        return None

    def _extract_matching_locked(self, key: tuple,
                                 batch: List[ServeRequest]) -> None:
        """Move every queued request with ``key`` into ``batch`` (up to
        the batch bound).  Caller holds ``_cond``."""
        limit = self.config.max_batch_size
        kept = deque()
        while self._queue and len(batch) < limit:
            req = self._queue.popleft()
            if req.state != QUEUED:
                continue
            if req.expired():
                if req.transition(QUEUED, EXPIRED):
                    self._expire(req)
                continue
            if req.batch_key == key and req.transition(QUEUED, DISPATCHED):
                self._mark_dispatched(req)
                batch.append(req)
            else:
                kept.append(req)
        kept.extend(self._queue)
        self._queue = kept

    def _mark_dispatched(self, req: ServeRequest) -> None:
        req.t_dispatch = time.monotonic()
        if req.tracer is not None and req.tracer is _obs.active():
            req.t_dispatch_us = req.tracer.now_us()

    def _expire(self, req: ServeRequest) -> None:
        self._count("serve.expired")
        waited_ms = (time.monotonic() - req.t_submit) * 1e3
        self._event("serve.request_expired", request_id=req.id,
                    ops="+".join(req.op_key), phase="queue",
                    waited_ms=round(waited_ms, 3))
        self._incident(
            "deadline",
            f"request #{req.id} ({'+'.join(req.op_key)}) expired after "
            f"{waited_ms:.1f}ms in queue",
            phase="queue", requests=[req], waited_ms=round(waited_ms, 3))
        self._finalize(req, error=DeadlineExceeded(
            f"request #{req.id} expired after "
            f"{waited_ms:.1f}ms in queue"))

    def _batch_loop(self) -> None:
        wait_s = self.config.max_wait_ms / 1000.0
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if self._stopping and not self._queue:
                    return
                head = self._pop_live_locked()
                self._gauge_queue_depth_locked()
            if head is None:
                continue
            batch = [head]
            window_end = time.monotonic() + wait_s
            while len(batch) < self.config.max_batch_size:
                with self._cond:
                    self._extract_matching_locked(head.batch_key, batch)
                    self._gauge_queue_depth_locked()
                    if len(batch) >= self.config.max_batch_size:
                        break
                    remaining = window_end - time.monotonic()
                    if remaining <= 0 or self._stopping:
                        break
                    self._cond.wait(remaining)
            self._observe("serve.batch_wait_ms",
                          (time.monotonic() - head.t_submit) * 1e3)
            tracer = _obs.active()
            for req in batch:
                if req.tracer is not None and req.tracer is tracer:
                    req.t_window_us = tracer.now_us()
            self._event("serve.dispatch",
                        request_ids=[r.id for r in batch],
                        batch_size=len(batch),
                        ops="+".join(head.op_key))
            self._batches.put(batch)

    # -- workers -------------------------------------------------------

    def _worker_loop(self, worker_id: int) -> None:
        stream = Stream(self.device, seed=self.config.seed + worker_id)
        while True:
            batch = self._batches.get()
            if batch is None:
                return
            try:
                self._execute_batch(batch, stream, worker_id)
            except BaseException as exc:  # pragma: no cover - last resort
                for req in batch:
                    if req.state == DISPATCHED:
                        req.transition(DISPATCHED, FAILED)
                        self._count("serve.failed")
                        self._finalize(req, error=exc)

    def _execute_batch(self, batch: List[ServeRequest], stream: Stream,
                       worker_id: int) -> None:
        # Deadline re-check at dispatch: expired-in-queue work is
        # dropped here, before any kernel runs.
        live = []
        for req in batch:
            if req.expired() and req.transition(DISPATCHED, EXPIRED):
                self._expire(req)
            else:
                live.append(req)
        if not live:
            return
        key = live[0].op_key
        attempt = 0
        degraded = False
        while True:
            if not self.breaker.allows(key):
                degraded = True
                break
            try:
                self._run_fast(live, stream)
                self.breaker.record_success(key)
                break
            except TRANSIENT_ERRORS as exc:
                now_open = self.breaker.record_failure(key)
                self._count("serve.fast_failures")
                error_text = f"{type(exc).__name__}: {exc}"
                self._event("serve.fast_path_failed",
                            request_ids=[r.id for r in live],
                            ops="+".join(key), phase="execute",
                            attempt=attempt, error=error_text)
                attempt += 1
                if now_open:
                    self._incident(
                        "breaker_open",
                        f"circuit breaker opened for {'+'.join(key)} "
                        f"after {self.config.breaker_threshold} "
                        f"consecutive failures ({error_text})",
                        phase="execute", requests=live, error=error_text)
                if attempt > self.config.max_retries or now_open:
                    if not now_open:
                        self._incident(
                            "launch_error",
                            f"fast path for {'+'.join(key)} exhausted "
                            f"{self.config.max_retries} retries "
                            f"({error_text})",
                            phase="execute", requests=live,
                            error=error_text)
                    degraded = True
                    break
                self._count("serve.retries")
                backoff_s = (self.config.retry_backoff_ms / 1000.0
                             * (2 ** (attempt - 1)))
                if backoff_s > 0:
                    time.sleep(backoff_s)
        if degraded:
            try:
                self._run_degraded(live, stream)
                self._count("serve.degraded", len(live))
            except BaseException as exc:
                for req in live:
                    req.transition(DISPATCHED, FAILED)
                    self._count("serve.failed")
                    self._finalize(req, error=exc)
                return
        self._count("serve.batches")
        self._observe("serve.batch_size", len(live))

    def _run_fast(self, live: List[ServeRequest], stream: Stream) -> None:
        """One pipeline batch over every request's op chain.

        Streamed requests (out-of-core :class:`DSSource` inputs) run
        their *whole* chain through :func:`repro.stream.engine.
        stream_run` instead — one single pass over the shards, the
        chain's intermediates never resident as full arrays.  The batch
        key keeps streamed and resident traffic apart, so a batch is
        normally homogeneous; the split here makes that a non-assumption.
        """
        if self.fault_hook is not None:
            self.fault_hook(live)
        tracing = _obs.active() is not None
        if tracing:
            _TRACE_EXEC_LOCK.acquire()
        results: Dict[int, PrimitiveResult] = {}
        try:
            # The annotation scope threads request identity into every
            # launch/primitive span and ``launch.done`` event-log record
            # this batch produces — the end-to-end correlation key.
            notes = {"request_ids": [req.id for req in live],
                     "batch_ops": "+".join(live[0].op_key)}
            trace_ids = [req.trace.trace_id for req in live
                         if req.trace is not None]
            if trace_ids:
                notes["trace_ids"] = trace_ids
            with _obs.annotate(**notes):
                resident = [req for req in live if not req.streamed]
                for req in live:
                    if req.streamed:
                        from repro.stream.engine import stream_run

                        results[req.id] = stream_run(
                            [(s.desc, s.args, s.kwargs) for s in req.ops],
                            req.array, stream=stream, config=req.config,
                            trace=req.trace)
                if resident:
                    fuse = self._tuned_fuse.get(resident[0].batch_key, True)
                    p = Pipeline(stream, config=resident[0].config,
                                 fuse=fuse, plan_cache=self.plan_cache)
                    tails = []
                    for req in resident:
                        prev: object = req.array
                        for stage in req.ops:
                            prev = p.enqueue(stage.desc, prev, *stage.args,
                                             config=req.config,
                                             **stage.kwargs)
                        tails.append(prev)
                    p.run()
                    for req, tail in zip(resident, tails):
                        results[req.id] = tail.result()
        finally:
            if tracing:
                _TRACE_EXEC_LOCK.release()
        for req in live:
            if req.transition(DISPATCHED, DONE):
                self._count("serve.completed")
                self._finalize(req, result=results[req.id])

    def _run_degraded(self, live: List[ServeRequest],
                      stream: Stream) -> None:
        """Serve every request through its sequential baseline."""
        for req in live:
            # A streamed request degrades by materializing: the
            # baseline is the correctness backstop, not the memory one.
            out = req.array.materialize() if req.streamed else req.array
            for stage in req.ops:
                out = run_degraded_stage(stage, out)
            if req.transition(DISPATCHED, DONE):
                self._count("serve.completed")
                self._finalize(
                    req, result=degraded_result(out, stream.device,
                                                req.op_key))

    # -- completion ----------------------------------------------------

    def _finalize(self, req: ServeRequest,
                  result: Optional[PrimitiveResult] = None,
                  error: Optional[BaseException] = None) -> None:
        latency_ms = (time.monotonic() - req.t_submit) * 1e3
        tracer = req.tracer
        t_done_us = (tracer.now_us()
                     if tracer is not None and tracer is _obs.active()
                     else None)
        degraded = bool(result is not None
                        and result.extras.get("degraded"))
        # Spans are emitted *before* the future resolves: a fleet
        # worker posts its response from a done-callback, and the
        # router may gather this server's span ring the moment the
        # client unblocks — the request's spans must already be there.
        self._emit_request_spans(req, degraded=degraded,
                                 t_done_us=t_done_us, error=error)
        if result is not None:
            # The shared Future extras schema: the serve layer owns the
            # correlation id, and every served result states whether it
            # was degraded (the streaming engine likewise stamps
            # ``shards``; repro.futures defaults fill the rest).
            result.extras["request_id"] = req.id
            result.extras.setdefault("degraded", False)
            self._observe("serve.latency_ms", latency_ms)
            req.future._resolve(result)
            self._event("serve.request_done", request_id=req.id,
                        ops="+".join(req.op_key),
                        latency_ms=round(latency_ms, 3),
                        degraded=degraded)
            if (self.config.slo_ms is not None
                    and latency_ms > self.config.slo_ms):
                self._count("serve.slo_breaches")
                self._event("serve.slo_breach", request_id=req.id,
                            ops="+".join(req.op_key),
                            latency_ms=round(latency_ms, 3),
                            slo_ms=self.config.slo_ms)
                self._incident(
                    "slo_breach",
                    f"request #{req.id} completed in {latency_ms:.1f}ms, "
                    f"over the {self.config.slo_ms:.1f}ms objective",
                    phase="finalize", requests=[req],
                    latency_ms=round(latency_ms, 3),
                    slo_ms=self.config.slo_ms)
        else:
            req.future._fail(error)
            error_text = f"{type(error).__name__}: {error}"
            if req.state == FAILED:
                # Expiry/cancellation get their own events at the
                # trigger site; this is the hard-failure path (both
                # fast and degraded execution raised).
                self._event("serve.request_failed", request_id=req.id,
                            ops="+".join(req.op_key), phase="execute",
                            error=error_text)
                self._incident(
                    "launch_error",
                    f"request #{req.id} ({'+'.join(req.op_key)}) "
                    f"failed: {error_text}",
                    phase="execute", requests=[req], error=error_text)
            elif req.state == CANCELLED:
                self._event("serve.request_cancelled",
                            request_id=req.id,
                            ops="+".join(req.op_key), phase="queue")
        with self._cond:
            self._inflight -= 1
            self._cond.notify_all()

    def _emit_request_spans(self, req: ServeRequest, *, degraded: bool,
                            t_done_us: Optional[float] = None,
                            error: Optional[BaseException] = None) -> None:
        tracer = req.tracer
        if tracer is None or tracer is not _obs.active():
            return
        if req.t_submit_us is None:
            return
        end_us = tracer.now_us()
        # One track per request: concurrent requests' span trees would
        # partially overlap on a shared track, which the Chrome-trace
        # exporter (correctly) rejects — slices on one tid must nest.
        track = f"serve:req{req.id}"
        args = {"id": req.id, "request_id": req.id,
                "ops": "+".join(req.op_key),
                "state": req.state, "degraded": degraded}
        if error is not None:
            args["error"] = f"{type(error).__name__}: {error}"
        if req.trace is not None:
            # Remote correlation: the fleet merger joins this span to
            # the router's serve.request through these args.
            args["trace_id"] = req.trace.trace_id
            if req.trace.parent_span_id:
                args["parent_span_id"] = req.trace.parent_span_id
            if req.trace.request_id is not None:
                args["fleet_request_id"] = req.trace.request_id
        root = tracer.add_span(
            "serve.request", track=track, cat="serve",
            start_us=req.t_submit_us, end_us=end_us, args=args)
        # Lifecycle stages as non-overlapping siblings, in order:
        # queued | batch_window | execute | finalize.  Each timestamp
        # is clamped to its predecessor so clock jitter between threads
        # can never produce overlapping slices.
        queued_end = (req.t_dispatch_us
                      if req.t_dispatch_us is not None else end_us)
        tracer.add_span("serve.queued", track=track, cat="serve",
                        start_us=req.t_submit_us, end_us=queued_end,
                        parent=root)
        exec_start = queued_end
        if req.t_dispatch_us is not None and req.t_window_us is not None:
            window_end = max(req.t_dispatch_us, req.t_window_us)
            tracer.add_span("serve.batch_window", track=track, cat="serve",
                            start_us=req.t_dispatch_us, end_us=window_end,
                            parent=root)
            exec_start = window_end
        exec_end = (max(exec_start, t_done_us)
                    if t_done_us is not None else end_us)
        if req.t_dispatch_us is not None:
            tracer.add_span("serve.execute", track=track,
                            cat="serve", start_us=exec_start,
                            end_us=exec_end, parent=root)
        if t_done_us is not None and exec_end < end_us:
            tracer.add_span("serve.finalize", track=track, cat="serve",
                            start_us=exec_end, end_us=end_us,
                            parent=root)

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """A live snapshot: serve metrics (histograms with p50/p95/p99),
        queue/in-flight state, cache hit rates, breaker states and the
        flight recorder's ring occupancy + incident bundles."""
        out: Dict[str, object] = {}
        with self._mlock:
            for item in self.metrics.instruments():
                if item.name.startswith("serve."):
                    d = item.to_dict()
                    if d["type"] == "histogram":
                        # The power-of-two buckets ride along so the
                        # fleet rollup can merge percentiles exactly
                        # (bucket-wise sums) instead of conservatively.
                        out[item.name] = {k: d[k] for k in
                                          ("count", "sum", "min", "max",
                                           "mean", "p50", "p95", "p99",
                                           "buckets", "nonfinite")}
                    else:
                        out[item.name] = d["value"]
        with self._cond:
            out["inflight"] = self._inflight
            out["queue_depth"] = len(self._queue)
        hits, misses = self.plan_cache.stats()
        out["plan_cache.hits"] = hits
        out["plan_cache.misses"] = misses
        planned = hits + misses
        out["plan_cache.hit_rate"] = hits / planned if planned else 0.0
        out["signature_cache"] = signature_cache_stats()
        out["warm_keys"] = len(self._warm_shapes)
        # Active tuned knobs per batch key, in human-readable form:
        # "ops|n=<size>|<dtype>" -> the knob dict the key serves under.
        out["tuned"] = {
            f"{info['ops']}|n={info['n']}|{info['dtype']}":
                dict(info["knobs"])
            for info in self._tuned_active.values()
        }
        out["breaker"] = {"+".join(k): v
                          for k, v in self.breaker.snapshot().items()}
        if self.flight is not None:
            out["flight"] = {
                "capacity": self.flight.capacity,
                "n_spans": len(self.flight.spans()),
                "n_events": len(self.flight.events()),
                "incidents": [str(p) for p in self.flight.dumps],
            }
        else:
            out["flight"] = None
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Server(device={self.device!r}, "
                f"workers={self.config.num_workers}, "
                f"inflight={self.inflight})")
