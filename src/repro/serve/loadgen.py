"""Closed-loop load generator for :class:`repro.serve.Server`.

``run_load`` spins up *C* client threads, each submitting
``requests_per_client`` identical requests in a closed loop (submit →
wait → verify → repeat), so offered concurrency is exactly *C* and the
batcher sees realistic arrival bursts.  Every response is checked
against the NumPy reference semantics — a serving layer that batches,
retries, sheds or degrades is only interesting if it stays *correct*
under all of that, so correctness is part of the report, not a
separate test.

Fault injection (``fault="always"`` or a 0..1 rate) raises transient
:class:`~repro.errors.LaunchError` from the server's fast path, driving
the retry/breaker/degradation machinery; the acceptance bar is that
every request still completes with the right bytes.

Run it directly::

    PYTHONPATH=src python -m repro.serve.loadgen --shape chain --clients 4

or through the CLI front end ``python -m repro serve``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import DSConfig
from repro.core.predicates import less_than
from repro.errors import DeadlineExceeded, LaunchError, Overloaded, \
    RequestCancelled, ServeError
from repro.primitives.common import DEFAULT_DEVICE
from repro.reference import partition_ref, remove_if_ref, unique_ref
from repro.serve.config import ServeConfig
from repro.serve.server import Server

__all__ = ["LoadReport", "ShapeSpec", "SHAPES", "make_shape", "run_load",
           "check_report", "flight_overhead_check", "main"]


@dataclass(frozen=True)
class ShapeSpec:
    """One traffic shape: an op chain, its fixed input and the expected
    output (computed once from the reference semantics)."""

    name: str
    ops: tuple
    array: np.ndarray
    expected: np.ndarray


def _shape_compact(rng: np.random.Generator, n: int) -> ShapeSpec:
    x = rng.integers(0, 4, n).astype(np.float64)
    return ShapeSpec("compact", (("compact", 0.0),), x,
                     x[x != 0.0].copy())


def _shape_unique(rng: np.random.Generator, n: int) -> ShapeSpec:
    x = np.repeat(rng.integers(0, 50, (n + 3) // 4), 4)[:n].astype(np.float64)
    return ShapeSpec("unique", ("unique",), x, unique_ref(x))


def _shape_remove_if(rng: np.random.Generator, n: int) -> ShapeSpec:
    x = rng.random(n)
    pred = less_than(0.5)
    return ShapeSpec("remove_if", (("remove_if", pred),), x,
                     remove_if_ref(x, pred))


def _shape_partition(rng: np.random.Generator, n: int) -> ShapeSpec:
    x = rng.random(n)
    pred = less_than(0.5)
    out, _ = partition_ref(x, pred)
    return ShapeSpec("partition", (("partition", pred),), x, out)


def _shape_chain(rng: np.random.Generator, n: int) -> ShapeSpec:
    x = rng.integers(0, 4, n).astype(np.float64)
    return ShapeSpec("chain", (("compact", 0.0), "unique"), x,
                     unique_ref(x[x != 0.0]))


SHAPES = {
    "compact": _shape_compact,
    "unique": _shape_unique,
    "remove_if": _shape_remove_if,
    "partition": _shape_partition,
    "chain": _shape_chain,
}


def make_shape(name: str, n: int, seed: int = 1234) -> ShapeSpec:
    """Build the named traffic shape over an ``n``-element input."""
    try:
        builder = SHAPES[name]
    except KeyError:
        raise ServeError(
            f"unknown load shape {name!r} (choose from "
            f"{', '.join(sorted(SHAPES))})") from None
    return builder(np.random.default_rng(seed), n)


class _FaultInjector:
    """Server ``fault_hook``: raise a transient LaunchError always or at
    a fixed per-batch probability (deterministic given the seed)."""

    def __init__(self, mode, seed: int) -> None:
        self.mode = mode
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self.injected = 0

    def __call__(self, batch) -> None:
        with self._lock:
            if self.mode == "always":
                hit = True
            else:
                hit = bool(self._rng.random() < float(self.mode))
            if hit:
                self.injected += 1
        if hit:
            raise LaunchError(
                f"injected fault #{self.injected} (loadgen chaos hook)")


@dataclass
class LoadReport:
    """Everything ``run_load`` measured, ready for the CLI/bench."""

    shape: str
    clients: int
    requests: int
    completed: int = 0
    wrong: int = 0
    failed: int = 0
    expired: int = 0
    shed_retries: int = 0
    degraded: int = 0
    retries: int = 0
    faults_injected: int = 0
    slo_breaches: int = 0
    wall_s: float = 0.0
    throughput_rps: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_mean_ms: float = 0.0
    batches: int = 0
    batch_size_mean: float = 0.0
    batch_size_max: float = 0.0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_hit_rate: float = 0.0
    errors: List[str] = field(default_factory=list)
    incidents: List[str] = field(default_factory=list)
    stats: Optional[Dict] = None

    def to_dict(self) -> dict:
        out = dict(self.__dict__)
        out["errors"] = list(self.errors[:5])
        return out

    def summary(self) -> str:
        lines = [
            f"serve loadgen: shape={self.shape} clients={self.clients} "
            f"requests={self.requests}",
            f"  completed {self.completed} ({self.wrong} wrong, "
            f"{self.failed} failed, {self.expired} expired, "
            f"{self.shed_retries} shed-then-retried)",
            f"  throughput {self.throughput_rps:.1f} req/s over "
            f"{self.wall_s * 1e3:.1f} ms",
            f"  latency p50 {self.latency_p50_ms:.2f} ms, "
            f"p95 {self.latency_p95_ms:.2f} ms, "
            f"p99 {self.latency_p99_ms:.2f} ms, "
            f"mean {self.latency_mean_ms:.2f} ms",
            f"  batches {self.batches} (mean size "
            f"{self.batch_size_mean:.2f}, max {self.batch_size_max:.0f})",
            f"  plan cache {self.plan_hits} hits / {self.plan_misses} "
            f"misses (hit rate {self.plan_hit_rate * 100:.1f}%)",
            f"  robustness: {self.retries} retries, {self.degraded} "
            f"degraded, {self.faults_injected} faults injected",
        ]
        if self.slo_breaches:
            lines.append(f"  SLO breaches: {self.slo_breaches}")
        if self.incidents:
            lines.append("  incident bundles:")
            lines.extend(f"    {p}" for p in self.incidents)
        if self.errors:
            lines.append(f"  first errors: {self.errors[:3]}")
        return "\n".join(lines)


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def run_load(
    *,
    shape: str = "chain",
    clients: int = 4,
    requests_per_client: int = 25,
    n: int = 512,
    serve_config: Optional[ServeConfig] = None,
    ds_config: Optional[DSConfig] = None,
    device=DEFAULT_DEVICE,
    fault=None,
    prime: bool = True,
    deadline_ms: Optional[float] = None,
    seed: int = 1234,
    timeout_s: float = 60.0,
    collect_stats: bool = False,
    tuning_db=None,
) -> LoadReport:
    """Drive a fresh :class:`Server` with closed-loop clients.

    Parameters mirror the CLI flags; ``fault`` is ``None`` (healthy),
    ``"always"`` (every fast-path batch fails → breaker opens →
    degradation serves everything) or a 0..1 per-batch probability.
    ``collect_stats=True`` snapshots :meth:`Server.stats` into
    ``report.stats`` before shutdown.  ``tuning_db`` (a
    :class:`~repro.tune.db.TuningDB`) hands the server persisted
    autotuner winners; the prime step then warms from it
    (``tuned=True``) and stats are always collected so the report shows
    which tuned knobs were active.  Returns a fully populated
    :class:`LoadReport`.

    The whole run executes inside ``metrics.scoped("serve.")``, so
    back-to-back runs against a shared registry (the active tracer's)
    each start their ``serve.*`` instruments from zero and leave the
    registry as they found it — no counter bleed between runs.
    """
    spec = make_shape(shape, n, seed)
    cfg = serve_config if serve_config is not None else ServeConfig()
    injector = _FaultInjector(fault, seed) if fault is not None else None
    if tuning_db is not None:
        collect_stats = True
    server = Server(cfg, ds_config=ds_config, device=device,
                    fault_hook=injector, tuning_db=tuning_db,
                    autostart=False)
    if server.flight is not None:
        # The replay contract: every incident bundle this run dumps
        # carries the full traffic profile in its manifest events, so
        # ``python -m repro replay <bundle>`` can regenerate the exact
        # load (shape, concurrency, seed, fault schedule) that tripped
        # the trigger.
        server.flight.record_event(
            "loadgen.profile", shape=shape, n=int(n),
            clients=int(clients),
            requests_per_client=int(requests_per_client),
            seed=int(seed),
            fault=None if fault is None else str(fault),
            deadline_ms=deadline_ms, prime=bool(prime))
    report = LoadReport(shape=shape, clients=clients,
                        requests=clients * requests_per_client)
    with server.metrics.scoped("serve."):
        _drive_load(server, spec, report,
                    clients=clients,
                    requests_per_client=requests_per_client,
                    ds_config=ds_config, prime=prime,
                    deadline_ms=deadline_ms, timeout_s=timeout_s,
                    collect_stats=collect_stats)
    if injector is not None:
        report.faults_injected = injector.injected
    return report


def _drive_load(server: Server, spec: ShapeSpec, report: LoadReport, *,
                clients: int, requests_per_client: int, ds_config,
                prime: bool, deadline_ms: Optional[float],
                timeout_s: float, collect_stats: bool) -> None:
    """The body of :func:`run_load`, run inside the scoped registry."""
    if prime:
        server.prime(spec.ops, spec.array, config=ds_config,
                     tuned=server.tuning_db is not None)
    cfg = server.config
    hits0, misses0 = server.plan_cache.stats()

    latencies: List[float] = []
    lock = threading.Lock()

    def client(cid: int) -> None:
        for _ in range(requests_per_client):
            t0 = time.perf_counter()
            while True:
                try:
                    fut = server.submit_chain(spec.ops, spec.array,
                                              config=ds_config,
                                              deadline_ms=deadline_ms)
                    break
                except Overloaded:
                    with lock:
                        report.shed_retries += 1
                    time.sleep(cfg.max_wait_ms / 1000.0)
            try:
                result = fut.result(timeout=timeout_s)
            except DeadlineExceeded:
                with lock:
                    report.expired += 1
                continue
            except (RequestCancelled, Exception) as exc:
                with lock:
                    report.failed += 1
                    report.errors.append(f"{type(exc).__name__}: {exc}")
                continue
            elapsed_ms = (time.perf_counter() - t0) * 1e3
            ok = np.array_equal(np.asarray(result.output), spec.expected)
            with lock:
                report.completed += 1
                latencies.append(elapsed_ms)
                if not ok:
                    report.wrong += 1
                    report.errors.append(
                        f"client {cid}: wrong output shape "
                        f"{np.shape(result.output)} vs "
                        f"{spec.expected.shape}")

    server.start()
    threads = [threading.Thread(target=client, args=(i,),
                                name=f"loadgen-client-{i}")
               for i in range(clients)]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.wall_s = time.perf_counter() - t_start
    if collect_stats:
        report.stats = server.stats()
    server.close(drain=True)

    # -- fold in the server-side metrics --------------------------------
    hits1, misses1 = server.plan_cache.stats()
    report.plan_hits = hits1 - hits0
    report.plan_misses = misses1 - misses0
    planned = report.plan_hits + report.plan_misses
    report.plan_hit_rate = report.plan_hits / planned if planned else 1.0

    metrics = server.metrics
    batch_hist = metrics.get("serve.batch_size")
    if batch_hist is not None:
        report.batches = batch_hist.count
        report.batch_size_mean = batch_hist.mean
        report.batch_size_max = batch_hist.max or 0.0
    for attr, name in (("degraded", "serve.degraded"),
                       ("retries", "serve.retries"),
                       ("slo_breaches", "serve.slo_breaches")):
        counter = metrics.get(name)
        setattr(report, attr, counter.value if counter is not None else 0)
    if server.flight is not None:
        report.incidents = [str(p) for p in server.flight.dumps]

    latencies.sort()
    report.latency_p50_ms = _percentile(latencies, 0.50)
    report.latency_p95_ms = _percentile(latencies, 0.95)
    report.latency_p99_ms = _percentile(latencies, 0.99)
    report.latency_mean_ms = (sum(latencies) / len(latencies)
                              if latencies else 0.0)
    report.throughput_rps = (report.completed / report.wall_s
                             if report.wall_s > 0 else 0.0)


def check_report(report: LoadReport, *, faulted: bool = False) -> None:
    """Assert the acceptance bar on a loadgen run; raises
    :class:`~repro.errors.ServeError` with the failures listed.

    ``faulted=True`` means the fast path was *forced* to fail
    (``fault="always"``), so the run must have served through
    degradation; plan-cache expectations are waived for it."""
    problems = []
    if report.completed != report.requests:
        problems.append(
            f"completed {report.completed}/{report.requests} requests "
            f"({report.failed} failed, {report.expired} expired)")
    if report.wrong:
        problems.append(f"{report.wrong} responses had wrong outputs")
    if report.batch_size_max < 2:
        problems.append(
            f"no multi-request batches formed (max batch size "
            f"{report.batch_size_max:.0f}); batching is not engaging")
    if faulted:
        if report.degraded <= 0:
            problems.append("fault-injected run never degraded "
                            "(serve.degraded == 0)")
    elif report.plan_hit_rate <= 0.90:
        problems.append(
            f"plan-cache hit rate {report.plan_hit_rate * 100:.1f}% "
            f"<= 90% after warmup")
    if problems:
        raise ServeError("loadgen acceptance failed: "
                         + "; ".join(problems))


def flight_overhead_check(*, tolerance: float = 0.10, trials: int = 3,
                          **run_kwargs) -> dict:
    """Measure the flight recorder's serving overhead.

    Runs the same load ``trials`` times with the recorder enabled and
    disabled (``flight_capacity=0``), takes the best throughput of each
    (best-of-N discards scheduler noise, which at these batch sizes
    dwarfs the recorder's deque appends), and asserts the recorded
    throughput is within ``tolerance`` of the baseline.  Returns the
    measurements; raises :class:`~repro.errors.ServeError` on breach.
    """
    cfg = run_kwargs.pop("serve_config", None) or ServeConfig.from_env()
    best = {}
    for label, capacity in (("off", 0), ("on", cfg.flight_capacity or 4096)):
        rps = 0.0
        for _ in range(max(1, trials)):
            report = run_load(
                serve_config=cfg.replace(flight_capacity=capacity),
                **run_kwargs)
            rps = max(rps, report.throughput_rps)
        best[label] = rps
    ratio = best["on"] / best["off"] if best["off"] > 0 else 1.0
    result = {"throughput_off_rps": round(best["off"], 2),
              "throughput_on_rps": round(best["on"], 2),
              "ratio": round(ratio, 4), "tolerance": tolerance,
              "trials": trials}
    if ratio < 1.0 - tolerance:
        raise ServeError(
            f"flight recorder overhead check failed: {best['on']:.1f} "
            f"req/s with the recorder vs {best['off']:.1f} req/s without "
            f"(ratio {ratio:.3f} < {1.0 - tolerance:.2f})")
    return result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve.loadgen",
        description="Closed-loop load generator for the repro serve layer.")
    parser.add_argument("--shape", default="chain",
                        choices=sorted(SHAPES),
                        help="traffic shape (op chain) to generate")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent closed-loop clients")
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per client")
    parser.add_argument("--n", type=int, default=512,
                        help="input array length")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="override ServeConfig.max_batch_size")
    parser.add_argument("--wait-ms", type=float, default=None,
                        help="override ServeConfig.max_wait_ms")
    parser.add_argument("--workers", type=int, default=None,
                        help="override ServeConfig.num_workers")
    parser.add_argument("--queue-depth", type=int, default=None,
                        help="override ServeConfig.max_queue_depth")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline")
    parser.add_argument("--slo-ms", type=float, default=None,
                        help="latency objective; slower completions fire "
                             "the slo_breach incident trigger")
    parser.add_argument("--fault", default=None,
                        help="'always' or a 0..1 per-batch fault rate")
    parser.add_argument("--incident-dir", default=None,
                        help="write flight-recorder incident bundles here "
                             "on breaker-open/deadline/launch-error/SLO "
                             "triggers")
    parser.add_argument("--event-log", default=None,
                        help="append the structured JSONL event log to "
                             "this file")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--tuning-db", default=None,
                        help="warm the server from this autotuner DB "
                             "(Server.prime(tuned=True)); active tuned "
                             "knobs show up under stats['tuned']")
    parser.add_argument("--no-prime", action="store_true",
                        help="skip plan-cache pre-warming")
    parser.add_argument("--check", action="store_true",
                        help="assert the acceptance bar on the report")
    parser.add_argument("--stats", action="store_true",
                        help="print the live Server.stats() snapshot "
                             "(queue depth, latency percentiles, cache "
                             "hit rates, breaker + flight state)")
    parser.add_argument("--flight-overhead-check", action="store_true",
                        help="run the load with the flight recorder on "
                             "and off (best of 3 each) and assert the "
                             "recorded throughput is within 10%% of the "
                             "baseline")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    return parser


def _config_from_args(args) -> ServeConfig:
    cfg = ServeConfig.from_env()
    overrides = {}
    if args.batch_size is not None:
        overrides["max_batch_size"] = args.batch_size
    if args.wait_ms is not None:
        overrides["max_wait_ms"] = args.wait_ms
    if args.workers is not None:
        overrides["num_workers"] = args.workers
    if args.queue_depth is not None:
        overrides["max_queue_depth"] = args.queue_depth
    if args.slo_ms is not None:
        overrides["slo_ms"] = args.slo_ms
    if args.incident_dir is not None:
        overrides["incident_dir"] = args.incident_dir
    if args.event_log is not None:
        overrides["event_log"] = args.event_log
    return cfg.replace(**overrides) if overrides else cfg


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    fault = args.fault
    if fault is not None and fault != "always":
        fault = float(fault)
    if args.flight_overhead_check:
        result = flight_overhead_check(
            shape=args.shape, clients=args.clients,
            requests_per_client=args.requests, n=args.n,
            serve_config=_config_from_args(args),
            fault=fault, prime=not args.no_prime,
            deadline_ms=args.deadline_ms, seed=args.seed)
        print(json.dumps(result, indent=2, sort_keys=True))
        print(f"flight recorder overhead: ratio {result['ratio']:.3f} "
              f">= {1.0 - result['tolerance']:.2f}: OK")
        return 0
    tuning_db = None
    if args.tuning_db is not None:
        from repro.tune.db import TuningDB

        tuning_db = TuningDB.load(args.tuning_db)
    report = run_load(
        shape=args.shape, clients=args.clients,
        requests_per_client=args.requests, n=args.n,
        serve_config=_config_from_args(args),
        fault=fault, prime=not args.no_prime,
        deadline_ms=args.deadline_ms, seed=args.seed,
        collect_stats=args.stats, tuning_db=tuning_db)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
        if report.stats is not None and (report.stats.get("tuned")
                                         or tuning_db is not None):
            print("tuned knobs active: "
                  + json.dumps(report.stats.get("tuned", {}),
                               sort_keys=True))
        if args.stats and report.stats is not None:
            print("server stats:")
            print(json.dumps(report.stats, indent=2, sort_keys=True))
    if args.check:
        if tuning_db is not None and len(tuning_db):
            from repro.tune.db import kernel_key

            spec = make_shape(args.shape, args.n, args.seed)
            if kernel_key(spec.ops, spec.array) in tuning_db and not (
                    report.stats or {}).get("tuned"):
                raise ServeError(
                    "loadgen acceptance failed: tuning DB has a matching "
                    "kernel entry but stats['tuned'] is empty — tuned "
                    "knobs never activated")
        # Only a forced-failure run ("always") is guaranteed to
        # degrade; at a partial fault rate retries may absorb every
        # fault, which is a pass, not a miss.
        check_report(report, faulted=fault == "always")
        if fault is not None and fault != "always":
            if report.retries + report.degraded <= 0 < report.faults_injected:
                raise ServeError(
                    "loadgen acceptance failed: faults were injected "
                    "but neither retries nor degradation engaged")
        print("loadgen acceptance: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
