"""Sequential baselines the serve layer degrades to.

When an op's circuit breaker is open (repeated fast-path failure), the
server must still answer correctly — the paper's primitives all have
well-defined sequential semantics, so every degradable op maps to a
plain CPU implementation here: the Section IV-A sequential baselines
(:mod:`repro.baselines.sequential`) where the paper provides one, the
pure-NumPy reference semantics (:mod:`repro.reference`) otherwise.
Both produce byte-identical outputs to the fast path (the reference
functions are the oracle the whole test suite compares against), so a
degraded response is *correct*, just not accelerator-priced — its
:class:`~repro.primitives.common.PrimitiveResult` carries no launch
counters and ``extras["degraded"] = True``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.baselines.sequential import seq_compact, seq_pad, seq_unpad
from repro.errors import ServeError
from repro.primitives.common import PrimitiveResult
from repro.reference import (
    copy_if_ref,
    erase_range_ref,
    insert_gap_ref,
    partition_ref,
    remove_if_ref,
    unique_by_key_ref,
    unique_ref,
)
from repro.serve.request import OpStage
from repro.simgpu.device import DeviceSpec

__all__ = ["degradable", "run_degraded_stage", "degraded_result",
           "SEQUENTIAL_BASELINES"]


def _pad(values, args, kwargs):
    return seq_pad(np.asarray(values), args[0],
                   fill=kwargs.get("fill", 0)).output


def _unpad(values, args, kwargs):
    return seq_unpad(np.asarray(values), args[0]).output


def _compact(values, args, kwargs):
    return seq_compact(np.asarray(values), args[0]).output


def _unique(values, args, kwargs):
    return unique_ref(values)


def _remove_if(values, args, kwargs):
    return remove_if_ref(values, args[0])


def _copy_if(values, args, kwargs):
    return copy_if_ref(values, args[0])


def _partition(values, args, kwargs):
    out, _n_true = partition_ref(values, args[0])
    return out


def _insert_gap(values, args, kwargs):
    return insert_gap_ref(values, args[0], args[1],
                          fill=kwargs.get("fill", 0))


def _erase_range(values, args, kwargs):
    return erase_range_ref(values, args[0], args[1])


def _unique_by_key(values, args, kwargs):
    # Match the fast path's envelope: a 2xN float64 stack of the kept
    # (keys, values) pair.
    keys, vals = unique_by_key_ref(values, args[0])
    return np.stack([keys.astype(np.float64), vals.astype(np.float64)])


#: op full name -> ``fn(input_array, stage_args, stage_kwargs) -> ndarray``
SEQUENTIAL_BASELINES: Dict[str, Callable] = {
    "ds_pad": _pad,
    "ds_unpad": _unpad,
    "ds_stream_compact": _compact,
    "ds_unique": _unique,
    "ds_remove_if": _remove_if,
    "ds_copy_if": _copy_if,
    "ds_partition": _partition,
    "ds_insert_gap": _insert_gap,
    "ds_erase_range": _erase_range,
    "ds_unique_by_key": _unique_by_key,
}


def degradable(op_name: str) -> bool:
    """Does ``op_name`` have a sequential baseline to degrade to?"""
    return op_name in SEQUENTIAL_BASELINES


def run_degraded_stage(stage: OpStage, values: np.ndarray) -> np.ndarray:
    """Execute one chain stage through its sequential baseline."""
    fn = SEQUENTIAL_BASELINES.get(stage.desc.name)
    if fn is None:
        raise ServeError(
            f"op {stage.desc.name!r} has no sequential baseline to "
            f"degrade to (degradable ops: "
            f"{', '.join(sorted(SEQUENTIAL_BASELINES))})")
    return np.asarray(fn(values, stage.args, stage.kwargs))


def degraded_result(output: np.ndarray, device: DeviceSpec,
                    op_names) -> PrimitiveResult:
    """Wrap a degraded chain's final output in the standard envelope."""
    output = np.asarray(output)
    return PrimitiveResult(
        output=output,
        counters=[],
        device=device,
        extras={
            "degraded": True,
            "n_kept": int(output.shape[0]) if output.ndim else int(output.size),
            "degraded_ops": tuple(op_names),
        },
    )
