"""``repro.serve`` — a micro-batching service layer over the DS
primitives.

The paper's primitives are throughput devices: one kernel launch over a
large array amortizes fixed launch cost.  A serving workload inverts
that — many small independent requests arrive continuously — so this
package recovers the throughput regime by *micro-batching*: compatible
requests (same op chain, geometry, dtype, params, config) are grouped
into one :class:`~repro.pipeline.Pipeline` batch that shares a single
plan-cache entry and fuses chained ops, then executed on a worker pool
(one simulated :class:`~repro.simgpu.stream.Stream` per worker).

Around the hot path sits a robustness ring: bounded-queue admission
control (:class:`~repro.errors.Overloaded` load shedding), per-request
deadlines with cancellation of not-yet-dispatched work, bounded
exponential-backoff retries on transient launch errors, and a per-op
circuit breaker that degrades to the sequential baselines — correct
answers, slower — until a cooldown probe restores the fast path.

Entry points::

    from repro.serve import Server, ServeConfig
    with Server(ServeConfig(max_batch_size=8, max_wait_ms=2.0)) as srv:
        fut = srv.submit("compact", data, 0.0)
        chained = srv.submit_chain([("compact", 0.0), "unique"], data)
        print(fut.output, chained.output)

and ``python -m repro serve`` / ``python -m repro.serve.loadgen`` for
the closed-loop load generator.  See ``docs/serving.md``.
"""

from repro.errors import (
    DeadlineExceeded,
    Overloaded,
    RequestCancelled,
    ServeError,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import DEFAULT_SERVE_CONFIG, ServeConfig
from repro.serve.degrade import SEQUENTIAL_BASELINES, degradable
from repro.serve.request import ServeFuture, ServeRequest
from repro.serve.server import Server

_LOADGEN_EXPORTS = ("LoadReport", "run_load", "check_report")


def __getattr__(name):
    # Lazy so `python -m repro.serve.loadgen` doesn't re-import the
    # module it is executing (runpy's double-import warning).
    if name in _LOADGEN_EXPORTS:
        from repro.serve import loadgen

        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Server",
    "ServeConfig",
    "DEFAULT_SERVE_CONFIG",
    "ServeFuture",
    "ServeRequest",
    "CircuitBreaker",
    "SEQUENTIAL_BASELINES",
    "degradable",
    "LoadReport",
    "run_load",
    "check_report",
    "ServeError",
    "Overloaded",
    "DeadlineExceeded",
    "RequestCancelled",
]
