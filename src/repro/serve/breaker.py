"""Per-op circuit breaker: graceful degradation with cooldown re-probe.

Standard three-state breaker, keyed by a request's op chain
(``("ds_stream_compact", "ds_unique")``):

* **closed** — the fast path (pipeline engine on the configured
  backend) runs normally; consecutive failures are counted and a
  success resets the count;
* **open** — after ``threshold`` consecutive failures the breaker
  opens: workers skip the fast path entirely and serve the request
  through the sequential baseline (:mod:`repro.serve.degrade`) —
  correct, slower, zero launch-failure exposure;
* **half-open** — once ``cooldown_ms`` has elapsed, exactly one batch
  is admitted as a probe.  Probe success closes the breaker (the op
  returns to the fast path); probe failure re-opens it with a fresh
  cooldown.

All transitions happen under one lock; ``allows`` is the only hot-path
call and does a dict lookup plus a couple of comparisons.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class _KeyState:
    __slots__ = ("failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.probing = False


class CircuitBreaker:
    """Track consecutive fast-path failures per op chain.

    Parameters
    ----------
    threshold:
        Consecutive failures that open the breaker.
    cooldown_ms:
        Open time before one half-open probe is admitted.
    clock:
        Injectable monotonic clock (seconds) for deterministic tests.
    """

    def __init__(self, threshold: int = 3, cooldown_ms: float = 50.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_ms < 0:
            raise ValueError(
                f"cooldown_ms must be >= 0, got {cooldown_ms}")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_ms) / 1000.0
        self._clock = clock
        self._lock = threading.Lock()
        self._keys: Dict[tuple, _KeyState] = {}
        self.opened_total = 0
        self.probes_total = 0

    def _state_locked(self, key: tuple) -> _KeyState:
        st = self._keys.get(key)
        if st is None:
            st = self._keys[key] = _KeyState()
        return st

    def allows(self, key: tuple) -> bool:
        """May the fast path run for ``key`` right now?

        While open, returns ``False`` — except one call per cooldown
        expiry, which claims the half-open probe slot and returns
        ``True``.  The caller must report the probe's outcome through
        :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            st = self._keys.get(key)
            if st is None or st.opened_at is None:
                return True
            if st.probing:
                return False  # another worker holds the probe slot
            if self._clock() - st.opened_at >= self.cooldown_s:
                st.probing = True
                self.probes_total += 1
                return True
            return False

    def record_success(self, key: tuple) -> None:
        """A fast-path batch (or probe) succeeded: close the breaker."""
        with self._lock:
            st = self._state_locked(key)
            st.failures = 0
            st.opened_at = None
            st.probing = False

    def record_failure(self, key: tuple) -> bool:
        """A fast-path batch failed; returns ``True`` if the breaker is
        now open (including a failed half-open probe re-opening it)."""
        with self._lock:
            st = self._state_locked(key)
            st.failures += 1
            if st.probing:
                # Failed probe: back to open with a fresh cooldown.
                st.probing = False
                st.opened_at = self._clock()
                return True
            if st.opened_at is None and st.failures >= self.threshold:
                st.opened_at = self._clock()
                self.opened_total += 1
                return True
            return st.opened_at is not None

    def force_open(self, key: tuple) -> None:
        """Open the breaker immediately (tests and operator overrides)."""
        with self._lock:
            st = self._state_locked(key)
            st.failures = max(st.failures, self.threshold)
            st.opened_at = self._clock()
            st.probing = False
            self.opened_total += 1

    def state(self, key: tuple) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` for ``key``."""
        with self._lock:
            st = self._keys.get(key)
            if st is None or st.opened_at is None:
                return CLOSED
            if (st.probing
                    or self._clock() - st.opened_at >= self.cooldown_s):
                return HALF_OPEN
            return OPEN

    def snapshot(self) -> Dict[Tuple[str, ...], str]:
        """Current state of every key ever seen (for reports/CLI)."""
        with self._lock:
            keys = list(self._keys)
        return {key: self.state(key) for key in keys}
