"""Requests, futures and batch-compatibility keys for the serve layer.

A :class:`ServeRequest` is one client submission: an input array plus a
chain of one or more DS ops (the same surface :func:`repro.ds` and
:class:`~repro.pipeline.Pipeline` expose — each op after the first
consumes its predecessor's output, so a multi-op request rides the
pipeline engine's fusion).  The request's :attr:`~ServeRequest.batch_key`
captures everything that must agree for two requests to share one
pipeline batch — op chain, input geometry/dtype, op parameters, config
and backend — which is also exactly what the pipeline's plan key hashes,
so a batch of *k* identical-key requests maps to one plan-cache entry
per *k*.

State transitions are compare-and-set under a per-request lock::

    QUEUED ──> DISPATCHED ──> DONE | FAILED | EXPIRED
       └─────> CANCELLED | EXPIRED

``cancel`` and deadline expiry only win while the request is QUEUED
(or, for expiry, just before a worker executes it): a request that
expires while queued is **never executed**.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.config import DSConfig
from repro.errors import ServeError
from repro.futures import Future
from repro.primitives.common import PrimitiveResult
from repro.primitives.opspec import OpDescriptor, array_signature

__all__ = ["OpStage", "ServeRequest", "ServeFuture", "make_batch_key",
           "QUEUED", "DISPATCHED", "DONE", "FAILED", "EXPIRED", "CANCELLED"]

QUEUED = "queued"
DISPATCHED = "dispatched"
DONE = "done"
FAILED = "failed"
EXPIRED = "expired"
CANCELLED = "cancelled"


class OpStage:
    """One op of a request's chain: descriptor plus its non-input
    arguments (the input slides in from the request array or the
    previous stage's future at execution time)."""

    __slots__ = ("desc", "args", "kwargs")

    def __init__(self, desc: OpDescriptor, args: tuple, kwargs: dict) -> None:
        self.desc = desc
        self.args = tuple(args)
        self.kwargs = dict(kwargs)

    def signature(self, input_placeholder) -> tuple:
        """The stage's batch-key contribution.  ``params_signature``
        descriptor lambdas index the *full* argument tuple (input
        first), so the placeholder restores that shape."""
        full_args = (input_placeholder,) + self.args
        try:
            params = self.desc.params_signature(full_args, self.kwargs)
        except Exception:
            params = ("opaque",)
        return (self.desc.name, params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpStage({self.desc.short})"


class ServeRequest:
    """One in-flight submission owned by a :class:`~repro.serve.Server`."""

    __slots__ = ("id", "ops", "array", "config", "batch_key", "deadline",
                 "future", "state", "lock", "t_submit", "t_dispatch",
                 "t_submit_us", "t_dispatch_us", "t_window_us", "tracer",
                 "trace", "server")

    def __init__(
        self,
        request_id: int,
        ops: List[OpStage],
        array: np.ndarray,
        config: DSConfig,
        batch_key: tuple,
        deadline: Optional[float],
    ) -> None:
        self.id = request_id
        self.ops = tuple(ops)
        self.array = array
        self.config = config
        self.batch_key = batch_key
        self.deadline = deadline
        self.future = ServeFuture(self)
        self.state = QUEUED
        self.lock = threading.Lock()
        self.t_submit = time.monotonic()
        self.t_dispatch: Optional[float] = None
        # Tracer-relative timestamps for the per-request span tree;
        # populated by the server when a tracer is active at submit.
        self.t_submit_us: Optional[float] = None
        self.t_dispatch_us: Optional[float] = None
        self.t_window_us: Optional[float] = None
        self.tracer = None
        # Distributed trace context (repro.obs.distrib.TraceContext)
        # when this request arrived through the fleet transport.
        self.trace = None
        self.server = None  # set by Server.submit; used by cancel()

    @property
    def op_key(self) -> Tuple[str, ...]:
        """The op-chain identity the circuit breaker keys on."""
        return tuple(stage.desc.name for stage in self.ops)

    @property
    def streamed(self) -> bool:
        """Whether the input is an out-of-core
        :class:`~repro.stream.source.DSSource` (executed through the
        sharded streaming engine rather than one resident array)."""
        return not getattr(self.array, "in_core", True)

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def transition(self, from_state: str, to_state: str) -> bool:
        """Compare-and-set the request state; ``True`` on success."""
        with self.lock:
            if self.state != from_state:
                return False
            self.state = to_state
            return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = "+".join(s.desc.short for s in self.ops)
        return f"ServeRequest(#{self.id} {ops}, {self.state})"


class ServeFuture(Future):
    """Client handle to one request's eventual result.

    ``result()`` blocks until the server resolves the request and
    returns its :class:`~repro.primitives.common.PrimitiveResult`, or
    raises the failure (:class:`~repro.errors.DeadlineExceeded`,
    :class:`~repro.errors.RequestCancelled`, or the execution error).
    Implements the unified :class:`repro.Future` contract — the shared
    ``extras`` schema always carries this request's ``request_id``.
    """

    __slots__ = ("_request", "_event", "_result", "_error", "_callbacks")

    def __init__(self, request: ServeRequest) -> None:
        self._request = request
        self._event = threading.Event()
        self._result: Optional[PrimitiveResult] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List = []

    @property
    def request_id(self) -> int:
        return self._request.id

    @property
    def state(self) -> str:
        return self._request.state

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def cancel(self) -> bool:
        """Cancel the request if it has not been dispatched yet.

        Returns ``True`` when the cancellation won (the request will
        never execute; ``result()`` raises
        :class:`~repro.errors.RequestCancelled`), ``False`` when the
        request was already dispatched or finished.
        """
        return self._request.server.cancel(self._request)

    def add_done_callback(self, fn) -> None:
        """Run ``fn(self)`` once the request resolves (or immediately if
        it already has).

        This is the router hook the :mod:`repro.fleet` worker uses to
        respond without blocking its control loop on ``result()`` — the
        callback fires on the server worker thread that finalized the
        request (or on the calling thread for an already-done future),
        so it must be cheap and must not raise; exceptions from
        callbacks are swallowed to protect the serving path.
        """
        run_now = False
        with self._request.lock:
            if self._event.is_set():
                run_now = True
            else:
                self._callbacks.append(fn)
        if run_now:
            self._run_callback(fn)

    def _run_callback(self, fn) -> None:
        try:
            fn(self)
        except Exception:  # pragma: no cover - callback bug guard
            pass

    def _fire(self) -> None:
        with self._request.lock:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._run_callback(fn)

    def _resolve(self, result: PrimitiveResult) -> None:
        self._result = result
        self._event.set()
        self._fire()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()
        self._fire()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> PrimitiveResult:
        if not self._event.wait(timeout):
            raise ServeError(
                f"request #{self._request.id} not resolved within "
                f"{timeout}s (state: {self._request.state})")
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: Optional[float] = None):
        """The failure the request resolved with (``None`` on success)."""
        if not self._event.wait(timeout):
            raise ServeError(
                f"request #{self._request.id} not resolved within "
                f"{timeout}s (state: {self._request.state})")
        return self._error

    @property
    def output(self) -> np.ndarray:
        return self.result().output

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ServeFuture(#{self._request.id}, "
                f"{self._request.state})")


def make_batch_key(ops: List[OpStage], array, config: DSConfig,
                   backend: str) -> tuple:
    """Everything that must agree for two requests to batch together.

    ``array`` is an ndarray or a :class:`~repro.stream.source.DSSource`;
    a source keys by its kind as well as its signature, so a memmap and
    a shard iterator of equal geometry never share a batch.
    """
    kind = getattr(array, "kind", None)
    input_sig = (("source", kind) + array_signature(array)
                 if isinstance(kind, str) else array_signature(array))
    parts: list = [backend, config, input_sig]
    placeholder: object = array
    for stage in ops:
        parts.append(stage.signature(placeholder))
        placeholder = None  # later stages consume futures, not the array
    return tuple(parts)
