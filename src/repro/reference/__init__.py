"""Pure-NumPy reference semantics (oracles) for all DS primitives."""

from repro.reference.numpy_ref import (
    compact_ref,
    copy_if_ref,
    erase_range_ref,
    insert_gap_ref,
    pad_ref,
    partition_ref,
    remove_if_ref,
    unique_by_key_ref,
    unique_ref,
    unpad_ref,
)

__all__ = [
    "pad_ref",
    "unpad_ref",
    "remove_if_ref",
    "copy_if_ref",
    "compact_ref",
    "unique_ref",
    "partition_ref",
    "insert_gap_ref",
    "erase_range_ref",
    "unique_by_key_ref",
]
