"""Pure-NumPy reference semantics for every Data Sliding primitive.

These functions define *what* each primitive computes, independently of
*how* the simulated kernels compute it.  They serve three roles:

1. **oracle** — every simulator test compares kernel output against
   these functions, including the hypothesis property tests;
2. **fast backend** — :mod:`repro.api` can execute on ``backend="numpy"``
   for users who want the semantics at NumPy speed on large data;
3. **documentation** — each function's body is the one-line definition
   of the primitive (e.g. *unique keeps the first of each run of equal
   consecutive elements*, Figure 15).

All functions are out-of-place and side-effect free; in-place behaviour
is a property of the kernels, not of the semantics.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

__all__ = [
    "pad_ref",
    "unpad_ref",
    "remove_if_ref",
    "copy_if_ref",
    "compact_ref",
    "unique_ref",
    "partition_ref",
    "insert_gap_ref",
    "erase_range_ref",
    "unique_by_key_ref",
]

PredicateFn = Callable[[np.ndarray], np.ndarray]


def pad_ref(matrix: np.ndarray, pad: int, fill=0) -> np.ndarray:
    """Append ``pad`` columns (filled with ``fill``) to a 2-D matrix.

    The paper's DS Padding leaves the new cells uninitialized (it is a
    pure data movement); the reference fills them so callers have a
    deterministic value to compare the *moved* cells against — tests
    compare only the first ``cols`` columns unless they opted into
    fill-checking.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"pad_ref expects a 2-D matrix, got ndim={matrix.ndim}")
    if pad < 0:
        raise ValueError(f"pad must be non-negative, got {pad}")
    rows, cols = matrix.shape
    out = np.full((rows, cols + pad), fill, dtype=matrix.dtype)
    out[:, :cols] = matrix
    return out


def unpad_ref(matrix: np.ndarray, pad: int) -> np.ndarray:
    """Drop the last ``pad`` columns of a 2-D matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"unpad_ref expects a 2-D matrix, got ndim={matrix.ndim}")
    rows, cols = matrix.shape
    if not 0 <= pad < cols:
        raise ValueError(f"pad must be in [0, cols), got {pad} for {cols} columns")
    return matrix[:, : cols - pad].copy()


def remove_if_ref(values: np.ndarray, predicate: PredicateFn) -> np.ndarray:
    """Keep elements that do **not** satisfy the predicate, preserving
    order (the semantics of ``thrust::remove_if`` and DS Remove_if)."""
    values = np.asarray(values)
    return values[~np.asarray(predicate(values), dtype=bool)].copy()


def copy_if_ref(values: np.ndarray, predicate: PredicateFn) -> np.ndarray:
    """Keep elements that satisfy the predicate, preserving order
    (``thrust::copy_if`` and DS Copy_if)."""
    values = np.asarray(values)
    return values[np.asarray(predicate(values), dtype=bool)].copy()


def compact_ref(values: np.ndarray, remove_value) -> np.ndarray:
    """Stream compaction: drop elements equal to ``remove_value``
    (``thrust::remove``)."""
    values = np.asarray(values)
    return values[values != remove_value].copy()


def unique_ref(values: np.ndarray) -> np.ndarray:
    """For each run of equal consecutive elements keep only the first
    (Figure 15; ``thrust::unique`` — *not* a global deduplication)."""
    values = np.asarray(values)
    if values.size == 0:
        return values.copy()
    keep = np.empty(values.shape, dtype=bool)
    keep[0] = True
    keep[1:] = values[1:] != values[:-1]
    return values[keep].copy()


def insert_gap_ref(values: np.ndarray, position: int, count: int,
                   fill=0) -> np.ndarray:
    """Open a ``count``-element hole (holding ``fill``) at ``position``."""
    values = np.asarray(values).reshape(-1)
    if not 0 <= position <= values.size:
        raise ValueError(f"position {position} outside [0, {values.size}]")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    hole = np.full(count, fill, dtype=values.dtype)
    return np.concatenate([values[:position], hole, values[position:]])


def erase_range_ref(values: np.ndarray, position: int, count: int) -> np.ndarray:
    """Drop ``count`` elements starting at ``position``."""
    values = np.asarray(values).reshape(-1)
    if not 0 <= position <= values.size:
        raise ValueError(f"position {position} outside [0, {values.size}]")
    if count < 0 or position + count > values.size:
        raise ValueError(
            f"erase range [{position}, {position + count}) out of bounds")
    return np.concatenate([values[:position], values[position + count:]])


def unique_by_key_ref(keys: np.ndarray,
                      values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Keep the first (key, value) of each run of equal consecutive keys
    (``thrust::unique_by_key``)."""
    keys = np.asarray(keys).reshape(-1)
    values = np.asarray(values).reshape(-1)
    if keys.size != values.size:
        raise ValueError(f"keys ({keys.size}) and values ({values.size}) differ")
    if keys.size == 0:
        return keys.copy(), values.copy()
    keep = np.empty(keys.shape, dtype=bool)
    keep[0] = True
    keep[1:] = keys[1:] != keys[:-1]
    return keys[keep].copy(), values[keep].copy()


def partition_ref(
    values: np.ndarray, predicate: PredicateFn
) -> Tuple[np.ndarray, int]:
    """Stable partition: predicate-true elements first (in order),
    then predicate-false elements (in order).  Returns the partitioned
    array and the number of true elements (Figure 18;
    ``thrust::stable_partition``)."""
    values = np.asarray(values)
    mask = np.asarray(predicate(values), dtype=bool)
    out = np.concatenate([values[mask], values[~mask]])
    return out, int(mask.sum())
