"""In-Place Data Sliding Algorithms for Many-Core Architectures.

A complete Python reproduction of Gomez-Luna, Chang, Sung, Hwu & Guil
(ICPP 2015): stable, **in-place** parallel primitives that slide array
elements in one direction on bulk-synchronous many-core devices —
padding, unpadding, select, stream compaction, unique and partition —
enabled by adjacent work-group synchronization and dynamic work-group
ID allocation.

Three entry surfaces, all re-exported here:

* the convenience functions (:func:`compact`, :func:`unique`, ... from
  :mod:`repro.api`) — plain arrays in, plain arrays out;
* the full primitives (:func:`ds_stream_compact`, :func:`ds_pad`, ...)
  returning :class:`PrimitiveResult` envelopes, with tuning through one
  :class:`DSConfig` value, plus the name-dispatched :func:`ds` front
  door;
* :class:`Pipeline` — enqueue several ops as futures, plan the batch
  once (interleaving + fusion + plan caching), execute on one stream.

The package layers:

* :mod:`repro.api` — one-call convenience functions (start here);
* :mod:`repro.primitives` — the DS primitives with full control;
* :mod:`repro.pipeline` — batched planning/fused execution;
* :mod:`repro.serve` — micro-batching request server with admission
  control, deadlines, retries and graceful degradation;
* :mod:`repro.fleet` — multi-process serve cluster: consistent-hash
  plan routing over shared-memory transport, fleet-wide health rollup,
  hysteresis autoscaling and deterministic incident replay (see
  ``docs/fleet.md``);
* :mod:`repro.stream` — out-of-core sharded streaming: any
  :class:`DSSource` input (ndarray | memmap | shared memory | shard
  iterator) accepted uniformly by :func:`ds`, :class:`Pipeline` and
  the server, streamed through device-sized shards when it does not
  fit in core (see ``docs/streaming.md``);
* :mod:`repro.core` — the generic Algorithms 1 and 2 + synchronization;
* :mod:`repro.simgpu` — the functional many-core simulator substrate;
* :mod:`repro.baselines` — Sung's iterative scheme, Thrust-style
  pipelines, unstable atomic filters, sequential CPU versions;
* :mod:`repro.perfmodel` — the calibrated device time model;
* :mod:`repro.analysis` — one generator per paper figure/table;
* :mod:`repro.workloads` — the paper's evaluation inputs;
* :mod:`repro.reference` — pure-NumPy oracles.
"""

from repro.api import compact, copy_if, pad, partition, remove_if, unique, unpad
from repro.config import DEFAULT_CONFIG, DSConfig
from repro.dispatch import ds
from repro.errors import (
    DataRaceError,
    DeadlineExceeded,
    DeadlockError,
    FleetError,
    LaunchError,
    ModelError,
    Overloaded,
    ReproError,
    RequestCancelled,
    ResourceError,
    ServeError,
    SimulatorError,
    WorkloadError,
)
from repro.futures import EXTRAS_DEFAULTS, Future
from repro.pipeline import DSFuture, Pipeline, PlanCache
from repro.primitives import (
    PrimitiveResult,
    alignment_pad_columns,
    ds_compact_records,
    ds_copy_if,
    ds_erase_range,
    ds_insert_gap,
    ds_pad,
    ds_pad_to_alignment,
    ds_partition,
    ds_ragged_pad,
    ds_ragged_unpad,
    ds_remove_if,
    ds_stream_compact,
    ds_unique,
    ds_unique_by_key,
    ds_unpad,
    list_ops,
)
from repro.stream import DSSource, as_source, stream_run

__version__ = "1.0.0"

__all__ = [
    # convenience surface
    "pad",
    "unpad",
    "remove_if",
    "copy_if",
    "compact",
    "unique",
    "partition",
    # unified config + dispatch + batch surface
    "DSConfig",
    "DEFAULT_CONFIG",
    "ds",
    "Pipeline",
    "DSFuture",
    "PlanCache",
    "list_ops",
    # unified result + streaming input surface
    "Future",
    "EXTRAS_DEFAULTS",
    "DSSource",
    "as_source",
    "stream_run",
    # full primitives
    "PrimitiveResult",
    "ds_pad",
    "ds_unpad",
    "ds_remove_if",
    "ds_copy_if",
    "ds_stream_compact",
    "ds_unique",
    "ds_partition",
    "ds_insert_gap",
    "ds_erase_range",
    "ds_pad_to_alignment",
    "alignment_pad_columns",
    "ds_unique_by_key",
    "ds_compact_records",
    "ds_ragged_pad",
    "ds_ragged_unpad",
    # errors
    "ReproError",
    "SimulatorError",
    "DeadlockError",
    "DataRaceError",
    "LaunchError",
    "ResourceError",
    "ModelError",
    "WorkloadError",
    "ServeError",
    "Overloaded",
    "DeadlineExceeded",
    "RequestCancelled",
    "FleetError",
    "__version__",
]
