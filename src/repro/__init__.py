"""In-Place Data Sliding Algorithms for Many-Core Architectures.

A complete Python reproduction of Gomez-Luna, Chang, Sung, Hwu & Guil
(ICPP 2015): stable, **in-place** parallel primitives that slide array
elements in one direction on bulk-synchronous many-core devices —
padding, unpadding, select, stream compaction, unique and partition —
enabled by adjacent work-group synchronization and dynamic work-group
ID allocation.

The package layers:

* :mod:`repro.api` — one-call convenience functions (start here);
* :mod:`repro.primitives` — the DS primitives with full control;
* :mod:`repro.core` — the generic Algorithms 1 and 2 + synchronization;
* :mod:`repro.simgpu` — the functional many-core simulator substrate;
* :mod:`repro.baselines` — Sung's iterative scheme, Thrust-style
  pipelines, unstable atomic filters, sequential CPU versions;
* :mod:`repro.perfmodel` — the calibrated device time model;
* :mod:`repro.analysis` — one generator per paper figure/table;
* :mod:`repro.workloads` — the paper's evaluation inputs;
* :mod:`repro.reference` — pure-NumPy oracles.
"""

from repro.api import compact, copy_if, pad, partition, remove_if, unique, unpad
from repro.errors import (
    DataRaceError,
    DeadlockError,
    LaunchError,
    ModelError,
    ReproError,
    ResourceError,
    SimulatorError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "pad",
    "unpad",
    "remove_if",
    "copy_if",
    "compact",
    "unique",
    "partition",
    "ReproError",
    "SimulatorError",
    "DeadlockError",
    "DataRaceError",
    "LaunchError",
    "ResourceError",
    "ModelError",
    "WorkloadError",
    "__version__",
]
