"""Figure/table reproduction layer: metric helpers, text rendering, and
one generator per data figure of the paper (see the FIGURES registry)."""

from repro.analysis.export import figure_to_csv, figure_to_dict, table1_to_csv
from repro.analysis.figures import FIGURES, cpu_sequential_comparison, table1_summary
from repro.analysis.metrics import geometric_mean, percent_gain, speedup
from repro.analysis.reporting import FigureData, Series, render_figure, render_table

__all__ = [
    "FIGURES",
    "table1_summary",
    "cpu_sequential_comparison",
    "speedup",
    "percent_gain",
    "geometric_mean",
    "FigureData",
    "Series",
    "render_figure",
    "render_table",
    "figure_to_csv",
    "figure_to_dict",
    "table1_to_csv",
]
