"""Machine-readable export of reproduced figures.

The benchmark harness emits fixed-width text; for users who want to
plot the reproduced series against the paper's charts with their own
tooling, these helpers serialize any
:class:`~repro.analysis.reporting.FigureData` (or the Table I rows) to
CSV or plain dictionaries.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis.reporting import FigureData

__all__ = ["figure_to_csv", "figure_to_dict", "table1_to_csv"]


def figure_to_dict(fig: FigureData) -> Dict[str, list]:
    """Column-oriented dict: the x ticks plus one column per series."""
    out: Dict[str, list] = {fig.x_label: list(fig.x_ticks)}
    for s in fig.series:
        out[s.name] = list(s.values)
    return out


def figure_to_csv(
    fig: FigureData,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Serialize a figure to CSV (header row = x label + series names).

    Returns the CSV text; additionally writes it to ``path`` if given.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow([fig.x_label] + [s.name for s in fig.series])
    for i, x in enumerate(fig.x_ticks):
        writer.writerow([x] + [s.values[i] for s in fig.series])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def table1_to_csv(path: Optional[Union[str, Path]] = None) -> str:
    """Serialize the reproduced Table I (with the paper's numbers
    alongside) to CSV."""
    from repro.analysis.figures import table1_summary

    rows = table1_summary()
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    fields = ["primitive", "device", "ds_gbps", "competitor",
              "competitor_gbps", "speedup", "paper_ds", "paper_competitor",
              "paper_speedup"]
    writer.writerow(fields)
    for row in rows:
        writer.writerow([row[f] for f in fields])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
