"""``python -m repro report`` — one document over every persisted
artifact.

Walks the experiment registry (:data:`repro.analysis.registry
.EXPERIMENTS`) and renders each section into a single markdown report:
the measured backend ladder from the ``BENCH_<id>.json`` snapshots,
the run-over-run trajectory from ``BENCH_INDEX.json``, serve-layer SLO
runs, the autotuner's winners from ``TUNING_DB.json``, and the
model-predicted coarsening sweep for context.  Sections whose artifact
is missing render a "no data yet" stub naming the command that
produces it — the report never fails on a fresh checkout.

Usage::

    python -m repro report                      # markdown to stdout
    python -m repro report -o REPORT.md         # write a file
    python -m repro report --html -o REPORT.html
    python -m repro report --experiments tuning_trajectory serve_slo
"""

from __future__ import annotations

import argparse
import html as _html
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.registry import EXPERIMENTS, ReportContext, Section
from repro.errors import ReproError

__all__ = ["build_report", "render_markdown", "render_html", "main"]


def build_report(ctx: ReportContext,
                 experiments: Optional[List[str]] = None) -> List[Section]:
    """Run the selected (default: all) experiment generators."""
    names = list(experiments) if experiments else list(EXPERIMENTS)
    unknown = sorted(set(names) - set(EXPERIMENTS))
    if unknown:
        raise ReproError(
            f"unknown experiment(s) {', '.join(unknown)}; known: "
            f"{', '.join(sorted(EXPERIMENTS))}")
    return [EXPERIMENTS[name](ctx) for name in names]


def render_markdown(sections: List[Section], *,
                    timestamp: Optional[float] = None) -> str:
    """The full markdown document."""
    ts = time.time() if timestamp is None else timestamp
    when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))
    lines = ["# In-Place Data Sliding — reproduction report", "",
             f"_Generated {when} from the persisted benchmark, serve and "
             "tuning artifacts (see docs/tuning.md and "
             "docs/observability.md)._", ""]
    for section in sections:
        lines += [f"## {section.title}", "", section.body, ""]
    return "\n".join(lines).rstrip() + "\n"


def render_html(markdown: str, *, title: str = "repro report") -> str:
    """A minimal, dependency-free HTML rendering of the markdown.

    Handles exactly what the report emits — ``#``/``##`` headings,
    ``|``-tables, and paragraphs (with ``_..._`` emphasis left as-is);
    it is a readable artifact for CI uploads, not a markdown engine.
    """
    out = ["<!DOCTYPE html>", "<html><head>",
           f"<title>{_html.escape(title)}</title>",
           "<style>body{font-family:sans-serif;margin:2em;}"
           "table{border-collapse:collapse;}"
           "td,th{border:1px solid #999;padding:4px 8px;"
           "text-align:right;}"
           "td:first-child,th:first-child{text-align:left;}</style>",
           "</head><body>"]
    table: List[str] = []

    def flush_table() -> None:
        if not table:
            return
        out.append("<table>")
        for i, line in enumerate(table):
            cells = [c.strip() for c in line.strip().strip("|").split("|")]
            if i == 1 and all(set(c) <= set("-: ") for c in cells):
                continue
            tag = "th" if i == 0 else "td"
            out.append("<tr>" + "".join(
                f"<{tag}>{_html.escape(c)}</{tag}>" for c in cells)
                + "</tr>")
        out.append("</table>")
        table.clear()

    for line in markdown.splitlines():
        if line.startswith("|"):
            table.append(line)
            continue
        flush_table()
        if line.startswith("## "):
            out.append(f"<h2>{_html.escape(line[3:])}</h2>")
        elif line.startswith("# "):
            out.append(f"<h1>{_html.escape(line[2:])}</h1>")
        elif line.strip():
            text = _html.escape(line)
            if text.startswith("_") and text.endswith("_"):
                text = f"<em>{text[1:-1]}</em>"
            out.append(f"<p>{text}</p>")
    flush_table()
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Render one markdown/HTML report over the persisted "
                    "BENCH_*.json snapshots, the BENCH_INDEX.json "
                    "trajectory and the autotuner's TUNING_DB.json.")
    parser.add_argument("--results-dir", default="benchmarks/results",
                        help="artifact directory "
                             "(default: benchmarks/results)")
    parser.add_argument("--tuning-db", default=None,
                        help="tuning DB path (default: "
                             "<results-dir>/TUNING_DB.json)")
    parser.add_argument("-o", "--output", default=None,
                        help="write here instead of stdout")
    parser.add_argument("--html", action="store_true",
                        help="render HTML instead of markdown")
    parser.add_argument("--experiments", nargs="+", default=None,
                        metavar="NAME",
                        help="render only these sections "
                             f"(known: {', '.join(sorted(EXPERIMENTS))})")
    parser.add_argument("--list", action="store_true",
                        help="list the registered experiments and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:24s} {doc}")
        return 0
    ctx = ReportContext(
        results_dir=Path(args.results_dir),
        tuning_db_path=Path(args.tuning_db) if args.tuning_db else None)
    sections = build_report(ctx, args.experiments)
    doc = render_markdown(sections)
    if args.html:
        doc = render_html(doc)
    if args.output:
        Path(args.output).write_text(doc)
        print(f"wrote {args.output} ({len(sections)} section(s))")
    else:
        sys.stdout.write(doc)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
