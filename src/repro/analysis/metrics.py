"""Small metric helpers shared by the figure generators and benchmarks."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ModelError

__all__ = ["speedup", "percent_gain", "geometric_mean"]


def speedup(ours: float, baseline: float) -> float:
    """Throughput ratio ours/baseline (>1 means we win), as the paper
    reports its speedups (it compares GB/s, not times)."""
    if baseline <= 0 or ours <= 0:
        raise ModelError(f"throughputs must be positive: {ours}, {baseline}")
    return ours / baseline


def percent_gain(optimized: float, base: float) -> float:
    """The paper's "+7% to +40%" convention for optimized collectives."""
    if base <= 0:
        raise ModelError(f"base throughput must be positive: {base}")
    return (optimized - base) / base * 100.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for ratios/speedups)."""
    vals = list(values)
    if not vals:
        raise ModelError("geometric mean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ModelError("geometric mean requires positive values")
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
