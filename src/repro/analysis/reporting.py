"""Text rendering of figure data: fixed-width tables for the benchmark
harness, mirroring the rows/series the paper's figures plot.

The benchmark scripts print these tables (one per paper figure) so a
reader can compare the reproduced shape — who wins, by how much, where
the crossovers are — against the original charts without a plotting
stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Series", "FigureData", "render_figure", "render_table"]


@dataclass
class Series:
    """One line/bar group of a figure: a name and y value per x tick."""

    name: str
    values: List[float]


@dataclass
class FigureData:
    """A reproduced figure: labelled x ticks and one or more series."""

    figure_id: str
    title: str
    x_label: str
    x_ticks: List
    y_label: str
    series: List[Series]
    notes: List[str] = field(default_factory=list)

    def series_by_name(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"{self.figure_id}: no series named {name!r}")

    def as_rows(self) -> List[List[str]]:
        header = [self.x_label] + [s.name for s in self.series]
        rows = [header]
        for i, x in enumerate(self.x_ticks):
            row = [str(x)]
            for s in self.series:
                v = s.values[i]
                row.append(f"{v:.2f}" if v is not None else "-")
            rows.append(row)
        return rows


def render_table(rows: Sequence[Sequence[str]], *, indent: str = "") -> str:
    """Fixed-width table from rows of strings (first row is the header)."""
    if not rows:
        return ""
    widths = [0] * max(len(r) for r in rows)
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    for j, row in enumerate(rows):
        cells = [str(c).rjust(widths[i]) if i else str(c).ljust(widths[0])
                 for i, c in enumerate(row)]
        lines.append(indent + "  ".join(cells))
        if j == 0:
            lines.append(indent + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_figure(fig: FigureData) -> str:
    """Render a :class:`FigureData` as a titled text table plus notes."""
    out = [f"== {fig.figure_id}: {fig.title} ==",
           f"   (y axis: {fig.y_label})"]
    out.append(render_table(fig.as_rows(), indent="   "))
    for note in fig.notes:
        out.append(f"   note: {note}")
    return "\n".join(out)
