"""Experiment registry: named report sections over the persisted
artifacts.

Where :data:`repro.analysis.figures.FIGURES` maps figure ids to *model*
generators (pure functions of the calibrated performance model), this
registry maps **experiment names** to report-section generators that
read what the harness actually persisted — ``BENCH_<id>.json``
snapshots, the ``BENCH_INDEX.json`` trajectory, the autotuner's
``TUNING_DB.json`` — and render one markdown section each.  ``python
-m repro report`` walks the registry; every generator degrades to a
"no data yet" stub when its artifact is missing, so the report always
renders, even on a fresh checkout.

Add an experiment by writing ``def my_exp(ctx: ReportContext) ->
Section`` and registering it in :data:`EXPERIMENTS`; the CLI picks it
up by name with no other wiring.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

__all__ = ["Section", "ReportContext", "EXPERIMENTS"]


@dataclass(frozen=True)
class Section:
    """One rendered report section: a title and its markdown body."""

    name: str
    title: str
    body: str


@dataclass
class ReportContext:
    """Lazy access to everything a report section may want to read."""

    results_dir: Path = Path("benchmarks/results")
    tuning_db_path: Optional[Path] = None
    _bench: Optional[Dict[str, dict]] = field(default=None, repr=False)
    _index: Optional[List[dict]] = field(default=None, repr=False)

    def bench_reports(self) -> Dict[str, dict]:
        """Every ``BENCH_<id>.json`` snapshot, keyed by figure id."""
        if self._bench is None:
            out = {}
            for path in sorted(Path(self.results_dir).glob("BENCH_*.json")):
                if path.name == "BENCH_INDEX.json":
                    continue
                try:
                    doc = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
                out[doc.get("id", path.stem[len("BENCH_"):])] = doc
            self._bench = out
        return self._bench

    def index_rows(self) -> List[dict]:
        """The append-only benchmark trajectory (oldest first)."""
        if self._index is None:
            from repro.obs.benchindex import load_rows

            try:
                self._index = load_rows(Path(self.results_dir))
            except Exception:
                self._index = []
        return self._index

    def tuning_db(self):
        """The :class:`~repro.tune.db.TuningDB`, or ``None`` if absent."""
        from repro.tune.db import TuningDB

        path = self.tuning_db_path
        if path is None:
            path = Path(self.results_dir) / "TUNING_DB.json"
        path = Path(path)
        if not path.exists():
            return None
        return TuningDB.load(path)


def _empty(name: str, title: str, what: str, hint: str) -> Section:
    return Section(name, title,
                   f"_No data yet: {what}._  Run `{hint}` to produce it.")


def _md_table(rows: List[List[str]]) -> str:
    """GitHub-flavoured markdown table from header + data rows."""
    if not rows:
        return ""
    header, data = rows[0], rows[1:]
    lines = ["| " + " | ".join(str(c) for c in header) + " |",
             "| " + " | ".join("---" for _ in header) + " |"]
    lines += ["| " + " | ".join(str(c) for c in row) + " |" for row in data]
    return "\n".join(lines)


def _fmt_ts(ts) -> str:
    if not ts:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M", time.localtime(float(ts)))


# -- experiments ---------------------------------------------------------


def fig06_sweep(ctx: ReportContext) -> Section:
    """The coarsening sweep (Figure 6) from the calibrated model — the
    static picture the online autotuner probes empirically."""
    from repro.analysis.figures import FIGURES

    fig = FIGURES["fig6"]()
    body = [f"{fig.title} ({fig.y_label}; model-predicted).", "",
            _md_table(fig.as_rows())]
    body += [f"_{note}_" for note in fig.notes]
    return Section("fig06_sweep", "Figure 6 — coarsening sweep (model)",
                   "\n".join(body))


def fig13_backend_ladder(ctx: ReportContext) -> Section:
    """Measured wall-clock ladder simulated → vectorized → compiled for
    the canonical cases, from the BENCH snapshots."""
    bench = ctx.bench_reports()
    if not bench:
        return _empty("fig13_backend_ladder",
                      "Backend ladder (measured)",
                      "no BENCH_*.json snapshots", "make bench-smoke")
    rows = [["case", "simulated", "vectorized", "speedup",
             "compiled", "vs vectorized", "timing"]]
    for bench_id in sorted(bench):
        rep = bench[bench_id]
        wall = rep.get("wall_clock_s", {})
        comp_note = ("fallback" if rep.get("compiled_fallback")
                     else f"{rep.get('speedup_compiled', 0.0):.2f}x")
        rows.append([
            bench_id,
            f"{wall.get('simulated', 0.0):.3f}s",
            f"{wall.get('vectorized', 0.0):.4f}s",
            f"{rep.get('speedup', 0.0):.1f}x",
            f"{wall.get('compiled', 0.0):.4f}s" if "compiled" in wall
            else "-",
            comp_note,
            rep.get("timing", "best"),
        ])
    return Section("fig13_backend_ladder", "Backend ladder (measured)",
                   _md_table(rows))


def bench_trajectory(ctx: ReportContext) -> Section:
    """Wall-clock across runs from the append-only BENCH_INDEX."""
    rows = ctx.index_rows()
    kernel = [r for r in rows if r.get("backend") not in ("serve", "fleet")]
    if not kernel:
        return _empty("bench_trajectory", "Benchmark trajectory",
                      "BENCH_INDEX.json has no kernel rows",
                      "make bench-smoke")
    table = [["run", "rev", "case", "backend", "wall", "speedup", "when"]]
    for i, r in enumerate(kernel[-30:], max(0, len(kernel) - 30)):
        speedup = r.get("speedup")
        table.append([
            str(i), r.get("rev") or "-", r.get("id", "-"),
            r.get("backend", "-"),
            f"{r.get('wall_clock_s', 0.0):.4f}s",
            f"{speedup:.1f}x" if speedup else "-",
            _fmt_ts(r.get("timestamp")),
        ])
    note = ("" if len(kernel) <= 30
            else f"\n_Showing the last 30 of {len(kernel)} rows._")
    return Section("bench_trajectory", "Benchmark trajectory",
                   _md_table(table) + note)


def serve_slo(ctx: ReportContext) -> Section:
    """Serve-layer throughput and tail latency across recorded runs."""
    rows = [r for r in ctx.index_rows() if r.get("backend") == "serve"]
    if not rows:
        return _empty("serve_slo", "Serve SLO runs",
                      "no serve rows in BENCH_INDEX.json",
                      "make bench-smoke")
    table = [["rev", "shape", "req/s", "p50", "p95", "p99",
              "mean batch", "plan hits", "when"]]
    for r in rows[-20:]:
        table.append([
            r.get("rev") or "-", r.get("shape", "-"),
            f"{r.get('throughput_rps', 0.0):.0f}",
            f"{r.get('latency_p50_ms', 0.0):.2f}ms",
            f"{r.get('latency_p95_ms', 0.0):.2f}ms",
            f"{r.get('latency_p99_ms', 0.0):.2f}ms",
            f"{r.get('batch_size_mean', 0.0):.2f}",
            f"{r.get('plan_hit_rate', 0.0) * 100:.0f}%",
            _fmt_ts(r.get("timestamp")),
        ])
    return Section("serve_slo", "Serve SLO runs", _md_table(table))


def tuning_trajectory(ctx: ReportContext) -> Section:
    """Autotuner winners and their measured gains, from the TuningDB."""
    db = ctx.tuning_db()
    if db is None or len(db) == 0:
        return _empty("tuning_trajectory", "Autotuner winners",
                      "no TUNING_DB.json",
                      "python -m repro tune --fig fig13")
    table = [["kind", "backend", "workload", "knobs", "objective",
              "baseline", "gain", "trials", "when"]]
    for key, entry in sorted(db.entries().items()):
        obj, base = entry.get("objective") or {}, entry.get("baseline") or {}
        primary = "p95_ms" if entry["kind"] == "serve" else "wall_ms"
        o, b = obj.get(primary), base.get(primary)
        gain = (f"{(1.0 - o / b) * 100:+.1f}%" if o and b else "-")
        meta = entry.get("meta") or {}
        workload = meta.get("ops") or key.split("|", 1)[0]
        if meta.get("n"):
            workload = f"{workload} (n={meta['n']})"
        table.append([
            entry["kind"], entry.get("backend") or "-", workload,
            json.dumps(entry.get("knobs", {}), sort_keys=True),
            f"{o:.3f}" if o is not None else "-",
            f"{b:.3f}" if b is not None else "-",
            gain, str(entry.get("trials", "-")),
            _fmt_ts(entry.get("timestamp")),
        ])
    body = (_md_table(table)
            + "\n\n_gain is the winner's primary-objective improvement "
              "over the static default (positive = faster)._")
    return Section("tuning_trajectory", "Autotuner winners", body)


def fleet_health(ctx: ReportContext) -> Section:
    """Fleet-tier runs: pool-wide throughput/tails plus the cluster
    facts (worker counts, routing skew, scale events) from the
    ``backend="fleet"`` trajectory rows."""
    rows = [r for r in ctx.index_rows() if r.get("backend") == "fleet"]
    if not rows:
        return _empty("fleet_health", "Fleet runs",
                      "no fleet rows in BENCH_INDEX.json",
                      "python -m repro fleet --bench-dir "
                      "benchmarks/results")
    table = [["rev", "shapes", "req/s", "p50", "p95", "workers",
              "scale", "skew", "plan hits", "when"]]
    for r in rows[-20:]:
        table.append([
            r.get("rev") or "-", r.get("shapes", "-"),
            f"{r.get('throughput_rps', 0.0):.0f}",
            f"{r.get('latency_p50_ms', 0.0):.2f}ms",
            f"{r.get('latency_p95_ms', 0.0):.2f}ms",
            f"{r.get('workers_start', 0)}→{r.get('workers_peak', 0)}"
            f"→{r.get('workers_end', 0)}",
            f"+{r.get('scale_ups', 0)}/-{r.get('scale_downs', 0)}",
            f"{r.get('routing_skew', 0.0):.2f}x",
            f"{r.get('plan_hit_rate', 0.0) * 100:.0f}%",
            _fmt_ts(r.get("timestamp")),
        ])
    body = (_md_table(table)
            + "\n\n_workers is start→peak→end; scale counts the "
              "autoscaler's grow/drain events; skew is the max worker "
              "key load over the ring mean (bound 2.00x)._")
    return Section("fleet_health", "Fleet runs", body)


EXPERIMENTS: Dict[str, Callable[[ReportContext], Section]] = {
    "fig06_sweep": fig06_sweep,
    "fig13_backend_ladder": fig13_backend_ladder,
    "bench_trajectory": bench_trajectory,
    "serve_slo": serve_slo,
    "fleet_health": fleet_health,
    "tuning_trajectory": tuning_trajectory,
}
"""Every named experiment ``python -m repro report`` renders, in order."""
