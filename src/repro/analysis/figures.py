"""Experiment registry: one generator per data figure/table of the paper.

Each ``figNN_*`` function reproduces the corresponding figure's series
using the analytic pipeline builders (validated against the functional
simulator by the test suite) and the device performance model.  The
benchmark harness (``benchmarks/``) prints these and additionally times
real simulator executions of the underlying primitives; the EXPERIMENTS
log compares the numbers against the paper's.

The registry :data:`FIGURES` maps experiment IDs (``"fig2"``,
``"fig6"``, ..., ``"table1"``) to their generators so tooling can
enumerate every reproduced artifact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.analysis.reporting import FigureData, Series
from repro.baselines.sung import iteration_schedule
from repro.perfmodel import (
    atomic_compact_launches,
    ds_irregular_launches,
    ds_partition_launches,
    ds_regular_launches,
    gbps,
    pad_useful_bytes,
    partition_useful_bytes,
    price_launch,
    price_pipeline,
    select_useful_bytes,
    sequential_time_us,
    sung_pad_launches,
    sung_unpad_launches,
    sung_unpad_progressive_launches,
    thrust_partition_launches,
    thrust_select_launches,
    unpad_useful_bytes,
)
from repro.simgpu.device import get_device
from repro.workloads.arrays import PAPER_ARRAY_ELEMENTS, PAPER_FRACTIONS
from repro.workloads.matrices import (
    FIG2_SHAPE,
    PAPER_PAD_SWEEP,
    PAPER_SIZE_SWEEP,
    TABLE1_SHAPE,
)

__all__ = [
    "fig02_iterative_padding",
    "fig06_coarsening",
    "fig08_padding_sizes",
    "fig08_padding_columns",
    "fig09_unpadding_sizes",
    "fig09_unpadding_columns",
    "fig10_portability",
    "fig12_select",
    "fig13_compaction",
    "fig14_compaction_portability",
    "fig16_unique",
    "fig17_unique_portability",
    "fig19_partition",
    "fig20_partition_portability",
    "table1_summary",
    "cpu_sequential_comparison",
    "FIGURES",
]

F32 = 4
F64 = 8

#: Devices of the OpenCL portability figures (Figures 10, 14, 17, 20).
PORTABILITY_DEVICES = (
    "fermi", "kepler", "maxwell", "hawaii", "kaveri", "cpu-mxpa", "cpu-intel",
)

#: The paper's optimized collectives: shuffle-based reduction and scan.
OPTIMIZED = dict(scan_variant="shuffle", reduction_variant="shuffle")


# ---------------------------------------------------------------------------
# Figure 2 — iterative baseline padding on K20: parallelism decay
# ---------------------------------------------------------------------------


def fig02_iterative_padding(
    rows: int = FIG2_SHAPE[0],
    cols: int = FIG2_SHAPE[1],
    pad: int = FIG2_SHAPE[2],
    device_name: str = "kepler",
    max_points: int = 24,
) -> FigureData:
    """Per-iteration throughput and available parallelism of Sung's
    iterative padding (the paper's motivating Figure 2)."""
    device = get_device(device_name)
    launches = sung_pad_launches(rows, cols, pad, F32, device)
    schedule = iteration_schedule(rows, cols, pad)
    n = len(launches)
    # Sample iterations evenly so the table stays readable.
    idxs = sorted(set(
        round(i * (n - 1) / max(1, max_points - 1)) for i in range(max_points)
    ))
    tp, par = [], []
    for i in idxs:
        c = launches[i]
        t = price_launch(c, device).total_us
        tp.append(gbps(2 * c.bytes_loaded, t))
        par.append(float(schedule[i]))
    total = price_pipeline(launches, device).total_us
    effective = gbps(pad_useful_bytes(rows, cols, F32), total)
    return FigureData(
        figure_id="fig2",
        title=f"Iterative in-place padding, {rows}x{cols} +{pad} cols on "
        f"{device.marketing_name}",
        x_label="iteration",
        x_ticks=[str(i) for i in idxs],
        y_label="GB/s (per iteration) / rows moved in parallel",
        series=[
            Series("throughput GB/s", tp),
            Series("parallelism (rows)", par),
        ],
        notes=[
            f"{n} iterations total; effective end-to-end throughput "
            f"{effective:.1f} GB/s (paper: ~38 GB/s, <20% of K20 peak)",
            "parallelism decays from ~100 rows to 1: the sequential tail "
            "that motivates the Data Sliding algorithms",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 6 — coarsening-factor sweep of DS Padding on Maxwell
# ---------------------------------------------------------------------------


def fig06_coarsening(
    device_name: str = "maxwell",
    coarsenings: Tuple[int, ...] = (1, 2, 4, 8, 12, 16, 24, 32, 40, 48),
    shapes: Tuple[Tuple[int, int], ...] = (
        (1000, 999), (5000, 4999), (10000, 9999), (12000, 11999),
    ),
    wg_size: int = 256,
) -> FigureData:
    """DS Padding throughput vs coarsening factor (Figure 6): rises as
    synchronizations amortize, collapses once tiles spill off chip."""
    device = get_device(device_name)
    series = []
    for rows, cols in shapes:
        n = rows * cols
        useful = pad_useful_bytes(rows, cols, F32)
        values = []
        for cf in coarsenings:
            launches = ds_regular_launches(
                n, n, F32, device, wg_size=wg_size, coarsening=cf
            )
            values.append(gbps(useful, price_pipeline(launches, device).total_us))
        series.append(Series(f"{rows}x{cols}", values))
    return FigureData(
        figure_id="fig6",
        title=f"DS Padding coarsening sweep on {device.marketing_name} "
        f"(wg={wg_size}, 1 padded column, f32)",
        x_label="coarsening factor",
        x_ticks=list(coarsenings),
        y_label="GB/s",
        series=series,
        notes=[
            f"on-chip capacity allows coarsening <= "
            f"{device.max_coarsening(F32)} for 4-byte elements; beyond it "
            "the spill penalty applies (the paper's collapse at 40/48)",
        ],
    )


# ---------------------------------------------------------------------------
# Figures 8 and 9 — DS vs baseline padding/unpadding
# ---------------------------------------------------------------------------


def fig08_padding_sizes(device_name: str = "maxwell") -> FigureData:
    """DS Padding vs Sung's baseline, one padded column, size sweep
    (Figures 8a/8b)."""
    device = get_device(device_name)
    ds_vals, base_vals = [], []
    for rows, cols in PAPER_SIZE_SWEEP:
        n = rows * cols
        useful = pad_useful_bytes(rows, cols, F32)
        ds = price_pipeline(ds_regular_launches(n, n, F32, device), device).total_us
        base = price_pipeline(
            sung_pad_launches(rows, cols, 1, F32, device), device
        ).total_us
        ds_vals.append(gbps(useful, ds))
        base_vals.append(gbps(useful, base))
    return FigureData(
        figure_id="fig8ab",
        title=f"DS Padding vs baseline, 1 padded column on {device.marketing_name}",
        x_label="matrix (rows x cols)",
        x_ticks=[f"{r}x{c}" for r, c in PAPER_SIZE_SWEEP],
        y_label="GB/s",
        series=[Series("DS Padding", ds_vals), Series("Baseline [11]", base_vals)],
        notes=["paper: up to 8x faster on Maxwell, up to 63x on Hawaii"],
    )


def fig08_padding_columns(
    device_name: str = "maxwell",
    rows: int = 5000,
    cols_after: int = 5000,
) -> FigureData:
    """DS Padding vs baseline for a varying number of padded columns
    (Figures 8c/8d): columns after padding fixed at 5000."""
    device = get_device(device_name)
    ds_vals, base_vals = [], []
    pads = [p for p in PAPER_PAD_SWEEP if p < cols_after]
    for pad in pads:
        cols = cols_after - pad
        n = rows * cols
        useful = pad_useful_bytes(rows, cols, F32)
        ds = price_pipeline(ds_regular_launches(n, n, F32, device), device).total_us
        base = price_pipeline(
            sung_pad_launches(rows, cols, pad, F32, device), device
        ).total_us
        ds_vals.append(gbps(useful, ds))
        base_vals.append(gbps(useful, base))
    return FigureData(
        figure_id="fig8cd",
        title=f"DS Padding vs baseline, {rows} rows, {cols_after} columns "
        f"after padding, on {device.marketing_name}",
        x_label="padded columns",
        x_ticks=pads,
        y_label="GB/s",
        series=[Series("DS Padding", ds_vals), Series("Baseline [11]", base_vals)],
        notes=[
            "the fewer the padded columns, the less extra space and the "
            "lower the baseline's parallelism; DS is independent of it "
            "(paper: speedups 1.95-7.32x Maxwell, 6.45-29.71x Hawaii)",
        ],
    )


def fig09_unpadding_sizes(device_name: str = "maxwell") -> FigureData:
    """DS Unpadding vs single-work-group baseline, one removed column,
    size sweep (Figures 9a/9b)."""
    device = get_device(device_name)
    ds_vals, base_vals, prog_vals = [], [], []
    for rows, kept in PAPER_SIZE_SWEEP:
        cols = kept + 1
        n = rows * cols
        useful = unpad_useful_bytes(rows, kept, F32)
        ds = price_pipeline(
            ds_regular_launches(n, rows * kept, F32, device), device
        ).total_us
        base = price_pipeline(
            sung_unpad_launches(rows, cols, 1, F32, device), device
        ).total_us
        prog = price_pipeline(
            sung_unpad_progressive_launches(rows, cols, 1, F32, device), device
        ).total_us
        ds_vals.append(gbps(useful, ds))
        base_vals.append(gbps(useful, base))
        prog_vals.append(gbps(useful, prog))
    return FigureData(
        figure_id="fig9ab",
        title=f"DS Unpadding vs baseline, 1 removed column on {device.marketing_name}",
        x_label="matrix (rows x cols before unpadding)",
        x_ticks=[f"{r}x{c + 1}" for r, c in PAPER_SIZE_SWEEP],
        y_label="GB/s",
        series=[Series("DS Unpadding", ds_vals),
                Series("Baseline (1 wg)", base_vals),
                Series("Progressive (Section V sketch)", prog_vals)],
        notes=["paper: up to 9.11x on Maxwell, 73.25x on Hawaii",
               "the progressive variant (one launch per iteration, "
               "parallelism growing from 1) stays serial for one removed "
               "column, so it only adds relaunch overhead"],
    )


def fig09_unpadding_columns(
    device_name: str = "maxwell",
    rows: int = 5000,
    cols: int = 5000,
) -> FigureData:
    """DS Unpadding vs baseline for a varying number of removed columns
    (Figures 9c/9d)."""
    device = get_device(device_name)
    ds_vals, base_vals = [], []
    pads = [p for p in PAPER_PAD_SWEEP if p < cols]
    for pad in pads:
        kept = cols - pad
        n = rows * cols
        useful = unpad_useful_bytes(rows, kept, F32)
        ds = price_pipeline(
            ds_regular_launches(n, rows * kept, F32, device), device
        ).total_us
        base = price_pipeline(
            sung_unpad_launches(rows, cols, pad, F32, device), device
        ).total_us
        ds_vals.append(gbps(useful, ds))
        base_vals.append(gbps(useful, base))
    return FigureData(
        figure_id="fig9cd",
        title=f"DS Unpadding vs baseline, {rows}x{cols}, varying removed "
        f"columns, on {device.marketing_name}",
        x_label="removed columns",
        x_ticks=pads,
        y_label="GB/s",
        series=[Series("DS Unpadding", ds_vals), Series("Baseline (1 wg)", base_vals)],
        notes=["the baseline always uses one work-group, so its throughput "
               "is independent of the removed-column count"],
    )


# ---------------------------------------------------------------------------
# Figure 10 — double-precision pad/unpad portability
# ---------------------------------------------------------------------------


def fig10_portability(
    operation: str = "pad",
    shapes: Tuple[Tuple[int, int], ...] = (
        (5000, 4999), (10000, 9999), (12000, 11999),
    ),
) -> FigureData:
    """OpenCL DS Padding/Unpadding, double precision, across the six
    platforms and two CPU compilers (Figure 10)."""
    if operation not in ("pad", "unpad"):
        raise ValueError(f"operation must be 'pad' or 'unpad', got {operation!r}")
    series = []
    for dev_name in PORTABILITY_DEVICES:
        device = get_device(dev_name)
        values = []
        for rows, cols in shapes:
            if operation == "pad":
                n = rows * cols
                useful = pad_useful_bytes(rows, cols, F64)
                launches = ds_regular_launches(n, n, F64, device)
            else:
                full = cols + 1
                n = rows * full
                useful = unpad_useful_bytes(rows, cols, F64)
                launches = ds_regular_launches(n, rows * cols, F64, device)
            values.append(
                gbps(useful, price_pipeline(launches, device, api="opencl").total_us)
            )
        series.append(Series(device.name, values))
    return FigureData(
        figure_id="fig10",
        title=f"OpenCL DS {'Padding' if operation == 'pad' else 'Unpadding'}, "
        "double precision, 1 column, across devices",
        x_label="matrix",
        x_ticks=[f"{r}x{c}" for r, c in shapes],
        y_label="GB/s",
        series=series,
        notes=[
            "paper: ~75% of peak on Maxwell, ~50% on Fermi/Kepler, ~60% on "
            "Hawaii, >50% of peak on the CPU with MxPA; MxPA beats the "
            "Intel compiler",
        ],
    )


# ---------------------------------------------------------------------------
# Figures 12/13 — select and stream compaction on Maxwell (CUDA)
# ---------------------------------------------------------------------------


def fig12_select(
    device_name: str = "maxwell",
    n: int = PAPER_ARRAY_ELEMENTS,
) -> FigureData:
    """Select-family primitives vs Thrust across the predicate-true
    fraction sweep (Figure 12).  The x axis is the percentage of
    elements that satisfy the (removal) predicate."""
    device = get_device(device_name)
    fracs = PAPER_FRACTIONS
    ds_remove, ds_copy, th_remove_if, th_rcif, th_copy_if = [], [], [], [], []
    for f in fracs:
        removed = int(round(n * f))
        kept = n - removed
        ub_keep = select_useful_bytes(n, kept, F32)
        ub_copy = select_useful_bytes(n, removed, F32)
        ds_remove.append(gbps(ub_keep, price_pipeline(
            ds_irregular_launches(n, kept, F32, device, **OPTIMIZED),
            device, api="cuda").total_us))
        ds_copy.append(gbps(ub_copy, price_pipeline(
            ds_irregular_launches(n, removed, F32, device, **OPTIMIZED),
            device, api="cuda").total_us))
        th_remove_if.append(gbps(ub_keep, price_pipeline(
            thrust_select_launches(n, kept, F32, device, in_place=True),
            device, api="cuda").total_us))
        th_rcif.append(gbps(ub_keep, price_pipeline(
            thrust_select_launches(n, kept, F32, device),
            device, api="cuda").total_us))
        th_copy_if.append(gbps(ub_copy, price_pipeline(
            thrust_select_launches(n, removed, F32, device),
            device, api="cuda").total_us))
    return FigureData(
        figure_id="fig12",
        title=f"select primitives, {n // (1024 * 1024)}M f32 on "
        f"{device.marketing_name} (CUDA, shuffle-optimized DS)",
        x_label="% satisfying predicate",
        x_ticks=[int(f * 100) for f in fracs],
        y_label="GB/s",
        series=[
            Series("DS Remove_if (in-place)", ds_remove),
            Series("DS Copy_if (out-of-place)", ds_copy),
            Series("thrust::remove_if", th_remove_if),
            Series("thrust::remove_copy_if", th_rcif),
            Series("thrust::copy_if", th_copy_if),
        ],
        notes=["paper: DS outperforms Thrust by 2.15-3.50x"],
    )


def fig13_compaction(
    device_name: str = "maxwell",
    n: int = PAPER_ARRAY_ELEMENTS,
) -> FigureData:
    """Stream compaction vs Thrust and the three unstable atomic
    filters (Figure 13)."""
    device = get_device(device_name)
    fracs = PAPER_FRACTIONS
    series_defs = {
        "DS Stream Compaction (in-place)": [],
        "thrust::remove": [],
        "thrust::remove_copy": [],
        "atomic plain (unstable)": [],
        "atomic shared-aggregated (unstable)": [],
        "atomic warp-aggregated (unstable)": [],
    }
    for f in fracs:
        kept = n - int(round(n * f))
        ub = select_useful_bytes(n, kept, F32)

        def t(launches):
            return gbps(ub, price_pipeline(launches, device, api="cuda").total_us)

        series_defs["DS Stream Compaction (in-place)"].append(
            t(ds_irregular_launches(n, kept, F32, device, **OPTIMIZED)))
        series_defs["thrust::remove"].append(
            t(thrust_select_launches(n, kept, F32, device, in_place=True)))
        series_defs["thrust::remove_copy"].append(
            t(thrust_select_launches(n, kept, F32, device)))
        for method in ("plain", "shared", "warp"):
            key = {
                "plain": "atomic plain (unstable)",
                "shared": "atomic shared-aggregated (unstable)",
                "warp": "atomic warp-aggregated (unstable)",
            }[method]
            series_defs[key].append(
                t(atomic_compact_launches(n, kept, F32, device, method=method)))
    return FigureData(
        figure_id="fig13",
        title=f"stream compaction, {n // (1024 * 1024)}M f32 on "
        f"{device.marketing_name}",
        x_label="% compacted (removed)",
        x_ticks=[int(f * 100) for f in fracs],
        y_label="GB/s",
        series=[Series(k, v) for k, v in series_defs.items()],
        notes=[
            "paper: DS > 3.2x thrust::remove; DS reaches ~68% of the "
            "fastest out-of-place unstable method",
        ],
    )


# ---------------------------------------------------------------------------
# Figures 14/17/20 — OpenCL portability of the irregular primitives
# ---------------------------------------------------------------------------


def _irregular_portability(
    figure_id: str,
    title: str,
    kept_fraction: float,
    *,
    stencil: bool = False,
    partition: bool = False,
    sizes_m: Tuple[int, ...] = (4, 8, 16),
) -> FigureData:
    series = []
    notes = []
    gains_lo, gains_hi = [], []
    for dev_name in PORTABILITY_DEVICES:
        device = get_device(dev_name)
        base_vals, opt_vals = [], []
        for m in sizes_m:
            n = m * 1024 * 1024
            kept = int(round(n * kept_fraction))
            if partition:
                useful = partition_useful_bytes(n, F32)
                base = ds_partition_launches(n, kept, F32, device, in_place=True)
                opt = ds_partition_launches(n, kept, F32, device,
                                            in_place=True, **OPTIMIZED)
            else:
                useful = select_useful_bytes(n, kept, F32)
                base = ds_irregular_launches(n, kept, F32, device, stencil=stencil)
                opt = ds_irregular_launches(n, kept, F32, device,
                                            stencil=stencil, **OPTIMIZED)
            base_vals.append(gbps(useful, price_pipeline(base, device).total_us))
            opt_vals.append(gbps(useful, price_pipeline(opt, device).total_us))
        series.append(Series(f"{device.name} (base)", base_vals))
        series.append(Series(f"{device.name} (optimized)", opt_vals))
        gains = [(o - b) / b * 100 for o, b in zip(opt_vals, base_vals)]
        gains_lo.append(min(gains))
        gains_hi.append(max(gains))
    notes.append(
        f"optimized reduction/scan gains {min(gains_lo):.0f}%..{max(gains_hi):.0f}% "
        "across devices (paper: +6% to +45%)"
    )
    notes.append("Kepler trails Fermi in OpenCL (no L1 for global loads, "
                 "no OpenCL shuffle), as the paper observes")
    return FigureData(
        figure_id=figure_id,
        title=title,
        x_label="array size (M elements)",
        x_ticks=list(sizes_m),
        y_label="GB/s",
        series=series,
        notes=notes,
    )


def fig14_compaction_portability() -> FigureData:
    """OpenCL DS Stream Compaction across devices, 50% compacted."""
    return _irregular_portability(
        "fig14",
        "OpenCL DS Stream Compaction across devices (50% compacted, f32)",
        kept_fraction=0.5,
    )


def fig17_unique_portability() -> FigureData:
    """OpenCL DS Unique across devices, 50% unique."""
    return _irregular_portability(
        "fig17",
        "OpenCL DS Unique across devices (50% unique, f32)",
        kept_fraction=0.5,
        stencil=True,
    )


def fig20_partition_portability() -> FigureData:
    """OpenCL DS Partition across devices, 50% true."""
    return _irregular_portability(
        "fig20",
        "OpenCL DS Partition across devices (50% true, f32)",
        kept_fraction=0.5,
        partition=True,
    )


# ---------------------------------------------------------------------------
# Figure 16 — unique on Maxwell
# ---------------------------------------------------------------------------


def fig16_unique(
    device_name: str = "maxwell",
    n: int = PAPER_ARRAY_ELEMENTS,
) -> FigureData:
    """DS Unique vs Thrust across the unique-fraction sweep (Figure 16)."""
    device = get_device(device_name)
    fracs = [f for f in PAPER_FRACTIONS if f > 0]  # 0% unique is degenerate
    ds_vals, th_in, th_out = [], [], []
    for f in fracs:
        kept = max(1, int(round(n * f)))
        ub = select_useful_bytes(n, kept, F32)
        ds_vals.append(gbps(ub, price_pipeline(
            ds_irregular_launches(n, kept, F32, device, stencil=True, **OPTIMIZED),
            device, api="cuda").total_us))
        th_in.append(gbps(ub, price_pipeline(
            thrust_select_launches(n, kept, F32, device, in_place=True, stencil=True),
            device, api="cuda").total_us))
        th_out.append(gbps(ub, price_pipeline(
            thrust_select_launches(n, kept, F32, device, stencil=True),
            device, api="cuda").total_us))
    return FigureData(
        figure_id="fig16",
        title=f"unique primitives, {n // (1024 * 1024)}M f32 on "
        f"{device.marketing_name} (CUDA)",
        x_label="% unique elements",
        x_ticks=[int(f * 100) for f in fracs],
        y_label="GB/s",
        series=[
            Series("DS Unique (in-place)", ds_vals),
            Series("thrust::unique", th_in),
            Series("thrust::unique_copy", th_out),
        ],
        notes=["paper: DS > 2.70x thrust::unique_copy, > 3.47x thrust::unique"],
    )


# ---------------------------------------------------------------------------
# Figure 19 — partition on Maxwell
# ---------------------------------------------------------------------------


def fig19_partition(
    device_name: str = "maxwell",
    n: int = PAPER_ARRAY_ELEMENTS,
) -> FigureData:
    """DS Partition (in/out of place) vs Thrust's four entry points
    across the true-fraction sweep (Figure 19)."""
    device = get_device(device_name)
    fracs = PAPER_FRACTIONS
    ds_in, ds_out, th_sin, th_sout, th_uin, th_uout = ([] for _ in range(6))
    useful = partition_useful_bytes(n, F32)
    for f in fracs:
        n_true = int(round(n * f))

        def t(launches):
            return gbps(useful, price_pipeline(launches, device, api="cuda").total_us)

        ds_in.append(t(ds_partition_launches(n, n_true, F32, device,
                                             in_place=True, **OPTIMIZED)))
        ds_out.append(t(ds_partition_launches(n, n_true, F32, device,
                                              in_place=False, **OPTIMIZED)))
        th_in_launches = thrust_partition_launches(n, n_true, F32, device,
                                                   in_place=True)
        th_out_launches = thrust_partition_launches(n, n_true, F32, device)
        th_sin.append(t(th_in_launches))
        th_sout.append(t(th_out_launches))
        # The paper notes the unstable variants perform like the stable
        # ones; they are modelled by the same pipelines.
        th_uin.append(th_sin[-1])
        th_uout.append(th_sout[-1])
    return FigureData(
        figure_id="fig19",
        title=f"partition primitives, {n // (1024 * 1024)}M f32 on "
        f"{device.marketing_name} (CUDA)",
        x_label="% true elements",
        x_ticks=[int(f * 100) for f in fracs],
        y_label="GB/s",
        series=[
            Series("DS Partition (in-place)", ds_in),
            Series("DS Partition (out-of-place)", ds_out),
            Series("thrust::stable_partition", th_sin),
            Series("thrust::stable_partition_copy", th_sout),
            Series("thrust::partition", th_uin),
            Series("thrust::partition_copy", th_uout),
        ],
        notes=[
            "in-place DS throughput rises with the true fraction: fewer "
            "false elements to copy back (the paper's observation)",
            "paper: DS out-of-place 3.02x Thrust's; in-place >= 2.16x "
            "Thrust out-of-place, 3.15x Thrust in-place",
        ],
    )


# ---------------------------------------------------------------------------
# Table I — headline summary
# ---------------------------------------------------------------------------


def table1_summary() -> List[dict]:
    """The paper's Table I: DS vs competitor GB/s and speedups.

    Returns one dict per row with keys ``primitive``, ``device``,
    ``ds_gbps``, ``competitor``, ``competitor_gbps``, ``speedup``,
    ``paper_ds``, ``paper_competitor``, ``paper_speedup``.
    """
    rows_out: List[dict] = []
    R, C, P = TABLE1_SHAPE
    n = R * C
    N = PAPER_ARRAY_ELEMENTS
    K = N // 2

    def add(primitive, device_name, ds_t, comp_name, comp_t,
            paper_ds, paper_comp, paper_speedup):
        rows_out.append({
            "primitive": primitive,
            "device": device_name,
            "ds_gbps": ds_t,
            "competitor": comp_name,
            "competitor_gbps": comp_t,
            "speedup": ds_t / comp_t,
            "paper_ds": paper_ds,
            "paper_competitor": paper_comp,
            "paper_speedup": paper_speedup,
        })

    # Padding / Unpadding (OpenCL, f32, 12000x11999, 1 column).
    for dev_name, paper_ds, paper_sung, paper_sp in (
        ("maxwell", 131.53, 16.23, 8.10), ("hawaii", 168.58, 2.66, 63.31),
    ):
        device = get_device(dev_name)
        useful = pad_useful_bytes(R, C, F32)
        ds = gbps(useful, price_pipeline(
            ds_regular_launches(n, n, F32, device), device).total_us)
        sung = gbps(useful, price_pipeline(
            sung_pad_launches(R, C, P, F32, device), device).total_us)
        add("Padding", dev_name, ds, "Sung's [11]", sung,
            paper_ds, paper_sung, paper_sp)
    for dev_name, paper_ds, paper_sung, paper_sp in (
        ("maxwell", 137.13, 15.05, 9.11), ("hawaii", 146.79, 2.00, 73.25),
    ):
        device = get_device(dev_name)
        kept = R * (C - P)
        useful = unpad_useful_bytes(R, C - P, F32)
        ds = gbps(useful, price_pipeline(
            ds_regular_launches(n, kept, F32, device), device).total_us)
        sung = gbps(useful, price_pipeline(
            sung_unpad_launches(R, C, P, F32, device), device).total_us)
        add("Unpadding", dev_name, ds, "Sung's [11]", sung,
            paper_ds, paper_sung, paper_sp)

    # Select / Unique / Partition (CUDA, 16M f32, 50%, shuffle-optimized).
    ub = select_useful_bytes(N, K, F32)
    for dev_name, paper_ds, paper_th, paper_sp in (
        ("maxwell", 88.3, 35.7, 2.5), ("kepler", 49.9, 18.7, 2.67),
        ("fermi", 42.7, 24.2, 1.77),
    ):
        device = get_device(dev_name)
        variant = OPTIMIZED if device.has_shuffle_cuda else {
            "scan_variant": "ballot", "reduction_variant": "tree"}
        ds = gbps(ub, price_pipeline(
            ds_irregular_launches(N, K, F32, device, **variant),
            device, api="cuda").total_us)
        th = gbps(ub, price_pipeline(
            thrust_select_launches(N, K, F32, device), device, api="cuda").total_us)
        add("Select", dev_name, ds, "Thrust", th, paper_ds, paper_th, paper_sp)
    for dev_name, paper_ds, paper_th, paper_sp in (
        ("maxwell", 78.10, 24.04, 3.24), ("kepler", 38.88, 14.26, 2.73),
        ("fermi", 29.93, 18.01, 1.66),
    ):
        device = get_device(dev_name)
        variant = OPTIMIZED if device.has_shuffle_cuda else {
            "scan_variant": "ballot", "reduction_variant": "tree"}
        ds = gbps(ub, price_pipeline(
            ds_irregular_launches(N, K, F32, device, stencil=True, **variant),
            device, api="cuda").total_us)
        th = gbps(ub, price_pipeline(
            thrust_select_launches(N, K, F32, device, in_place=True, stencil=True),
            device, api="cuda").total_us)
        add("Unique", dev_name, ds, "thrust::unique", th,
            paper_ds, paper_th, paper_sp)
    pb = partition_useful_bytes(N, F32)
    for dev_name, paper_ds, paper_th, paper_sp in (
        ("maxwell", 58.34, 20.56, 2.84), ("kepler", 37.41, 13.01, 2.88),
        ("fermi", 27.21, 16.57, 1.64),
    ):
        device = get_device(dev_name)
        variant = OPTIMIZED if device.has_shuffle_cuda else {
            "scan_variant": "ballot", "reduction_variant": "tree"}
        ds = gbps(pb, price_pipeline(
            ds_partition_launches(N, K, F32, device, in_place=True, **variant),
            device, api="cuda").total_us)
        th = gbps(pb, price_pipeline(
            thrust_partition_launches(N, K, F32, device, in_place=True),
            device, api="cuda").total_us)
        add("Partition", dev_name, ds, "thrust::stable_partition", th,
            paper_ds, paper_th, paper_sp)
    return rows_out


def cpu_sequential_comparison() -> List[dict]:
    """The paper's CPU comparison: DS (MxPA) vs sequential padding and
    unpadding — 2.80x and 2.45x in the paper."""
    R, C, P = TABLE1_SHAPE
    n = R * C
    out = []
    device = get_device("cpu-mxpa")
    for op, paper_speedup in (("pad", 2.80), ("unpad", 2.45)):
        if op == "pad":
            useful = pad_useful_bytes(R, C, F64)
            ds_t = price_pipeline(
                ds_regular_launches(n, n, F64, device), device).total_us
        else:
            useful = unpad_useful_bytes(R, C - P, F64)
            ds_t = price_pipeline(
                ds_regular_launches(n, R * (C - P), F64, device), device).total_us
        seq_t = sequential_time_us(useful, device)
        out.append({
            "operation": op,
            "ds_gbps": gbps(useful, ds_t),
            "seq_gbps": gbps(useful, seq_t),
            "speedup": seq_t / ds_t,
            "paper_speedup": paper_speedup,
        })
    return out


FIGURES: Dict[str, Callable] = {
    "fig2": fig02_iterative_padding,
    "fig6": fig06_coarsening,
    "fig8ab": fig08_padding_sizes,
    "fig8cd": fig08_padding_columns,
    "fig9ab": fig09_unpadding_sizes,
    "fig9cd": fig09_unpadding_columns,
    "fig10-pad": lambda: fig10_portability("pad"),
    "fig10-unpad": lambda: fig10_portability("unpad"),
    "fig12": fig12_select,
    "fig13": fig13_compaction,
    "fig14": fig14_compaction_portability,
    "fig16": fig16_unique,
    "fig17": fig17_unique_portability,
    "fig19": fig19_partition,
    "fig20": fig20_partition_portability,
}
"""Registry of every reproduced figure (Table I and the CPU comparison
have their own entry points: :func:`table1_summary` and
:func:`cpu_sequential_comparison`)."""
