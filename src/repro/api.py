"""High-level convenience API for the Data Sliding library.

These functions expose the paper's primitives with a plain-NumPy
surface and a ``backend`` switch:

* ``backend="sim"`` (default) executes the real in-place DS kernels,
  honouring the ``REPRO_BACKEND`` environment variable to pick between
  the event-level scheduler and the vectorized fast path;
* ``backend="simulated"`` forces the event-level scheduler — the
  faithful reproduction, with schedule-dependent counters;
* ``backend="vectorized"`` forces the tile-granularity fast path —
  identical outputs and traffic counters at a fraction of the wall
  clock (see ``docs/simulator.md`` for the equivalence contract);
* ``backend="compiled"`` forces the Numba JIT tier — same outputs and
  counters again, degrading to ``"vectorized"`` when Numba is unusable
  (see ``docs/backends.md``);
* ``backend="numpy"`` executes the reference semantics directly —
  bit-identical results at native NumPy speed, with no launch records.

Every function returns the result array; pass ``return_result=True`` to
receive the full :class:`~repro.primitives.common.PrimitiveResult`
(counters, device, extras) instead.

Example
-------
>>> import numpy as np
>>> from repro.api import compact
>>> compact(np.asarray([3.0, 0.0, 7.0, 0.0, 1.0], dtype=np.float32), 0.0)
array([3., 7., 1.], dtype=float32)
"""

from __future__ import annotations

from dataclasses import fields as _dataclass_fields
from typing import Optional, Union

import numpy as np

from repro.config import DSConfig, resolve_config
from repro.core.predicates import Predicate
from repro.errors import ReproError
from repro.primitives import (
    ds_copy_if,
    ds_pad,
    ds_partition,
    ds_remove_if,
    ds_stream_compact,
    ds_unique,
    ds_unpad,
)
from repro.primitives.common import PrimitiveResult
from repro.reference import (
    compact_ref,
    copy_if_ref,
    pad_ref,
    partition_ref,
    remove_if_ref,
    unique_ref,
    unpad_ref,
)
from repro.simgpu.device import DeviceSpec
from repro.simgpu.stream import Stream

__all__ = ["pad", "unpad", "remove_if", "copy_if", "compact", "unique", "partition"]

StreamLike = Optional[Union[Stream, DeviceSpec, str]]


_DS_BACKENDS = {"sim": None, "simulated": "simulated",
                "vectorized": "vectorized", "compiled": "compiled"}


def _normalize_backend(backend: str):
    """Split the high-level ``backend`` into (numpy?, DS backend).

    ``"sim"`` maps to ``None`` so the DS layer still honours the
    ``REPRO_BACKEND`` environment override; the explicit names pin it.
    """
    if backend == "numpy":
        return True, None
    if backend in _DS_BACKENDS:
        return False, _DS_BACKENDS[backend]
    raise ReproError(
        f"backend must be one of 'sim', 'simulated', 'vectorized', "
        f"'compiled' or 'numpy', got {backend!r}")


_TUNING_FIELDS = tuple(f.name for f in _dataclass_fields(DSConfig))


def _ds_config(primitive: str, config: Optional[DSConfig],
               ds_backend: Optional[str], kw: dict) -> DSConfig:
    """Build the DS-layer config for one api call.

    Tuning kwargs left in ``kw`` are routed through
    :func:`repro.config.resolve_config` (same deprecation warning and
    conflict check as the ``ds_*`` entry points — and they are removed
    from ``kw`` so they don't reach the primitive twice).  The api's own
    ``backend=`` parameter is *not* deprecated: it pins the config's
    backend, conflicting pins raise.
    """
    legacy = {name: kw.pop(name) for name in _TUNING_FIELDS if name in kw}
    cfg = resolve_config(primitive, config, **legacy)
    if ds_backend is not None:
        if cfg.backend is not None and cfg.backend != ds_backend:
            raise ReproError(
                f"{primitive}: backend={ds_backend!r} conflicts with "
                f"config.backend={cfg.backend!r}")
        cfg = cfg.replace(backend=ds_backend)
    return cfg


def _empty_result(values: np.ndarray, extras: dict) -> PrimitiveResult:
    """Zero-element inputs short-circuit: a launch needs at least one
    work-group, and the semantics are trivially an empty output."""
    return _wrap_numpy(np.asarray(values).reshape(-1).copy(), extras)


def _wrap_numpy(output: np.ndarray, extras: dict) -> PrimitiveResult:
    from repro.simgpu.device import get_device

    return PrimitiveResult(
        output=output, counters=[], device=get_device("maxwell"),
        extras={**extras, "backend": "numpy"},
    )


def pad(matrix: np.ndarray, columns: int, *, backend: str = "sim",
        fill=0, stream: StreamLike = None, config: Optional[DSConfig] = None,
        return_result: bool = False, **kw):
    """Append ``columns`` extra columns to a row-major matrix (DS Padding)."""
    use_numpy, ds_backend = _normalize_backend(backend)
    if use_numpy:
        result = _wrap_numpy(pad_ref(matrix, columns, fill=fill),
                             {"pad": columns})
    else:
        cfg = _ds_config("pad", config, ds_backend, kw)
        result = ds_pad(matrix, columns, stream, fill=fill, config=cfg, **kw)
    return result if return_result else result.output


def unpad(matrix: np.ndarray, columns: int, *, backend: str = "sim",
          stream: StreamLike = None, config: Optional[DSConfig] = None,
          return_result: bool = False, **kw):
    """Remove the last ``columns`` columns of a matrix (DS Unpadding)."""
    use_numpy, ds_backend = _normalize_backend(backend)
    if use_numpy:
        result = _wrap_numpy(unpad_ref(matrix, columns), {"pad": columns})
    else:
        cfg = _ds_config("unpad", config, ds_backend, kw)
        result = ds_unpad(matrix, columns, stream, config=cfg, **kw)
    return result if return_result else result.output


def remove_if(values: np.ndarray, predicate: Predicate, *, backend: str = "sim",
              stream: StreamLike = None, config: Optional[DSConfig] = None,
              return_result: bool = False, **kw):
    """Remove elements satisfying ``predicate``, stably and in place
    (DS Remove_if)."""
    use_numpy, ds_backend = _normalize_backend(backend)
    if np.asarray(values).size == 0:
        result = _empty_result(values, {"n_kept": 0})
    elif use_numpy:
        out = remove_if_ref(values, predicate)
        result = _wrap_numpy(out, {"n_kept": out.size})
    else:
        cfg = _ds_config("remove_if", config, ds_backend, kw)
        result = ds_remove_if(values, predicate, stream, config=cfg, **kw)
    return result if return_result else result.output


def copy_if(values: np.ndarray, predicate: Predicate, *, backend: str = "sim",
            stream: StreamLike = None, config: Optional[DSConfig] = None,
            return_result: bool = False, **kw):
    """Copy elements satisfying ``predicate`` to a fresh array (DS Copy_if)."""
    use_numpy, ds_backend = _normalize_backend(backend)
    if np.asarray(values).size == 0:
        result = _empty_result(values, {"n_kept": 0})
    elif use_numpy:
        out = copy_if_ref(values, predicate)
        result = _wrap_numpy(out, {"n_kept": out.size})
    else:
        cfg = _ds_config("copy_if", config, ds_backend, kw)
        result = ds_copy_if(values, predicate, stream, config=cfg, **kw)
    return result if return_result else result.output


def compact(values: np.ndarray, remove_value, *, backend: str = "sim",
            stream: StreamLike = None, config: Optional[DSConfig] = None,
            return_result: bool = False, **kw):
    """Drop every occurrence of ``remove_value`` (DS Stream Compaction)."""
    use_numpy, ds_backend = _normalize_backend(backend)
    if np.asarray(values).size == 0:
        result = _empty_result(values, {"n_kept": 0})
    elif use_numpy:
        out = compact_ref(values, remove_value)
        result = _wrap_numpy(out, {"n_kept": out.size})
    else:
        cfg = _ds_config("compact", config, ds_backend, kw)
        result = ds_stream_compact(values, remove_value, stream,
                                   config=cfg, **kw)
    return result if return_result else result.output


def unique(values: np.ndarray, *, backend: str = "sim",
           stream: StreamLike = None, config: Optional[DSConfig] = None,
           return_result: bool = False, **kw):
    """Keep the first of each run of equal consecutive elements (DS Unique)."""
    use_numpy, ds_backend = _normalize_backend(backend)
    if np.asarray(values).size == 0:
        result = _empty_result(values, {"n_kept": 0})
    elif use_numpy:
        out = unique_ref(values)
        result = _wrap_numpy(out, {"n_kept": out.size})
    else:
        cfg = _ds_config("unique", config, ds_backend, kw)
        result = ds_unique(values, stream, config=cfg, **kw)
    return result if return_result else result.output


def partition(values: np.ndarray, predicate: Predicate, *, backend: str = "sim",
              stream: StreamLike = None, config: Optional[DSConfig] = None,
              return_result: bool = False, **kw):
    """Stable partition: predicate-true elements first (DS Partition).

    Returns ``(array, n_true)`` — or the full result with
    ``return_result=True`` (``extras["n_true"]`` holds the split)."""
    use_numpy, ds_backend = _normalize_backend(backend)
    if np.asarray(values).size == 0:
        result = _empty_result(values, {"n_true": 0})
    elif use_numpy:
        out, n_true = partition_ref(values, predicate)
        result = _wrap_numpy(out, {"n_true": n_true})
    else:
        cfg = _ds_config("partition", config, ds_backend, kw)
        result = ds_partition(values, predicate, stream, config=cfg, **kw)
    if return_result:
        return result
    return result.output, result.extras["n_true"]
