"""The bounded knob space the autotuner is allowed to sweep.

Two tiers, mirroring the two config surfaces of the repo:

* **kernel** — the :class:`~repro.config.DSConfig` knobs with a
  measured performance effect: ``coarsening`` (the paper's Figure 6
  sweet spot), ``wg_size``, ``scan_variant`` (tree/ballot/shuffle/
  lookback) and pipeline ``fuse`` on/off;
* **serve** — the :class:`~repro.serve.config.ServeConfig` batching
  window ``max_batch_size`` × ``max_wait_ms``, optionally crossed with
  the fleet pool size ``n_workers`` (each trial then drives a whole
  :class:`repro.fleet.Fleet` instead of one in-process server).

A :class:`KnobSpace` is a *bound*, not a schedule: the tuner decides
the order (staged coordinate descent, see :mod:`repro.tune.tuner`), the
space decides what values are even candidates.  Everything validates
eagerly so a typo'd space fails at construction, not mid-sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.config import _SCAN_VARIANTS
from repro.errors import ReproError

__all__ = ["KnobSpace", "KERNEL_KNOBS", "SERVE_KNOBS"]

#: Kernel-tier knob names, exactly the DSConfig fields the tuner may
#: override (plus the pipeline-level ``fuse`` flag).
KERNEL_KNOBS = ("coarsening", "wg_size", "scan_variant", "fuse")

#: Serve-tier knob names (ServeConfig fields plus the fleet pool size).
SERVE_KNOBS = ("max_batch_size", "max_wait_ms", "n_workers")


@dataclass(frozen=True)
class KnobSpace:
    """Bounded candidate values per knob.

    ``coarsenings`` may include ``None`` (the occupancy-driven
    default).  The defaults keep a full staged sweep around 15 trials —
    comfortably inside the CLI's default ``--budget 20``.
    """

    wg_sizes: Tuple[int, ...] = (64, 128, 256, 512)
    coarsenings: Tuple = (None, 1, 2, 4, 8, 16)
    scan_variants: Tuple[str, ...] = _SCAN_VARIANTS
    fusion: Tuple[bool, ...] = (True, False)
    max_batch_sizes: Tuple[int, ...] = (1, 2, 4, 8, 16)
    max_waits_ms: Tuple[float, ...] = (0.0, 0.5, 2.0, 5.0)
    #: Fleet pool sizes the serve sweep may cross with the batching
    #: grid.  The default keeps the sweep single-process (every trial
    #: at ``n_workers=1`` runs the plain in-process server); widen it
    #: (e.g. ``(1, 2, 4)``) to let the tuner weigh forking a fleet.
    worker_counts: Tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if not self.wg_sizes or any(int(w) <= 0 for w in self.wg_sizes):
            raise ReproError(
                f"KnobSpace.wg_sizes must be positive ints, got "
                f"{self.wg_sizes!r}")
        if not self.coarsenings or any(
                c is not None and int(c) <= 0 for c in self.coarsenings):
            raise ReproError(
                f"KnobSpace.coarsenings must be positive ints or None, got "
                f"{self.coarsenings!r}")
        bad = [v for v in self.scan_variants if v not in _SCAN_VARIANTS]
        if not self.scan_variants or bad:
            raise ReproError(
                f"KnobSpace.scan_variants {bad!r} not in {_SCAN_VARIANTS}")
        if not self.fusion or any(not isinstance(f, bool) for f in self.fusion):
            raise ReproError(
                f"KnobSpace.fusion must be a non-empty tuple of bools, got "
                f"{self.fusion!r}")
        if not self.max_batch_sizes or any(
                int(b) <= 0 for b in self.max_batch_sizes):
            raise ReproError(
                f"KnobSpace.max_batch_sizes must be positive ints, got "
                f"{self.max_batch_sizes!r}")
        if not self.max_waits_ms or any(
                float(w) < 0 for w in self.max_waits_ms):
            raise ReproError(
                f"KnobSpace.max_waits_ms must be >= 0, got "
                f"{self.max_waits_ms!r}")
        if not self.worker_counts or any(
                int(k) <= 0 for k in self.worker_counts):
            raise ReproError(
                f"KnobSpace.worker_counts must be positive ints, got "
                f"{self.worker_counts!r}")

    # -- membership ------------------------------------------------------

    def valid_kernel_knobs(self, knobs: dict) -> bool:
        """Whether a kernel knob dict lies inside this space (unknown
        keys reject, missing keys mean "default" and pass)."""
        allowed = {
            "coarsening": self.coarsenings,
            "wg_size": self.wg_sizes,
            "scan_variant": self.scan_variants,
            "fuse": self.fusion,
        }
        for name, value in knobs.items():
            if name not in allowed or value not in allowed[name]:
                return False
        return True

    def valid_serve_knobs(self, knobs: dict) -> bool:
        allowed = {"max_batch_size": self.max_batch_sizes,
                   "max_wait_ms": self.max_waits_ms,
                   "n_workers": self.worker_counts}
        for name, value in knobs.items():
            if name not in allowed or value not in allowed[name]:
                return False
        return True

    # -- sizing ----------------------------------------------------------

    def kernel_sweep_size(self, *, chain: bool = False) -> int:
        """Trials a full staged kernel sweep needs: one baseline, one
        per non-default coarsening, wg_size and scan_variant, plus the
        fusion-off probe for multi-op chains."""
        n = 1
        n += sum(1 for c in self.coarsenings if c is not None)
        n += len(self.wg_sizes) - 1
        n += len(self.scan_variants) - 1
        if chain and False in self.fusion:
            n += 1
        return n

    def serve_grid(self) -> Tuple[Tuple[int, float, int], ...]:
        """The (max_batch_size, max_wait_ms, n_workers) product,
        batch-size major; single-process points (``n_workers=1``)
        sweep before fleet points of the same batching knobs."""
        return tuple((b, w, k) for b in self.max_batch_sizes
                     for w in self.max_waits_ms
                     for k in self.worker_counts)
