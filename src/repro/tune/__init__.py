"""Online autotuner closing the observability loop (docs/tuning.md).

The measurement side of this repo (tracer, metrics, analyzer, flight
recorder) can already attribute every microsecond of a launch to
load/reduce/spin/store/idle — this package closes the loop by *acting*
on those measurements:

* :class:`~repro.tune.space.KnobSpace` bounds what may be swept —
  (coarsening, wg_size, scan_variant, fusion) for the kernel tier and
  (max_batch_size, max_wait_ms) for the serve tier;
* :func:`~repro.tune.tuner.tune_kernel` /
  :func:`~repro.tune.tuner.tune_serve` run the bounded staged sweep,
  scoring each trial with the composite objective of
  :mod:`repro.tune.objective` (median wall clock first, analyzer
  spin+idle share — or serve p95 — as the tie-break);
* winners persist in a :class:`~repro.tune.db.TuningDB` (JSON, keyed
  identically to the pipeline plan cache / serve batch key) with full
  provenance, which :meth:`repro.serve.Server.prime(tuned=True)
  <repro.serve.server.Server.prime>` and
  ``DSConfig.from_env`` (``REPRO_TUNED=1``) warm from.

The tuner's own decisions are observable: every trial emits ``tune.*``
metrics, a ``tune.trial`` span on any active tracer, and flight-recorder
events.  ``python -m repro tune`` is the CLI front door.
"""

from repro.tune.db import TuningDB, kernel_key, normalize_config, serve_key
from repro.tune.objective import ServeScore, TrialScore
from repro.tune.space import KnobSpace
from repro.tune.tuner import TuneResult, tune_kernel, tune_serve

__all__ = [
    "KnobSpace",
    "TuningDB",
    "TrialScore",
    "ServeScore",
    "TuneResult",
    "tune_kernel",
    "tune_serve",
    "kernel_key",
    "serve_key",
    "normalize_config",
]
