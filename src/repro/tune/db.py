"""The tuning database: persisted autotuner winners, keyed like the
plan cache.

A :class:`TuningDB` is a small JSON document mapping **tuning keys** to
winning knob dicts plus provenance (objective scores, baseline scores,
sample counts, backend tier, caller-injected timestamp).  The key is
built from exactly the tuple the serve layer batches on and the
pipeline plan cache hashes — :func:`repro.serve.request.make_batch_key`
over (op chain, geometry/dtype, op params, config, backend) — with one
twist: the config inside the key is **normalized** first
(:func:`normalize_config` strips the tunable knobs and the scheduling
seed back to their defaults).  Every trial of one workload therefore
shares a single key regardless of which knobs the trial tried, and a
serve request looks its tuned knobs up under the same key whatever its
caller's starting config was.

Three key kinds share the file:

* ``kernel|<batch key>`` — DSConfig knobs for one op-chain/geometry;
* ``serve|<batch key>`` — ServeConfig batching knobs for the same;
* ``default|<backend>`` — the fallback knob set ``DSConfig.from_env``
  applies under ``REPRO_TUNED=1`` when no per-key entry matches.

Writes are atomic (tmp file + ``os.replace``) and the class is
thread-safe; timestamps are injected by the caller so the DB layer
stays deterministic and testable.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ReproError

__all__ = ["TuningDB", "normalize_config", "kernel_key", "serve_key",
           "default_key", "KERNEL_CONFIG_KNOBS", "SERVE_CONFIG_KNOBS",
           "FLEET_CONFIG_KNOBS"]

#: DSConfig fields the tuner overrides — stripped by normalize_config
#: and the only config fields a kernel entry's knob dict may carry.
KERNEL_CONFIG_KNOBS = ("wg_size", "coarsening", "scan_variant")

#: ServeConfig fields a serve entry's knob dict may carry — the subset
#: a single :class:`~repro.serve.Server` can apply to itself.
SERVE_CONFIG_KNOBS = ("max_batch_size", "max_wait_ms")

#: Fleet-tier fields a serve entry's knob dict may additionally carry.
#: A server ignores these when activating tuned knobs (it cannot resize
#: its own pool); whoever constructs the :class:`repro.fleet.Fleet`
#: reads them instead.
FLEET_CONFIG_KNOBS = ("n_workers",)


def normalize_config(config, backend: Optional[str] = None):
    """The config as it appears inside tuning keys: tunable knobs and
    the scheduling seed reset to defaults, backend pinned.

    Pinning the backend *inside* the config (rather than leaving the
    ``None`` env-deferred spelling) keeps one key per executed tier;
    the same workload tuned on ``vectorized`` and ``compiled`` gets two
    entries, which is the point — the sweet spot moves per tier.
    """
    from repro.config import DSConfig

    if config is None:
        config = DSConfig()
    resolved = backend if backend is not None else config.resolved_backend()
    return config.replace(wg_size=256, coarsening=None, scan_variant="tree",
                          seed=0, backend=resolved)


def _batch_key(ops, array, config, backend: Optional[str]) -> tuple:
    from repro.serve.request import OpStage, make_batch_key

    ops = list(ops) if not isinstance(ops, str) else [ops]
    if ops and isinstance(ops[0], OpStage):
        stages = ops
    else:
        from repro.serve.server import _chain_spec

        stages = [OpStage(desc, args, kwargs)
                  for desc, args, kwargs in _chain_spec(ops)]
    norm = normalize_config(config, backend)
    return make_batch_key(stages, array, norm, norm.backend)


def kernel_key(ops, array, config=None, backend: Optional[str] = None) -> str:
    """The kernel-tier tuning key for one op chain over one input shape.

    ``ops`` accepts :class:`~repro.serve.request.OpStage` instances or
    the loadgen-style specs (``("compact", 0.0)`` / ``"unique"``).
    """
    return "kernel|" + repr(_batch_key(ops, array, config, backend))


def serve_key(ops, array, config=None, backend: Optional[str] = None) -> str:
    """The serve-tier tuning key (same identity, serve knob kind)."""
    return "serve|" + repr(_batch_key(ops, array, config, backend))


def default_key(backend: str) -> str:
    """The per-backend fallback entry ``DSConfig.from_env`` reads."""
    return f"default|{backend}"


class TuningDB:
    """A thread-safe JSON store of autotuner winners.

    Entries carry the winning ``knobs`` plus provenance::

        {"kind": "kernel", "knobs": {"coarsening": 4, "wg_size": 128},
         "objective": {"wall_ms": 1.9, "spin_idle_share": 0.12},
         "baseline":  {"wall_ms": 2.6, "spin_idle_share": 0.31},
         "samples": 3, "trials": 14, "backend": "vectorized",
         "timestamp": 1754600000.0, "meta": {...}}
    """

    VERSION = 1

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: Dict[str, dict] = {}
        self._lock = threading.Lock()

    # -- persistence -----------------------------------------------------

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TuningDB":
        """Load a DB from ``path``; a missing file is an empty DB (the
        tuned resolution mode is opportunistic), a malformed one raises
        :class:`~repro.errors.ReproError` naming the file."""
        db = cls(path)
        p = Path(path)
        if not p.exists():
            return db
        try:
            doc = json.loads(p.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"tuning DB {p} is unreadable: {exc}") from None
        if not isinstance(doc, dict) or "entries" not in doc:
            raise ReproError(
                f"tuning DB {p} is not a TuningDB document "
                f"(missing 'entries')")
        version = doc.get("version")
        if version != cls.VERSION:
            raise ReproError(
                f"tuning DB {p} has version {version!r}; this build reads "
                f"version {cls.VERSION}")
        db._entries = dict(doc["entries"])
        return db

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Atomically persist the DB (tmp file + rename)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ReproError("TuningDB.save: no path given or configured")
        with self._lock:
            doc = {"version": self.VERSION, "entries": dict(self._entries)}
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, target)
        self.path = target
        return target

    # -- entries ---------------------------------------------------------

    def set(self, key: str, *, kind: str, knobs: dict, objective: dict,
            baseline: Optional[dict] = None, samples: int = 1,
            trials: int = 1, backend: Optional[str] = None,
            timestamp: Optional[float] = None,
            meta: Optional[dict] = None) -> dict:
        """Record one winner (overwriting any previous entry at ``key``)."""
        if kind not in ("kernel", "serve", "default"):
            raise ReproError(f"unknown tuning entry kind {kind!r}")
        entry = {
            "kind": kind,
            "knobs": dict(knobs),
            "objective": dict(objective),
            "baseline": dict(baseline) if baseline is not None else None,
            "samples": int(samples),
            "trials": int(trials),
            "backend": backend,
            "timestamp": timestamp,
            "meta": dict(meta) if meta else {},
        }
        with self._lock:
            self._entries[key] = entry
        return entry

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            entry = self._entries.get(key)
        return dict(entry) if entry is not None else None

    def knobs(self, key: str) -> Optional[dict]:
        """Just the winning knob dict for ``key`` (or ``None``)."""
        entry = self.get(key)
        return dict(entry["knobs"]) if entry else None

    def set_default(self, backend: str, knobs: dict, **provenance) -> dict:
        """Record the per-backend fallback ``DSConfig.from_env`` reads."""
        provenance.setdefault("objective", {})
        return self.set(default_key(backend), kind="default", knobs=knobs,
                        backend=backend, **provenance)

    def default_knobs(self, backend: str) -> Optional[dict]:
        return self.knobs(default_key(backend))

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> Dict[str, dict]:
        """A snapshot copy of every entry (reporting)."""
        with self._lock:
            return {k: dict(v) for k, v in self._entries.items()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TuningDB(path={self.path!r}, entries={len(self)})"
