"""``python -m repro tune`` — run a bounded autotuning sweep.

Examples::

    python -m repro tune --fig fig13 --budget 20
    python -m repro tune --shape compact --n 512 --set-default
    python -m repro tune --serve --shape compact --clients 4 --requests 8

``--fig`` tunes the kernel knobs of a canonical benchmark workload
(same geometry/seed family as the BENCH baselines); ``--shape`` tunes
a loadgen traffic shape (same ops/dtype the serve layer batches, so the
persisted key is exactly what ``Server.prime(tuned=True)`` looks up);
``--serve`` sweeps the serve batching grid instead of kernel knobs.
Winners persist to the tuning DB (default
``benchmarks/results/TUNING_DB.json``) with provenance; ``--check``
asserts the sweep's guarantees and the DB round-trip (tune-smoke).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.errors import ReproError

DEFAULT_DB = "benchmarks/results/TUNING_DB.json"

__all__ = ["build_parser", "main", "DEFAULT_DB"]


def build_parser() -> argparse.ArgumentParser:
    from repro.serve.loadgen import SHAPES
    from repro.tune.tuner import TUNABLE_FIGS

    parser = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="Bounded autotuning sweep over (coarsening, wg_size, "
                    "scan variant, fusion) — or, with --serve, the "
                    "(max_batch_size, max_wait_ms) batching grid.  "
                    "Winners persist to the tuning DB with provenance.")
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument("--fig", choices=sorted(TUNABLE_FIGS),
                      help="tune a canonical benchmark workload")
    what.add_argument("--shape", choices=sorted(SHAPES),
                      help="tune a loadgen traffic shape (what the serve "
                           "layer batches)")
    parser.add_argument("--serve", action="store_true",
                        help="sweep the serve batching grid for --shape "
                             "instead of the kernel knobs")
    parser.add_argument("--fleet-workers", default=None, metavar="LIST",
                        help="comma-separated fleet pool sizes to cross "
                             "with the --serve grid (e.g. 1,2,4); sizes "
                             "past 1 run each trial over a forked "
                             "multi-process fleet")
    parser.add_argument("--n", type=int, default=None,
                        help="workload size (default: fig 64Ki / shape 512)")
    parser.add_argument("--budget", type=int, default=20,
                        help="maximum trials (default: 20)")
    parser.add_argument("--samples", type=int, default=3,
                        help="timed runs per kernel trial; the median is "
                             "the primary objective (default: 3)")
    parser.add_argument("--backend", default="vectorized",
                        help="execution backend to tune on "
                             "(default: vectorized)")
    parser.add_argument("--db", default=DEFAULT_DB,
                        help=f"tuning DB path (default: {DEFAULT_DB})")
    parser.add_argument("--no-db", action="store_true",
                        help="sweep only; do not persist the winner")
    parser.add_argument("--set-default", action="store_true",
                        help="also record the winner as the per-backend "
                             "default| entry DSConfig.from_env reads under "
                             "REPRO_TUNED=1")
    parser.add_argument("--clients", type=int, default=4,
                        help="loadgen clients per serve trial")
    parser.add_argument("--requests", type=int, default=10,
                        help="loadgen requests per client per serve trial")
    parser.add_argument("--seed", type=int, default=1234,
                        help="loadgen shape seed (--shape modes)")
    parser.add_argument("--check", action="store_true",
                        help="assert the sweep guarantees: winner no slower "
                             "than the static default, knobs inside the "
                             "space, DB round-trips (tune-smoke)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full result as JSON")
    return parser


def _check(result, db_path: Optional[str], space) -> None:
    """The tune-smoke assertions."""
    problems = []
    if result.kind == "kernel":
        if result.best_score.wall_ms > result.baseline_score.wall_ms:
            problems.append(
                f"winner wall {result.best_score.wall_ms:.4f}ms exceeds the "
                f"static default's {result.baseline_score.wall_ms:.4f}ms")
        if not space.valid_kernel_knobs(result.best_knobs):
            problems.append(
                f"winning knobs {result.best_knobs} outside the knob space")
    else:
        if result.best_score.p95_ms > result.baseline_score.p95_ms:
            problems.append(
                f"winner p95 {result.best_score.p95_ms:.2f}ms exceeds the "
                f"static default's {result.baseline_score.p95_ms:.2f}ms")
        if result.best_knobs and not space.valid_serve_knobs(
                result.best_knobs):
            problems.append(
                f"winning knobs {result.best_knobs} outside the knob space")
    if result.budget_used > result.budget:
        problems.append(f"{result.budget_used} trials exceeded the "
                        f"budget of {result.budget}")
    if db_path is not None:
        from repro.tune.db import TuningDB

        reloaded = TuningDB.load(db_path)
        entry = reloaded.get(result.key)
        if entry is None:
            problems.append(f"DB round-trip failed: no entry for the "
                            f"sweep key in {db_path}")
        elif entry["knobs"] != result.best_knobs:
            problems.append(
                f"DB round-trip failed: reloaded knobs {entry['knobs']} != "
                f"swept {result.best_knobs}")
    if problems:
        raise ReproError("tune check failed: " + "; ".join(problems))
    print("tune check: OK")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.config import DSConfig
    from repro.obs.flight import FlightRecorder
    from repro.serve.loadgen import make_shape
    from repro.tune.db import TuningDB
    from repro.tune.space import KnobSpace
    from repro.tune.tuner import make_fig_workload, tune_kernel, tune_serve

    if args.serve and args.shape is None:
        print("tune: --serve requires --shape", file=sys.stderr)
        return 2
    if args.fleet_workers is not None and not args.serve:
        print("tune: --fleet-workers requires --serve", file=sys.stderr)
        return 2
    space = KnobSpace() if args.fleet_workers is None else KnobSpace(
        worker_counts=tuple(int(k) for k
                            in args.fleet_workers.split(",")))
    db_path = None if args.no_db else args.db
    db = TuningDB.load(db_path) if db_path is not None else None
    timestamp = time.time()
    flight = FlightRecorder(1024).install()
    try:
        if args.serve:
            result = tune_serve(
                args.shape, n=args.n if args.n is not None else 512,
                clients=args.clients, requests_per_client=args.requests,
                ds_config=DSConfig(backend=args.backend), space=space,
                budget=args.budget, db=db, flight=flight,
                timestamp=timestamp, seed=args.seed)
        elif args.fig is not None:
            ops, array, config = make_fig_workload(args.fig, n=args.n)
            result = tune_kernel(
                ops, array, config=config, backend=args.backend,
                space=space, budget=args.budget, samples=args.samples,
                db=db, flight=flight, timestamp=timestamp,
                set_default=args.set_default)
        else:
            spec = make_shape(args.shape,
                              args.n if args.n is not None else 512,
                              args.seed)
            result = tune_kernel(
                spec.ops, spec.array, backend=args.backend, space=space,
                budget=args.budget, samples=args.samples, db=db,
                flight=flight, timestamp=timestamp,
                set_default=args.set_default)
    finally:
        flight.uninstall()

    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.summary())
        if db_path is not None:
            print(f"persisted to {db_path} under\n  {result.key}")
    if args.check:
        _check(result, db_path, space)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
