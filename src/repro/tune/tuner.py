"""The staged-sweep autotuner over the bounded knob space.

``tune_kernel`` runs **staged coordinate descent** instead of the full
grid: one baseline trial of the caller's untouched config first (so the
winner can never be slower than the static default — the baseline *is*
a candidate), then a coarsening sweep at the default work-group size,
then a wg_size sweep at the best coarsening, then scan variants, then a
fusion-off probe for multi-op chains.  With the default
:class:`~repro.tune.space.KnobSpace` that is ~15 trials — inside the
CLI's default ``--budget 20`` — versus 192 for the grid, and it mirrors
how the paper's own figures explore the space (Figure 6 sweeps
coarsening at a fixed wg_size).

``tune_serve`` is a plain bounded grid over (max_batch_size,
max_wait_ms) — the serve knob space is small and its objective (loadgen
p95) is noisy enough that coordinate descent saves nothing.

Every trial emits ``tune.*`` metrics, a ``tune.trial`` span on any
tracer active *outside* the trial (trials themselves run under a scoped
tracer for the decomposition measurement), and flight-recorder/event-log
records — the tuner's decisions are as observable as the kernels it
tunes.  Winners (and their full provenance) persist via
:class:`~repro.tune.db.TuningDB`; timestamps are injected by the
caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import obs as _obs
from repro.config import DSConfig
from repro.errors import ReproError
from repro.obs import log as _obslog
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.engine import Pipeline
from repro.pipeline.plan import PlanCache
from repro.primitives.common import DEFAULT_DEVICE
from repro.serve.server import _chain_spec
from repro.simgpu.stream import Stream
from repro.tune.db import KERNEL_CONFIG_KNOBS, TuningDB, kernel_key, serve_key
from repro.tune.objective import (
    ServeScore,
    TrialScore,
    better,
    measure_kernel_trial,
)
from repro.tune.space import KnobSpace

__all__ = ["Trial", "TuneResult", "tune_kernel", "tune_serve",
           "TUNABLE_FIGS", "make_fig_workload"]


@dataclass(frozen=True)
class Trial:
    """One evaluated knob set."""

    knobs: dict
    score: object  # TrialScore | ServeScore

    def to_dict(self) -> dict:
        return {"knobs": dict(self.knobs), "score": self.score.to_dict()}


@dataclass
class TuneResult:
    """Everything one sweep produced, ready for the DB and the report."""

    key: str
    kind: str
    backend: str
    best_knobs: dict
    best_score: object
    baseline_score: object
    trials: List[Trial] = field(default_factory=list)
    budget: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def improved(self) -> bool:
        """Did any non-baseline knob set beat the static default?"""
        return bool(self.best_knobs)

    @property
    def budget_used(self) -> int:
        return len(self.trials)

    def to_dict(self) -> dict:
        return {
            "key": self.key, "kind": self.kind, "backend": self.backend,
            "best_knobs": dict(self.best_knobs),
            "best_score": self.best_score.to_dict(),
            "baseline_score": self.baseline_score.to_dict(),
            "improved": self.improved,
            "budget": self.budget, "budget_used": self.budget_used,
            "trials": [t.to_dict() for t in self.trials],
            "meta": dict(self.meta),
        }

    def summary(self) -> str:
        if self.kind == "serve":
            base = f"p95 {self.baseline_score.p95_ms:.2f}ms"
            best = f"p95 {self.best_score.p95_ms:.2f}ms"
        else:
            base = (f"wall {self.baseline_score.wall_ms:.3f}ms "
                    f"(spin+idle {self.baseline_score.spin_idle_share:.1%})")
            best = (f"wall {self.best_score.wall_ms:.3f}ms "
                    f"(spin+idle {self.best_score.spin_idle_share:.1%})")
        verdict = (f"tuned {self.best_knobs}" if self.improved
                   else "static default kept")
        return (f"tune[{self.kind}/{self.backend}]: {self.budget_used} "
                f"trials; baseline {base} -> {verdict} ({best})")


class _TrialRecorder:
    """Shared observability plumbing for both sweep kinds: ``tune.*``
    metrics, explicit-timestamp spans on the *outer* tracer, and
    flight/event-log records."""

    def __init__(self, kind: str, metrics: Optional[MetricsRegistry],
                 flight: Optional[FlightRecorder]) -> None:
        self.kind = kind
        outer = _obs.active()
        self.tracer = outer
        self.metrics = (metrics if metrics is not None
                        else outer.metrics if outer is not None
                        else MetricsRegistry())
        self.flight = flight
        self.spans: List[dict] = []
        self.t0_us = outer.now_us() if outer is not None else None

    def event(self, name: str, **fields) -> None:
        if self.flight is not None:
            self.flight.record_event(name, **fields)
        _obslog.emit(name, **fields)

    def now_us(self) -> Optional[float]:
        return self.tracer.now_us() if self.tracer is not None else None

    def trial_done(self, knobs: dict, score, start_us: Optional[float],
                   improved: bool) -> None:
        self.metrics.counter("tune.trials").inc()
        if improved:
            self.metrics.counter("tune.improved").inc()
        if isinstance(score, ServeScore):
            self.metrics.histogram("tune.trial_p95_ms").record(score.p95_ms)
        else:
            self.metrics.histogram("tune.trial_wall_ms").record(score.wall_ms)
        args = {"kind": self.kind, "knobs": repr(knobs), "improved": improved}
        args.update(score.to_dict())
        args.pop("wall_samples_ms", None)
        self.event("tune.trial", **args)
        if self.tracer is not None and start_us is not None:
            self.spans.append({"start_us": start_us,
                               "end_us": self.tracer.now_us(),
                               "args": args})

    def finish(self, result: TuneResult) -> None:
        if isinstance(result.best_score, ServeScore):
            self.metrics.gauge("tune.best_p95_ms").set(
                result.best_score.p95_ms)
        else:
            self.metrics.gauge("tune.best_wall_ms").set(
                result.best_score.wall_ms)
        self.event("tune.sweep_done", kind=self.kind, key=result.key,
                   backend=result.backend, trials=result.budget_used,
                   best_knobs=repr(result.best_knobs),
                   improved=result.improved)
        # The sweep's span tree goes on whatever tracer was active
        # around the tune call: one tune.sweep root, one tune.trial
        # child per evaluated knob set.
        if self.tracer is None or self.t0_us is None or not self.spans:
            return
        root = self.tracer.add_span(
            "tune.sweep", track="tune", cat="tune",
            start_us=self.t0_us, end_us=self.tracer.now_us(),
            args={"kind": self.kind, "key": result.key,
                  "trials": result.budget_used,
                  "best_knobs": repr(result.best_knobs)})
        for rec in self.spans:
            self.tracer.add_span("tune.trial", track="tune", cat="tune",
                                 start_us=rec["start_us"],
                                 end_us=rec["end_us"], args=rec["args"],
                                 parent=root)


def _persist(db: Optional[TuningDB], result: TuneResult, *,
             samples: int, timestamp: Optional[float],
             set_default: bool) -> None:
    if db is None:
        return
    db.set(result.key, kind=result.kind, knobs=result.best_knobs,
           objective=result.best_score.to_dict(),
           baseline=result.baseline_score.to_dict(),
           samples=samples, trials=result.budget_used,
           backend=result.backend, timestamp=timestamp, meta=result.meta)
    if set_default and result.kind == "kernel":
        config_knobs = {k: v for k, v in result.best_knobs.items()
                        if k in KERNEL_CONFIG_KNOBS}
        db.set_default(result.backend, config_knobs,
                       baseline=result.baseline_score.to_dict(),
                       objective=result.best_score.to_dict(),
                       samples=samples, trials=result.budget_used,
                       timestamp=timestamp, meta=result.meta)
    if db.path is not None:
        db.save()


def tune_kernel(
    ops,
    array: np.ndarray,
    *,
    config: Optional[DSConfig] = None,
    backend: Optional[str] = None,
    space: Optional[KnobSpace] = None,
    budget: int = 20,
    samples: int = 3,
    db: Optional[TuningDB] = None,
    metrics: Optional[MetricsRegistry] = None,
    flight: Optional[FlightRecorder] = None,
    device=DEFAULT_DEVICE,
    timestamp: Optional[float] = None,
    set_default: bool = False,
) -> TuneResult:
    """Sweep the kernel knob space for one op chain over one input.

    ``ops`` uses the loadgen spelling (``(("compact", 0.0), "unique")``);
    ``budget`` bounds the number of *trials* (each trial runs the
    workload ``samples`` untimed-median times plus one traced run).
    The baseline (the caller's config untouched) is always trial #1, so
    ``best_score.wall_ms <= baseline_score.wall_ms`` by construction.
    When ``db`` is given the winner persists under the plan-cache-style
    key (and, with ``set_default=True``, as the per-backend
    ``default|`` entry too); a DB with a configured path is saved.
    """
    if budget < 1:
        raise ReproError(f"tune budget must be >= 1, got {budget}")
    space = space if space is not None else KnobSpace()
    base = config if config is not None else DSConfig()
    if backend is not None:
        base = base.replace(backend=backend)
    resolved = base.resolved_backend()
    base = base.replace(backend=resolved)
    spec = _chain_spec(list(ops) if not isinstance(ops, str) else [ops])
    array = np.asarray(array)
    key = kernel_key(ops, array, base, resolved)
    rec = _TrialRecorder("kernel", metrics, flight)
    plan_cache = PlanCache()

    def run_once(cfg: DSConfig, fuse: bool):
        p = Pipeline(Stream(device, seed=cfg.seed), config=cfg,
                     fuse=fuse, plan_cache=plan_cache)
        prev: object = array
        for desc, args, kwargs in spec:
            prev = p.enqueue(desc, prev, *args, config=cfg, **kwargs)
        p.run()
        return prev

    tried = set()
    trials: List[Trial] = []
    best: Optional[Trial] = None

    def trial(knobs: dict) -> Optional[Trial]:
        nonlocal best
        marker = tuple(sorted(knobs.items()))
        if marker in tried or len(trials) >= budget:
            return None
        tried.add(marker)
        config_knobs = {k: v for k, v in knobs.items()
                        if k in KERNEL_CONFIG_KNOBS}
        fuse = knobs.get("fuse", True)
        cfg = base.replace(**config_knobs) if config_knobs else base
        start_us = rec.now_us()
        score = measure_kernel_trial(lambda: run_once(cfg, fuse),
                                     samples=samples)
        t = Trial(dict(knobs), score)
        trials.append(t)
        improved = best is not None and better(score, best.score)
        if best is None or improved:
            best = t
        rec.trial_done(knobs, score, start_us, improved)
        return t

    baseline = trial({})
    # Stage 1: coarsening at the base wg_size.
    for c in space.coarsenings:
        if c != base.coarsening:
            trial({"coarsening": c})
    best_knobs = dict(best.knobs)
    # Stage 2: wg_size at the best coarsening so far.
    for w in space.wg_sizes:
        if w != base.wg_size:
            trial({**best_knobs, "wg_size": w})
    best_knobs = dict(best.knobs)
    # Stage 3: scan variant at the best geometry.
    for v in space.scan_variants:
        if v != base.scan_variant:
            trial({**best_knobs, "scan_variant": v})
    # Stage 4: fusion-off probe (chains only — a single op has nothing
    # to fuse, the flag would only pollute the knob dict).
    if len(spec) > 1 and False in space.fusion:
        trial({**dict(best.knobs), "fuse": False})

    result = TuneResult(
        key=key, kind="kernel", backend=resolved,
        best_knobs=dict(best.knobs), best_score=best.score,
        baseline_score=baseline.score, trials=trials, budget=budget,
        meta={"ops": "+".join(d.short for d, _, _ in spec),
              "n": int(array.size), "dtype": str(array.dtype),
              "samples": samples})
    rec.finish(result)
    _persist(db, result, samples=samples, timestamp=timestamp,
             set_default=set_default)
    return result


def tune_serve(
    shape: str = "compact",
    *,
    n: int = 512,
    clients: int = 4,
    requests_per_client: int = 10,
    ds_config: Optional[DSConfig] = None,
    space: Optional[KnobSpace] = None,
    budget: int = 20,
    db: Optional[TuningDB] = None,
    metrics: Optional[MetricsRegistry] = None,
    flight: Optional[FlightRecorder] = None,
    timestamp: Optional[float] = None,
    seed: int = 1234,
) -> TuneResult:
    """Grid-sweep the serve batching knobs for one loadgen shape.

    Each trial is one full :func:`repro.serve.loadgen.run_load` run
    under a candidate (max_batch_size, max_wait_ms); when the space's
    ``worker_counts`` reaches past 1, those grid points instead drive
    a whole multi-process :class:`repro.fleet.Fleet` of that size via
    :func:`repro.fleet.loadgen.run_fleet_load`, and the winning knob
    dict carries ``n_workers``.  The first grid point evaluated with
    the *current* ServeConfig defaults is the baseline.  ``budget``
    bounds the number of grid points tried.
    """
    from repro.serve.config import ServeConfig
    from repro.serve.loadgen import make_shape, run_load
    from repro.stream.pool import fork_unavailable_reason

    if budget < 1:
        raise ReproError(f"tune budget must be >= 1, got {budget}")
    space = space if space is not None else KnobSpace()
    cfg = ds_config if ds_config is not None else DSConfig()
    resolved = cfg.resolved_backend()
    spec = make_shape(shape, n, seed)
    key = serve_key(spec.ops, spec.array, cfg, resolved)
    rec = _TrialRecorder("serve", metrics, flight)
    defaults = ServeConfig()

    trials: List[Trial] = []
    best: Optional[Trial] = None
    baseline: Optional[Trial] = None

    # Baseline first: the static ServeConfig defaults (single process),
    # whether or not they lie on the grid.  Fleet-sized points drop out
    # when the platform cannot fork workers.
    fork_blocked = fork_unavailable_reason() is not None
    grid = [(defaults.max_batch_size, defaults.max_wait_ms, 1)]
    grid += [p for p in space.serve_grid()
             if p != grid[0] and not (fork_blocked and p[2] > 1)]
    for batch_size, wait_ms, n_workers in grid[:max(1, budget)]:
        knobs = {"max_batch_size": batch_size, "max_wait_ms": wait_ms}
        if n_workers > 1:
            knobs["n_workers"] = n_workers
        start_us = rec.now_us()
        if n_workers > 1:
            from repro.fleet.config import FleetConfig
            from repro.fleet.loadgen import run_fleet_load

            fleet_report = run_fleet_load(
                shapes=[shape], sizes=[n], clients=clients,
                requests_per_client=requests_per_client,
                fleet_config=FleetConfig(
                    n_workers=n_workers, min_workers=n_workers,
                    max_workers=n_workers,
                    serve=defaults.replace(
                        max_batch_size=batch_size, max_wait_ms=wait_ms,
                        seed=seed)),
                ds_config=ds_config, seed=seed)
            report = fleet_report
        else:
            report = run_load(
                shape=shape, clients=clients,
                requests_per_client=requests_per_client, n=n,
                serve_config=defaults.replace(
                    max_batch_size=batch_size, max_wait_ms=wait_ms),
                ds_config=ds_config, seed=seed)
        score = ServeScore(p95_ms=report.latency_p95_ms,
                           throughput_rps=report.throughput_rps,
                           completed=report.completed,
                           requests=report.requests)
        shown = {} if baseline is None else knobs
        t = Trial(shown, score)
        trials.append(t)
        if baseline is None:
            baseline = t
        improved = best is not None and better(score, best.score)
        if best is None or improved:
            best = t
        rec.trial_done(shown, score, start_us, improved)

    result = TuneResult(
        key=key, kind="serve", backend=resolved,
        best_knobs=dict(best.knobs), best_score=best.score,
        baseline_score=baseline.score, trials=trials, budget=budget,
        meta={"shape": shape, "ops": "+".join(
                  s if isinstance(s, str) else s[0] for s in spec.ops),
              "n": n, "clients": clients,
              "requests_per_client": requests_per_client})
    rec.finish(result)
    _persist(db, result, samples=1, timestamp=timestamp, set_default=False)
    return result


# -- canonical figure workloads for the CLI ---------------------------------


def make_fig_workload(fig: str, *, n: Optional[int] = None):
    """The op chain + input + base config for a tunable figure id.

    Mirrors the geometry/seed of the corresponding benchmark case
    (:data:`repro.obs.benchrun.CASES`) at a tuner-tractable default
    size, so a ``tune --fig`` winner describes the same workload the
    bench trajectory times.
    """
    if fig == "fig13":
        from repro.workloads import compaction_array

        n = n if n is not None else 64 * 1024
        return ((("compact", 0.0),), compaction_array(n, 0.5, seed=8),
                DSConfig(seed=8))
    if fig == "fig08":
        from repro.workloads import padding_matrix

        cols = 1023
        rows = max(2, (n if n is not None else 64 * 1024) // cols)
        return ((("pad", 1),), padding_matrix(rows, cols), DSConfig(seed=3))
    raise ReproError(
        f"unknown tunable figure {fig!r}; known: {sorted(TUNABLE_FIGS)}")


TUNABLE_FIGS = ("fig08", "fig13")
