"""The composite objective the autotuner minimizes.

**Kernel tier** — a trial's primary score is its median wall clock over
``samples`` untraced runs (median, not best: the same estimator the
``make bench-check`` gate uses, so a tuner win is a win by the gate's
own ruler).  Ties within ``tie_margin`` relative wall are broken by the
**spin+idle share** of the analyzer's critical-path decomposition
(:func:`repro.obs.analyze.analyze_tracer` over one additional traced
run): between two equally fast configs, prefer the one whose
work-groups spend less time spinning on the adjacent-sync flags or
sitting idle — that's the config with headroom.

**Serve tier** — primary is the p95 of the loadgen latency
distribution (what an SLO is written against), tie-broken by
throughput.

Scores are plain dataclasses with a :func:`better` ordering so the
tuner, tests and the report renderer all agree on what "won" means.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs as _obs
from repro.obs.analyze import analyze_tracer

__all__ = ["TrialScore", "ServeScore", "TIE_MARGIN", "better",
           "spin_idle_share", "measure_kernel_trial"]

#: Relative wall-clock band within which two trials count as tied and
#: the secondary objective decides.
TIE_MARGIN = 0.02


@dataclass(frozen=True)
class TrialScore:
    """One kernel trial's composite score."""

    wall_ms: float
    spin_idle_share: float
    samples: int = 1
    wall_samples_ms: tuple = ()

    def to_dict(self) -> dict:
        return {"wall_ms": round(self.wall_ms, 6),
                "spin_idle_share": round(self.spin_idle_share, 6),
                "samples": self.samples,
                "wall_samples_ms": [round(s, 6)
                                    for s in self.wall_samples_ms]}


@dataclass(frozen=True)
class ServeScore:
    """One serve-grid trial's composite score."""

    p95_ms: float
    throughput_rps: float
    completed: int = 0
    requests: int = 0

    def to_dict(self) -> dict:
        return {"p95_ms": round(self.p95_ms, 6),
                "throughput_rps": round(self.throughput_rps, 3),
                "completed": self.completed, "requests": self.requests}


def better(candidate, incumbent, *, tie_margin: float = TIE_MARGIN) -> bool:
    """Whether ``candidate`` beats ``incumbent`` under the composite
    objective.  Works for both score kinds; ``incumbent=None`` always
    loses."""
    if incumbent is None:
        return True
    if isinstance(candidate, ServeScore):
        primary_c, primary_i = candidate.p95_ms, incumbent.p95_ms
        # Higher throughput is better → negate for the "lower wins" rule.
        secondary_c = -candidate.throughput_rps
        secondary_i = -incumbent.throughput_rps
    else:
        primary_c, primary_i = candidate.wall_ms, incumbent.wall_ms
        secondary_c = candidate.spin_idle_share
        secondary_i = incumbent.spin_idle_share
    if primary_i <= 0:
        return primary_c < primary_i
    gap = (primary_c - primary_i) / primary_i
    if gap < -tie_margin:
        return True
    if gap > tie_margin:
        return False
    if secondary_c != secondary_i:
        return secondary_c < secondary_i
    return primary_c < primary_i


def spin_idle_share(report: dict) -> float:
    """The spin+idle fraction of the total decomposed time across every
    launch of an analyzer report — the tuner's secondary objective."""
    waste = 0.0
    total = 0.0
    for proc in report.get("processes", ()):
        for launch in proc.get("launches", ()):
            totals = launch.get("totals", {})
            waste += totals.get("spin", 0.0) + totals.get("idle", 0.0)
            total += sum(totals.values())
    return waste / total if total > 0 else 0.0


def measure_kernel_trial(run: Callable[[], object], *, samples: int = 3,
                         trace: bool = True,
                         trace_mode: str = "spans") -> TrialScore:
    """Score one kernel configuration.

    ``run`` executes the workload once under the candidate config.
    Wall clock is the median of ``samples`` untraced runs (tracing off
    so instrumentation cost never skews the primary objective); the
    spin+idle share comes from one extra run under a scoped tracer,
    decomposed by the analyzer.  ``trace=False`` skips the traced run
    (share reported as 0.0) for callers that only need timing.
    """
    walls = []
    for _ in range(max(1, samples)):
        t0 = time.perf_counter()
        run()
        walls.append((time.perf_counter() - t0) * 1e3)
    share = 0.0
    if trace:
        with _obs.tracing(trace_mode) as tracer:
            run()
            share = spin_idle_share(analyze_tracer(tracer))
    return TrialScore(wall_ms=statistics.median(walls),
                      spin_idle_share=share,
                      samples=len(walls),
                      wall_samples_ms=tuple(walls))
