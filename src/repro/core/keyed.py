"""Keyed irregular Data Sliding: one key stream decides, payloads follow.

A natural generalization of Algorithm 2 the paper's framework supports
directly: the predicate (or the unique stencil) is evaluated on a *key*
array, and any number of same-length *payload* arrays slide by the same
offsets — the structure-of-arrays layout of real relational tables and
particle systems.  One launch compacts the whole record set, in place,
stably, with a single flag chain (offsets depend only on the keys, so
the payload buffers need no extra synchronization: every buffer shrinks
with identical source/destination indices, and the head-first chain
argument of :mod:`repro.core.regular` applies to each buffer
independently).

Used by :func:`repro.primitives.unique_by_key.ds_unique_by_key` and
:func:`repro.primitives.records.ds_compact_records`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.collectives.reduction import reduce_workgroup
from repro.collectives.scan import binary_exclusive_scan
from repro.core.adjacent_sync import adjacent_sync_irregular
from repro.core.coarsening import LaunchGeometry, launch_geometry
from repro.core.dynamic_id import dynamic_wg_id
from repro.core.fastpath import vectorized_keyed_launch
from repro.core.flags import make_flags, make_wg_counter
from repro.core.predicates import Predicate
from repro.errors import LaunchError
from repro.simgpu.vectorized import resolve_backend
from repro.perfmodel.collective_cost import collective_rounds_per_wg
from repro.simgpu.buffers import Buffer
from repro.simgpu.counters import LaunchCounters
from repro.simgpu.events import Event
from repro.simgpu.stream import Stream
from repro.simgpu.workgroup import WorkGroup

__all__ = ["keyed_irregular_ds_kernel", "run_keyed_irregular_ds",
           "KeyedDSResult"]


def keyed_irregular_ds_kernel(
    wg: WorkGroup,
    keys: Buffer,
    payloads: Sequence[Buffer],
    flags: Buffer,
    wg_counter: Buffer,
    predicate: Optional[Predicate],
    geometry: LaunchGeometry,
    total: int,
    *,
    stencil_unique: bool = False,
    reduction_variant: str = "tree",
    scan_variant: str = "tree",
) -> Generator[Event, None, None]:
    """Algorithm 2 over (key, payload...) records.

    Identical control structure to
    :func:`repro.core.irregular.irregular_ds_kernel`; the only
    difference is that the loading and storing stages touch one key
    tile plus one tile per payload buffer.
    """
    wg_id = yield from dynamic_wg_id(wg, wg_counter)
    base = wg_id * geometry.tile_size

    tile_positions = base + np.arange(geometry.tile_size, dtype=np.int64)
    tile_positions = tile_positions[tile_positions < total]
    wg.declare_reads(keys, tile_positions)
    for p in payloads:
        wg.declare_reads(p, tile_positions)

    left_neighbor = None
    if stencil_unique and base > 0:
        vals = yield from wg.load(keys, np.asarray([base - 1], dtype=np.int64))
        left_neighbor = vals[0]

    with wg.phase("load", rounds=geometry.coarsening):
        staged: List[tuple] = []
        lane_counts = np.zeros(wg.size, dtype=np.int64)
        pos = base + wg.wi_id
        prev_last = left_neighbor
        for _ in range(geometry.coarsening):
            lane_active = pos < total
            active = pos[lane_active]
            key_vals = yield from wg.load(keys, active)
            payload_vals = []
            for p in payloads:
                vals = yield from wg.load(p, active)
                payload_vals.append(vals)
            if stencil_unique:
                keep = np.empty(key_vals.shape, dtype=bool)
                if key_vals.size:
                    keep[1:] = key_vals[1:] != key_vals[:-1]
                    keep[0] = True if prev_last is None else key_vals[0] != prev_last
                    prev_last = key_vals[-1]
            else:
                keep = predicate(key_vals)
            lane_counts[lane_active] += keep
            staged.append((active, key_vals, payload_vals, keep))
            pos = pos + wg.size

    with wg.phase("reduce", variant=reduction_variant):
        local_count, _ = reduce_workgroup(lane_counts, reduction_variant,
                                          wg.warp_size)
    with wg.phase("sync", wg_id=wg_id):
        previous_total = yield from adjacent_sync_irregular(
            wg, flags, wg_id, local_count)

    with wg.phase("store"):
        running = previous_total
        for active, key_vals, payload_vals, keep in staged:
            if active.size == 0:
                continue
            full_pred = np.zeros(wg.size, dtype=bool)
            full_pred[: active.size] = keep
            with wg.phase("scan", variant=scan_variant):
                ranks, _ = binary_exclusive_scan(
                    full_pred, scan_variant, wg.warp_size)
            out_pos = running + ranks[: active.size][keep]
            yield from wg.store(keys, out_pos, key_vals[keep])
            for p, vals in zip(payloads, payload_vals):
                yield from wg.store(p, out_pos, vals[keep])
            running += int(keep.sum())


@dataclass
class KeyedDSResult:
    """Host-visible outcome of one keyed irregular DS launch."""

    counters: LaunchCounters
    geometry: LaunchGeometry
    n_true: int


def run_keyed_irregular_ds(
    keys: Buffer,
    payloads: Sequence[Buffer],
    predicate: Optional[Predicate],
    stream: Stream,
    *,
    total: Optional[int] = None,
    wg_size: int = 256,
    coarsening: Optional[int] = None,
    stencil_unique: bool = False,
    reduction_variant: str = "tree",
    scan_variant: str = "tree",
    race_tracking: bool = False,
    backend: Optional[str] = None,
) -> KeyedDSResult:
    """Compact (key, payload...) records in place by key predicate or
    key-uniqueness stencil.  All buffers must have at least ``total``
    elements; after the call the first ``n_true`` entries of every
    buffer hold the surviving records, in their original order.

    ``backend`` selects the event-level scheduler (``"simulated"``) or
    the tile-granularity fast path (``"vectorized"``); ``None`` defers
    to ``REPRO_BACKEND``.  ``race_tracking`` forces the simulated path.
    """
    if predicate is None and not stencil_unique:
        raise LaunchError("a predicate is required unless stencil_unique is set")
    n = total if total is not None else keys.size
    if n <= 0:
        raise LaunchError(f"input size must be positive, got {n}")
    for buf in (keys, *payloads):
        if buf.size < n:
            raise LaunchError(
                f"buffer {buf.name!r} has {buf.size} elements, needs {n}")
    geometry = launch_geometry(n, stream.device, keys.itemsize,
                               wg_size=wg_size, coarsening=coarsening)
    flags = make_flags(geometry.n_workgroups)
    counter = make_wg_counter()
    kernel_name = (
        f"keyed_ds[{'unique' if stencil_unique else predicate.name}"
        f" x{len(payloads)} payloads]")
    resolved = resolve_backend(backend)
    if race_tracking:
        resolved = "simulated"
    if resolved in ("vectorized", "compiled"):
        # Keyed slides move multiple buffers per element; the compiled
        # tier shares the whole-array fast path (see regular.py).
        counters = vectorized_keyed_launch(
            keys, list(payloads), flags, counter, predicate, geometry, n,
            stream, stencil_unique=stencil_unique, kernel_name=kernel_name,
        )
    else:
        if race_tracking:
            keys.arm_race_tracking()
            for p in payloads:
                p.arm_race_tracking()
        try:
            counters = stream.launch(
                keyed_irregular_ds_kernel,
                grid_size=geometry.n_workgroups,
                wg_size=geometry.wg_size,
                args=(keys, list(payloads), flags, counter, predicate,
                      geometry, n),
                kwargs={
                    "stencil_unique": stencil_unique,
                    "reduction_variant": reduction_variant,
                    "scan_variant": scan_variant,
                },
                kernel_name=kernel_name,
            )
        finally:
            if race_tracking:
                keys.disarm_race_tracking()
                for p in payloads:
                    p.disarm_race_tracking()
    n_true = int(flags.data[geometry.n_workgroups]) - 1
    counters.extras["irregular"] = 1.0
    counters.extras["adjacent_syncs"] = float(geometry.n_workgroups)
    counters.extras["collective_rounds"] = collective_rounds_per_wg(
        geometry.wg_size, stream.device.warp_size, geometry.coarsening,
        reduction_variant, scan_variant)
    counters.extras["opt_collectives"] = (
        1.0 if (scan_variant != "tree" or reduction_variant != "tree") else 0.0)
    return KeyedDSResult(counters=counters, geometry=geometry, n_true=n_true)
