"""Output-position remappings for regular Data Sliding algorithms.

A *regular* DS algorithm slides groups of consecutive elements by a
constant (per-group) offset that is known **without looking at the
data** — for padding, every element of row *i* advances by
``i × pad`` positions.  The generic kernel of Algorithm 1 is therefore
parameterized by a :class:`RegularRemap`: a vectorized map from input
position to (keep?, output position), plus the **sliding direction**,
which fixes the logical work-group ordering the adjacent-synchronization
chain must follow:

* an **expanding** slide (padding) moves data toward *higher* addresses,
  so tiles must be processed from the tail — a store can then only land
  at addresses at or above its own tile, where every input has already
  been loaded by a lower-ID (earlier-chained) work-group;
* a **shrinking** slide (unpadding, compaction) moves data toward
  *lower* addresses, so tiles are processed from the head by the
  symmetric argument.

The invariants are checked by property-based tests in
``tests/core/test_offsets.py`` (monotonicity, injectivity on kept
elements, direction consistency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.errors import LaunchError

__all__ = [
    "RegularRemap",
    "pad_remap",
    "unpad_remap",
    "shift_remap",
    "insert_gap_remap",
    "erase_range_remap",
    "ragged_pad_remap",
    "ragged_unpad_remap",
]

RemapFn = Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class RegularRemap:
    """A regular-DS output mapping.

    Attributes
    ----------
    fn:
        Vectorized ``positions -> (keep_mask, out_positions)``.  Output
        positions for dropped elements are unspecified.
    direction:
        ``"expand"`` (slide toward higher addresses; tiles processed
        from the tail) or ``"shrink"`` (toward lower addresses; tiles
        processed from the head).
    total_in:
        Number of input elements the mapping is defined on.
    total_out:
        Number of elements after the slide (kept elements).
    name:
        Diagnostic name.
    """

    fn: RemapFn
    direction: str
    total_in: int
    total_out: int
    name: str

    def __post_init__(self) -> None:
        if self.direction not in ("expand", "shrink"):
            raise LaunchError(f"direction must be 'expand' or 'shrink', got {self.direction!r}")
        if self.total_in < 0 or self.total_out < 0:
            raise LaunchError("element counts cannot be negative")

    def __call__(self, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.fn(np.asarray(positions, dtype=np.int64))


def pad_remap(rows: int, cols: int, pad: int) -> RegularRemap:
    """Pad ``pad`` extra columns onto a row-major ``rows x cols`` matrix.

    Element ``(i, j)`` at flat position ``p = i*cols + j`` moves to
    ``i*(cols+pad) + j = p + (p // cols) * pad`` — row *i* slides forward
    by ``i x pad`` positions (Section II-A).  All elements are kept; the
    buffer must already have room for ``rows * (cols + pad)`` elements.
    """
    if rows <= 0 or cols <= 0:
        raise LaunchError(f"matrix must be non-empty, got {rows}x{cols}")
    if pad < 0:
        raise LaunchError(f"pad must be non-negative, got {pad}")

    def fn(p: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        keep = np.ones(p.shape, dtype=bool)
        return keep, p + (p // cols) * pad

    return RegularRemap(
        fn=fn,
        direction="expand",
        total_in=rows * cols,
        total_out=rows * (cols + pad),
        name=f"pad({rows}x{cols}, +{pad})",
    )


def unpad_remap(rows: int, cols: int, pad: int) -> RegularRemap:
    """Remove the last ``pad`` columns of a row-major ``rows x cols``
    matrix.  Kept element ``(i, j)``, ``j < cols - pad``, moves to
    ``i*(cols-pad) + j`` — row *i* slides backward by ``i x pad``."""
    if rows <= 0 or cols <= 0:
        raise LaunchError(f"matrix must be non-empty, got {rows}x{cols}")
    if not 0 <= pad < cols:
        raise LaunchError(f"pad must be in [0, cols), got {pad} for {cols} columns")
    kept = cols - pad

    def fn(p: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        col = p % cols
        keep = col < kept
        return keep, (p // cols) * kept + col

    return RegularRemap(
        fn=fn,
        direction="shrink",
        total_in=rows * cols,
        total_out=rows * kept,
        name=f"unpad({rows}x{cols}, -{pad})",
    )


def shift_remap(n: int, offset: int) -> RegularRemap:
    """Slide a whole array by ``offset`` positions (positive: toward
    higher addresses).  The simplest member of the regular DS family;
    useful for inserting a gap at the front of a buffer in place."""
    if n <= 0:
        raise LaunchError(f"array must be non-empty, got {n}")

    def fn(p: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        keep = np.ones(p.shape, dtype=bool)
        return keep, p + offset

    return RegularRemap(
        fn=fn,
        direction="expand" if offset >= 0 else "shrink",
        total_in=n,
        total_out=n,
        name=f"shift({n}, {offset:+d})",
    )


def insert_gap_remap(n: int, position: int, gap: int) -> RegularRemap:
    """Open a ``gap``-element hole at ``position``: elements at or past
    the position slide forward by ``gap``, earlier elements stay.

    A two-piece constant shift — still a *regular* DS algorithm by the
    paper's definition (the shift is constant per group of consecutive
    elements and data-independent).  The buffer must have room for
    ``n + gap`` elements.
    """
    if n <= 0:
        raise LaunchError(f"array must be non-empty, got {n}")
    if not 0 <= position <= n:
        raise LaunchError(f"position must be in [0, {n}], got {position}")
    if gap < 0:
        raise LaunchError(f"gap must be non-negative, got {gap}")

    def fn(p: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        keep = np.ones(p.shape, dtype=bool)
        return keep, np.where(p >= position, p + gap, p)

    return RegularRemap(
        fn=fn,
        direction="expand",
        total_in=n,
        total_out=n + gap,
        name=f"insert_gap({n}, @{position}, +{gap})",
    )


def erase_range_remap(n: int, position: int, count: int) -> RegularRemap:
    """Erase ``count`` elements starting at ``position``: later elements
    slide backward by ``count``, the erased range is dropped."""
    if n <= 0:
        raise LaunchError(f"array must be non-empty, got {n}")
    if not 0 <= position <= n:
        raise LaunchError(f"position must be in [0, {n}], got {position}")
    if count < 0 or position + count > n:
        raise LaunchError(
            f"erase range [{position}, {position + count}) outside [0, {n})"
        )

    def fn(p: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        keep = (p < position) | (p >= position + count)
        return keep, np.where(p >= position + count, p - count, p)

    return RegularRemap(
        fn=fn,
        direction="shrink",
        total_in=n,
        total_out=n - count,
        name=f"erase({n}, @{position}, -{count})",
    )


def _check_widths(widths: np.ndarray) -> np.ndarray:
    widths = np.asarray(widths, dtype=np.int64)
    if widths.ndim != 1 or widths.size == 0:
        raise LaunchError("widths must be a non-empty 1-D sequence")
    if (widths < 0).any():
        raise LaunchError("row widths cannot be negative")
    return widths


def ragged_pad_remap(widths, stride: int) -> RegularRemap:
    """Slide concatenated ragged rows out to a uniform ``stride``.

    Row *i* (``widths[i]`` elements, starting at ``prefix[i]`` in the
    packed input) moves to offset ``i * stride``.  The shift per row is
    ``i*stride - prefix[i]`` — a *different constant per group of
    consecutive elements*, which is precisely the paper's definition of
    a regular DS algorithm (Section I).  Because ``stride >= widths[j]``
    for every row, destinations never precede sources, so the slide
    expands and the tail-first chain applies.
    """
    widths = _check_widths(widths)
    if stride < int(widths.max()):
        raise LaunchError(
            f"stride {stride} is narrower than the widest row ({int(widths.max())})"
        )
    prefix = np.concatenate(([0], np.cumsum(widths)))
    total_in = int(prefix[-1])
    if total_in == 0:
        raise LaunchError("ragged input has no elements")

    def fn(p: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        row = np.searchsorted(prefix, p, side="right") - 1
        keep = np.ones(p.shape, dtype=bool)
        return keep, row * stride + (p - prefix[row])

    return RegularRemap(
        fn=fn,
        direction="expand",
        total_in=total_in,
        total_out=int(widths.size) * stride,
        name=f"ragged_pad({widths.size} rows, stride {stride})",
    )


def ragged_unpad_remap(widths, stride: int) -> RegularRemap:
    """Inverse of :func:`ragged_pad_remap`: pack a uniform-stride matrix
    back into concatenated ragged rows, dropping each row's padding."""
    widths = _check_widths(widths)
    if stride < int(widths.max()):
        raise LaunchError(
            f"stride {stride} is narrower than the widest row ({int(widths.max())})"
        )
    prefix = np.concatenate(([0], np.cumsum(widths)))
    total_out = int(prefix[-1])
    if total_out == 0:
        raise LaunchError("ragged output would have no elements")

    def fn(p: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        row = p // stride
        col = p % stride
        keep = col < widths[row]
        return keep, prefix[row] + col

    return RegularRemap(
        fn=fn,
        direction="shrink",
        total_in=int(widths.size) * stride,
        total_out=total_out,
        name=f"ragged_unpad({widths.size} rows, stride {stride})",
    )
