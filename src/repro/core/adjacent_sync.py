"""Adjacent work-group synchronization (Figures 3 and 7 of the paper).

This is the paper's key mechanism: instead of terminating the kernel to
get a global barrier (the baselines' approach), each work-group spins on
a single flag owned by its immediate predecessor.  Because work-group
*i* sets its flag only after (a) observing flag *i − 1* and (b) finishing
its own loading stage, flag *i − 1* being set implies — by induction —
that **every** group ``0 .. i-1`` has finished loading.  A group's
storing stage therefore can never overwrite data another group still
needs, provided the sliding direction matches the ID order (see
:mod:`repro.core.regular`).

Two variants:

* :func:`adjacent_sync_regular` (Figure 3) — the flag is a pure "done"
  bit; no payload crosses the boundary, hence no memory fence would be
  needed on real hardware (the paper makes this point explicitly).
* :func:`adjacent_sync_irregular` (Figure 7) — the flag additionally
  carries the cumulative predicate-true count, so each group learns the
  global base offset for its stores in the same atomic it synchronizes
  on.  This is the StreamScan-style single-pass scan propagation.

Both functions follow the listings' structure: a local barrier so all
work-items of the group have finished loading, the work-item-0 spin/set
sequence, and a global barrier that releases the rest of the group.
"""

from __future__ import annotations

from typing import Generator

from repro.core.flags import FLAG_SET, decode_count, encode_count
from repro.simgpu.buffers import Buffer
from repro.simgpu.events import Event
from repro.simgpu.workgroup import WorkGroup

__all__ = ["adjacent_sync_regular", "adjacent_sync_irregular"]


def adjacent_sync_regular(
    wg: WorkGroup, flags: Buffer, wg_id: int
) -> Generator[Event, None, None]:
    """Figure 3: wait for the predecessor's flag, then set our own.

    ``flags`` uses the shifted layout of :mod:`repro.core.flags`:
    work-group *i*'s flag lives at index ``i + 1`` and index 0 is the
    pre-set virtual predecessor, so ``wg_id == 0`` needs no special case.
    """
    # barrier(local memory fence): all work-items finished loading.
    yield from wg.barrier("local")
    # if (wi_id == 0) { while (atom_or(&flags[wg_id_ - 1], 0) == 0){;} ... }
    yield from wg.spin_until(flags, wg_id, lambda v: v != 0,
                             waits_on=wg_id - 1 if wg_id > 0 else None)
    # atom_or(&flags[wg_id_], 1);
    yield from wg.atomic_or(flags, wg_id + 1, FLAG_SET)
    # barrier(global memory fence): release the group, order load/store.
    yield from wg.barrier("global")


def adjacent_sync_irregular(
    wg: WorkGroup, flags: Buffer, wg_id: int, local_count: int
) -> Generator[Event, None, int]:
    """Figure 7: synchronize *and* pass the running total downstream.

    ``local_count`` is this group's predicate-true count (the result of
    the work-group reduction).  Returns the number of predicate-true
    elements in **all preceding groups** — the group's global sliding
    base.  The successor's flag receives ``previous + local_count``.
    """
    # barrier(local memory fence)
    yield from wg.barrier("local")
    # while (atom_or(&flags[wg_id_ - 1], 0) == 0){;}  int flag = flags[...];
    flag_value = yield from wg.spin_until(flags, wg_id, lambda v: v != 0,
                                          waits_on=wg_id - 1 if wg_id > 0
                                          else None)
    previous_total = decode_count(flag_value)
    # atom_add(&flags[wg_id_], flag + count)  — sentinel-encoded here.
    yield from wg.atomic_or(flags, wg_id + 1, encode_count(previous_total + local_count))
    # barrier(global memory fence)
    yield from wg.barrier("global")
    return previous_total
