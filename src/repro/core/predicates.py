"""Vectorized predicates for the irregular Data Sliding algorithms.

Algorithm 2 is generic over the predicate that decides which elements
slide: *select* removes (or keeps) matching elements, *stream
compaction* removes elements equal to a value, *partition* splits on the
predicate, and the paper's Figure 11 example uses "element value is
even".  A :class:`Predicate` is a named, vectorized boolean function of
an element vector; it can be negated (``~p``), which is how one kernel
serves both the keep-matching and the remove-matching select flavours.

These predicates are deliberately cheap (the primitives are memory
bound — the paper's premise), but nothing prevents arbitrarily complex
NumPy expressions.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = [
    "Predicate",
    "is_even",
    "less_than",
    "greater_equal",
    "equal_to",
    "not_equal_to",
    "nonzero",
    "always_true",
    "always_false",
    "from_name",
]


class Predicate:
    """A named vectorized boolean function of an element vector."""

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], name: str) -> None:
        self._fn = fn
        self.name = name

    def __call__(self, values: np.ndarray) -> np.ndarray:
        out = np.asarray(self._fn(values))
        if out.dtype != np.bool_:
            out = out.astype(bool)
        if out.shape != np.shape(values):
            raise ValueError(
                f"predicate {self.name!r} returned shape {out.shape} "
                f"for input shape {np.shape(values)}"
            )
        return out

    def __invert__(self) -> "Predicate":
        """Logical negation (``~p``), preserving a readable name."""
        if self.name.startswith("not(") and self.name.endswith(")"):
            inner = self.name[4:-1]
            return Predicate(lambda v: ~self(v), inner)
        return Predicate(lambda v: ~self(v), f"not({self.name})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Predicate({self.name!r})"


def is_even() -> Predicate:
    """The paper's Figure 11 example: integer value is even.  Float
    inputs are truncated toward zero first, like a C cast would."""
    return Predicate(lambda v: (v.astype(np.int64) % 2) == 0, "is_even")


def less_than(threshold) -> Predicate:
    """``value < threshold`` — the workload generators pair this with a
    uniform distribution to hit an exact expected true fraction."""
    return Predicate(lambda v: v < threshold, f"less_than({threshold})")


def greater_equal(threshold) -> Predicate:
    return Predicate(lambda v: v >= threshold, f"greater_equal({threshold})")


def equal_to(value) -> Predicate:
    """``value == c`` — stream compaction removes elements equal to c."""
    return Predicate(lambda v: v == value, f"equal_to({value})")


def not_equal_to(value) -> Predicate:
    return Predicate(lambda v: v != value, f"not_equal_to({value})")


def nonzero() -> Predicate:
    """Keep non-zero entries — the sparse-data compaction predicate."""
    return Predicate(lambda v: v != 0, "nonzero")


def always_true() -> Predicate:
    """Degenerate predicate (100% fraction end of the paper's sweeps)."""
    return Predicate(lambda v: np.ones(np.shape(v), dtype=bool), "always_true")


def always_false() -> Predicate:
    """Degenerate predicate (0% fraction end of the paper's sweeps)."""
    return Predicate(lambda v: np.zeros(np.shape(v), dtype=bool), "always_false")


_NULLARY_FACTORIES = {
    "is_even": is_even,
    "nonzero": nonzero,
    "always_true": always_true,
    "always_false": always_false,
}

_UNARY_FACTORIES = {
    "less_than": less_than,
    "greater_equal": greater_equal,
    "equal_to": equal_to,
    "not_equal_to": not_equal_to,
}


def from_name(name: str) -> Optional[Predicate]:
    """Rebuild a predicate from its :attr:`Predicate.name` string.

    The factory predicates in this module carry parseable names by
    construction (``"less_than(0.5)"``, ``"not(is_even)"``, ...), which
    is what lets them cross process boundaries: a closure is not
    picklable, but its *name* is, and :mod:`repro.fleet` ships exactly
    that (the router probe-verifies the revived predicate against the
    original before anything leaves the process — a hand-built
    :class:`Predicate` whose name lies cannot corrupt results, it is
    rejected at submit).  Returns ``None`` for any name this vocabulary
    does not cover, mirroring :func:`repro.compiled.lowering._parse_name`.
    """
    inner = str(name).strip()
    negate = False
    while inner.startswith("not(") and inner.endswith(")"):
        negate = not negate
        inner = inner[4:-1]
    pred: Optional[Predicate] = None
    if inner in _NULLARY_FACTORIES:
        pred = _NULLARY_FACTORIES[inner]()
    else:
        for fname, factory in _UNARY_FACTORIES.items():
            prefix = fname + "("
            if inner.startswith(prefix) and inner.endswith(")"):
                try:
                    operand = float(inner[len(prefix):-1])
                except ValueError:
                    return None
                pred = factory(operand)
                break
    if pred is None:
        return None
    return ~pred if negate else pred
