"""Vectorized (tile-granularity) executors for the DS kernels.

Each function here is the fast-path twin of one generator kernel in
:mod:`repro.core.regular`, :mod:`repro.core.irregular`,
:mod:`repro.core.keyed` or :mod:`repro.simgpu.kernels`: it performs the
same in-place data movement as a few whole-array NumPy operations and
derives the :class:`~repro.simgpu.counters.LaunchCounters` the
event-level scheduler would have produced (see
:mod:`repro.simgpu.vectorized` for the arithmetic and its
justification).  The side structures of a launch — the flag chain and
the dynamic-ID cursor — are left in their post-kernel state, so host
code that reads the compacted size back from the flags works unchanged.

Correctness of the batched movement relies on two properties of the DS
algorithms themselves:

* adjacent synchronization guarantees every work-group's loads observe
  *pristine* input, so evaluating predicates/remaps on the untouched
  array is exactly what the simulated kernels compute;
* a NumPy fancy-index gather copies, so gather-then-scatter tolerates
  the overlapping source/destination ranges of in-place slides.

Schedule-dependent quantities (``n_spins``, ``steps``,
``peak_resident``) are reported for the idealized schedule: zero failed
polls and maximal admission.  Everything else — bytes, transactions,
event, atomic and barrier counts — is schedule-invariant and matches
the simulated backend exactly (asserted by
``tests/primitives/test_backend_parity.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import obs as _obs
from repro.core.coarsening import LaunchGeometry
from repro.core.flags import FLAG_SET
from repro.core.offsets import RegularRemap
from repro.core.predicates import Predicate
from repro.simgpu.buffers import Buffer
from repro.simgpu.counters import LaunchCounters
from repro.simgpu.stream import Stream
from repro.simgpu.vectorized import (
    contiguous_range_txns,
    contiguous_round_txns,
    remapped_store_txns,
    round_kept_counts,
)

__all__ = [
    "vectorized_regular_launch",
    "vectorized_irregular_launch",
    "vectorized_keyed_launch",
    "vectorized_copy_launch",
]


def _trace_begin(kernel_name: str, grid: int, wg_size: int, stream: Stream,
                 backend: str = "vectorized"):
    """Open the launch span for a fast-path launch (or ``(None, None)``
    when tracing is off — the entire per-launch tracing cost)."""
    tracer = _obs.active()
    if tracer is None:
        return None, None
    span_args = {"backend": backend, "grid_size": grid,
                 "wg_size": wg_size, "device": stream.device.name}
    # Correlation attributes (request_id, batch_id) from obs.annotate —
    # launch spans carry them, phase spans never do (span parity).
    annotations = _obs.current_annotations()
    if annotations:
        span_args.update(annotations)
    sp = tracer.span(kernel_name, cat="launch", args=span_args)
    return tracer, sp


def _emit_wg_phases(
    tracer,
    *,
    grid: int,
    tile: int,
    wg_size: int,
    coarsening: int,
    total: int,
    t0: float,
    t1: float,
    irregular: bool,
) -> None:
    """Emit the synthetic per-work-group phase spans of one launch.

    The vectorized backend executes whole-array operations, so the real
    timeline has only two measured intervals: the data movement
    ``[t0, t1]`` and the side-structure finalization ``[t1, now]``.
    Each work-group's track mirrors those intervals with the *same span
    names and nesting* the simulated kernels emit — load / (reduce) /
    sync / store, with one zero-width ``scan`` child per non-empty
    store round — so span-tree comparisons across backends are
    meaningful, exactly like counter parity.  Work-group ``g`` is
    assigned tile ``g``; the simulated schedule permutes that
    assignment across tracks, so comparisons treat tracks as a
    multiset.
    """
    t_end = tracer.now_us()
    tm = (t0 + t1) / 2.0
    for g in range(grid):
        track = _obs.wg_track(g)
        tracer.add_span("load", track=track, start_us=t0, end_us=tm,
                        cat="phase", args={"rounds": coarsening})
        if irregular:
            tracer.add_span("reduce", track=track, start_us=tm, end_us=tm,
                            cat="phase")
        tracer.add_span("sync", track=track, start_us=t1, end_us=t_end,
                        cat="phase")
        store = tracer.add_span("store", track=track, start_us=tm, end_us=t1,
                                cat="phase")
        if irregular:
            remaining = total - g * tile
            rounds = max(0, min(coarsening, -(-remaining // wg_size)))
            for _ in range(rounds):
                tracer.add_span("scan", track=track, start_us=tm, end_us=tm,
                                cat="phase", parent=store)


def _trace_finish(tracer, launch_span, c: LaunchCounters) -> None:
    if tracer is not None:
        launch_span.set(
            steps=c.steps, n_spins=c.n_spins, peak_resident=c.peak_resident,
        ).finish()


def _base_counters(
    kernel_name: str, grid: int, wg_size: int, stream: Stream
) -> LaunchCounters:
    c = LaunchCounters(kernel_name=kernel_name, grid_size=grid, wg_size=wg_size)
    limit = (
        stream.resident_limit
        if stream.resident_limit is not None
        else stream.device.max_resident_wgs
    )
    c.peak_resident = min(limit, grid)
    c.completed_wgs = grid
    return c


def _finish(c: LaunchCounters) -> LaunchCounters:
    # One scheduler step per event plus the StopIteration step that
    # retires each work-group; the vectorized schedule has no spins.
    c.steps = c.n_loads + c.n_stores + c.n_atomics + c.n_barriers + c.grid_size
    c.extras["vectorized"] = 1.0
    return c


def _finalize_sync_structures(
    flags: Buffer, wg_counter: Buffer, grid: int, flag_values: np.ndarray
) -> None:
    """Leave the flag chain and ID cursor as the kernel would."""
    flags.data[1 : grid + 1] = flag_values
    # Minimum atomic traffic of the sync protocol: one successful poll
    # and one flag set per group.  (The simulated count additionally
    # includes schedule-dependent failed polls.)
    flags.stats.atomic_ops += 2 * grid
    wg_counter.data[0] = grid
    wg_counter.stats.atomic_ops += grid


def vectorized_regular_launch(
    array: Buffer,
    flags: Buffer,
    wg_counter: Buffer,
    remap: RegularRemap,
    geometry: LaunchGeometry,
    stream: Stream,
) -> LaunchCounters:
    """Fast-path twin of :func:`repro.core.regular.regular_ds_kernel`."""
    grid, W, cf = geometry.n_workgroups, geometry.wg_size, geometry.coarsening
    total = remap.total_in
    tracer, launch_span = _trace_begin(
        f"regular_ds[{remap.name}]", grid, W, stream)
    t0 = tracer.now_us() if tracer is not None else 0.0
    positions = np.arange(total, dtype=np.int64)
    keep, out_pos = remap(positions)
    kept_pos = positions[keep]
    dest = out_pos[keep]
    array.data[dest] = array.data[kept_pos]  # gather copies: overlap-safe
    t1 = tracer.now_us() if tracer is not None else 0.0

    c = _base_counters(f"regular_ds[{remap.name}]", grid, W, stream)
    itemsize, txb = array.itemsize, array.transaction_bytes
    c.n_loads = grid * cf
    c.bytes_loaded = total * itemsize
    c.n_stores = (total + W - 1) // W  # one store per non-empty round
    c.bytes_stored = int(kept_pos.size) * itemsize
    if array.count_transactions:
        c.load_transactions = contiguous_round_txns(total, W, itemsize, txb)
        c.store_transactions = remapped_store_txns(kept_pos, dest, W, itemsize, txb)
    c.n_atomics = 3 * grid  # ID claim + successful poll + flag set
    c.n_barriers = 3 * grid  # ID broadcast + sync local + sync global

    array.stats.loads_elems += total
    array.stats.load_transactions += c.load_transactions
    array.stats.stores_elems += int(kept_pos.size)
    array.stats.store_transactions += c.store_transactions
    _finalize_sync_structures(
        flags, wg_counter, grid, np.full(grid, FLAG_SET, dtype=flags.data.dtype)
    )
    rec = stream.record(_finish(c))
    if tracer is not None:
        _emit_wg_phases(tracer, grid=grid, tile=geometry.tile_size, wg_size=W,
                        coarsening=cf, total=total, t0=t0, t1=t1,
                        irregular=False)
        _trace_finish(tracer, launch_span, c)
    return rec


def _evaluate_keep(
    vals: np.ndarray, predicate: Optional[Predicate], stencil_unique: bool
) -> np.ndarray:
    if stencil_unique:
        keep = np.empty(vals.shape, dtype=bool)
        if vals.size:
            keep[0] = True
            keep[1:] = vals[1:] != vals[:-1]
        return keep
    return np.asarray(predicate(vals), dtype=bool)


def _contiguous_store_accounting(
    c: LaunchCounters, buf: Buffer, kt: np.ndarray, bases: np.ndarray, n_elems: int
) -> None:
    """Charge per-round stores of contiguous ranges ``[bases, bases+kt)``
    to ``c`` and to ``buf``'s access statistics."""
    c.bytes_stored += n_elems * buf.itemsize
    txns = 0
    if buf.count_transactions:
        txns = contiguous_range_txns(
            bases, bases + kt, buf.itemsize, buf.transaction_bytes
        )
    c.store_transactions += txns
    buf.stats.stores_elems += n_elems
    buf.stats.store_transactions += txns


def _tile_load_accounting(
    c: LaunchCounters, buf: Buffer, total: int, W: int, stencil_loads: int = 0
) -> None:
    """Charge the coarsened tile loads over ``total`` elements (plus any
    single-element stencil neighbour loads) to ``c`` and ``buf``."""
    bytes_ = (total + stencil_loads) * buf.itemsize
    c.bytes_loaded += bytes_
    txns = 0
    if buf.count_transactions:
        txns = contiguous_round_txns(total, W, buf.itemsize, buf.transaction_bytes)
        txns += stencil_loads  # one-element loads: one transaction each
    c.load_transactions += txns
    buf.stats.loads_elems += total + stencil_loads
    buf.stats.load_transactions += txns


def _kept_per_workgroup(keep: np.ndarray, grid: int, tile: int) -> np.ndarray:
    padded = np.zeros(grid * tile, dtype=np.int64)
    padded[: keep.size] = keep
    return padded.reshape(grid, tile).sum(axis=1)


def vectorized_irregular_launch(
    array: Buffer,
    out: Buffer,
    flags: Buffer,
    wg_counter: Buffer,
    predicate: Optional[Predicate],
    geometry: LaunchGeometry,
    total: int,
    stream: Stream,
    *,
    false_out: Optional[Buffer] = None,
    stencil_unique: bool = False,
    kernel_name: str = "irregular_ds",
) -> LaunchCounters:
    """Fast-path twin of :func:`repro.core.irregular.irregular_ds_kernel`."""
    grid, W, cf = geometry.n_workgroups, geometry.wg_size, geometry.coarsening
    n = int(total)
    tracer, launch_span = _trace_begin(kernel_name, grid, W, stream)
    t0 = tracer.now_us() if tracer is not None else 0.0
    vals = array.data[:n].copy()  # snapshot: predicates see pristine input
    keep = _evaluate_keep(vals, predicate, stencil_unique)
    n_true = int(keep.sum())
    out.data[:n_true] = vals[keep]
    if false_out is not None:
        false_out.data[: n - n_true] = vals[~keep]
    t1 = tracer.now_us() if tracer is not None else 0.0

    kt = round_kept_counts(keep, W)  # kept per global round
    kept_before = np.cumsum(kt) - kt
    n_act = kt.size  # ceil(n / W): rounds with any active lane

    c = _base_counters(kernel_name, grid, W, stream)
    stencil_loads = grid - 1 if stencil_unique else 0
    c.n_loads = grid * cf + stencil_loads
    _tile_load_accounting(c, array, n, W, stencil_loads)

    c.n_stores = n_act  # the kept-store event fires even for empty rounds
    _contiguous_store_accounting(c, out, kt, kept_before, n_true)
    if false_out is not None:
        sizes = np.full(n_act, W, dtype=np.int64)
        sizes[-1] = n - (n_act - 1) * W
        ft = sizes - kt
        false_before = np.cumsum(ft) - ft
        c.n_stores += int((ft > 0).sum())  # false stores only when needed
        _contiguous_store_accounting(c, false_out, ft, false_before, n - n_true)

    c.n_atomics = 3 * grid
    c.n_barriers = 3 * grid

    kept_per_wg = _kept_per_workgroup(keep, grid, geometry.tile_size)
    _finalize_sync_structures(
        flags,
        wg_counter,
        grid,
        np.cumsum(kept_per_wg) + 1,  # encode_count applied vector-wide
    )
    rec = stream.record(_finish(c))
    if tracer is not None:
        _emit_wg_phases(tracer, grid=grid, tile=geometry.tile_size, wg_size=W,
                        coarsening=cf, total=n, t0=t0, t1=t1, irregular=True)
        _trace_finish(tracer, launch_span, c)
    return rec


def vectorized_keyed_launch(
    keys: Buffer,
    payloads: Sequence[Buffer],
    flags: Buffer,
    wg_counter: Buffer,
    predicate: Optional[Predicate],
    geometry: LaunchGeometry,
    total: int,
    stream: Stream,
    *,
    stencil_unique: bool = False,
    kernel_name: str = "keyed_ds",
) -> LaunchCounters:
    """Fast-path twin of :func:`repro.core.keyed.keyed_irregular_ds_kernel`."""
    grid, W, cf = geometry.n_workgroups, geometry.wg_size, geometry.coarsening
    n = int(total)
    tracer, launch_span = _trace_begin(kernel_name, grid, W, stream)
    t0 = tracer.now_us() if tracer is not None else 0.0
    key_vals = keys.data[:n].copy()
    payload_vals = [p.data[:n].copy() for p in payloads]
    keep = _evaluate_keep(key_vals, predicate, stencil_unique)
    n_true = int(keep.sum())
    keys.data[:n_true] = key_vals[keep]
    for buf, vals in zip(payloads, payload_vals):
        buf.data[:n_true] = vals[keep]
    t1 = tracer.now_us() if tracer is not None else 0.0

    kt = round_kept_counts(keep, W)
    kept_before = np.cumsum(kt) - kt
    n_act = kt.size

    c = _base_counters(kernel_name, grid, W, stream)
    stencil_loads = grid - 1 if stencil_unique else 0
    c.n_loads = grid * cf * (1 + len(payloads)) + stencil_loads
    _tile_load_accounting(c, keys, n, W, stencil_loads)
    for buf in payloads:
        _tile_load_accounting(c, buf, n, W)

    c.n_stores = n_act * (1 + len(payloads))
    _contiguous_store_accounting(c, keys, kt, kept_before, n_true)
    for buf in payloads:
        _contiguous_store_accounting(c, buf, kt, kept_before, n_true)

    c.n_atomics = 3 * grid
    c.n_barriers = 3 * grid

    kept_per_wg = _kept_per_workgroup(keep, grid, geometry.tile_size)
    _finalize_sync_structures(
        flags,
        wg_counter,
        grid,
        np.cumsum(kept_per_wg) + 1,  # encode_count applied vector-wide
    )
    rec = stream.record(_finish(c))
    if tracer is not None:
        _emit_wg_phases(tracer, grid=grid, tile=geometry.tile_size, wg_size=W,
                        coarsening=cf, total=n, t0=t0, t1=t1, irregular=True)
        _trace_finish(tracer, launch_span, c)
    return rec


def vectorized_copy_launch(
    src: Buffer,
    dst: Buffer,
    n: int,
    src_base: int,
    dst_base: int,
    wg_size: int,
    coarsening: int,
    stream: Stream,
    *,
    kernel_name: str = "copy",
) -> LaunchCounters:
    """Fast-path twin of :func:`repro.simgpu.kernels.copy_kernel` (used
    by the in-place partition's false-tail copy-back)."""
    tile = wg_size * coarsening
    grid = (n + tile - 1) // tile
    tracer, launch_span = _trace_begin(kernel_name, grid, wg_size, stream)
    dst.data[dst_base : dst_base + n] = src.data[src_base : src_base + n]

    c = _base_counters(kernel_name, grid, wg_size, stream)
    n_act = (n + wg_size - 1) // wg_size
    c.n_loads = c.n_stores = n_act  # copy rounds skip empty tiles entirely
    c.bytes_loaded = n * src.itemsize
    c.bytes_stored = n * dst.itemsize
    if src.count_transactions:
        c.load_transactions = contiguous_round_txns(
            n, wg_size, src.itemsize, src.transaction_bytes, base=src_base
        )
    if dst.count_transactions:
        c.store_transactions = contiguous_round_txns(
            n, wg_size, dst.itemsize, dst.transaction_bytes, base=dst_base
        )
    src.stats.loads_elems += n
    src.stats.load_transactions += c.load_transactions
    dst.stats.stores_elems += n
    dst.stats.store_transactions += c.store_transactions
    rec = stream.record(_finish(c))
    _trace_finish(tracer, launch_span, c)
    return rec
