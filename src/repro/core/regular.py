"""Algorithm 1 — the generic regular Data Sliding kernel.

Structure (quoting the paper's pseudocode):

1. ``Dynamic_work_group_id_allocation()`` (Figure 4);
2. loading stage — each work-item loads ``coarsening`` elements of the
   work-group's tile into on-chip memory;
3. ``Adjacent_wg_synchronization`` (Figure 3);
4. storing stage — the staged elements are written to their remapped
   output positions.

The kernel is *oblivious to row boundaries*: work-groups tile the flat
element range and the :class:`~repro.core.offsets.RegularRemap` computes
each element's destination (and whether it survives, for unpadding).

**Direction and safety.**  The chain invariant of adjacent
synchronization is: when work-group *i* stores, every group with logical
ID < *i* has finished loading.  Tiles are therefore walked from the tail
for expanding slides and from the head for shrinking slides (see
:mod:`repro.core.offsets`), which makes every store land either inside
the group's own (already loaded) tile or on the already-loaded side of
it — never on data a later-chained group still needs.  Fault-injection
tests disable the synchronization and watch
:class:`repro.errors.DataRaceError` fire under the same schedules.

The host-side entry point :func:`run_regular_ds` validates the
configuration, builds flags/counters, launches the kernel through a
:class:`~repro.simgpu.stream.Stream` and returns the launch geometry and
counters for the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.core.adjacent_sync import adjacent_sync_regular
from repro.core.coarsening import LaunchGeometry, launch_geometry
from repro.core.dynamic_id import dynamic_wg_id, static_wg_id
from repro.core.fastpath import vectorized_regular_launch
from repro.core.flags import make_flags, make_wg_counter
from repro.core.offsets import RegularRemap
from repro.errors import LaunchError
from repro.simgpu.vectorized import resolve_backend
from repro.simgpu.buffers import Buffer
from repro.simgpu.counters import LaunchCounters
from repro.simgpu.events import Event
from repro.simgpu.stream import Stream
from repro.simgpu.workgroup import WorkGroup

__all__ = ["regular_ds_kernel", "run_regular_ds", "RegularDSResult"]


def regular_ds_kernel(
    wg: WorkGroup,
    array: Buffer,
    flags: Buffer,
    wg_counter: Buffer,
    remap: RegularRemap,
    geometry: LaunchGeometry,
    *,
    sync: bool = True,
    id_allocation: str = "dynamic",
) -> Generator[Event, None, None]:
    """One work-group's execution of Algorithm 1.

    ``sync=False`` and ``id_allocation="static"`` are fault-injection
    hooks used by tests and the ablation benchmarks; production callers
    never pass them.
    """
    allocator = dynamic_wg_id if id_allocation == "dynamic" else static_wg_id
    wg_id = yield from allocator(wg, wg_counter)

    # Tile selection honours the sliding direction (see module docstring).
    if remap.direction == "expand":
        tile_index = geometry.n_workgroups - 1 - wg_id
    else:
        tile_index = wg_id
    base = tile_index * geometry.tile_size
    total = remap.total_in

    # Register the whole input tile with the race tracker before loading.
    tile_positions = base + np.arange(geometry.tile_size, dtype=np.int64)
    tile_positions = tile_positions[tile_positions < total]
    wg.declare_reads(array, tile_positions)

    # -- Loading stage: coarsening strided rounds into "registers". ----------
    with wg.phase("load", rounds=geometry.coarsening):
        staged: list[tuple[np.ndarray, np.ndarray]] = []
        pos = base + wg.wi_id
        for _ in range(geometry.coarsening):
            active = pos[pos < total]
            values = yield from wg.load(array, active)
            staged.append((active, values))
            pos = pos + wg.size

    # -- Adjacent work-group synchronization (Figure 3). ---------------------
    # wg_id is the dynamic ID — trace analyzers use it to map this
    # hardware slot's track onto the sync chain.
    with wg.phase("sync", wg_id=wg_id):
        if sync:
            yield from adjacent_sync_regular(wg, flags, wg_id)
        else:
            yield from wg.barrier("local")

    # -- Storing stage: remapped positions. -----------------------------------
    with wg.phase("store"):
        for in_pos, values in staged:
            if in_pos.size == 0:
                continue
            keep, out_pos = remap(in_pos)
            yield from wg.store(array, out_pos[keep], values[keep])


@dataclass
class RegularDSResult:
    """Host-visible outcome of one regular DS launch."""

    counters: LaunchCounters
    geometry: LaunchGeometry
    remap: RegularRemap

    @property
    def bytes_useful(self) -> int:
        """Bytes of payload actually slid (loads + stores of kept
        elements) — the paper's effective-throughput numerator."""
        return self.counters.bytes_loaded + self.counters.bytes_stored


def run_regular_ds(
    array: Buffer,
    remap: RegularRemap,
    stream: Stream,
    *,
    wg_size: int = 256,
    coarsening: Optional[int] = None,
    sync: bool = True,
    id_allocation: str = "dynamic",
    race_tracking: bool = False,
    backend: Optional[str] = None,
) -> RegularDSResult:
    """Execute a regular Data Sliding operation in place on ``array``.

    Parameters
    ----------
    array:
        The buffer holding the input; must be large enough for
        ``remap.total_out`` elements (padding needs pre-allocated room,
        as the paper notes in Section II-A).
    remap:
        The position mapping (e.g. :func:`repro.core.offsets.pad_remap`).
    stream:
        Device stream; its device decides geometry defaults and the
        recorded counters.
    wg_size, coarsening:
        Launch tuning; defaults follow :mod:`repro.core.coarsening`.
    sync, id_allocation, race_tracking:
        Fault-injection and verification hooks for tests/ablations.
        Any of them being engaged forces the simulated backend (they
        exist to exercise the event-level machinery).
    backend:
        ``"simulated"`` (event-level scheduler) or ``"vectorized"``
        (tile-granularity fast path with closed-form counters); ``None``
        defers to the ``REPRO_BACKEND`` environment variable.
    """
    needed = max(remap.total_in, remap.total_out)
    if array.size < needed:
        raise LaunchError(
            f"buffer {array.name!r} has {array.size} elements but the slide "
            f"{remap.name} needs room for {needed}"
        )
    geometry = launch_geometry(
        remap.total_in,
        stream.device,
        array.itemsize,
        wg_size=wg_size,
        coarsening=coarsening,
    )
    flags = make_flags(geometry.n_workgroups)
    counter = make_wg_counter()
    resolved = resolve_backend(backend)
    if race_tracking or not sync or id_allocation != "dynamic":
        resolved = "simulated"
    if resolved in ("vectorized", "compiled"):
        # The regular remaps are pure index arithmetic — the whole-array
        # fast path already runs at memory speed, so the compiled tier
        # shares it rather than JIT-compiling a second copy.
        counters = vectorized_regular_launch(
            array, flags, counter, remap, geometry, stream
        )
    else:
        if race_tracking:
            array.arm_race_tracking()
        try:
            counters = stream.launch(
                regular_ds_kernel,
                grid_size=geometry.n_workgroups,
                wg_size=geometry.wg_size,
                args=(array, flags, counter, remap, geometry),
                kwargs={"sync": sync, "id_allocation": id_allocation},
                kernel_name=f"regular_ds[{remap.name}]",
            )
        finally:
            if race_tracking:
                array.disarm_race_tracking()
    counters.extras["coarsening"] = geometry.coarsening
    counters.extras["spilled"] = float(geometry.spilled)
    counters.extras["adjacent_syncs"] = float(geometry.n_workgroups if sync else 0)
    return RegularDSResult(counters=counters, geometry=geometry, remap=remap)
