"""Coarsening-factor policy (Section III and Figure 6 of the paper).

The coarsening factor is the number of array elements each work-item
stages on chip between the loading and storing stages.  It is the DS
algorithms' central tuning knob:

* **larger** factors mean fewer work-groups, hence fewer adjacent
  synchronizations (the chain has one hop per group) and more
  instruction-level parallelism from independent loads per work-item;
* **too large** factors exceed the per-work-item on-chip budget
  (registers + scratchpad) and the compiler spills the tile to off-chip
  memory — Figure 6 shows throughput collapsing at coarsening 40 and 48
  for 4-byte elements on Maxwell.

:func:`choose_coarsening` implements the paper's tuning outcome as a
policy (clamp to capacity, default to the architecture's sweet spot),
and :func:`launch_geometry` derives the launch grid from it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LaunchError
from repro.simgpu.device import DeviceSpec

__all__ = ["choose_coarsening", "spills", "launch_geometry", "LaunchGeometry"]

#: Architecture sweet spots observed in the paper's tuning (Figure 6
#: plateaus at roughly 8-32 on Maxwell; CPUs favour longer per-item runs
#: because each "work-item" is a SIMD lane of a serialized loop).
_DEFAULT_COARSENING = {
    "nvidia": 16,
    "amd": 12,
    "intel": 32,
}


def choose_coarsening(
    device: DeviceSpec, itemsize: int, requested: int | None = None
) -> int:
    """Pick a coarsening factor for ``itemsize``-byte elements.

    With ``requested=None`` returns the architecture default, clamped to
    the device's on-chip capacity.  An explicit request is honoured even
    past capacity — that is a legal (if slow) configuration the paper
    measures; use :func:`spills` to know when the penalty applies.
    """
    if itemsize <= 0:
        raise LaunchError(f"itemsize must be positive, got {itemsize}")
    if requested is not None:
        if requested <= 0:
            raise LaunchError(f"coarsening factor must be positive, got {requested}")
        return requested
    default = _DEFAULT_COARSENING.get(device.vendor, 8)
    return max(1, min(default, device.max_coarsening(itemsize)))


def spills(device: DeviceSpec, itemsize: int, coarsening: int) -> bool:
    """True when the tile no longer fits on chip and the performance
    model must charge the Figure 6 spill penalty."""
    return coarsening > device.max_coarsening(itemsize)


@dataclass(frozen=True)
class LaunchGeometry:
    """Derived launch configuration for one DS kernel."""

    n_workgroups: int
    wg_size: int
    coarsening: int
    tile_size: int
    spilled: bool

    @property
    def elements_capacity(self) -> int:
        """Total elements the grid covers (>= the input size)."""
        return self.n_workgroups * self.tile_size


def launch_geometry(
    total_elements: int,
    device: DeviceSpec,
    itemsize: int,
    *,
    wg_size: int = 256,
    coarsening: int | None = None,
) -> LaunchGeometry:
    """Compute the grid for a DS launch over ``total_elements``.

    One work-group covers ``coarsening x wg_size`` consecutive elements
    (its *tile*); the grid is the ceiling division of the input by the
    tile.  Raises for empty inputs and invalid group sizes, mirroring
    the OpenCL runtime's launch validation.
    """
    if total_elements <= 0:
        raise LaunchError(f"total_elements must be positive, got {total_elements}")
    if wg_size <= 0 or wg_size & (wg_size - 1):
        raise LaunchError(f"wg_size must be a positive power of two, got {wg_size}")
    if wg_size > device.max_wg_size:
        raise LaunchError(
            f"wg_size {wg_size} exceeds {device.name} limit {device.max_wg_size}"
        )
    cf = choose_coarsening(device, itemsize, coarsening)
    tile = cf * wg_size
    n_wgs = (total_elements + tile - 1) // tile
    return LaunchGeometry(
        n_workgroups=n_wgs,
        wg_size=wg_size,
        coarsening=cf,
        tile_size=tile,
        spilled=spills(device, itemsize, cf),
    )
