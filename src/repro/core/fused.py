"""Fused execution of chained irregular DS operations.

The paper prices a multi-primitive workload (the Table I pipelines) as
a chain of kernels on one stream: each pass re-loads the whole array,
re-runs a fresh adjacent-synchronization chain and re-stores the
survivors.  When consecutive ops are in-place filters over the *same*
buffer — ``compact`` then ``unique``, say — the chain can instead run
as **one** launch whose load stage evaluates every stage's predicate
and whose flag chain carries, alongside the cumulative kept count, the
boundary value the ``unique`` stencil needs.  That is the pseudo-
streaming idea of arXiv:1608.07200 applied to the DS kernels: the
intermediate array is never materialized in global memory.

A fused chain is a list of :class:`FuseStage` values applied in
sequence, with implicit compaction between stages:

* ``pred`` stages keep elements satisfying an elementwise predicate —
  chains of these AND together, so any number can fuse;
* at most **one** ``stencil`` (unique) stage: an element survives it
  iff it differs from the *previous survivor of the preceding stages*.
  Inside a work-group that previous survivor is tracked locally; at
  tile boundaries it travels down the adjacent-synchronization chain
  in a small carry buffer published just before the flag — so the
  second op's load phase reuses the first op's flag chain instead of
  launching again.

The one inter-group subtlety: a group's kept count depends on its
predecessor's carry (the group's first pre-stencil survivor is dropped
when it equals the carry).  The modified synchronization therefore
*adjusts* the reduced local count after the poll delivers the carry,
then publishes ``previous + adjusted`` exactly like Figure 7.  No
cascade is possible with a single stencil stage: dropping the first
survivor never changes which element is the group's *last* survivor,
so the outgoing carry is unaffected.

Both backends implement the fusion: :func:`run_fused_irregular`
dispatches to a generator kernel on the event-level scheduler or to a
closed-form fast path (accounting arithmetic in
:func:`repro.simgpu.vectorized.fused_chain_accounting`), with the
schedule-invariant counters matching across backends like every other
primitive's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.collectives.reduction import reduce_workgroup
from repro.collectives.scan import binary_exclusive_scan
from repro.core.coarsening import LaunchGeometry, launch_geometry
from repro.core.dynamic_id import dynamic_wg_id
from repro.core.flags import decode_count, encode_count, make_flags, make_wg_counter
from repro.core.predicates import Predicate
from repro.errors import LaunchError
from repro.perfmodel.collective_cost import collective_rounds_per_wg
from repro.simgpu.buffers import Buffer
from repro.simgpu.counters import LaunchCounters
from repro.simgpu.events import Event
from repro.simgpu.stream import Stream
from repro.simgpu.vectorized import fused_chain_accounting, resolve_backend
from repro.simgpu.workgroup import WorkGroup

__all__ = [
    "FuseStage",
    "FusedResult",
    "fused_masks",
    "chain_kernel_name",
    "run_fused_irregular",
]


@dataclass(frozen=True)
class FuseStage:
    """One stage of a fused chain: an elementwise predicate filter or
    the unique stencil."""

    kind: str  # "pred" | "stencil"
    predicate: Optional[Predicate] = None

    def __post_init__(self) -> None:
        if self.kind not in ("pred", "stencil"):
            raise LaunchError(f"unknown fuse stage kind {self.kind!r}")
        if self.kind == "pred" and self.predicate is None:
            raise LaunchError("pred fuse stage requires a predicate")

    @property
    def label(self) -> str:
        return "unique" if self.kind == "stencil" else self.predicate.name


def chain_kernel_name(stages: Sequence[FuseStage]) -> str:
    return "fused_ds[" + "+".join(s.label for s in stages) + "]"


def _split_stages(
    stages: Sequence[FuseStage],
) -> Tuple[List[Predicate], bool, List[Predicate]]:
    """Split into (predicates before the stencil, stencil?, predicates
    after).  More than one stencil stage cannot fuse — the carry chain
    holds a single boundary value."""
    if len(stages) < 2:
        raise LaunchError("a fused chain needs at least two stages")
    pre: List[Predicate] = []
    post: List[Predicate] = []
    has_stencil = False
    for stage in stages:
        if stage.kind == "stencil":
            if has_stencil:
                raise LaunchError(
                    "fused chains support at most one unique stage")
            has_stencil = True
        elif has_stencil:
            post.append(stage.predicate)
        else:
            pre.append(stage.predicate)
    return pre, has_stencil, post


def _and_preds(vals: np.ndarray, preds: Sequence[Predicate]) -> np.ndarray:
    mask = np.ones(vals.shape, dtype=bool)
    for p in preds:
        mask &= np.asarray(p(vals), dtype=bool)
    return mask


def fused_masks(vals: np.ndarray, stages: Sequence[FuseStage]) -> List[np.ndarray]:
    """Cumulative survivor masks after each stage, over the whole array.

    ``fused_masks(v, stages)[i]`` marks the elements of ``v`` surviving
    stages ``0..i`` — exactly the elements the sequential execution of
    those primitives would have kept.  The pipeline uses the
    intermediate masks to resolve the futures of fused-away ops; the
    last mask is the fused launch's output.
    """
    vals = np.asarray(vals)
    cur = np.ones(vals.size, dtype=bool)
    out: List[np.ndarray] = []
    for stage in stages:
        if stage.kind == "pred":
            cur = cur & np.asarray(stage.predicate(vals), dtype=bool)
        else:
            idx = np.flatnonzero(cur)
            if idx.size:
                sv = vals[idx]
                keep = np.empty(sv.size, dtype=bool)
                keep[0] = True
                keep[1:] = sv[1:] != sv[:-1]
                cur = cur.copy()
                cur[idx[~keep]] = False
        out.append(cur.copy())
    return out


@dataclass
class FusedResult:
    """Host-visible outcome of one fused launch."""

    counters: LaunchCounters
    geometry: LaunchGeometry
    n_true: int
    n_false: int

    @property
    def output_size(self) -> int:
        return self.n_true


# ---------------------------------------------------------------------------
# Event-level (simulated) fused kernel.
# ---------------------------------------------------------------------------


def fused_irregular_kernel(
    wg: WorkGroup,
    array: Buffer,
    flags: Buffer,
    wg_counter: Buffer,
    carry: Buffer,
    carry_valid: Buffer,
    stages: Sequence[FuseStage],
    geometry: LaunchGeometry,
    total: int,
    *,
    reduction_variant: str = "tree",
    scan_variant: str = "tree",
) -> Generator[Event, None, None]:
    """One work-group's execution of the fused chain (in place).

    Structure mirrors Algorithm 2 — load/count, reduce, modified
    adjacent sync, scan+store — with two changes: the load stage
    evaluates the whole stage chain, and the sync additionally reads
    the predecessor's carry (last pre-stencil survivor), adjusts the
    local count, and publishes its own carry *before* setting the flag
    so the successor's reads are ordered by the flag poll.
    """
    pre, has_stencil, post = _split_stages(stages)
    wg_id = yield from dynamic_wg_id(wg, wg_counter)

    tile_index = wg_id  # shrinking slide: head-first chain
    base = tile_index * geometry.tile_size
    tile_positions = base + np.arange(geometry.tile_size, dtype=np.int64)
    tile_positions = tile_positions[tile_positions < total]
    wg.declare_reads(array, tile_positions)

    # -- Loading stage: evaluate the full stage chain per round. --------------
    with wg.phase("load", rounds=geometry.coarsening):
        staged: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        lane_counts = np.zeros(wg.size, dtype=np.int64)
        pos = base + wg.wi_id
        last_p_value = None        # last pre-stencil survivor seen so far
        first_p: Optional[tuple] = None  # (round_idx, idx, value, kept)
        for round_idx in range(geometry.coarsening):
            lane_active = pos < total
            active = pos[lane_active]
            values = yield from wg.load(array, active)
            pmask = _and_preds(values, pre)
            if has_stencil:
                smask = pmask.copy()
                p_idx = np.flatnonzero(pmask)
                if p_idx.size:
                    sv = values[p_idx]
                    keep = np.empty(sv.size, dtype=bool)
                    # The group's very first survivor is tentatively
                    # kept; the sync stage may drop it against the
                    # predecessor's carry.
                    keep[0] = (last_p_value is None
                               or sv[0] != last_p_value)
                    keep[1:] = sv[1:] != sv[:-1]
                    if first_p is None:
                        keep[0] = True
                    smask[p_idx[~keep]] = False
                    last_p_value = sv[-1]
            else:
                smask = pmask
            final = smask & _and_preds(values, post)
            if has_stencil and first_p is None:
                p_idx = np.flatnonzero(pmask)
                if p_idx.size:
                    i = int(p_idx[0])
                    first_p = (round_idx, i, values[i], bool(final[i]))
            lane_counts[lane_active] += final
            staged.append((active, values, final))
            pos = pos + wg.size

    # -- Reduction before the synchronization. --------------------------------
    with wg.phase("reduce", variant=reduction_variant):
        local_count, _rounds = reduce_workgroup(
            lane_counts, reduction_variant, wg.warp_size)

    # -- Modified adjacent synchronization with carry. ------------------------
    with wg.phase("sync", wg_id=wg_id):
        yield from wg.barrier("local")
        flag_value = yield from wg.spin_until(flags, wg_id, lambda v: v != 0,
                                              waits_on=wg_id - 1 if wg_id > 0
                                              else None)
        previous_total = decode_count(flag_value)
        in_valid = yield from wg.load(
            carry_valid, np.asarray([wg_id], dtype=np.int64))
        in_carry = yield from wg.load(
            carry, np.asarray([wg_id], dtype=np.int64))
        if (has_stencil and first_p is not None and int(in_valid[0])
                and in_carry[0] == first_p[2]):
            round_idx, i, _value, kept = first_p
            if kept:
                staged[round_idx][2][i] = False
                local_count -= 1
        if last_p_value is not None:
            out_carry, out_valid = last_p_value, 1
        else:
            out_carry, out_valid = in_carry[0], int(in_valid[0])
        yield from wg.store(carry, np.asarray([wg_id + 1], dtype=np.int64),
                            np.asarray([out_carry]))
        yield from wg.store(carry_valid,
                            np.asarray([wg_id + 1], dtype=np.int64),
                            np.asarray([out_valid], dtype=np.int64))
        yield from wg.atomic_or(
            flags, wg_id + 1, encode_count(previous_total + int(local_count)))
        yield from wg.barrier("global")

    # -- Storing stage: binary prefix sum ranks each survivor. ----------------
    with wg.phase("store"):
        running = previous_total
        for active, values, final in staged:
            if active.size == 0:
                continue
            full_pred = np.zeros(wg.size, dtype=bool)
            full_pred[: active.size] = final  # active lanes are a prefix
            with wg.phase("scan", variant=scan_variant):
                ranks, _ = binary_exclusive_scan(
                    full_pred, scan_variant, wg.warp_size)
            true_ranks = ranks[: active.size][final]
            yield from wg.store(array, running + true_ranks, values[final])
            running += int(final.sum())


# ---------------------------------------------------------------------------
# Vectorized (closed-form) fused launch.
# ---------------------------------------------------------------------------


def _vectorized_fused_launch(
    array: Buffer,
    stages: Sequence[FuseStage],
    carry: Buffer,
    carry_valid: Buffer,
    flags: Buffer,
    wg_counter: Buffer,
    geometry: LaunchGeometry,
    total: int,
    stream: Stream,
    kernel_name: str,
) -> LaunchCounters:
    """Fast-path twin of :func:`fused_irregular_kernel`."""
    from repro import obs as _obs
    from repro.core.fastpath import (
        _base_counters,
        _emit_wg_phases,
        _finalize_sync_structures,
        _finish,
        _trace_begin,
        _trace_finish,
    )

    grid, W, cf = geometry.n_workgroups, geometry.wg_size, geometry.coarsening
    n = int(total)
    tracer, launch_span = _trace_begin(kernel_name, grid, W, stream)
    t0 = tracer.now_us() if tracer is not None else 0.0
    vals = array.data[:n].copy()
    pre, has_stencil, _post = _split_stages(stages)
    masks = fused_masks(vals, stages)
    keep = masks[-1]
    n_true = int(keep.sum())
    array.data[:n_true] = vals[keep]
    t1 = tracer.now_us() if tracer is not None else 0.0

    c = _base_counters(kernel_name, grid, W, stream)
    acct = fused_chain_accounting(
        n, keep, W, grid, cf,
        itemsize=array.itemsize,
        carry_itemsize=carry.itemsize,
        valid_itemsize=carry_valid.itemsize,
        transaction_bytes=array.transaction_bytes,
        count_transactions=array.count_transactions,
    )
    c.n_loads = acct["n_loads"]
    c.n_stores = acct["n_stores"]
    c.bytes_loaded = acct["bytes_loaded"]
    c.bytes_stored = acct["bytes_stored"]
    c.load_transactions = acct["load_transactions"]
    c.store_transactions = acct["store_transactions"]
    c.n_atomics = 3 * grid
    c.n_barriers = 3 * grid

    array.stats.loads_elems += n
    array.stats.stores_elems += n_true
    array.stats.load_transactions += acct["array_load_txns"]
    array.stats.store_transactions += acct["array_store_txns"]
    for buf in (carry, carry_valid):
        buf.stats.loads_elems += grid
        buf.stats.stores_elems += grid
        if buf.count_transactions:
            buf.stats.load_transactions += grid
            buf.stats.store_transactions += grid

    # Leave the side structures as the kernel would: the flag chain
    # carries cumulative kept counts, the carry chain the last
    # pre-stencil survivor of each prefix.
    tile = geometry.tile_size
    padded = np.zeros(grid * tile, dtype=np.int64)
    padded[:n] = keep[:n]
    kept_per_wg = padded.reshape(grid, tile).sum(axis=1)
    _finalize_sync_structures(flags, wg_counter, grid,
                              np.cumsum(kept_per_wg) + 1)
    p_survive = _and_preds(vals, pre) if has_stencil else keep
    p_idx = np.flatnonzero(p_survive)
    for g in range(grid):
        hi = min((g + 1) * tile, n)
        upto = p_idx[p_idx < hi]
        if upto.size:
            carry.data[g + 1] = vals[upto[-1]]
            carry_valid.data[g + 1] = 1

    rec = stream.record(_finish(c))
    if tracer is not None:
        _emit_wg_phases(tracer, grid=grid, tile=tile, wg_size=W,
                        coarsening=cf, total=n, t0=t0, t1=t1, irregular=True)
        _trace_finish(tracer, launch_span, c)
    return rec


# ---------------------------------------------------------------------------
# Host entry point.
# ---------------------------------------------------------------------------


def run_fused_irregular(
    array: Buffer,
    stages: Sequence[FuseStage],
    stream: Stream,
    *,
    total: Optional[int] = None,
    wg_size: int = 256,
    coarsening: Optional[int] = None,
    reduction_variant: str = "tree",
    scan_variant: str = "tree",
    backend: Optional[str] = None,
) -> FusedResult:
    """Execute a fused in-place filter chain on ``array``.

    Semantically identical to running each stage's primitive in
    sequence, but a **single** kernel launch: one load of the input,
    one flag chain (carry-augmented), one store of the final
    survivors.  Returns counts exactly like
    :func:`repro.core.irregular.run_irregular_ds`.
    """
    n = total if total is not None else array.size
    if n <= 0:
        raise LaunchError(f"input size must be positive, got {n}")
    if n > array.size:
        raise LaunchError(
            f"total {n} exceeds buffer {array.name!r} size {array.size}")
    _split_stages(stages)  # validate the chain shape up front
    geometry = launch_geometry(
        n, stream.device, array.itemsize, wg_size=wg_size,
        coarsening=coarsening)
    flags = make_flags(geometry.n_workgroups)
    counter = make_wg_counter()
    carry = Buffer(np.zeros(geometry.n_workgroups + 1, dtype=array.data.dtype),
                   "fuse_carry")
    carry_valid = Buffer(
        np.zeros(geometry.n_workgroups + 1, dtype=np.int64), "fuse_carry_valid")
    kernel_name = chain_kernel_name(stages)
    resolved = resolve_backend(backend)
    counters = None
    if resolved == "compiled":
        from repro.compiled.runner import compiled_fused_launch

        counters = compiled_fused_launch(
            array, stages, carry, carry_valid, flags, counter, geometry, n,
            stream, kernel_name)
        if counters is None:
            # Chain didn't lower (opaque predicate): per-launch fallback.
            resolved = "vectorized"
    if counters is None and resolved == "vectorized":
        counters = _vectorized_fused_launch(
            array, stages, carry, carry_valid, flags, counter, geometry, n,
            stream, kernel_name)
    elif counters is None:
        counters = stream.launch(
            fused_irregular_kernel,
            grid_size=geometry.n_workgroups,
            wg_size=geometry.wg_size,
            args=(array, flags, counter, carry, carry_valid, stages,
                  geometry, n),
            kwargs={
                "reduction_variant": reduction_variant,
                "scan_variant": scan_variant,
            },
            kernel_name=kernel_name,
        )
    n_true = int(flags.data[geometry.n_workgroups]) - 1
    counters.extras["coarsening"] = geometry.coarsening
    counters.extras["spilled"] = float(geometry.spilled)
    counters.extras["adjacent_syncs"] = float(geometry.n_workgroups)
    counters.extras["irregular"] = 1.0
    counters.extras["fused_stages"] = float(len(stages))
    counters.extras["collective_rounds"] = collective_rounds_per_wg(
        geometry.wg_size, stream.device.warp_size, geometry.coarsening,
        reduction_variant, scan_variant,
    )
    return FusedResult(
        counters=counters, geometry=geometry, n_true=n_true,
        n_false=n - n_true,
    )
