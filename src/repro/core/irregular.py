"""Algorithm 2 — the generic irregular Data Sliding kernel.

Irregular DS algorithms slide each element by a **data-dependent**
offset: the number of preceding elements removed (select, stream
compaction, unique) decides where a kept element lands.  Algorithm 2
extends the regular kernel with three steps:

1. during the loading stage every work-item counts its predicate-true
   elements (``local_count``);
2. a work-group **reduction** totals the counts *before* the adjacent
   synchronization, so only the total travels the critical path — the
   paper notes (after [14], [16]) that reducing first and scanning after
   the synchronization shortens the inter-group dependency chain; the
   ``scan_first=True`` flag implements the alternative order for the
   ablation benchmark;
3. the modified adjacent synchronization (Figure 7) both orders the
   groups **and** delivers the cumulative count of all preceding groups,
   which is the group's global output base; a **binary prefix sum** then
   ranks each true element within the group for the storing stage.

Stability falls out of the construction: rounds are scanned in element
order and ranks are added to a running intra-group offset, so kept
elements retain their relative input order — a property the test suite
asserts for every primitive built on this kernel.

The kernel writes kept elements to ``out``; with ``out is array`` the
operation is in place (the compaction direction is shrinking, so the
head-first chain makes it safe — see :mod:`repro.core.regular`).
An optional ``false_out`` receives the predicate-false elements (used
by partition); their destination needs **no second chain**, because the
number of false elements before global position *g* is simply
``g - trues_before(g)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.collectives.reduction import reduce_workgroup
from repro.collectives.scan import binary_exclusive_scan
from repro.core.adjacent_sync import adjacent_sync_irregular
from repro.core.coarsening import LaunchGeometry, launch_geometry
from repro.core.dynamic_id import dynamic_wg_id, static_wg_id
from repro.core.fastpath import vectorized_irregular_launch
from repro.core.flags import make_flags, make_wg_counter
from repro.core.predicates import Predicate
from repro.errors import LaunchError
from repro.simgpu.vectorized import resolve_backend
from repro.perfmodel.collective_cost import collective_rounds_per_wg
from repro.simgpu.buffers import Buffer
from repro.simgpu.counters import LaunchCounters
from repro.simgpu.events import Event
from repro.simgpu.stream import Stream
from repro.simgpu.workgroup import WorkGroup

__all__ = ["irregular_ds_kernel", "run_irregular_ds", "IrregularDSResult"]


def irregular_ds_kernel(
    wg: WorkGroup,
    array: Buffer,
    out: Buffer,
    flags: Buffer,
    wg_counter: Buffer,
    predicate: Predicate,
    geometry: LaunchGeometry,
    total: int,
    *,
    false_out: Optional[Buffer] = None,
    stencil_unique: bool = False,
    reduction_variant: str = "tree",
    scan_variant: str = "tree",
    scan_first: bool = False,
    sync: bool = True,
    id_allocation: str = "dynamic",
) -> Generator[Event, None, None]:
    """One work-group's execution of Algorithm 2.

    ``stencil_unique`` switches the predicate evaluation to the *unique*
    stencil: an element is "true" (kept) when it differs from its left
    neighbour; the neighbour of a tile's first element is read directly
    from global memory during the loading stage, as the paper describes
    (Section IV-C).  In that mode ``predicate`` is ignored.
    """
    allocator = dynamic_wg_id if id_allocation == "dynamic" else static_wg_id
    wg_id = yield from allocator(wg, wg_counter)

    tile_index = wg_id  # shrinking slide: head-first chain
    base = tile_index * geometry.tile_size

    tile_positions = base + np.arange(geometry.tile_size, dtype=np.int64)
    tile_positions = tile_positions[tile_positions < total]
    wg.declare_reads(array, tile_positions)

    # The unique stencil needs the element just before the tile.  It is
    # loaded during the loading stage; an earlier-chained group may have
    # already compacted into that location, but only ever with the same
    # value (outputs to the left of our tile replicate the kept prefix),
    # so the read is benign — the paper reads it straight from global
    # memory for the same reason.
    left_neighbor = None
    if stencil_unique and base > 0:
        vals = yield from wg.load(array, np.asarray([base - 1], dtype=np.int64))
        left_neighbor = vals[0]

    # -- Loading stage with per-work-item counting. ---------------------------
    with wg.phase("load", rounds=geometry.coarsening):
        staged: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        lane_counts = np.zeros(wg.size, dtype=np.int64)
        pos = base + wg.wi_id
        prev_round_last = left_neighbor
        for _ in range(geometry.coarsening):
            lane_active = pos < total
            active = pos[lane_active]
            values = yield from wg.load(array, active)
            if stencil_unique:
                flags_true = np.empty(values.shape, dtype=bool)
                if values.size:
                    flags_true[1:] = values[1:] != values[:-1]
                    if prev_round_last is None:  # very first element of the array
                        flags_true[0] = True
                    else:
                        flags_true[0] = values[0] != prev_round_last
                    prev_round_last = values[-1]
            else:
                flags_true = predicate(values)
            lane_counts[lane_active] += flags_true
            staged.append((active, values, flags_true))
            pos = pos + wg.size

    # -- Reduction before the synchronization (default, shorter chain). -------
    # The paper (after [14], [16]) prefers reduce-then-sync-then-scan: only
    # the cheap reduction sits on the inter-group critical path.  The
    # scan_first ablation computes every rank *before* synchronizing, the
    # longer-critical-path ordering Algorithm 2 also allows.
    with wg.phase("reduce", variant=reduction_variant):
        precomputed_ranks: list[np.ndarray] = []
        if scan_first:
            for active, _values, flags_true in staged:
                full_pred = np.zeros(wg.size, dtype=bool)
                full_pred[: active.size] = flags_true
                with wg.phase("scan", variant=scan_variant):
                    ranks, _ = binary_exclusive_scan(
                        full_pred, scan_variant, wg.warp_size)
                precomputed_ranks.append(ranks)
        local_count, _rounds = reduce_workgroup(
            lane_counts, reduction_variant, wg.warp_size)

    # -- Modified adjacent synchronization (Figure 7). -------------------------
    # wg_id in the span args is the *dynamic* ID: it lets the trace
    # analyzer map this hardware slot's track onto the sync chain.
    with wg.phase("sync", wg_id=wg_id):
        if sync:
            previous_total = yield from adjacent_sync_irregular(
                wg, flags, wg_id, local_count)
        else:
            # Fault-injection mode: the host pre-filled the flag array with the
            # correct cumulative counts (as a two-pass scan would), so offsets
            # are right but the *ordering* guarantee is gone — stores may now
            # clobber tiles other groups have not loaded, which is exactly the
            # hazard the race tracker exists to expose.
            yield from wg.barrier("local")
            previous_total = max(0, int(flags.data[wg_id]) - 1)

    # -- Storing stage: binary prefix sum ranks each true element. ------------
    with wg.phase("store"):
        running = previous_total
        for round_idx, (active, values, flags_true) in enumerate(staged):
            if active.size == 0:
                continue
            if scan_first:
                ranks = precomputed_ranks[round_idx]
            else:
                full_pred = np.zeros(wg.size, dtype=bool)
                full_pred[: active.size] = flags_true  # active lanes are a prefix
                with wg.phase("scan", variant=scan_variant):
                    ranks, _ = binary_exclusive_scan(
                        full_pred, scan_variant, wg.warp_size)
            true_ranks = ranks[: active.size][flags_true]
            out_pos = running + true_ranks
            yield from wg.store(out, out_pos, values[flags_true])
            if false_out is not None and (~flags_true).any():
                false_mask = ~flags_true
                g = active[false_mask]  # absolute input positions
                trues_before = running + ranks[: active.size][false_mask]
                yield from wg.store(false_out, g - trues_before, values[false_mask])
            running += int(flags_true.sum())


@dataclass
class IrregularDSResult:
    """Host-visible outcome of one irregular DS launch."""

    counters: LaunchCounters
    geometry: LaunchGeometry
    n_true: int
    n_false: int

    @property
    def output_size(self) -> int:
        return self.n_true


def run_irregular_ds(
    array: Buffer,
    predicate: Optional[Predicate],
    stream: Stream,
    *,
    out: Optional[Buffer] = None,
    false_out: Optional[Buffer] = None,
    total: Optional[int] = None,
    wg_size: int = 256,
    coarsening: Optional[int] = None,
    stencil_unique: bool = False,
    reduction_variant: str = "tree",
    scan_variant: str = "tree",
    scan_first: bool = False,
    sync: bool = True,
    id_allocation: str = "dynamic",
    race_tracking: bool = False,
    backend: Optional[str] = None,
) -> IrregularDSResult:
    """Execute an irregular Data Sliding operation.

    With ``out=None`` the slide is **in place** on ``array`` (the
    paper's DS Remove_if / Stream Compaction / Unique); passing a
    distinct ``out`` gives the out-of-place DS Copy_if.  ``false_out``
    additionally collects the predicate-false elements (partition).

    ``backend`` selects the event-level scheduler (``"simulated"``) or
    the tile-granularity fast path (``"vectorized"``); ``None`` defers
    to the ``REPRO_BACKEND`` environment variable.  The fault-injection
    hooks (``race_tracking``, ``sync=False``, static ID allocation)
    force the simulated backend.

    Returns counts of true/false elements (read back from the flag
    chain's final entry, exactly how a host retrieves the compacted size
    on a real device).
    """
    if predicate is None and not stencil_unique:
        raise LaunchError("a predicate is required unless stencil_unique is set")
    n = total if total is not None else array.size
    if n <= 0:
        raise LaunchError(f"input size must be positive, got {n}")
    if n > array.size:
        raise LaunchError(f"total {n} exceeds buffer {array.name!r} size {array.size}")
    destination = out if out is not None else array
    geometry = launch_geometry(
        n, stream.device, array.itemsize, wg_size=wg_size, coarsening=coarsening
    )
    flags = make_flags(geometry.n_workgroups)
    counter = make_wg_counter()
    kernel_name = f"irregular_ds[{'unique' if stencil_unique else predicate.name}]"
    resolved = resolve_backend(backend)
    if race_tracking or not sync or id_allocation != "dynamic":
        resolved = "simulated"
    counters = None
    if resolved == "compiled":
        from repro.compiled.runner import compiled_irregular_launch

        counters = compiled_irregular_launch(
            array, destination, flags, counter, predicate, geometry, n, stream,
            false_out=false_out,
            stencil_unique=stencil_unique,
            kernel_name=kernel_name,
        )
        if counters is None:
            # Chain didn't lower (opaque predicate): per-launch fallback.
            resolved = "vectorized"
    if counters is None and resolved == "vectorized":
        counters = vectorized_irregular_launch(
            array, destination, flags, counter, predicate, geometry, n, stream,
            false_out=false_out,
            stencil_unique=stencil_unique,
            kernel_name=kernel_name,
        )
    elif counters is None:
        if race_tracking:
            array.arm_race_tracking()
        try:
            counters = stream.launch(
                irregular_ds_kernel,
                grid_size=geometry.n_workgroups,
                wg_size=geometry.wg_size,
                args=(array, destination, flags, counter,
                      predicate if predicate is not None else _NULL_PREDICATE,
                      geometry, n),
                kwargs={
                    "false_out": false_out,
                    "stencil_unique": stencil_unique,
                    "reduction_variant": reduction_variant,
                    "scan_variant": scan_variant,
                    "scan_first": scan_first,
                    "sync": sync,
                    "id_allocation": id_allocation,
                },
                kernel_name=kernel_name,
            )
        finally:
            if race_tracking:
                array.disarm_race_tracking()
    n_true = int(flags.data[geometry.n_workgroups]) - 1
    counters.extras["coarsening"] = geometry.coarsening
    counters.extras["spilled"] = float(geometry.spilled)
    counters.extras["adjacent_syncs"] = float(geometry.n_workgroups if sync else 0)
    counters.extras["irregular"] = 1.0
    counters.extras["collective_rounds"] = collective_rounds_per_wg(
        geometry.wg_size, stream.device.warp_size, geometry.coarsening,
        reduction_variant, scan_variant,
    )
    counters.extras["opt_collectives"] = (
        1.0
        if (scan_variant != "tree" or reduction_variant != "tree")
        else 0.0
    )
    counters.extras["scan_first"] = 1.0 if scan_first else 0.0
    return IrregularDSResult(
        counters=counters, geometry=geometry, n_true=n_true, n_false=n - n_true
    )


from repro.core.predicates import always_true as _always_true  # noqa: E402

_NULL_PREDICATE = _always_true()
