"""Synchronization flag arrays for adjacent work-group synchronization.

Every DS kernel launch owns a flag array with one slot per work-group
plus a **virtual predecessor** slot for the first group, so the paper's
spin loop ``while (atom_or(&flags[wg_id_ - 1], 0) == 0)`` needs no
special case for ``wg_id_ == 0``: this package stores work-group *i*'s
flag at index ``i + 1`` and pre-sets index 0 before launch.

Two encodings share the array:

* **Regular DS** (Figure 3): the flag is a boolean — 0 means "my loading
  stage is not done", 1 means done.
* **Irregular DS** (Figure 7): the flag carries the cumulative number of
  predicate-true elements in all groups up to and including the owner.
  Since a legitimate cumulative count can be zero, the stored value is
  ``count + 1`` (the classic StreamScan sentinel [14]); helpers here
  encode/decode so kernels never touch the convention directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaunchError
from repro.simgpu.buffers import Buffer

__all__ = [
    "make_flags",
    "make_wg_counter",
    "encode_count",
    "decode_count",
    "FLAG_SET",
]

FLAG_SET = 1
"""Value a regular-DS work-group stores to announce its load completed."""


def make_flags(n_workgroups: int, initial_count: int = 0, name: str = "flags") -> Buffer:
    """Allocate and initialize a flag buffer for ``n_workgroups`` groups.

    Index 0 (the virtual predecessor of work-group 0) is pre-set: to
    :data:`FLAG_SET` for regular kernels, or to ``encode_count(initial_count)``
    for irregular kernels — both are the same bit pattern when
    ``initial_count == 0``, so one constructor serves both algorithms.
    """
    if n_workgroups <= 0:
        raise LaunchError(f"flag array needs at least one work-group, got {n_workgroups}")
    flags = Buffer(np.zeros(n_workgroups + 1, dtype=np.int64), name)
    flags.data[0] = encode_count(initial_count)
    return flags


def make_wg_counter(name: str = "wg_counter") -> Buffer:
    """The global cursor ``S`` of Figure 4 (dynamic work-group IDs)."""
    return Buffer(np.zeros(1, dtype=np.int64), name)


def encode_count(count: int) -> int:
    """Encode a cumulative count into a flag value (``count + 1`` so that
    zero always means "not ready")."""
    if count < 0:
        raise LaunchError(f"cumulative count cannot be negative: {count}")
    return count + 1


def decode_count(flag_value: int) -> int:
    """Inverse of :func:`encode_count`; rejects the unset value 0."""
    if flag_value <= 0:
        raise LaunchError(f"flag value {flag_value} does not encode a count")
    return flag_value - 1
