"""Dynamic work-group ID allocation (Figure 4 of the paper).

Adjacent synchronization chains each work-group to its predecessor, so
correctness requires that the group holding logical ID *i − 1* is
scheduled **no later than** the group holding ID *i*.  Hardware gives no
such guarantee for the launch-grid index: on a device whose slots are
full of groups spinning for a predecessor that was never dispatched, the
kernel deadlocks (the simulator demonstrates this — see
``tests/core/test_dynamic_id.py``).

The fix, due to StreamScan [14], is to let groups *claim* their logical
ID in scheduling order: the first work-item of each group atomically
increments a global cursor as soon as the group starts running, and the
claimed value is broadcast through local memory.  Because a group only
claims an ID after it has been scheduled, ID order equals scheduling
order and the predecessor of any running group is also running (or has
finished) — the chain can always advance.
"""

from __future__ import annotations

from typing import Generator

from repro.simgpu.buffers import Buffer
from repro.simgpu.events import Event
from repro.simgpu.workgroup import WorkGroup

__all__ = ["dynamic_wg_id", "static_wg_id"]


def dynamic_wg_id(
    wg: WorkGroup, counter: Buffer, index: int = 0
) -> Generator[Event, None, int]:
    """Claim the next logical work-group ID in scheduling order.

    Mirrors Figure 4: work-item 0 performs ``atom_add(&S, 1)``, stores
    the result in local memory, and a local barrier makes it visible to
    the whole group.  Returns the claimed ID.
    """
    # if (wi_id == 0) wg_id_ = atom_add(&S, 1);
    wg_id = yield from wg.atomic_add(counter, index, 1)
    # barrier(local memory fence) — broadcast through local memory.
    yield from wg.barrier("local")
    return int(wg_id)


def static_wg_id(wg: WorkGroup, counter: Buffer, index: int = 0
                 ) -> Generator[Event, None, int]:
    """The *wrong* alternative: use the launch-grid index as the logical
    ID.  Provided so fault-injection tests and the ablation benchmark
    can demonstrate the deadlock the paper's Figure 4 exists to prevent.
    The counter argument is accepted (and ignored) so the two allocators
    are drop-in interchangeable.
    """
    yield from wg.barrier("local")
    return int(wg.group_index)
