"""``repro.core`` — the paper's contribution: generic in-place, stable
Data Sliding algorithms with adjacent work-group synchronization.

* :mod:`~repro.core.dynamic_id` — Figure 4 (deadlock-free ID claiming);
* :mod:`~repro.core.adjacent_sync` — Figures 3 and 7 (the chained
  load/store ordering, plus offset passing for irregular slides);
* :mod:`~repro.core.regular` — Algorithm 1 (constant per-group shifts);
* :mod:`~repro.core.irregular` — Algorithm 2 (data-dependent shifts via
  reduction + binary prefix sum);
* :mod:`~repro.core.offsets`, :mod:`~repro.core.predicates`,
  :mod:`~repro.core.coarsening` — the parameter spaces of the two
  generic kernels.
"""

from repro.core.adjacent_sync import adjacent_sync_irregular, adjacent_sync_regular
from repro.core.coarsening import LaunchGeometry, choose_coarsening, launch_geometry, spills
from repro.core.dynamic_id import dynamic_wg_id, static_wg_id
from repro.core.flags import decode_count, encode_count, make_flags, make_wg_counter
from repro.core.irregular import IrregularDSResult, irregular_ds_kernel, run_irregular_ds
from repro.core.offsets import RegularRemap, pad_remap, shift_remap, unpad_remap
from repro.core.predicates import (
    Predicate,
    always_false,
    always_true,
    equal_to,
    greater_equal,
    is_even,
    less_than,
    nonzero,
    not_equal_to,
)
from repro.core.regular import RegularDSResult, regular_ds_kernel, run_regular_ds

__all__ = [
    "adjacent_sync_regular",
    "adjacent_sync_irregular",
    "dynamic_wg_id",
    "static_wg_id",
    "make_flags",
    "make_wg_counter",
    "encode_count",
    "decode_count",
    "LaunchGeometry",
    "choose_coarsening",
    "launch_geometry",
    "spills",
    "RegularRemap",
    "pad_remap",
    "unpad_remap",
    "shift_remap",
    "Predicate",
    "is_even",
    "less_than",
    "greater_equal",
    "equal_to",
    "not_equal_to",
    "nonzero",
    "always_true",
    "always_false",
    "regular_ds_kernel",
    "run_regular_ds",
    "RegularDSResult",
    "irregular_ds_kernel",
    "run_irregular_ds",
    "IrregularDSResult",
]
