"""Hysteresis autoscaling policy for the fleet worker pool.

Pure decision logic, deliberately separated from the process machinery
in :class:`repro.fleet.Fleet` so it can be unit-tested tick by tick.
Each tick the fleet hands :meth:`Autoscaler.observe` one aggregated
:class:`TickSnapshot`; the policy answers ``"up"``, ``"down"`` or
``None``.

Both directions require *consecutive* evidence (``up_after`` pressured
ticks, ``down_after`` idle ticks) and every action is followed by
``cooldown_ticks`` of enforced inaction — one queue burst grows the
pool once, not once per tick, and a momentary lull never drains a
worker that is about to be needed again.

The two directions read different signals on purpose:

* **up** looks at *instantaneous pressure* — mean queue depth per
  worker and the fleet p95 — because backlog and tail latency are what
  an under-provisioned pool shows;
* **down** looks at *work rate* — completions since the previous tick
  (a counter delta, because cumulative histograms never fall) plus a
  shallow queue — because an over-provisioned pool shows idleness, not
  low latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Autoscaler", "TickSnapshot"]


@dataclass(frozen=True)
class TickSnapshot:
    """One tick's aggregated fleet observation."""

    n_workers: int
    queue_depth: int        # fleet-wide queued requests
    inflight: int           # fleet-wide queued + executing
    p95_ms: float           # fleet p95 latency (max over workers)
    completed_delta: int    # completions since the previous tick


class Autoscaler:
    """Tick-driven scale-up/-down policy with hysteresis.

    Parameters come from :class:`repro.fleet.config.FleetConfig`
    (``queue_high``, ``queue_low``, ``p95_high_ms``, ``up_after``,
    ``down_after``, ``cooldown_ticks``, ``min_workers``,
    ``max_workers``).
    """

    def __init__(self, config) -> None:
        self.config = config
        self._up_streak = 0
        self._down_streak = 0
        self._cooldown = 0
        #: decision log for ``Fleet.stats()`` / the analyze report.
        self.history: List[dict] = []

    def observe(self, snap: TickSnapshot) -> Optional[str]:
        """Consume one tick; return ``"up"``, ``"down"`` or ``None``.

        The caller is responsible for actually growing/draining the
        pool; this object only decides.
        """
        cfg = self.config
        decision: Optional[str] = None
        pressured = (
            snap.queue_depth >= cfg.queue_high * max(1, snap.n_workers)
            or snap.p95_ms >= cfg.p95_high_ms)
        idle = (snap.completed_delta <= 0
                and snap.queue_depth <= cfg.queue_low
                and snap.inflight <= cfg.queue_low)
        if self._cooldown > 0:
            self._cooldown -= 1
            # Streaks freeze during cooldown: evidence gathered while
            # the last action is still settling is not trustworthy.
            self._up_streak = 0
            self._down_streak = 0
        else:
            self._up_streak = self._up_streak + 1 if pressured else 0
            self._down_streak = self._down_streak + 1 if idle else 0
            if (self._up_streak >= cfg.up_after
                    and snap.n_workers < cfg.max_workers):
                decision = "up"
            elif (self._down_streak >= cfg.down_after
                    and snap.n_workers > cfg.min_workers):
                decision = "down"
            if decision is not None:
                self._up_streak = 0
                self._down_streak = 0
                self._cooldown = cfg.cooldown_ticks
        self.history.append({
            "tick": len(self.history),
            "n_workers": snap.n_workers,
            "queue_depth": snap.queue_depth,
            "inflight": snap.inflight,
            "p95_ms": round(float(snap.p95_ms), 3),
            "completed_delta": snap.completed_delta,
            "pressured": pressured,
            "idle": idle,
            "decision": decision,
        })
        return decision

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Autoscaler(up_streak={self._up_streak}, "
                f"down_streak={self._down_streak}, "
                f"cooldown={self._cooldown})")
