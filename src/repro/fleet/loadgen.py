"""Closed-loop load generation and acceptance checks for the fleet.

:func:`run_fleet_load` drives a :class:`repro.fleet.Fleet` with client
threads spread over several traffic shapes *and* several input sizes —
distinct batch keys, so the consistent-hash router actually has a key
population to balance — and verifies every response byte-for-byte
against the NumPy reference semantics.

:func:`run_fleet_check` is the deterministic acceptance pass behind
``python -m repro fleet --check``:

1. **healthy phase** — multi-shape traffic over a 3-worker fleet;
   asserts byte-correct responses, bounded routing skew (no worker
   above 2x the mean key load) and an aggregate plan-cache hit rate
   above 90% after warmup;
2. **burst phase** — a request backlog plus manual
   :meth:`~repro.fleet.Fleet.autoscale_tick` calls until the
   autoscaler *grows* the pool;
3. **idle phase** — manual ticks with no traffic until it *drains*
   back down;
4. **incident phase** — flips the workers' chaos injectors to
   ``"always"`` so the circuit breaker opens and a flight-recorder
   bundle is dumped, then **replays** that bundle through
   :mod:`repro.fleet.replay` and asserts the same trigger fires again;
5. **tracing phase** — the whole run executes with ``trace="full"``,
   so before the fleet closes it dumps the merged clock-aligned
   Chrome trace, asserts worker spans joined router request spans via
   the propagated trace context, runs the cross-process critical-path
   check from :mod:`repro.obs.analyze` (±2%), and demands that the
   worker incidents from phase 4 escalated into one **fleet-wide**
   incident bundle whose manifest carries every worker's flight ring.

Everything is seeded and tick-driven — no wall-clock thresholds —
so the check passes or fails for real reasons.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ServeError
from repro.fleet.config import FleetConfig
from repro.fleet.fleet import Fleet
from repro.serve.config import ServeConfig
from repro.serve.loadgen import SHAPES, ShapeSpec, make_shape

__all__ = ["FleetLoadReport", "run_fleet_load", "run_fleet_check",
           "check_fleet_report"]


@dataclass
class FleetLoadReport:
    """Everything a fleet load run measured (the ``backend="fleet"``
    bench-index row reads straight off these fields)."""

    shapes: List[str]
    clients: int
    requests: int
    completed: int = 0
    wrong: int = 0
    failed: int = 0
    wall_s: float = 0.0
    throughput_rps: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    workers_start: int = 0
    workers_peak: int = 0
    workers_end: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    routing_skew: float = 0.0
    route_keys: int = 0
    plan_hit_rate: float = 0.0
    replay_trigger: Optional[str] = None
    replay_reproduced: Optional[bool] = None
    incidents: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    stats: Optional[Dict] = None
    # Distributed-tracing acceptance (populated when the run traced).
    trace_path: Optional[str] = None
    trace_requests: Optional[int] = None
    trace_joined: Optional[int] = None
    trace_problems: List[str] = field(default_factory=list)
    fleet_incidents: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        out = dict(self.__dict__)
        out["errors"] = list(self.errors[:5])
        out.pop("stats", None)
        return out

    def summary(self) -> str:
        lines = [
            f"fleet loadgen: shapes={'+'.join(self.shapes)} "
            f"clients={self.clients} requests={self.requests}",
            f"  completed {self.completed} ({self.wrong} wrong, "
            f"{self.failed} failed)",
            f"  throughput {self.throughput_rps:.1f} req/s over "
            f"{self.wall_s * 1e3:.1f} ms",
            f"  latency p50 {self.latency_p50_ms:.2f} ms, "
            f"p95 {self.latency_p95_ms:.2f} ms, "
            f"p99 {self.latency_p99_ms:.2f} ms",
            f"  workers {self.workers_start} -> peak {self.workers_peak} "
            f"-> {self.workers_end} "
            f"({self.scale_ups} scale-ups, {self.scale_downs} "
            f"scale-downs)",
            f"  routing: {self.route_keys} keys, skew "
            f"{self.routing_skew:.2f}x mean "
            f"(bound 2.00x)",
            f"  fleet plan-cache hit rate {self.plan_hit_rate * 100:.1f}%",
        ]
        if self.trace_path is not None:
            joined = self.trace_joined or 0
            lines.append(
                f"  trace: {self.trace_requests or 0} requests merged "
                f"({joined} joined across processes) -> {self.trace_path}")
            if self.trace_problems:
                lines.append(
                    f"  trace problems: {self.trace_problems[:3]}")
        if self.fleet_incidents:
            lines.append("  fleet-wide incident bundles:")
            lines.extend(f"    {p}" for p in self.fleet_incidents[:4])
        if self.replay_trigger is not None:
            verdict = "reproduced" if self.replay_reproduced \
                else "NOT reproduced"
            lines.append(
                f"  incident replay: trigger {self.replay_trigger!r} "
                f"{verdict}")
        if self.incidents:
            lines.append("  incident bundles:")
            lines.extend(f"    {p}" for p in self.incidents[:4])
        if self.errors:
            lines.append(f"  first errors: {self.errors[:3]}")
        return "\n".join(lines)


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _traffic(shapes: List[str], sizes: List[int],
             seed: int) -> List[ShapeSpec]:
    """One ShapeSpec per (shape, size) — each is a distinct batch key,
    which is what gives the hash ring a population to balance."""
    specs = []
    for name in shapes:
        for n in sizes:
            specs.append(make_shape(name, n, seed))
    return specs


def _drive(fleet: Fleet, specs: List[ShapeSpec], report: FleetLoadReport,
           *, clients: int, requests_per_client: int,
           timeout_s: float) -> List[float]:
    """Closed-loop clients, round-robining over the traffic specs."""
    latencies: List[float] = []
    lock = threading.Lock()

    def client(cid: int) -> None:
        for k in range(requests_per_client):
            spec = specs[(cid + k) % len(specs)]
            t0 = time.perf_counter()
            try:
                fut = fleet.submit_chain(spec.ops, spec.array)
                result = fut.result(timeout=timeout_s)
            except Exception as exc:
                with lock:
                    report.failed += 1
                    report.errors.append(f"{type(exc).__name__}: {exc}")
                continue
            elapsed_ms = (time.perf_counter() - t0) * 1e3
            ok = np.array_equal(np.asarray(result.output), spec.expected)
            with lock:
                report.completed += 1
                latencies.append(elapsed_ms)
                if not ok:
                    report.wrong += 1
                    report.errors.append(
                        f"client {cid}: wrong output for "
                        f"{spec.name}/n={spec.array.size}")

    threads = [threading.Thread(target=client, args=(i,),
                                name=f"fleet-client-{i}")
               for i in range(clients)]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.wall_s += time.perf_counter() - t_start
    return latencies


def _fold_stats(report: FleetLoadReport, stats: dict) -> None:
    report.routing_skew = float(stats["ring"]["skew"])
    report.route_keys = int(stats["ring"]["keys"])
    report.scale_ups = int(stats["autoscale"]["ups"])
    report.scale_downs = int(stats["autoscale"]["downs"])
    report.incidents = list(stats["rollup"]["flight"]["incidents"])


def _plan_counts(fleet: Fleet) -> tuple:
    """Fleet-wide cumulative (plan hits, plan misses)."""
    workers = fleet.worker_stats()
    hits = sum(int(s.get("plan_cache.hits", 0)) for s in workers.values())
    misses = sum(int(s.get("plan_cache.misses", 0))
                 for s in workers.values())
    return hits, misses


def _hit_rate_delta(before: tuple, after: tuple) -> float:
    """Plan-cache hit rate over the serving window only — priming
    populates the caches with deliberate misses, so the cumulative
    rate would punish exactly the warmup the check demands."""
    hits = after[0] - before[0]
    planned = hits + (after[1] - before[1])
    return hits / planned if planned else 1.0


def _check_fleet_trace(report: FleetLoadReport, fleet: Fleet,
                       trace_path: Path) -> None:
    """Dump the merged fleet trace and fold the distributed-tracing
    acceptance evidence into ``report``: the document must validate,
    worker ``serve.request`` roots must join router requests through
    the propagated trace ids, and the cross-process critical path
    must tile each request wall within the analyzer's 2% tolerance."""
    from repro.obs import analyze as obs_analyze
    from repro.obs.export import validate_chrome_trace

    doc = fleet.dump_trace(path=trace_path)
    report.trace_path = str(trace_path)
    try:
        validate_chrome_trace(doc)
    except Exception as exc:
        report.trace_problems.append(
            f"merged trace failed validation: {exc}")
        return
    analysis = obs_analyze.analyze(str(trace_path))
    requests = analysis.get("fleet_requests") or []
    report.trace_requests = len(requests)
    report.trace_joined = sum(
        1 for r in requests if r.get("worker_detail"))
    report.trace_problems.extend(obs_analyze.check_report(analysis))


def _check_fleet_bundle(report: FleetLoadReport, fleet: Fleet) -> None:
    """The chaos phase's worker incidents must have escalated into one
    fleet-wide bundle gathering every live worker's flight ring, and
    that bundle must still be replayable (``loadgen.profile`` intact)."""
    from repro.fleet.replay import load_bundle, plan_replay

    # The gather runs on a collector-side thread; give it a moment.
    deadline = time.monotonic() + 10.0
    while not fleet.fleet_incidents and time.monotonic() < deadline:
        time.sleep(0.05)
    report.fleet_incidents = [str(p) for p in fleet.fleet_incidents]
    if not report.fleet_incidents:
        report.trace_problems.append(
            "worker incidents never escalated into a fleet-wide bundle")
        return
    try:
        manifest = load_bundle(report.fleet_incidents[0])
    except Exception as exc:
        report.trace_problems.append(
            f"fleet incident bundle unreadable: {exc}")
        return
    workers = (manifest.get("context") or {}).get("workers") or {}
    missing = [w for w in fleet.worker_ids if w not in workers]
    if missing:
        report.trace_problems.append(
            f"fleet bundle missing flight rings for {missing}")
    try:
        plan_replay(manifest)
    except Exception as exc:
        report.trace_problems.append(
            f"fleet bundle is not replayable: {exc}")


def run_fleet_load(
    *,
    shapes: Optional[List[str]] = None,
    sizes: Optional[List[int]] = None,
    clients: int = 8,
    requests_per_client: int = 12,
    fleet_config: Optional[FleetConfig] = None,
    ds_config=None,
    seed: int = 1234,
    timeout_s: float = 60.0,
    prime: bool = True,
    collect_stats: bool = False,
    trace_out: Optional[str] = None,
) -> FleetLoadReport:
    """Drive a fresh fleet with closed-loop multi-shape traffic and
    return the populated :class:`FleetLoadReport`.

    When the fleet config enables tracing and ``trace_out`` is given,
    the merged clock-aligned Chrome trace is dumped there before the
    fleet closes.
    """
    shapes = list(shapes) if shapes else sorted(SHAPES)
    sizes = list(sizes) if sizes else [256, 384, 512, 640]
    cfg = fleet_config if fleet_config is not None else FleetConfig()
    specs = _traffic(shapes, sizes, seed)
    report = FleetLoadReport(
        shapes=shapes, clients=clients,
        requests=clients * requests_per_client)
    with Fleet(cfg, ds_config=ds_config) as fleet:
        report.workers_start = fleet.n_workers
        if prime:
            for spec in specs:
                fleet.prime(spec.ops, spec.array)
        plans0 = _plan_counts(fleet)
        latencies = _drive(fleet, specs, report, clients=clients,
                           requests_per_client=requests_per_client,
                           timeout_s=timeout_s)
        report.plan_hit_rate = _hit_rate_delta(plans0,
                                               _plan_counts(fleet))
        report.workers_peak = max(report.workers_start, fleet.n_workers)
        report.workers_end = fleet.n_workers
        stats = fleet.stats()
        _fold_stats(report, stats)
        if collect_stats:
            report.stats = stats
        if trace_out is not None and fleet.tracing:
            _check_fleet_trace(report, fleet, Path(trace_out))
    latencies.sort()
    report.latency_p50_ms = _percentile(latencies, 0.50)
    report.latency_p95_ms = _percentile(latencies, 0.95)
    report.latency_p99_ms = _percentile(latencies, 0.99)
    report.throughput_rps = (report.completed / report.wall_s
                             if report.wall_s > 0 else 0.0)
    return report


def run_fleet_check(
    *,
    n_workers: int = 3,
    clients: int = 8,
    requests_per_client: int = 10,
    fault: object = "always",
    seed: int = 1234,
    timeout_s: float = 60.0,
    incident_dir: Optional[str] = None,
    collect_stats: bool = False,
    trace_out: Optional[str] = None,
) -> FleetLoadReport:
    """The five-phase deterministic acceptance run (module docstring).

    Returns the report; :func:`check_fleet_report` asserts it.
    ``trace_out`` overrides where the phase-5 merged trace lands
    (default: ``fleet-trace.json`` inside the incident dir).
    """
    shapes = sorted(SHAPES)
    sizes = [256, 320, 384, 448, 512, 576, 640, 704]  # 5 shapes x 8 = 40 keys
    own_dir = incident_dir is None
    tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-") if own_dir \
        else None
    incident_root = Path(tmp.name if own_dir else incident_dir)
    cfg = FleetConfig(
        n_workers=n_workers, min_workers=1, max_workers=n_workers + 1,
        queue_high=2, queue_low=1, up_after=1, down_after=2,
        cooldown_ticks=0, tick_interval_s=0.0,
        incident_dir=str(incident_root),
        trace="full",
        serve=ServeConfig(
            max_batch_size=8, max_wait_ms=1.0, breaker_threshold=2,
            breaker_cooldown_ms=50.0, incident_cooldown_ms=0.0,
            seed=seed),
    )
    specs = _traffic(shapes, sizes, seed)
    report = FleetLoadReport(
        shapes=shapes, clients=clients,
        requests=clients * requests_per_client)
    try:
        with Fleet(cfg) as fleet:
            report.workers_start = fleet.n_workers

            # Phase 1: healthy traffic (correctness, skew, hit rate).
            for spec in specs:
                fleet.prime(spec.ops, spec.array)
            plans0 = _plan_counts(fleet)
            latencies = _drive(
                fleet, specs, report, clients=clients,
                requests_per_client=requests_per_client,
                timeout_s=timeout_s)
            report.plan_hit_rate = _hit_rate_delta(plans0,
                                                   _plan_counts(fleet))
            if report.failed:
                report.errors.append(
                    f"{report.failed} requests failed during the "
                    f"healthy phase")

            # Phase 2: sustained backlog -> the autoscaler must grow.
            # queue_high=2/up_after=1 means one pressured observation
            # is enough; we fabricate pressure deterministically by
            # submitting a burst and ticking while it is queued.
            grew = False
            burst_spec = specs[0]
            for _ in range(6):
                futures = [fleet.submit_chain(burst_spec.ops,
                                              burst_spec.array)
                           for _ in range(cfg.queue_high
                                          * (fleet.n_workers + 1) * 4)]
                decision = fleet.autoscale_tick()
                for fut in futures:
                    fut.result(timeout=timeout_s)
                    report.completed += 1
                report.requests += len(futures)
                if decision == "up":
                    grew = True
                    break
            report.workers_peak = max(report.workers_start,
                                      fleet.n_workers)

            # Phase 3: idle ticks -> it must drain back down.
            shrank = False
            for _ in range(cfg.down_after * 4):
                if fleet.autoscale_tick() == "down":
                    shrank = True
                    break
            report.workers_end = fleet.n_workers

            # Phase 4: chaos -> breaker opens -> incident bundle.
            # The profile goes into the workers' flight rings first, so
            # the bundles they are about to dump are replayable.
            incident_spec = specs[1]
            fleet.record_profile(
                shape=incident_spec.name,
                n=int(incident_spec.array.size), clients=4,
                requests_per_client=6, seed=seed,
                fault="always" if fault == "always" else float(fault),
                deadline_ms=None, prime=True)
            fleet.set_fault(fault)
            for _ in range(cfg.serve.breaker_threshold * 3):
                try:
                    fleet.submit_chain(
                        incident_spec.ops,
                        incident_spec.array).result(timeout=timeout_s)
                    report.completed += 1
                except ServeError:
                    report.failed += 1
                report.requests += 1
            fleet.set_fault(None)

            # Phase 5: distributed-tracing acceptance — merged trace,
            # cross-process critical path, fleet-wide incident bundle.
            _check_fleet_bundle(report, fleet)
            _check_fleet_trace(
                report, fleet,
                Path(trace_out) if trace_out is not None
                else incident_root / "fleet-trace.json")

            stats = fleet.stats()
            _fold_stats(report, stats)
            if collect_stats:
                report.stats = stats
            if not grew:
                report.errors.append(
                    "autoscaler never scaled up under backlog")
            if not shrank:
                report.errors.append(
                    "autoscaler never scaled down when idle")

        # Phase 4b (fleet closed; workers flushed their bundles):
        # replay the first incident bundle and demand the same trigger.
        from repro.fleet.replay import run_replay

        bundles = sorted(incident_root.glob("*/incident-*"))
        if not bundles:
            report.errors.append(
                "chaos phase produced no incident bundle")
        else:
            report.incidents = [str(b) for b in bundles]
            verdict = run_replay(bundles[0],
                                 incident_dir=incident_root / "replay")
            report.replay_trigger = verdict["trigger"]
            report.replay_reproduced = verdict["reproduced"]
    finally:
        if tmp is not None:
            tmp.cleanup()

    latencies.sort()
    report.latency_p50_ms = _percentile(latencies, 0.50)
    report.latency_p95_ms = _percentile(latencies, 0.95)
    report.latency_p99_ms = _percentile(latencies, 0.99)
    report.throughput_rps = (report.completed / report.wall_s
                             if report.wall_s > 0 else 0.0)
    return report


def check_fleet_report(report: FleetLoadReport) -> None:
    """Assert the ``fleet --check`` acceptance bar; raises
    :class:`~repro.errors.ServeError` listing every failure."""
    problems = [e for e in report.errors
                if "autoscaler" in e or "incident" in e
                or "healthy phase" in e]
    if report.wrong:
        problems.append(f"{report.wrong} responses had wrong outputs")
    if report.routing_skew > 2.0:
        problems.append(
            f"routing skew {report.routing_skew:.2f}x mean exceeds the "
            f"2x bound")
    if report.route_keys < 40:
        problems.append(
            f"only {report.route_keys} distinct route keys (need >= 40 "
            f"for a meaningful skew bound)")
    if report.plan_hit_rate <= 0.90:
        problems.append(
            f"aggregate plan-cache hit rate "
            f"{report.plan_hit_rate * 100:.1f}% <= 90% after warmup")
    if report.scale_ups < 1:
        problems.append("autoscaler was never observed growing the pool")
    if report.scale_downs < 1:
        problems.append("autoscaler was never observed draining a worker")
    if report.replay_reproduced is not True:
        problems.append(
            f"incident replay did not re-trigger "
            f"{report.replay_trigger!r}")
    if report.trace_path is not None:
        if not report.trace_requests:
            problems.append(
                "merged fleet trace carries no router request spans")
        elif not report.trace_joined:
            problems.append(
                "no worker span joined a router request — trace-context "
                "propagation broke")
        problems.extend(report.trace_problems)
    if problems:
        raise ServeError("fleet acceptance failed: "
                         + "; ".join(problems))
