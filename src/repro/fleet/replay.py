"""Incident replay: feed a flight-recorder bundle back through the
load generator and reproduce the failure that dumped it.

An incident bundle (:mod:`repro.obs.flight`) already carries everything
a reproduction needs: the ``serve_config`` the server ran under, the
trigger that fired, and — since the load generator records a
``loadgen.profile`` event into the flight ring at startup — the exact
traffic (shape, input size, client count, per-client request count,
seed, fault schedule) that was in flight when the trigger tripped.
Both the traffic and the fault injector are seeded, so re-running the
same profile under the same config deterministically re-trips the same
trigger class.

``python -m repro replay <bundle>`` is the operator surface: it loads
the manifest, rebuilds the :class:`~repro.serve.config.ServeConfig`,
re-runs :func:`repro.serve.loadgen.run_load` with a fresh incident
directory, and reports whether a new bundle with the **same trigger**
was produced.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Optional, Union

from repro.errors import ReproError, ServeError
from repro.serve.config import ServeConfig

__all__ = ["load_bundle", "plan_replay", "run_replay", "check_replay"]

PROFILE_EVENT = "loadgen.profile"


def load_bundle(path: Union[str, Path]) -> dict:
    """The manifest of an incident bundle (a bundle directory or a
    direct path to its ``manifest.json``)."""
    p = Path(path)
    if p.is_dir():
        p = p / "manifest.json"
    if not p.exists():
        raise ReproError(
            f"{path}: not an incident bundle (no manifest.json)")
    try:
        manifest = json.loads(p.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"incident manifest {p} is unreadable: {exc}") \
            from None
    if not isinstance(manifest, dict) \
            or manifest.get("kind") != "repro-incident-bundle":
        raise ReproError(
            f"{p} is not a repro incident bundle manifest")
    return manifest


def _find_profile(manifest: dict) -> dict:
    """The ``loadgen.profile`` event the bundle's flight ring captured
    (the latest one, if the ring saw several runs)."""
    profiles = [ev for ev in manifest.get("events") or []
                if ev.get("event") == PROFILE_EVENT]
    if not profiles:
        raise ReproError(
            "incident bundle has no loadgen.profile event — it was not "
            "produced by the load generator, so the traffic cannot be "
            "reconstructed (re-record with repro serve/fleet)")
    return profiles[-1]


def _serve_config(manifest: dict) -> ServeConfig:
    raw = manifest.get("serve_config")
    if not isinstance(raw, dict):
        return ServeConfig()
    fields = {f.name for f in dataclasses.fields(ServeConfig)}
    return ServeConfig(**{k: v for k, v in raw.items() if k in fields})


def plan_replay(manifest: dict) -> dict:
    """What a replay of this bundle will do: the reconstructed traffic
    profile, serve config and the trigger it must reproduce."""
    profile = _find_profile(manifest)
    fault = profile.get("fault")
    if fault is not None and fault != "always":
        fault = float(fault)
    return {
        "trigger": manifest.get("trigger"),
        "reason": manifest.get("reason", ""),
        "shape": profile.get("shape", "chain"),
        "n": int(profile.get("n", 512)),
        "clients": int(profile.get("clients", 4)),
        "requests_per_client": int(profile.get("requests_per_client", 25)),
        "seed": int(profile.get("seed", 1234)),
        "fault": fault,
        "deadline_ms": profile.get("deadline_ms"),
        "prime": bool(profile.get("prime", True)),
        "serve_config": _serve_config(manifest),
    }


def run_replay(path: Union[str, Path], *,
               incident_dir: Optional[Union[str, Path]] = None,
               timeout_s: float = 120.0) -> dict:
    """Replay one incident bundle; returns the verdict dict.

    The replayed run writes its own bundles into ``incident_dir``
    (default: ``<bundle>/replay``) so the original evidence is never
    overwritten.  ``reproduced`` is ``True`` when the replay dumped at
    least one new bundle with the same trigger as the original.
    """
    from repro.serve.loadgen import run_load

    manifest = load_bundle(path)
    plan = plan_replay(manifest)
    bundle_dir = Path(path)
    if bundle_dir.is_file():
        bundle_dir = bundle_dir.parent
    out_dir = Path(incident_dir) if incident_dir is not None \
        else bundle_dir / "replay"
    cfg = plan["serve_config"].replace(incident_dir=str(out_dir))

    report = run_load(
        shape=plan["shape"], clients=plan["clients"],
        requests_per_client=plan["requests_per_client"], n=plan["n"],
        serve_config=cfg, fault=plan["fault"], prime=plan["prime"],
        deadline_ms=plan["deadline_ms"], seed=plan["seed"],
        timeout_s=timeout_s)

    reproduced = []
    for bundle in report.incidents:
        try:
            new_manifest = load_bundle(bundle)
        except ReproError:  # pragma: no cover - partial write
            continue
        if new_manifest.get("trigger") == plan["trigger"]:
            reproduced.append(bundle)
    return {
        "bundle": str(path),
        "trigger": plan["trigger"],
        "shape": plan["shape"],
        "fault": plan["fault"],
        "reproduced": bool(reproduced),
        "matching_bundles": reproduced,
        "all_bundles": list(report.incidents),
        "report": report.to_dict(),
    }


def check_replay(result: dict) -> None:
    """Assert the replay verdict; raises
    :class:`~repro.errors.ServeError` when the trigger did not re-fire."""
    if not result["reproduced"]:
        raise ServeError(
            f"replay of {result['bundle']} did not reproduce trigger "
            f"{result['trigger']!r} (new bundles: "
            f"{result['all_bundles'] or 'none'})")
