"""Consistent-hash ring with bounded loads and sticky assignments.

The fleet router's job is to send every request with the same batch key
(op chain + geometry + dtype + config + backend — exactly what the plan
cache hashes) to the same worker, so identical traffic always lands on
a warm plan cache.  Plain consistent hashing does that but can leave
one worker holding far more keys than its peers; this ring adds the
*bounded loads* refinement (Mirrokni et al.): a worker at its capacity
``ceil(load_factor * total_keys / n_workers)`` is skipped and the key
walks on to the next vnode's owner.  With ``load_factor = 1.25`` no
worker ever holds more than 1.25× the mean — which is what turns the
``fleet --check`` skew bound ("no worker above 2× the mean") into a
deterministic property instead of a statistical hope.

Assignments are **sticky**: once a key is placed, it stays with its
worker across unrelated ``add``/``remove`` calls (stability is the
whole point — a warm plan cache is only warm if the traffic keeps
arriving).  Removing a worker re-routes only *its* keys; adding one
takes over only the keys :meth:`rebalance` explicitly migrates (the
fleet re-primes the new owner before any request lands there).

Everything is deterministic: keys and worker ids hash through
``blake2b``, never Python's seeded ``hash()``.
"""

from __future__ import annotations

import bisect
import hashlib
import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["HashRing"]


def _h64(data: str) -> int:
    """Stable 64-bit hash (never the process-seeded ``hash()``)."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(),
        "big")


class HashRing:
    """Consistent-hash ring with bounded loads and sticky placement.

    Parameters
    ----------
    workers:
        Initial worker ids.
    vnodes:
        Virtual nodes per worker — each worker owns ``vnodes`` points
        on the ring, which smooths placement.
    load_factor:
        Bounded-loads cap (>= 1.0); see the module docstring.
    """

    def __init__(self, workers: Iterable[str] = (), *, vnodes: int = 64,
                 load_factor: float = 1.25) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes!r}")
        if load_factor < 1.0:
            raise ValueError(
                f"load_factor must be >= 1.0, got {load_factor!r}")
        self.vnodes = int(vnodes)
        self.load_factor = float(load_factor)
        #: sorted [(point, worker_id)] — the ring itself.
        self._ring: List[Tuple[int, str]] = []
        self._workers: List[str] = []
        #: sticky key -> worker placements (the routing table).
        self._assign: Dict[str, str] = {}
        for w in workers:
            self.add(w)

    # -- membership -----------------------------------------------------

    @property
    def workers(self) -> List[str]:
        return list(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    def add(self, worker_id: str) -> None:
        """Add a worker's vnodes.  Existing placements are untouched —
        migrate keys explicitly with :meth:`rebalance` once the new
        worker is warm."""
        if worker_id in self._workers:
            raise ValueError(f"worker {worker_id!r} already on the ring")
        self._workers.append(worker_id)
        for v in range(self.vnodes):
            point = _h64(f"{worker_id}#{v}")
            bisect.insort(self._ring, (point, worker_id))

    def remove(self, worker_id: str) -> Dict[str, str]:
        """Remove a worker and re-route its keys to the survivors.

        Returns ``{key: new_worker}`` for every key that moved, so the
        fleet can re-prime the new owners.  Other placements never
        move."""
        if worker_id not in self._workers:
            raise ValueError(f"worker {worker_id!r} not on the ring")
        self._workers.remove(worker_id)
        self._ring = [(p, w) for p, w in self._ring if w != worker_id]
        orphans = sorted(k for k, w in self._assign.items()
                         if w == worker_id)
        for key in orphans:
            del self._assign[key]
        moved = {}
        if self._workers:  # last worker's keys are simply forgotten
            for key in orphans:
                moved[key] = self._place(key)
        return moved

    # -- routing --------------------------------------------------------

    def route(self, key) -> str:
        """The worker ``key`` lives on (placing it on first sight).

        ``key`` is anything with a stable ``repr`` — the fleet passes
        the request batch key tuple.  Placement walks the ring from the
        key's hash point and takes the first worker still under the
        bounded-loads capacity.
        """
        skey = key if isinstance(key, str) else repr(key)
        try:
            return self._assign[skey]
        except KeyError:
            return self._place(skey)

    def _capacity(self, total_keys: int) -> int:
        """Max keys per worker once ``total_keys`` are placed."""
        if not self._workers:
            return 0
        return max(1, math.ceil(
            self.load_factor * total_keys / len(self._workers)))

    def _place(self, skey: str) -> str:
        if not self._workers:
            raise ValueError("cannot route on an empty ring")
        cap = self._capacity(len(self._assign) + 1)
        loads = self.loads()
        point = _h64(skey)
        start = bisect.bisect_right(self._ring, (point, "￿"))
        n = len(self._ring)
        chosen: Optional[str] = None
        for i in range(n):
            worker = self._ring[(start + i) % n][1]
            if loads.get(worker, 0) < cap:
                chosen = worker
                break
        if chosen is None:  # every worker at cap — cap math forbids this,
            chosen = self._ring[start % n][1]  # pragma: no cover
        self._assign[skey] = chosen
        return chosen

    # -- introspection / rebalancing ------------------------------------

    def loads(self) -> Dict[str, int]:
        """Placed-key count per worker (workers with none included)."""
        out = {w: 0 for w in self._workers}
        for worker in self._assign.values():
            out[worker] += 1
        return out

    def keys_for(self, worker_id: str) -> List[str]:
        return sorted(k for k, w in self._assign.items()
                      if w == worker_id)

    def assignments(self) -> Dict[str, str]:
        return dict(self._assign)

    def skew(self) -> float:
        """Max worker load over the mean load (1.0 = perfectly even;
        the ``fleet --check`` bound is 2.0).  Empty ring → 0.0."""
        loads = self.loads()
        if not loads or not self._assign:
            return 0.0
        mean = len(self._assign) / len(loads)
        return max(loads.values()) / mean if mean else 0.0

    def rebalance(self) -> Dict[str, str]:
        """Migrate keys off over-capacity workers (after :meth:`add`).

        Keys above the bounded-loads cap move — most-loaded workers
        first, re-placed through the normal capacity-respecting walk.
        Returns ``{key: new_worker}`` for the moves so the fleet can
        prime the new owners before traffic follows."""
        cap = self._capacity(len(self._assign))
        moved: Dict[str, str] = {}
        for worker, load in sorted(self.loads().items(),
                                   key=lambda kv: -kv[1]):
            excess = load - cap
            if excess <= 0:
                continue
            # Evict the keys whose hash points sit furthest from any of
            # the worker's vnodes last-in terms of sort order — simply
            # take the lexicographically last keys for determinism.
            for key in self.keys_for(worker)[-excess:]:
                del self._assign[key]
                new_worker = self._place(key)
                if new_worker != worker:
                    moved[key] = new_worker
                # _place may legitimately re-choose the same worker if
                # everyone else is at cap; that is not a move.
        return moved

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HashRing({len(self._workers)} workers, "
                f"{len(self._assign)} keys, vnodes={self.vnodes})")
