"""Cross-process request/response transport for the fleet tier.

Two problems stand between a router process and a worker process:

1. **Op chains are not picklable.**  The predicate ops
   (``remove_if``, ``partition``, ...) carry
   :class:`~repro.core.predicates.Predicate` closures, and closures do
   not pickle.  The factory predicates carry *parseable names*
   (``"less_than(0.5)"``, ``"not(is_even)"``), so the chain crosses the
   boundary as data: :func:`freeze_ops` replaces each predicate with a
   ``["__pred__", name]`` marker and — because a hand-built predicate's
   name could lie about its behaviour — **probe-verifies** the revived
   predicate against the original on a fixed probe vector *in the
   router*, where the original still exists.  An unrevivable or
   lying predicate is rejected at submit with
   :class:`~repro.errors.FleetError`; it never reaches a worker.
   :func:`revive_ops` is the worker-side inverse.

2. **Payloads should not copy through a pipe.**  Request arrays move
   as :mod:`multiprocessing.shared_memory` segments via the same
   descriptor scheme the shard pool uses
   (:func:`repro.stream.pool.input_descriptor` /
   :func:`~repro.stream.pool.attach_input`): the router stages the
   array once into a segment, the worker maps a zero-copy ndarray view
   over it and serves straight from the mapping; only the descriptor
   tuple crosses the queue.  Out-of-core memmap sources cross as their
   path descriptor and stay streamed on the worker.  Responses come
   back the same way (:func:`stage_result` / :func:`fetch_result`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.predicates import Predicate, from_name
from repro.errors import FleetError
from repro.stream.pool import attach_input, input_descriptor
from repro.stream.source import MemmapSource, as_source

__all__ = ["freeze_ops", "revive_ops", "stage_payload", "attach_payload",
           "stage_result", "fetch_result", "PROBE"]

#: Fixed probe vector for predicate verification: negatives, zero,
#: fractions, integer-valued floats — enough to distinguish every
#: predicate the name vocabulary can express.
PROBE = np.array([-3.0, -1.5, -1.0, 0.0, 0.25, 0.5, 1.0, 2.0, 3.0, 4.5])

_SCALARS = (str, int, float, bool, type(None))


def _freeze_value(value, *, op: str):
    if isinstance(value, Predicate):
        revived = from_name(value.name)
        if revived is None:
            raise FleetError(
                f"op {op!r}: predicate {value.name!r} cannot cross the "
                f"process boundary — its name is outside the "
                f"repro.core.predicates.from_name vocabulary")
        if not np.array_equal(value(PROBE), revived(PROBE)):
            raise FleetError(
                f"op {op!r}: predicate {value.name!r} failed probe "
                f"verification — the name does not describe its "
                f"behaviour, so a revived copy would compute different "
                f"results")
        return ["__pred__", value.name]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, _SCALARS):
        return value
    raise FleetError(
        f"op {op!r}: argument {value!r} ({type(value).__name__}) is not "
        f"transportable to a fleet worker (scalars and named predicates "
        f"only)")


def _revive_value(value):
    if isinstance(value, list) and len(value) == 2 and value[0] == "__pred__":
        pred = from_name(value[1])
        if pred is None:  # the router verified; a miss here is a bug
            raise FleetError(
                f"worker could not revive predicate {value[1]!r}")
        return pred
    return value


def freeze_ops(ops) -> List[list]:
    """A picklable form of a ``submit_chain`` op spec.

    Accepts the same shapes :meth:`repro.serve.Server.submit_chain`
    does — each entry a name string or a ``(name, *args[, kwargs])``
    tuple — and returns nested plain lists with predicates replaced by
    verified ``["__pred__", name]`` markers.
    """
    frozen = []
    for item in ops:
        if isinstance(item, str):
            item = (item,)
        if not item:
            raise FleetError("empty op spec in chain")
        name, *args = item
        kwargs = {}
        if args and isinstance(args[-1], dict):
            kwargs = args.pop()
        entry = [str(name)]
        entry.extend(_freeze_value(a, op=str(name)) for a in args)
        if kwargs:
            entry.append({k: _freeze_value(v, op=str(name))
                          for k, v in kwargs.items()})
        frozen.append(entry)
    if not frozen:
        raise FleetError("a fleet request needs at least one op")
    return frozen


def revive_ops(frozen: List[list]) -> List[tuple]:
    """Worker-side inverse of :func:`freeze_ops`."""
    ops = []
    for entry in frozen:
        name, *rest = entry
        kwargs = None
        if rest and isinstance(rest[-1], dict):
            kwargs = rest.pop()
        parts = [name] + [_revive_value(v) for v in rest]
        if kwargs:
            parts.append({k: _revive_value(v) for k, v in kwargs.items()})
        ops.append(tuple(parts))
    return ops


# -- payloads ------------------------------------------------------------


def stage_payload(values) -> Tuple[tuple, Optional[object], dict]:
    """Router-side: make one request input cross the boundary.

    Returns ``(descriptor, scratch, meta)``: the descriptor the worker
    attaches (``("shm", name, dtype, n)`` or ``("memmap", path, dtype,
    offset, n)``), the scratch shared-memory segment to unlink once the
    request resolves (``None`` when the input already lives in a file
    or a named segment), and transport metadata — most importantly
    ``meta["in_core"]``: an in-core input must be served as a resident
    ndarray view on the worker (through the micro-batcher and its plan
    cache), never re-interpreted as an out-of-core source.
    """
    source = as_source(values, site="Fleet.submit")
    desc, scratch = input_descriptor(source)
    return desc, scratch, {"in_core": bool(source.in_core)}


def attach_payload(desc: tuple, meta: dict):
    """Worker-side: the submittable input for a staged payload.

    Returns ``(values, shm)`` where ``values`` is either a zero-copy
    ndarray view (in-core request — ``shm`` must stay alive until the
    request resolves) or a reconstructed out-of-core source (streamed
    request — ``shm`` is ``None``).
    """
    if not meta.get("in_core", True):
        if desc[0] == "memmap":
            _, path, dtype, offset, n = desc
            mm = np.memmap(path, dtype=np.dtype(dtype), mode="r",
                           offset=offset, shape=(n,))
            return MemmapSource(mm), None
        # An out-of-core shm source round-trips as a source too (it
        # must keep streaming through the sharded engine).
        from multiprocessing import shared_memory

        from repro.stream.source import SharedMemorySource

        _, name, dtype, n = desc
        seg = shared_memory.SharedMemory(name=name)
        return SharedMemorySource(seg, dtype, n_elems=n), None
    array, shm = attach_input(desc)
    return array, shm


def stage_result(output: np.ndarray) -> Tuple[tuple, object]:
    """Worker-side: stage a response array into a fresh shm segment.

    Returns ``(descriptor, segment)``; the worker closes its handle
    after posting the descriptor, the router unlinks after fetching.
    """
    from multiprocessing import shared_memory

    flat = np.ascontiguousarray(output)
    seg = shared_memory.SharedMemory(create=True,
                                     size=max(1, flat.nbytes))
    np.ndarray(flat.shape, dtype=flat.dtype, buffer=seg.buf)[:] = flat
    return (("shm", seg.name, str(flat.dtype), flat.shape), seg)


def fetch_result(desc: tuple) -> np.ndarray:
    """Router-side: copy a response out of its segment and unlink it."""
    from multiprocessing import shared_memory

    _, name, dtype, shape = desc
    shm = shared_memory.SharedMemory(name=name)
    try:
        view = np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                          buffer=shm.buf)
        out = np.array(view, copy=True)
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    return out
